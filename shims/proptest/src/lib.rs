//! Offline stand-in for the `proptest` crate.
//!
//! The build container has no access to crates.io, so the workspace
//! vendors the API subset its tests use: the `proptest!` macro,
//! `Strategy` with `prop_map`/`prop_flat_map`, integer-range and tuple
//! strategies, `Just`, `any`, `prop_oneof!`, `collection::vec`, and
//! `ProptestConfig::with_cases`. Cases are generated from a
//! deterministic per-test seed; there is no shrinking — a failure
//! reports the case index so it can be replayed exactly.

// Vendored offline stand-in; exempt from the workspace lint gate.
#![allow(clippy::all)]

pub mod strategy {
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::marker::PhantomData;
    use std::rc::Rc;

    /// A source of random values of one type.
    ///
    /// Object-safe: combinators are gated on `Self: Sized` so
    /// `BoxedStrategy` can hold `dyn Strategy`.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        /// Uses a generated value to build a second strategy, then
        /// draws from that.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }

        /// Erases the strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Rc::new(self))
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, U, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;
        fn generate(&self, rng: &mut StdRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    #[derive(Clone)]
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;
        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// A type-erased strategy (see [`Strategy::boxed`]).
    pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            self.0.generate(rng)
        }
    }

    /// Always produces a clone of the wrapped value.
    #[derive(Clone, Debug)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice among type-erased alternatives (`prop_oneof!`).
    #[derive(Clone)]
    pub struct Union<T>(Vec<BoxedStrategy<T>>);

    impl<T> Union<T> {
        /// Builds a union; panics on an empty alternative list.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Union(options)
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            let i = rng.gen_range(0..self.0.len());
            self.0[i].generate(rng)
        }
    }

    /// Types with a canonical full-range strategy (see [`any`]).
    pub trait Arbitrary {
        /// Draws an unconstrained value.
        fn arbitrary(rng: &mut StdRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut StdRng) -> $t {
                    use rand::RngCore;
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut StdRng) -> bool {
            use rand::RngCore;
            rng.next_u64() & 1 == 1
        }
    }

    /// Strategy over the full range of `T` (see [`any`]).
    #[derive(Clone, Debug)]
    pub struct Any<T>(pub(crate) PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Strategy over the full range of `T`, e.g. `any::<i32>()`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }
    impl_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

    macro_rules! impl_float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }
    impl_float_range_strategy!(f32, f64);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    #[allow(non_snake_case)]
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
    impl_tuple_strategy!(A, B, C, D, E, F, G);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H, I);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J);
}

/// `bool` strategies, mirroring `proptest::bool`.
pub mod bool {
    use std::marker::PhantomData;

    /// Uniform `true`/`false`.
    pub const ANY: crate::strategy::Any<::core::primitive::bool> =
        crate::strategy::Any(PhantomData);
}

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Inclusive length bounds for [`vec`].
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Vectors whose elements come from `element` (see [`vec`]).
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let n = rng.gen_range(self.size.lo..=self.size.hi);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A strategy for vectors with lengths in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Test-runner knobs, mirroring `proptest::test_runner` (subset).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; 128 keeps the heavier workspace
        // suites quick while retaining real coverage.
        ProptestConfig { cases: 128 }
    }
}

/// Deterministic case loop driving `proptest!` bodies.
pub mod test_runner {
    use super::ProptestConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn fnv1a(s: &str) -> u64 {
        let mut h: u64 = 0xcbf29ce484222325;
        for b in s.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100000001b3);
        }
        h
    }

    /// Runs `body` once per case with a per-case deterministic RNG.
    ///
    /// On panic, reports the test name and case index (the seed is a
    /// pure function of both, so any failure replays exactly).
    pub fn run<F: FnMut(&mut StdRng)>(config: &ProptestConfig, name: &str, mut body: F) {
        let base = fnv1a(name);
        for case in 0..config.cases {
            let seed = base ^ u64::from(case).wrapping_mul(0x9E3779B97F4A7C15);
            let mut rng = StdRng::seed_from_u64(seed);
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                body(&mut rng);
            }));
            if let Err(payload) = outcome {
                eprintln!("proptest: {name} failed at case {case}/{}", config.cases);
                std::panic::resume_unwind(payload);
            }
        }
    }
}

/// The usual imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy, Union};
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Declares property tests: `fn name(pat in strategy, ...) { body }`.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_impl! { config = ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_impl {
    (
        config = ($config:expr);
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        )+
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __proptest_config = $config;
                $crate::test_runner::run(
                    &__proptest_config,
                    concat!(module_path!(), "::", stringify!($name)),
                    |__proptest_rng| {
                        $(let $pat =
                            $crate::strategy::Strategy::generate(&($strat), __proptest_rng);)+
                        $body
                    },
                );
            }
        )+
    };
}

/// `assert!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// `assert_eq!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// `assert_ne!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($s)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn macro_and_strategies_cover_used_surface() {
        // Exercise the whole surface outside the macro first.
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        use rand::SeedableRng;
        let s = (1i32..5, crate::bool::ANY)
            .prop_flat_map(|(n, _b)| crate::collection::vec(Just(n), 0..4usize))
            .prop_map(|v| v.len());
        for _ in 0..50 {
            let len = Strategy::generate(&s, &mut rng);
            assert!(len < 4);
        }
        let u = prop_oneof![Just(1i16), Just(2i16)];
        for _ in 0..20 {
            let v = Strategy::generate(&u, &mut rng);
            assert!(v == 1 || v == 2);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(40))]
        #[test]
        fn generated_values_respect_ranges(
            x in -10i32..10,
            mut v in crate::collection::vec(any::<u8>(), 1..6),
            flag in crate::bool::ANY,
        ) {
            prop_assert!((-10..10).contains(&x));
            prop_assert!((1..6).contains(&v.len()));
            v.sort_unstable();
            prop_assert!(v.windows(2).all(|w| w[0] <= w[1]));
            prop_assert_eq!(u8::from(flag) <= 1, true);
        }
    }
}
