//! Offline stand-in for the `bytes` crate.
//!
//! The build container has no access to crates.io, so the workspace
//! vendors the API subset the GDSII writer uses: `BytesMut` with the
//! `BufMut` put-methods (big-endian, matching upstream defaults) and
//! `to_vec`.

// Vendored offline stand-in; exempt from the workspace lint gate.
#![allow(clippy::all)]

/// Append-only byte sink, mirroring `bytes::BufMut` (subset).
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `i16`.
    fn put_i16(&mut self, v: i16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `i32`.
    fn put_i32(&mut self, v: i32) {
        self.put_slice(&v.to_be_bytes());
    }
}

/// A growable byte buffer, mirroring `bytes::BytesMut` (subset).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BytesMut {
    inner: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Copies the contents into a `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.inner.clone()
    }

    /// Current length in bytes.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.inner.extend_from_slice(src);
    }
}

impl std::ops::Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn big_endian_puts() {
        let mut b = BytesMut::new();
        b.put_u16(6);
        b.put_u8(0x00);
        b.put_u8(0x02);
        b.put_i16(600);
        b.put_i32(-2);
        b.put_slice(b"ab");
        assert_eq!(
            b.to_vec(),
            vec![0x00, 0x06, 0x00, 0x02, 0x02, 0x58, 0xFF, 0xFF, 0xFF, 0xFE, b'a', b'b']
        );
        assert_eq!(b.len(), 12);
        assert!(!b.is_empty());
    }
}
