//! Offline stand-in for the `rand` crate.
//!
//! The build container has no access to crates.io, so the workspace
//! vendors the small API subset it uses: `StdRng::seed_from_u64`,
//! `Rng::gen_range` over integer ranges, and `Rng::gen_bool`. The
//! generator is xoshiro256++ seeded through splitmix64 — deterministic
//! for a given seed, which is all the layout generator and the tests
//! rely on (the exact stream differs from upstream `rand`).

// Vendored offline stand-in; exempt from the workspace lint gate.
#![allow(clippy::all)]

/// Samplable range types, mirroring `rand::distributions::uniform`.
pub trait SampleRange<T> {
    /// Draws a uniform sample from the range.
    fn sample(self, rng: &mut impl RngCore) -> T;
    /// Returns `true` when the range contains no values.
    fn is_empty_range(&self) -> bool;
}

/// The raw 64-bit generator interface.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// User-facing sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore + Sized {
    /// Uniform sample from a (half-open or inclusive) integer range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        assert!(!range.is_empty_range(), "cannot sample from empty range");
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        // 53 bits of mantissa — same resolution rand uses.
        let v = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        v < p
    }
}

impl<R: RngCore + Sized> Rng for R {}

/// Seeding interface, mirroring `rand::SeedableRng` (subset).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Deterministic RNGs.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// A deterministic generator (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample(self, rng: &mut impl RngCore) -> $t {
                let span = (self.end as i128 - self.start as i128) as u128;
                let r = ((rng.next_u64() as u128) % span) as i128;
                (self.start as i128 + r) as $t
            }
            fn is_empty_range(&self) -> bool {
                self.start >= self.end
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample(self, rng: &mut impl RngCore) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let r = ((rng.next_u64() as u128) % span) as i128;
                (lo as i128 + r) as $t
            }
            fn is_empty_range(&self) -> bool {
                self.start() > self.end()
            }
        }
    )*};
}

impl_sample_range!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample(self, rng: &mut impl RngCore) -> $t {
                let u = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                let v = self.start as f64 + u * (self.end as f64 - self.start as f64);
                v as $t
            }
            fn is_empty_range(&self) -> bool {
                !(self.start < self.end)
            }
        }
    )*};
}

impl_sample_range_float!(f32, f64);

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1_000_000i64), b.gen_range(0..1_000_000i64));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(-50..50i32);
            assert!((-50..50).contains(&v));
            let w = rng.gen_range(3..=5usize);
            assert!((3..=5).contains(&w));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((3_000..7_000).contains(&hits), "suspicious bias: {hits}");
    }
}
