//! Offline stand-in for the `criterion` crate.
//!
//! The build container has no access to crates.io, so the workspace
//! vendors the API subset its benches use: `benchmark_group`,
//! `bench_function` / `bench_with_input`, `Bencher::iter`,
//! `BenchmarkId`, and the `criterion_group!` / `criterion_main!`
//! macros. Like upstream, running without a `--bench` argument (as
//! `cargo test` does for `harness = false` bench targets) executes each
//! benchmark body exactly once as a smoke test; `cargo bench` passes
//! `--bench` and gets simple wall-clock sampling with a mean/min/max
//! report — no statistics machinery, no HTML output.

// Vendored offline stand-in; exempt from the workspace lint gate.
#![allow(clippy::all)]

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier, re-exported for benchmark bodies.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// A benchmark label: `BenchmarkId::new(function, parameter)`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Builds an id rendered as `function/parameter`.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{function}/{parameter}"),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            label: s.to_owned(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    /// `true` when invoked under `--bench` (sampling mode).
    sampling: bool,
    sample_size: usize,
    measurement_time: Duration,
    /// Collected per-iteration times, nanoseconds.
    samples: Vec<u128>,
}

impl Bencher {
    /// Times `routine`, once in test mode or repeatedly in bench mode.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        if !self.sampling {
            black_box(routine());
            return;
        }
        // Warm-up iteration, not recorded.
        black_box(routine());
        let budget = Instant::now();
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            black_box(routine());
            self.samples.push(t0.elapsed().as_nanos());
            if budget.elapsed() > self.measurement_time {
                break;
            }
        }
    }
}

/// A named group of benchmarks with shared sampling settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Sets the target number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Accepted for API compatibility; the shim has no separate
    /// warm-up phase beyond one untimed iteration.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Caps the total sampling time per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            sampling: self.criterion.sampling,
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            samples: Vec::new(),
        };
        f(&mut b);
        self.report(&id, &b);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut b = Bencher {
            sampling: self.criterion.sampling,
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            samples: Vec::new(),
        };
        f(&mut b, input);
        self.report(&id, &b);
        self
    }

    fn report(&self, id: &BenchmarkId, b: &Bencher) {
        if !self.criterion.sampling {
            println!("test {}/{} ... ok", self.name, id.label);
            return;
        }
        let n = b.samples.len().max(1) as u128;
        let sum: u128 = b.samples.iter().sum();
        let mean = sum / n;
        let min = b.samples.iter().min().copied().unwrap_or(0);
        let max = b.samples.iter().max().copied().unwrap_or(0);
        println!(
            "{}/{}: mean {} (min {}, max {}, {} samples)",
            self.name,
            id.label,
            fmt_ns(mean),
            fmt_ns(min),
            fmt_ns(max),
            b.samples.len()
        );
    }

    /// Ends the group (no-op; printed incrementally).
    pub fn finish(&mut self) {}
}

fn fmt_ns(ns: u128) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// Top-level benchmark driver.
pub struct Criterion {
    sampling: bool,
}

impl Default for Criterion {
    /// Reads the process arguments the way upstream does: `--bench`
    /// selects sampling mode, anything else (e.g. `cargo test`) gets
    /// the run-once smoke-test mode.
    fn default() -> Self {
        let sampling = std::env::args().any(|a| a == "--bench");
        Criterion { sampling }
    }
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 20,
            measurement_time: Duration::from_secs(2),
            criterion: self,
        }
    }
}

/// Bundles bench functions under one group name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Entry point running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $($group(&mut c);)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_mode_runs_once() {
        let mut c = Criterion { sampling: false };
        let mut group = c.benchmark_group("g");
        let mut runs = 0;
        group.bench_function("one", |b| b.iter(|| runs += 1));
        group.finish();
        assert_eq!(runs, 1);
    }

    #[test]
    fn sampling_mode_collects_samples() {
        let mut c = Criterion { sampling: true };
        let mut group = c.benchmark_group("g");
        group.sample_size(5);
        group.measurement_time(Duration::from_secs(1));
        let mut runs = 0u64;
        group.bench_with_input(BenchmarkId::new("f", 1), &3u64, |b, &x| {
            b.iter(|| runs += x)
        });
        group.finish();
        // 1 warm-up + up to 5 samples, each adding 3.
        assert!(runs >= 6 && runs <= 18, "runs = {runs}");
    }
}
