//! Offline stand-in for the `parking_lot` crate.
//!
//! The build container has no access to crates.io, so the workspace
//! vendors the small API subset it uses, implemented on top of
//! `std::sync`. Semantics match `parking_lot` for non-poisoned use:
//! guards are returned directly (no `Result`), and a panic while a lock
//! is held makes later acquisitions panic too (poisoning is treated as
//! a bug rather than recoverable state).

// Vendored offline stand-in; exempt from the workspace lint gate.
#![allow(clippy::all)]

use std::sync;

/// A mutex whose `lock` returns the guard directly.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().expect("mutex poisoned")
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().expect("mutex poisoned")
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        self.0.try_lock().ok()
    }

    /// Returns a mutable reference to the underlying data.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().expect("mutex poisoned")
    }
}

/// A condition variable paired with [`Mutex`].
#[derive(Debug, Default)]
pub struct Condvar(sync::Condvar);

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Condvar(sync::Condvar::new())
    }

    /// Blocks until notified, releasing the guard while waiting.
    ///
    /// Unlike `std`, the guard is updated in place (parking_lot style).
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        // Move the guard out, wait, move the re-acquired guard back in.
        replace_with(guard, |g| self.0.wait(g).expect("mutex poisoned"));
    }

    /// Blocks until notified or `timeout` elapses, releasing the guard
    /// while waiting. Returns `true` when the wait timed out.
    ///
    /// Like [`Condvar::wait`], the guard is updated in place.
    pub fn wait_for<T>(&self, guard: &mut MutexGuard<'_, T>, timeout: std::time::Duration) -> bool {
        let mut timed_out = false;
        replace_with(guard, |g| {
            let (g, res) = self.0.wait_timeout(g, timeout).expect("mutex poisoned");
            timed_out = res.timed_out();
            g
        });
        timed_out
    }

    /// Wakes one waiting thread.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wakes all waiting threads.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

/// Replaces `*slot` with `f(old)`, aborting on panic in `f` (cannot
/// leave the slot logically uninitialized).
fn replace_with<T, F: FnOnce(T) -> T>(slot: &mut T, f: F) {
    unsafe {
        let old = std::ptr::read(slot);
        let new = match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(old))) {
            Ok(new) => new,
            Err(_) => std::process::abort(),
        };
        std::ptr::write(slot, new);
    }
}

/// A reader-writer lock whose `read`/`write` return guards directly.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().expect("rwlock poisoned")
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().expect("rwlock poisoned")
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().expect("rwlock poisoned")
    }

    /// Returns a mutable reference to the underlying data.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().expect("rwlock poisoned")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_and_condvar_roundtrip() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, c) = &*p2;
            *m.lock() = true;
            c.notify_all();
        });
        let (m, c) = &*pair;
        let mut done = m.lock();
        while !*done {
            c.wait(&mut done);
        }
        drop(done);
        t.join().unwrap();
        assert!(*m.lock());
    }

    #[test]
    fn wait_for_times_out_and_wakes() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        // No notifier: the wait must report a timeout.
        let (m, c) = &*pair;
        let mut done = m.lock();
        assert!(c.wait_for(&mut done, std::time::Duration::from_millis(5)));
        drop(done);

        // With a notifier: the wait returns without timing out.
        let p2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, c) = &*p2;
            *m.lock() = true;
            c.notify_all();
        });
        let (m, c) = &*pair;
        let mut done = m.lock();
        while !*done {
            if c.wait_for(&mut done, std::time::Duration::from_secs(5)) {
                panic!("notification lost");
            }
        }
        drop(done);
        t.join().unwrap();
    }

    #[test]
    fn rwlock_shared_and_exclusive() {
        let l = RwLock::new(vec![1, 2, 3]);
        assert_eq!(l.read().len(), 3);
        l.write().push(4);
        assert_eq!(*l.read(), vec![1, 2, 3, 4]);
    }
}
