//! Shared flat-checking helpers.
//!
//! All helpers operate on flattened (top-coordinate) polygons and call
//! into `odrc::checks`, so their results are canonical-set-identical to
//! the engine's.

use odrc::checks::poly::{
    notch_space_violations, polygon_violations, space_violations_between, LocalViolation,
    PolyRuleSpec,
};
use odrc::checks::{enclosure_margin, SpaceSpec};
use odrc::rules::{Rule, RuleKind};
use odrc::{Violation, ViolationKind};
use odrc_db::{Layer, LayerPolygon, Layout};
use odrc_geometry::{Coord, Polygon, Rect};
use odrc_infra::sweep::sweep_overlaps;
use odrc_infra::Region;

/// Builds the per-polygon rule spec for an intra-polygon rule, plus the
/// restricting layer.
pub(crate) fn intra_spec(rule: &Rule) -> (Option<Layer>, PolyRuleSpec) {
    match &rule.kind {
        RuleKind::Width { layer, min } => (Some(*layer), PolyRuleSpec::Width(*min)),
        RuleKind::Area { layer, min } => (Some(*layer), PolyRuleSpec::Area(*min)),
        RuleKind::Rectilinear { layer } => (*layer, PolyRuleSpec::Rectilinear),
        RuleKind::Ensures {
            layer, predicate, ..
        } => (*layer, PolyRuleSpec::Ensures(predicate.clone())),
        _ => unreachable!("not an intra-polygon rule"),
    }
}

/// Flat polygons of a layer together with their names (for `ensures`).
pub(crate) fn flat_layer(layout: &Layout, layer: Layer) -> Vec<LayerPolygon> {
    layout
        .flatten_layer(layer)
        .into_iter()
        .map(|f| {
            let original = &layout.cell(f.cell).polygons()[f.index];
            LayerPolygon {
                layer,
                datatype: original.datatype,
                name: original.name.clone(),
                polygon: f.polygon,
            }
        })
        .collect()
}

/// Every flat polygon of every layer (for unrestricted shape rules).
pub(crate) fn flat_all_layers(layout: &Layout) -> Vec<LayerPolygon> {
    layout
        .layers()
        .into_iter()
        .flat_map(|l| flat_layer(layout, l))
        .collect()
}

/// Converts local violations to named violations.
pub(crate) fn to_violations(rule: &str, locals: Vec<LocalViolation>) -> Vec<Violation> {
    locals
        .into_iter()
        .map(|v| Violation {
            rule: rule.to_owned(),
            kind: v.kind,
            location: v.location,
            measured: v.measured,
        })
        .collect()
}

/// Flat intra-polygon check: runs the rule on every instance.
pub(crate) fn flat_intra(layout: &Layout, rule: &Rule, out: &mut Vec<Violation>) {
    let (layer, spec) = intra_spec(rule);
    let polys = match layer {
        Some(l) => flat_layer(layout, l),
        None => flat_all_layers(layout),
    };
    let mut locals = Vec::new();
    for p in &polys {
        polygon_violations(p, &spec, &mut locals);
    }
    out.extend(to_violations(&rule.name, locals));
}

/// Flat spacing check over a polygon soup: one global sweepline over
/// inflated MBRs plus per-polygon notch checks.
pub(crate) fn flat_space(polys: &[Polygon], rule: &str, spec: SpaceSpec, out: &mut Vec<Violation>) {
    let mut locals = Vec::new();
    for p in polys {
        notch_space_violations(p, spec, &mut locals);
    }
    let half = ((spec.min + 1) / 2) as Coord;
    let inflated: Vec<Rect> = polys.iter().map(|p| p.mbr().inflate(half)).collect();
    sweep_overlaps(&inflated, |a, b| {
        if polys[a].mbr().gap(polys[b].mbr()) < spec.min {
            space_violations_between(&polys[a], &polys[b], spec, &mut locals);
        }
    });
    out.extend(to_violations(rule, locals));
}

/// Flat enclosure check: bipartite candidate discovery by one sweepline
/// over the union of inflated inner MBRs and outer MBRs.
pub(crate) fn flat_enclosure(
    inners: &[Polygon],
    outers: &[Polygon],
    rule: &str,
    min: i64,
    out: &mut Vec<Violation>,
) {
    let m = min as Coord;
    // Combined rect array: inners (inflated) first, then outers.
    let mut rects: Vec<Rect> = inners.iter().map(|p| p.mbr().inflate(m)).collect();
    rects.extend(outers.iter().map(|p| p.mbr()));
    let n_inner = inners.len();
    let mut candidates: Vec<Vec<usize>> = vec![Vec::new(); n_inner];
    sweep_overlaps(&rects, |a, b| {
        // Keep only inner-outer pairs.
        let (lo, hi) = (a.min(b), a.max(b));
        if lo < n_inner && hi >= n_inner {
            candidates[lo].push(hi - n_inner);
        }
    });
    for (i, cands) in candidates.iter().enumerate() {
        let refs: Vec<&Polygon> = cands.iter().map(|&j| &outers[j]).collect();
        let margin = enclosure_margin(inners[i].mbr(), &refs, min);
        if margin < min {
            out.push(Violation {
                rule: rule.to_owned(),
                kind: ViolationKind::Enclosure,
                location: inners[i].mbr(),
                measured: margin,
            });
        }
    }
}

/// Flat minimum-overlap-area check: bipartite candidate discovery, then
/// boolean AND areas per inner shape.
pub(crate) fn flat_overlap(
    inners: &[Polygon],
    outers: &[Polygon],
    rule: &str,
    min_area: i64,
    out: &mut Vec<Violation>,
) {
    let mut rects: Vec<Rect> = inners.iter().map(|p| p.mbr()).collect();
    rects.extend(outers.iter().map(|p| p.mbr()));
    let n_inner = inners.len();
    let mut candidates: Vec<Vec<usize>> = vec![Vec::new(); n_inner];
    sweep_overlaps(&rects, |a, b| {
        let (lo, hi) = (a.min(b), a.max(b));
        if lo < n_inner && hi >= n_inner {
            candidates[lo].push(hi - n_inner);
        }
    });
    for (i, cands) in candidates.iter().enumerate() {
        let inner_region = Region::from_polygons([&inners[i]]);
        let outer_region = Region::from_polygons(cands.iter().map(|&j| &outers[j]));
        let shared = inner_region.intersection(&outer_region).area();
        if shared < min_area {
            out.push(Violation {
                rule: rule.to_owned(),
                kind: ViolationKind::OverlapArea,
                location: inners[i].mbr(),
                measured: shared,
            });
        }
    }
}
