//! A reimplementation of X-Check's vertical sweep (§4.1 of the X-Check
//! paper, reimplemented here as the OpenDRC authors did for §VI).
//!
//! X-Check is a *flat* GPU checker: it packs every edge of the layer
//! into device arrays (no hierarchy reuse, no layout partition), sorts
//! them, determines each edge's check range with a parallel scan, and
//! launches per-edge check kernels. It supports width, spacing, and
//! enclosure rules but **not area rules** — the paper notes "X-Check is
//! unable to perform area checks, so the column is empty" — which this
//! reimplementation preserves by reporting such rules as skipped.

use odrc::checks::edge::{space_pair_spec, width_pair, SpaceSpec};
use odrc::checks::enclosure_margin;
use odrc::rules::RuleKind;
use odrc::{canonicalize, RuleDeck, Violation, ViolationKind};
use odrc_db::Layout;
use odrc_geometry::{Edge, Point, Polygon, Rect};
use odrc_infra::sweep::sweep_overlaps;
use odrc_infra::Profiler;
use odrc_xpu::{scan::exclusive_scan, Device, LaunchConfig, Stream};

use crate::{BaselineReport, Checker};

/// A packed edge: coordinates plus the owning polygon id. Width pairs
/// must stay within one polygon (the interior between edges of two
/// disjoint polygons is not a width), so the id rides along to the
/// device.
type PackedEdge = ([i32; 4], u32);

fn pack(e: Edge, poly: u32) -> PackedEdge {
    ([e.from.x, e.from.y, e.to.x, e.to.y], poly)
}

fn unpack(e: PackedEdge) -> Edge {
    Edge::new(Point::new(e.0[0], e.0[1]), Point::new(e.0[2], e.0[3]))
}

/// For each sorted edge, the index of the first edge on a different
/// track: collinear edges never pair, so scans start past their run.
fn track_run_ends(edges: &[PackedEdge]) -> Vec<u32> {
    let n = edges.len();
    let mut run_end = vec![n as u32; n];
    let mut cur_end = n as u32;
    let mut cur_track = None;
    for i in (0..n).rev() {
        let t = unpack(edges[i]).track();
        if cur_track != Some(t) {
            cur_end = (i + 1) as u32;
            cur_track = Some(t);
        }
        run_end[i] = cur_end;
    }
    run_end
}

/// The X-Check baseline.
#[derive(Debug)]
pub struct XCheck {
    device: Device,
}

impl Default for XCheck {
    fn default() -> Self {
        XCheck::new(Device::default())
    }
}

impl XCheck {
    /// Creates the checker on a device.
    pub fn new(device: Device) -> Self {
        XCheck { device }
    }

    /// Flat two-phase edge sweep: count kernel, device scan, emit
    /// kernel.
    #[allow(clippy::too_many_arguments)]
    fn edge_sweep(
        &self,
        stream: &Stream,
        profile: &mut Profiler,
        rule: &str,
        kind: ViolationKind,
        edges: Vec<PackedEdge>,
        min: i64,
        spec: SpaceSpec,
    ) -> Vec<Violation> {
        if edges.is_empty() {
            return Vec::new();
        }
        let n = edges.len();
        let is_width = kind == ViolationKind::Width;
        let dev_edges = profile.time("transfer", || stream.upload(edges.clone()));
        let run_ends = track_run_ends(&edges);
        let dev_runs = profile.time("transfer", || stream.upload(run_ends));

        // Kernel 1: per-edge check range (sorted tracks) and count.
        let counts_buf = stream.alloc::<usize>(n);
        let k1_edges = dev_edges.clone();
        let k1_runs = dev_runs.clone();
        stream.launch_map(
            LaunchConfig::for_threads(n),
            &counts_buf,
            move |ctx, slot| {
                let edges = k1_edges.read();
                let runs = k1_runs.read();
                let i = ctx.global_id();
                let ei = unpack(edges[i]);
                let mut count = 0;
                let mut j = runs[i] as usize;
                while j < edges.len() {
                    let ej = unpack(edges[j]);
                    if i64::from(ej.track()) - i64::from(ei.track()) > min {
                        break;
                    }
                    let hit = if is_width {
                        if edges[i].1 == edges[j].1 {
                            width_pair(ei, ej, min)
                        } else {
                            None
                        }
                    } else {
                        space_pair_spec(ei, ej, spec)
                    };
                    if hit.is_some() {
                        count += 1;
                    }
                    j += 1;
                }
                *slot = count;
            },
        );
        let counts = profile.time("kernel", || stream.download(&counts_buf).wait());
        let offsets = profile.time("scan", || exclusive_scan(&self.device, &counts));
        let total = *offsets.last().expect("scan output");

        // Kernel 2: emit.
        let out_buf = stream.alloc::<(u32, u32, i64)>(total);
        let k2_edges = dev_edges.clone();
        let k2_runs = dev_runs.clone();
        stream.launch_scatter(
            LaunchConfig::for_threads(n),
            &out_buf,
            offsets,
            move |ctx, slice| {
                let edges = k2_edges.read();
                let runs = k2_runs.read();
                let i = ctx.global_id();
                let ei = unpack(edges[i]);
                let mut k = 0;
                let mut j = runs[i] as usize;
                while j < edges.len() {
                    let ej = unpack(edges[j]);
                    if i64::from(ej.track()) - i64::from(ei.track()) > min {
                        break;
                    }
                    let hit = if is_width {
                        if edges[i].1 == edges[j].1 {
                            width_pair(ei, ej, min)
                        } else {
                            None
                        }
                    } else {
                        space_pair_spec(ei, ej, spec)
                    };
                    if let Some(d2) = hit {
                        slice[k] = (i as u32, j as u32, d2);
                        k += 1;
                    }
                    j += 1;
                }
            },
        );
        let records = profile.time("kernel", || stream.download(&out_buf).wait());
        records
            .into_iter()
            .map(|(a, b, d2)| {
                let ea = unpack(edges[a as usize]);
                let eb = unpack(edges[b as usize]);
                Violation {
                    rule: rule.to_owned(),
                    kind,
                    location: ea.mbr().hull(eb.mbr()),
                    measured: d2,
                }
            })
            .collect()
    }
}

/// Packs and track-sorts every edge of a flat polygon list. The sort
/// runs on the device, as X-Check's GPU sort does.
fn pack_edges(device: &Device, polys: &[Polygon]) -> Vec<PackedEdge> {
    let mut edges: Vec<PackedEdge> = polys
        .iter()
        .enumerate()
        .flat_map(|(pi, p)| p.edges().map(move |e| pack(e, pi as u32)))
        .collect();
    odrc_xpu::sort::parallel_sort_by_key(device, &mut edges, |&e| (unpack(e).track(), e));
    edges
}

impl Checker for XCheck {
    fn name(&self) -> &str {
        "x-check"
    }

    fn check(&self, layout: &Layout, deck: &RuleDeck) -> BaselineReport {
        let mut profile = Profiler::new();
        let mut violations: Vec<Violation> = Vec::new();
        let mut skipped = Vec::new();
        let stream = self.device.stream();

        for rule in deck.rules() {
            match &rule.kind {
                RuleKind::Width { layer, min } => {
                    let polys = profile.time("flatten", || layout.flatten_layer_polygons(*layer));
                    let edges = profile.time("pack", || pack_edges(&self.device, &polys));
                    violations.extend(self.edge_sweep(
                        &stream,
                        &mut profile,
                        &rule.name,
                        ViolationKind::Width,
                        edges,
                        *min,
                        SpaceSpec::simple(*min),
                    ));
                }
                RuleKind::Space {
                    layer,
                    min,
                    min_projection,
                } => {
                    let polys = profile.time("flatten", || layout.flatten_layer_polygons(*layer));
                    let edges = profile.time("pack", || pack_edges(&self.device, &polys));
                    violations.extend(self.edge_sweep(
                        &stream,
                        &mut profile,
                        &rule.name,
                        ViolationKind::Space,
                        edges,
                        *min,
                        SpaceSpec {
                            min: *min,
                            min_projection: *min_projection,
                        },
                    ));
                }
                RuleKind::Enclosure { inner, outer, min } => {
                    let pi = profile.time("flatten", || layout.flatten_layer_polygons(*inner));
                    let po = profile.time("flatten", || layout.flatten_layer_polygons(*outer));
                    // Flat candidate discovery on the host, margin
                    // kernels on the device.
                    let m = *min as i32;
                    let work: Vec<(Rect, Vec<Polygon>)> = profile.time("pack", || {
                        let mut rects: Vec<Rect> = pi.iter().map(|p| p.mbr().inflate(m)).collect();
                        rects.extend(po.iter().map(|p| p.mbr()));
                        let mut cands: Vec<Vec<usize>> = vec![Vec::new(); pi.len()];
                        sweep_overlaps(&rects, |a, b| {
                            let (lo, hi) = (a.min(b), a.max(b));
                            if lo < pi.len() && hi >= pi.len() {
                                cands[lo].push(hi - pi.len());
                            }
                        });
                        pi.iter()
                            .zip(cands)
                            .map(|(p, cs)| {
                                (p.mbr(), cs.into_iter().map(|j| po[j].clone()).collect())
                            })
                            .collect()
                    });
                    if work.is_empty() {
                        continue;
                    }
                    let n = work.len();
                    let rects: Vec<Rect> = work.iter().map(|(r, _)| *r).collect();
                    let dev_work = profile.time("transfer", || stream.upload(work));
                    let margins = stream.alloc::<i64>(n);
                    let min_v = *min;
                    let kernel_work = dev_work.clone();
                    stream.launch_map(LaunchConfig::for_threads(n), &margins, move |ctx, slot| {
                        let work = kernel_work.read();
                        let (rect, cands) = &work[ctx.global_id()];
                        let refs: Vec<&Polygon> = cands.iter().collect();
                        *slot = enclosure_margin(*rect, &refs, min_v);
                    });
                    let margins = profile.time("kernel", || stream.download(&margins).wait());
                    for (rect, margin) in rects.into_iter().zip(margins) {
                        if margin < *min {
                            violations.push(Violation {
                                rule: rule.name.clone(),
                                kind: ViolationKind::Enclosure,
                                location: rect,
                                measured: margin,
                            });
                        }
                    }
                }
                RuleKind::Area { .. } | RuleKind::OverlapArea { .. } => {
                    // X-Check cannot run area-based checks (§VI).
                    skipped.push(rule.name.clone());
                }
                RuleKind::Rectilinear { .. } | RuleKind::Ensures { .. } => {
                    // Shape predicates run on the host, flat.
                    profile.time("check", || {
                        crate::common::flat_intra(layout, rule, &mut violations)
                    });
                }
            }
        }
        BaselineReport {
            violations: canonicalize(violations),
            profile,
            skipped,
        }
    }
}
