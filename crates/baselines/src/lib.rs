//! Baseline design rule checkers for the OpenDRC evaluation.
//!
//! The paper compares OpenDRC against KLayout (flat, deep, and tiling
//! modes) and against X-Check, a GPU sweepline checker whose vertical
//! sweep the authors reimplemented themselves (§VI). This crate does
//! the same, on the same substrates as the engine:
//!
//! * [`FlatChecker`] — flattens the hierarchy and checks every object
//!   instance independently (KLayout flat mode's strategy),
//! * [`DeepChecker`] — keeps per-cell reuse for intra-polygon rules but
//!   runs inter-polygon checks flat, without OpenDRC's row partition
//!   (KLayout deep/hierarchical mode's strategy),
//! * [`TilingChecker`] — flattens, cuts the layout into a grid of tiles
//!   with rule-distance halos, and checks tiles on a thread pool
//!   (KLayout tiling mode's strategy),
//! * [`XCheck`] — a flat, device-accelerated edge sweep without
//!   hierarchy or partitioning, unable to run area rules (X-Check's
//!   documented limitation).
//!
//! Every baseline reduces to the *same* edge predicates as the engine
//! (`odrc::checks`), so all checkers report identical canonical
//! violation sets on non-overlapping layouts — asserted by the
//! integration tests. Runtime differences therefore measure *strategy*
//! (hierarchy reuse, partitioning, parallelism), not differing rule
//! semantics. Note this makes our "KLayout" baselines strictly
//! *stronger* than the real tool, which pays for region boolean
//! operations on top; measured speedups are a lower bound on the
//! paper's.
//!
//! # Examples
//!
//! ```
//! use odrc::{rule, RuleDeck};
//! use odrc_baselines::{Checker, FlatChecker};
//! use odrc_layoutgen::{generate_layout, tech, DesignSpec};
//!
//! let layout = generate_layout(&DesignSpec::tiny(1));
//! let deck = RuleDeck::new(vec![
//!     rule().layer(tech::M2).space().greater_than(tech::M2_SPACE).named("M2.S.1"),
//! ]);
//! let report = FlatChecker::new().check(&layout, &deck);
//! assert!(report.skipped.is_empty());
//! ```

mod common;
mod flat;
mod tile;
mod xcheck;

pub use flat::{DeepChecker, FlatChecker};
pub use tile::TilingChecker;
pub use xcheck::XCheck;

use odrc::{RuleDeck, Violation};
use odrc_db::Layout;
use odrc_infra::Profiler;

/// The result of a baseline run.
#[derive(Debug)]
pub struct BaselineReport {
    /// Canonical violations.
    pub violations: Vec<Violation>,
    /// Wall-clock per phase.
    pub profile: Profiler,
    /// Rules the checker cannot run (e.g. area rules under X-Check).
    pub skipped: Vec<String>,
}

/// A design rule checker under comparison.
pub trait Checker {
    /// Short display name for tables (e.g. `"klayout-flat"`).
    fn name(&self) -> &str;

    /// Checks the layout against the deck.
    fn check(&self, layout: &Layout, deck: &RuleDeck) -> BaselineReport;
}
