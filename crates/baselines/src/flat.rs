//! KLayout-style flat and deep (hierarchical) checkers.

use odrc::rules::RuleKind;
use odrc::{canonicalize, RuleDeck, Violation};
use odrc_db::Layout;
use odrc_infra::Profiler;

use crate::common::{flat_enclosure, flat_intra, flat_space};
use crate::{BaselineReport, Checker};

/// The flat-mode strategy: expand the hierarchy completely and check
/// every object instance independently — no reuse, no partition, no
/// layer-wise MBR pruning.
#[derive(Debug, Clone, Copy, Default)]
pub struct FlatChecker {
    merge: bool,
}

impl FlatChecker {
    /// Creates a flat checker operating on polygons as drawn.
    pub fn new() -> Self {
        FlatChecker { merge: false }
    }

    /// Creates a flat checker that first merges each layer's geometry
    /// into regions, as KLayout's region operations do. Merging changes
    /// semantics where drawn polygons overlap or abut: split wires pass
    /// area rules as one component, and spacing is measured between
    /// merged components rather than drawn fragments. Shape predicates
    /// (`rectilinear`, `ensures`) and width still run on drawn
    /// polygons — merging destroys names and per-shape identity.
    pub fn with_merge() -> Self {
        FlatChecker { merge: true }
    }

    fn merged_layer(layout: &Layout, layer: odrc_db::Layer) -> odrc_infra::Region {
        odrc_infra::Region::from_polygons(layout.flatten_layer_polygons(layer).iter())
    }

    fn region_polygons(region: &odrc_infra::Region) -> Vec<odrc_geometry::Polygon> {
        region
            .rects()
            .iter()
            .map(|&r| odrc_geometry::Polygon::rect(r))
            .collect()
    }
}

impl Checker for FlatChecker {
    fn name(&self) -> &str {
        if self.merge {
            "klayout-flat-merged"
        } else {
            "klayout-flat"
        }
    }

    fn check(&self, layout: &Layout, deck: &RuleDeck) -> BaselineReport {
        let mut profile = Profiler::new();
        let mut violations = Vec::new();
        for rule in deck.rules() {
            match &rule.kind {
                RuleKind::Space {
                    layer,
                    min,
                    min_projection,
                } => {
                    let spec = odrc::checks::SpaceSpec {
                        min: *min,
                        min_projection: *min_projection,
                    };
                    let polys = if self.merge {
                        let region = profile.time("merge", || Self::merged_layer(layout, *layer));
                        Self::region_polygons(&region)
                    } else {
                        profile.time("flatten", || layout.flatten_layer_polygons(*layer))
                    };
                    profile.time("check", || {
                        flat_space(&polys, &rule.name, spec, &mut violations)
                    });
                }
                RuleKind::Area { layer, min } if self.merge => {
                    // Merged semantics: area per connected component.
                    let region = profile.time("merge", || Self::merged_layer(layout, *layer));
                    profile.time("check", || {
                        for comp in region.components() {
                            let area = comp.area();
                            if area < *min {
                                violations.push(Violation {
                                    rule: rule.name.clone(),
                                    kind: odrc::ViolationKind::Area,
                                    location: comp.mbr().expect("non-empty component"),
                                    measured: area,
                                });
                            }
                        }
                    });
                }
                RuleKind::OverlapArea {
                    inner,
                    outer,
                    min_area,
                } => {
                    let (pi, po) = profile.time("flatten", || {
                        (
                            layout.flatten_layer_polygons(*inner),
                            layout.flatten_layer_polygons(*outer),
                        )
                    });
                    profile.time("check", || {
                        crate::common::flat_overlap(
                            &pi,
                            &po,
                            &rule.name,
                            *min_area,
                            &mut violations,
                        )
                    });
                }
                RuleKind::Enclosure { inner, outer, min } => {
                    let pi = profile.time("flatten", || layout.flatten_layer_polygons(*inner));
                    let po = if self.merge {
                        let region = profile.time("merge", || Self::merged_layer(layout, *outer));
                        Self::region_polygons(&region)
                    } else {
                        profile.time("flatten", || layout.flatten_layer_polygons(*outer))
                    };
                    profile.time("check", || {
                        flat_enclosure(&pi, &po, &rule.name, *min, &mut violations)
                    });
                }
                _ => profile.time("check", || flat_intra(layout, rule, &mut violations)),
            }
        }
        BaselineReport {
            violations: canonicalize(violations),
            profile,
            skipped: Vec::new(),
        }
    }
}

/// The deep-mode strategy: hierarchical evaluation of intra-polygon
/// rules (per-cell results reused across instances), but inter-polygon
/// rules still run over the flattened layout without OpenDRC's adaptive
/// partition.
#[derive(Debug, Clone, Copy, Default)]
pub struct DeepChecker;

impl DeepChecker {
    /// Creates a deep checker.
    pub fn new() -> Self {
        DeepChecker
    }
}

impl Checker for DeepChecker {
    fn name(&self) -> &str {
        "klayout-deep"
    }

    fn check(&self, layout: &Layout, deck: &RuleDeck) -> BaselineReport {
        use odrc::checks::poly::polygon_violations;
        use odrc::scene::instance_transforms;

        let mut profile = Profiler::new();
        let mut violations: Vec<Violation> = Vec::new();
        let instances = profile.time("hierarchy", || instance_transforms(layout));
        for rule in deck.rules() {
            match &rule.kind {
                RuleKind::Space {
                    layer,
                    min,
                    min_projection,
                } => {
                    let spec = odrc::checks::SpaceSpec {
                        min: *min,
                        min_projection: *min_projection,
                    };
                    let polys = profile.time("flatten", || layout.flatten_layer_polygons(*layer));
                    profile.time("check", || {
                        flat_space(&polys, &rule.name, spec, &mut violations)
                    });
                }
                RuleKind::OverlapArea {
                    inner,
                    outer,
                    min_area,
                } => {
                    let (pi, po) = profile.time("flatten", || {
                        (
                            layout.flatten_layer_polygons(*inner),
                            layout.flatten_layer_polygons(*outer),
                        )
                    });
                    profile.time("check", || {
                        crate::common::flat_overlap(
                            &pi,
                            &po,
                            &rule.name,
                            *min_area,
                            &mut violations,
                        )
                    });
                }
                RuleKind::Enclosure { inner, outer, min } => {
                    let (pi, po) = profile.time("flatten", || {
                        (
                            layout.flatten_layer_polygons(*inner),
                            layout.flatten_layer_polygons(*outer),
                        )
                    });
                    profile.time("check", || {
                        flat_enclosure(&pi, &po, &rule.name, *min, &mut violations)
                    });
                }
                _ => {
                    // Hierarchical intra rule: once per definition,
                    // replayed per instance.
                    let (layer, spec) = crate::common::intra_spec(rule);
                    profile.time("check", || {
                        for cell_id in layout.cell_ids() {
                            let Some(transforms) = instances.get(&cell_id) else {
                                continue;
                            };
                            let cell = layout.cell(cell_id);
                            let mut locals = Vec::new();
                            for p in cell.polygons() {
                                if layer.map(|l| p.layer == l).unwrap_or(true) {
                                    polygon_violations(p, &spec, &mut locals);
                                }
                            }
                            for t in transforms {
                                for v in &locals {
                                    let vi = v.instantiate(t);
                                    violations.push(Violation {
                                        rule: rule.name.clone(),
                                        kind: vi.kind,
                                        location: vi.location,
                                        measured: vi.measured,
                                    });
                                }
                            }
                        }
                    });
                }
            }
        }
        BaselineReport {
            violations: canonicalize(violations),
            profile,
            skipped: Vec::new(),
        }
    }
}
