//! The tiling-mode checker: "in the tiling mode, operations are
//! evaluated in tiles, and multi-CPU support is enabled" (§VI).
//!
//! The flattened layout is cut into a `grid × grid` array of tiles.
//! Each tile checks the geometry intersecting the tile inflated by the
//! rule's interaction distance (the halo). Every violation is found by
//! at least one tile (the tile around the closest-approach point sees
//! both partners), and violations are value objects, so exact
//! canonicalization removes cross-tile duplicates — the combined result
//! equals the flat checker's.

use odrc::rules::RuleKind;
use odrc::{canonicalize, RuleDeck, Violation};
use odrc_db::Layout;
use odrc_geometry::{Coord, Polygon, Rect};
use odrc_infra::Profiler;

use crate::common::{flat_enclosure, flat_intra, flat_space};
use crate::{BaselineReport, Checker};

/// The tiling checker.
#[derive(Debug, Clone, Copy)]
pub struct TilingChecker {
    grid: usize,
    threads: usize,
}

impl Default for TilingChecker {
    fn default() -> Self {
        TilingChecker::new(4, 4)
    }
}

impl TilingChecker {
    /// Creates a checker with a `grid × grid` tile array processed by
    /// `threads` worker threads.
    ///
    /// # Panics
    ///
    /// Panics if `grid` or `threads` is zero.
    pub fn new(grid: usize, threads: usize) -> Self {
        assert!(grid > 0, "tile grid must be positive");
        assert!(threads > 0, "thread count must be positive");
        TilingChecker { grid, threads }
    }

    /// Tile rectangles covering `bounds`.
    fn tiles(&self, bounds: Rect) -> Vec<Rect> {
        let g = self.grid as i64;
        let w = bounds.width().max(1);
        let h = bounds.height().max(1);
        let mut tiles = Vec::with_capacity(self.grid * self.grid);
        for ty in 0..g {
            for tx in 0..g {
                let x0 = bounds.lo().x as i64 + w * tx / g;
                let x1 = bounds.lo().x as i64 + w * (tx + 1) / g;
                let y0 = bounds.lo().y as i64 + h * ty / g;
                let y1 = bounds.lo().y as i64 + h * (ty + 1) / g;
                tiles.push(Rect::from_coords(
                    x0 as Coord,
                    y0 as Coord,
                    x1 as Coord,
                    y1 as Coord,
                ));
            }
        }
        tiles
    }
}

impl Checker for TilingChecker {
    fn name(&self) -> &str {
        "klayout-tile"
    }

    fn check(&self, layout: &Layout, deck: &RuleDeck) -> BaselineReport {
        let mut profile = Profiler::new();
        let mut violations: Vec<Violation> = Vec::new();

        for rule in deck.rules() {
            match &rule.kind {
                RuleKind::Space {
                    layer,
                    min,
                    min_projection,
                } => {
                    let spec = odrc::checks::SpaceSpec {
                        min: *min,
                        min_projection: *min_projection,
                    };
                    let polys = profile.time("flatten", || layout.flatten_layer_polygons(*layer));
                    let found = profile.time("check", || {
                        let Some(bounds) = bounds_of(polys.iter()) else {
                            return Vec::new();
                        };
                        let halo = *min as Coord;
                        let tiles = self.tiles(bounds);
                        run_tiles(self.threads, &tiles, |tile| {
                            let window = tile.inflate(halo);
                            let tile_polys: Vec<Polygon> = polys
                                .iter()
                                .filter(|p| p.mbr().overlaps(window))
                                .cloned()
                                .collect();
                            let mut out = Vec::new();
                            flat_space(&tile_polys, &rule.name, spec, &mut out);
                            out
                        })
                    });
                    violations.extend(found);
                }
                RuleKind::OverlapArea {
                    inner,
                    outer,
                    min_area,
                } => {
                    let (pi, po) = profile.time("flatten", || {
                        (
                            layout.flatten_layer_polygons(*inner),
                            layout.flatten_layer_polygons(*outer),
                        )
                    });
                    profile.time("check", || {
                        crate::common::flat_overlap(
                            &pi,
                            &po,
                            &rule.name,
                            *min_area,
                            &mut violations,
                        )
                    });
                }
                RuleKind::Enclosure { inner, outer, min } => {
                    let pi = profile.time("flatten", || layout.flatten_layer_polygons(*inner));
                    let po = profile.time("flatten", || layout.flatten_layer_polygons(*outer));
                    let found = profile.time("check", || {
                        let Some(bounds) = bounds_of(pi.iter().chain(po.iter())) else {
                            return Vec::new();
                        };
                        // An inner shape must be evaluated by a tile
                        // whose window fully contains it (otherwise its
                        // candidate set would be incomplete and the
                        // margin underestimated), so the inner-inclusion
                        // halo grows by the largest inner dimension.
                        let max_dim: Coord = pi
                            .iter()
                            .map(|p| p.mbr().width().max(p.mbr().height()) as Coord)
                            .max()
                            .unwrap_or(0);
                        let m = *min as Coord;
                        let tiles = self.tiles(bounds);
                        run_tiles(self.threads, &tiles, |tile| {
                            let win_in = tile.inflate(max_dim.max(1));
                            let ti: Vec<Polygon> = pi
                                .iter()
                                .filter(|p| win_in.contains_rect(p.mbr()))
                                .cloned()
                                .collect();
                            if ti.is_empty() {
                                return Vec::new();
                            }
                            let win_out = win_in.inflate(m);
                            let to: Vec<Polygon> = po
                                .iter()
                                .filter(|p| p.mbr().overlaps(win_out))
                                .cloned()
                                .collect();
                            let mut out = Vec::new();
                            flat_enclosure(&ti, &to, &rule.name, *min, &mut out);
                            out
                        })
                    });
                    violations.extend(found);
                }
                _ => {
                    // Intra rules: tiling buys nothing semantically
                    // (KLayout applies tiling to region operations);
                    // run them flat.
                    profile.time("check", || flat_intra(layout, rule, &mut violations));
                }
            }
        }
        BaselineReport {
            violations: canonicalize(violations),
            profile,
            skipped: Vec::new(),
        }
    }
}

fn bounds_of<'a>(polys: impl Iterator<Item = &'a Polygon>) -> Option<Rect> {
    polys.map(|p| p.mbr()).reduce(|a, b| a.hull(b))
}

/// Processes tiles on `threads` scoped workers and concatenates the
/// per-tile results.
fn run_tiles(
    threads: usize,
    tiles: &[Rect],
    work: impl Fn(&Rect) -> Vec<Violation> + Sync,
) -> Vec<Violation> {
    let chunk = tiles.len().div_ceil(threads.max(1)).max(1);
    let mut all: Vec<Violation> = Vec::new();
    std::thread::scope(|scope| {
        let work = &work;
        let handles: Vec<_> = tiles
            .chunks(chunk)
            .map(|ts| scope.spawn(move || ts.iter().flat_map(work).collect::<Vec<_>>()))
            .collect();
        for h in handles {
            all.extend(h.join().expect("tile worker panicked"));
        }
    });
    all
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiles_cover_bounds() {
        let c = TilingChecker::new(3, 2);
        let bounds = Rect::from_coords(0, 0, 100, 90);
        let tiles = c.tiles(bounds);
        assert_eq!(tiles.len(), 9);
        let area: i64 = tiles.iter().map(|t| t.area()).sum();
        assert_eq!(area, bounds.area());
        // Tiles are pairwise interior-disjoint.
        for i in 0..tiles.len() {
            for j in i + 1..tiles.len() {
                assert!(!tiles[i].overlaps_open(tiles[j]));
            }
        }
    }

    #[test]
    #[should_panic(expected = "tile grid")]
    fn zero_grid_panics() {
        let _ = TilingChecker::new(0, 1);
    }

    #[test]
    #[should_panic(expected = "thread count")]
    fn zero_threads_panics() {
        let _ = TilingChecker::new(2, 0);
    }
}
