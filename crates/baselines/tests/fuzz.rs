//! Property-based cross-engine fuzzing: random hierarchical layouts
//! must produce identical violation sets in every checker.
//!
//! This is the strongest correctness lever in the workspace: the
//! engines traverse the layout in completely different orders
//! (hierarchical + memoized vs flat vs tiled vs device kernels), so any
//! disagreement exposes a real semantic bug.

use odrc::{rule, Engine, RuleDeck};
use odrc_baselines::{Checker, DeepChecker, FlatChecker, TilingChecker, XCheck};
use odrc_db::Layout;
use odrc_gdsii::{Element, Library, RefElement, Structure};
use odrc_geometry::Point;
use odrc_xpu::Device;
use proptest::prelude::*;

/// A random rectangle element on the given layer.
fn rect_el(layer: i16, x: i32, y: i32, w: i32, h: i32) -> Element {
    Element::boundary(
        layer,
        vec![
            Point::new(x, y),
            Point::new(x, y + h),
            Point::new(x + w, y + h),
            Point::new(x + w, y),
        ],
    )
}

#[derive(Debug, Clone)]
struct FuzzSpec {
    /// Rects in each of two leaf cells: (layer 1|2, x, y, w, h).
    cell_a: Vec<(i16, i32, i32, i32, i32)>,
    cell_b: Vec<(i16, i32, i32, i32, i32)>,
    /// Placements in TOP: (which cell, x, y, rotation quarter-turns,
    /// mirror).
    placements: Vec<(bool, i32, i32, i32, bool)>,
    /// Loose rects in TOP.
    top_rects: Vec<(i16, i32, i32, i32, i32)>,
}

fn arb_rects(n: usize) -> impl Strategy<Value = Vec<(i16, i32, i32, i32, i32)>> {
    proptest::collection::vec(
        (
            prop_oneof![Just(1i16), Just(2i16)],
            -80i32..80,
            -80i32..80,
            4i32..60,
            4i32..60,
        ),
        0..n,
    )
}

fn arb_spec() -> impl Strategy<Value = FuzzSpec> {
    (
        arb_rects(5),
        arb_rects(5),
        proptest::collection::vec(
            (
                proptest::bool::ANY,
                -300i32..300,
                -300i32..300,
                0i32..4,
                proptest::bool::ANY,
            ),
            0..6,
        ),
        arb_rects(6),
    )
        .prop_map(|(cell_a, cell_b, placements, top_rects)| FuzzSpec {
            cell_a,
            cell_b,
            placements,
            top_rects,
        })
}

fn build_layout(spec: &FuzzSpec) -> Layout {
    let mut lib = Library::new("fuzz");
    let mut a = Structure::new("A");
    for &(l, x, y, w, h) in &spec.cell_a {
        a.elements.push(rect_el(l, x, y, w, h));
    }
    let mut b = Structure::new("B");
    for &(l, x, y, w, h) in &spec.cell_b {
        b.elements.push(rect_el(l, x, y, w, h));
    }
    // B also nests A, making the hierarchy two levels deep.
    b.elements.push(Element::sref("A", Point::new(200, 200)));
    lib.structures.push(a);
    lib.structures.push(b);

    let mut top = Structure::new("TOP");
    for &(which_b, x, y, rot, mirror) in &spec.placements {
        let mut r = RefElement::sref(if which_b { "B" } else { "A" }, Point::new(x, y));
        r.angle_deg = f64::from(rot) * 90.0;
        r.mirror_x = mirror;
        top.elements.push(Element::Ref(r));
    }
    for &(l, x, y, w, h) in &spec.top_rects {
        top.elements.push(rect_el(l, x, y, w, h));
    }
    lib.structures.push(top);
    Layout::from_library(&lib).expect("fuzz layouts are structurally valid")
}

fn deck() -> RuleDeck {
    RuleDeck::new(vec![
        rule().layer(1).width().greater_than(10).named("F1.W"),
        rule().layer(1).space().greater_than(12).named("F1.S"),
        rule().layer(2).space().greater_than(9).named("F2.S"),
        rule()
            .layer(1)
            .space()
            .when_projection_at_least(20)
            .greater_than(25)
            .named("F1.SP"),
        rule().layer(1).area().greater_than(400).named("F1.A"),
        rule()
            .layer(2)
            .enclosed_by(1)
            .greater_than(3)
            .named("F2.EN"),
        rule()
            .layer(2)
            .overlapping(1)
            .area_at_least(50)
            .named("F2.OVL"),
    ])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]
    #[test]
    fn all_engines_agree_on_random_layouts(spec in arb_spec()) {
        let layout = build_layout(&spec);
        let d = deck();
        let reference = Engine::sequential().check(&layout, &d);
        let par = Engine::parallel_on(Device::new(2)).check(&layout, &d);
        prop_assert_eq!(&reference.violations, &par.violations, "parallel");
        let flat = FlatChecker::new().check(&layout, &d);
        prop_assert_eq!(&reference.violations, &flat.violations, "flat");
        let deep = DeepChecker::new().check(&layout, &d);
        prop_assert_eq!(&reference.violations, &deep.violations, "deep");
        let tile = TilingChecker::new(3, 2).check(&layout, &d);
        prop_assert_eq!(&reference.violations, &tile.violations, "tile");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]
    #[test]
    fn xcheck_agrees_on_its_supported_rules(spec in arb_spec()) {
        let layout = build_layout(&spec);
        // Width/space/enclosure only (no area, no overlap).
        let d = RuleDeck::new(vec![
            rule().layer(1).width().greater_than(10).named("F1.W"),
            rule().layer(1).space().greater_than(12).named("F1.S"),
            rule().layer(2).enclosed_by(1).greater_than(3).named("F2.EN"),
        ]);
        let reference = Engine::sequential().check(&layout, &d);
        let x = XCheck::new(Device::new(2)).check(&layout, &d);
        prop_assert_eq!(&reference.violations, &x.violations);
    }
}

/// Overlapping same-layer polygons are legal input; engines must not
/// disagree or panic on them.
#[test]
fn overlapping_polygons_handled() {
    let spec = FuzzSpec {
        cell_a: vec![(1, 0, 0, 40, 40), (1, 20, 20, 40, 40)],
        cell_b: vec![(1, 0, 0, 30, 30), (1, 0, 0, 30, 30)], // exact duplicates
        placements: vec![(false, 0, 0, 0, false), (true, 100, 0, 1, true)],
        top_rects: vec![(1, 50, 50, 40, 40), (1, 55, 55, 10, 10)], // nested
    };
    let layout = build_layout(&spec);
    let d = deck();
    let reference = Engine::sequential().check(&layout, &d);
    let par = Engine::parallel_on(Device::new(2)).check(&layout, &d);
    assert_eq!(reference.violations, par.violations);
    let flat = FlatChecker::new().check(&layout, &d);
    assert_eq!(reference.violations, flat.violations);
}
