//! Semantics of the merged-region flat checker vs the as-drawn one.

use odrc::{rule, Engine, RuleDeck, ViolationKind};
use odrc_baselines::{Checker, FlatChecker};
use odrc_db::Layout;
use odrc_gdsii::{Element, Library, Structure};
use odrc_geometry::Point;
use odrc_layoutgen::{generate_layout, tech, DesignSpec};

fn rect_el(layer: i16, x0: i32, y0: i32, x1: i32, y1: i32) -> Element {
    Element::boundary(
        layer,
        vec![
            Point::new(x0, y0),
            Point::new(x0, y1),
            Point::new(x1, y1),
            Point::new(x1, y0),
        ],
    )
}

fn layout_of(elements: Vec<Element>) -> Layout {
    let mut lib = Library::new("m");
    let mut top = Structure::new("TOP");
    top.elements = elements;
    lib.structures.push(top);
    Layout::from_library(&lib).unwrap()
}

#[test]
fn split_wire_passes_area_only_when_merged() {
    // A wire drawn as two abutting halves, each below the area minimum,
    // together above it.
    let layout = layout_of(vec![
        rect_el(1, 0, 0, 30, 10),  // 300
        rect_el(1, 30, 0, 60, 10), // 300; merged: 600
    ]);
    let deck = RuleDeck::new(vec![rule().layer(1).area().greater_than(500).named("A")]);

    let drawn = FlatChecker::new().check(&layout, &deck);
    assert_eq!(drawn.violations.len(), 2, "each drawn half fails");

    let merged = FlatChecker::with_merge().check(&layout, &deck);
    assert_eq!(merged.violations.len(), 0, "the merged component passes");
}

#[test]
fn merged_component_below_minimum_still_fails() {
    let layout = layout_of(vec![
        rect_el(1, 0, 0, 10, 10),
        rect_el(1, 10, 0, 20, 10),   // merged: 200 < 500
        rect_el(1, 100, 0, 130, 30), // 900: passes either way
    ]);
    let deck = RuleDeck::new(vec![rule().layer(1).area().greater_than(500).named("A")]);
    let merged = FlatChecker::with_merge().check(&layout, &deck);
    assert_eq!(merged.violations.len(), 1);
    assert_eq!(merged.violations[0].measured, 200);
    assert_eq!(merged.violations[0].kind, ViolationKind::Area);
}

#[test]
fn merged_spacing_ignores_overlap_fragments() {
    // Two overlapping fragments plus a genuinely close neighbor.
    let layout = layout_of(vec![
        rect_el(1, 0, 0, 50, 20),
        rect_el(1, 40, 0, 100, 20),  // overlaps the first
        rect_el(1, 112, 0, 160, 20), // 12 from the merged blob
    ]);
    let deck = RuleDeck::new(vec![rule().layer(1).space().greater_than(18).named("S")]);
    let merged = FlatChecker::with_merge().check(&layout, &deck);
    assert_eq!(merged.violations.len(), 1);
    assert_eq!(merged.violations[0].measured, 144);
    // The as-drawn checker reports the same pair (overlapping fragments
    // create no facing pairs), so both agree here.
    let drawn = FlatChecker::new().check(&layout, &deck);
    assert_eq!(drawn.violations.len(), 1);
}

#[test]
fn merged_enclosure_accepts_jointly_covering_metal() {
    // A via covered only by the union of two abutting metal rects: the
    // as-drawn checker (single-candidate margins) rejects it, the
    // merged checker accepts it.
    let layout = layout_of(vec![
        rect_el(1, 45, 40, 55, 50),  // 10x10 via at the joint
        rect_el(2, 0, 30, 50, 60),   // left metal
        rect_el(2, 50, 30, 100, 60), // right metal, abutting at x=50
    ]);
    let deck = RuleDeck::new(vec![rule()
        .layer(1)
        .enclosed_by(2)
        .greater_than(4)
        .named("EN")]);
    let drawn = FlatChecker::new().check(&layout, &deck);
    assert_eq!(
        drawn.violations.len(),
        1,
        "no single drawn rect encloses the via"
    );
    let merged = FlatChecker::with_merge().check(&layout, &deck);
    assert_eq!(merged.violations.len(), 0, "the merged metal encloses it");
}

#[test]
fn merge_mode_matches_plain_on_disjoint_designs() {
    // Generated designs have disjoint same-layer geometry, so merged
    // spacing/area semantics coincide with as-drawn semantics.
    let mut spec = DesignSpec::tiny(61);
    spec.violation_rate = 0.15;
    let layout = generate_layout(&spec);
    let deck = RuleDeck::new(vec![
        rule()
            .layer(tech::M2)
            .space()
            .greater_than(tech::M2_SPACE)
            .named("M2.S.1"),
        rule()
            .layer(tech::M3)
            .space()
            .greater_than(tech::M3_SPACE)
            .named("M3.S.1"),
    ]);
    let plain = FlatChecker::new().check(&layout, &deck);
    let merged = FlatChecker::with_merge().check(&layout, &deck);
    let engine = Engine::sequential().check(&layout, &deck);
    assert_eq!(plain.violations, engine.violations);
    assert_eq!(merged.violations, plain.violations);
}

#[test]
fn names_differ() {
    assert_eq!(FlatChecker::new().name(), "klayout-flat");
    assert_eq!(FlatChecker::with_merge().name(), "klayout-flat-merged");
}
