//! All checkers must report the same canonical violation set as the
//! OpenDRC engine — runtime is the only thing the evaluation compares.

use odrc::{rule, Engine, RuleDeck};
use odrc_baselines::{Checker, DeepChecker, FlatChecker, TilingChecker, XCheck};
use odrc_layoutgen::{generate_layout, tech, DesignSpec};
use odrc_xpu::Device;

fn deck() -> RuleDeck {
    RuleDeck::new(vec![
        rule()
            .layer(tech::M1)
            .width()
            .greater_than(tech::M1_WIDTH)
            .named("M1.W.1"),
        rule()
            .layer(tech::M2)
            .width()
            .greater_than(tech::M2_WIDTH)
            .named("M2.W.1"),
        rule()
            .layer(tech::M1)
            .space()
            .greater_than(tech::M1_SPACE)
            .named("M1.S.1"),
        rule()
            .layer(tech::M2)
            .space()
            .greater_than(tech::M2_SPACE)
            .named("M2.S.1"),
        rule()
            .layer(tech::M3)
            .space()
            .greater_than(tech::M3_SPACE)
            .named("M3.S.1"),
        rule()
            .layer(tech::V1)
            .enclosed_by(tech::M2)
            .greater_than(tech::V1_M2_ENCLOSURE)
            .named("V1.M2.EN.1"),
        rule()
            .layer(tech::V2)
            .enclosed_by(tech::M3)
            .greater_than(tech::V2_M3_ENCLOSURE)
            .named("V2.M3.EN.1"),
    ])
}

fn area_deck() -> RuleDeck {
    RuleDeck::new(vec![rule()
        .layer(tech::M1)
        .area()
        .greater_than(tech::M1_AREA)
        .named("M1.A.1")])
}

#[test]
fn flat_agrees_with_engine() {
    for seed in [21u64, 22] {
        let layout = generate_layout(&DesignSpec::tiny(seed));
        let reference = Engine::sequential().check(&layout, &deck());
        let flat = FlatChecker::new().check(&layout, &deck());
        assert_eq!(reference.violations, flat.violations, "seed {seed}");
        assert!(!reference.violations.is_empty());
    }
}

#[test]
fn deep_agrees_with_engine() {
    let layout = generate_layout(&DesignSpec::tiny(23));
    let reference = Engine::sequential().check(&layout, &deck());
    let deep = DeepChecker::new().check(&layout, &deck());
    assert_eq!(reference.violations, deep.violations);
}

#[test]
fn tiling_agrees_with_engine() {
    let layout = generate_layout(&DesignSpec::tiny(24));
    let reference = Engine::sequential().check(&layout, &deck());
    for grid in [1usize, 3, 7] {
        let tile = TilingChecker::new(grid, 2).check(&layout, &deck());
        assert_eq!(reference.violations, tile.violations, "grid {grid}");
    }
}

#[test]
fn xcheck_agrees_with_engine() {
    let layout = generate_layout(&DesignSpec::tiny(25));
    let reference = Engine::sequential().check(&layout, &deck());
    let x = XCheck::new(Device::new(2)).check(&layout, &deck());
    assert_eq!(reference.violations, x.violations);
    assert!(x.skipped.is_empty());
}

#[test]
fn xcheck_skips_area_rules() {
    let layout = generate_layout(&DesignSpec::tiny(26));
    let reference = Engine::sequential().check(&layout, &area_deck());
    let x = XCheck::new(Device::new(2)).check(&layout, &area_deck());
    assert_eq!(x.skipped, vec!["M1.A.1".to_owned()]);
    assert!(x.violations.is_empty());
    // The engine itself does find area violations on this seed.
    assert!(
        reference.violations.iter().all(|v| v.rule == "M1.A.1"),
        "engine handles area rules"
    );
}

#[test]
fn overlap_area_baselines_agree() {
    let layout = generate_layout(&DesignSpec::tiny(28));
    let deck = RuleDeck::new(vec![
        rule()
            .layer(tech::V1)
            .overlapping(tech::M2)
            .area_at_least(100)
            .named("V1.M2.OVL.1"),
        rule()
            .layer(tech::V2)
            .overlapping(tech::M3)
            .area_at_least(100)
            .named("V2.M3.OVL.1"),
    ]);
    let reference = Engine::sequential().check(&layout, &deck);
    for checker in [
        Box::new(FlatChecker::new()) as Box<dyn Checker>,
        Box::new(DeepChecker::new()),
        Box::new(TilingChecker::new(3, 2)),
    ] {
        let r = checker.check(&layout, &deck);
        assert_eq!(reference.violations, r.violations, "{}", checker.name());
    }
    // X-Check skips overlap-area rules.
    let x = XCheck::new(Device::new(2)).check(&layout, &deck);
    assert_eq!(x.skipped.len(), 2);
}

#[test]
fn baselines_handle_empty_layers() {
    let layout = generate_layout(&DesignSpec::tiny(27));
    let ghost = RuleDeck::new(vec![
        rule().layer(99).space().greater_than(10).named("GHOST.S.1"),
        rule().layer(99).width().greater_than(10).named("GHOST.W.1"),
        rule()
            .layer(99)
            .enclosed_by(98)
            .greater_than(2)
            .named("GHOST.EN.1"),
    ]);
    let all = checkers();
    for checker in &all {
        let r = checker.check(&layout, &ghost);
        assert!(
            r.violations.is_empty(),
            "{} reported violations on an empty layer",
            checker.name()
        );
    }
    let engine = Engine::sequential().check(&layout, &ghost);
    assert!(engine.violations.is_empty());
}

#[test]
fn checker_names_are_stable() {
    let all = checkers();
    let names: Vec<&str> = all.iter().map(|c| c.name()).collect();
    // Bench tables key on these names.
    assert!(names.contains(&"klayout-flat"));
    assert!(names.contains(&"klayout-deep"));
    assert!(names.contains(&"klayout-tile"));
    assert!(names.contains(&"x-check"));
}

fn checkers() -> Vec<Box<dyn Checker>> {
    vec![
        Box::new(FlatChecker::new()),
        Box::new(DeepChecker::new()),
        Box::new(TilingChecker::new(4, 2)),
        Box::new(XCheck::new(Device::new(2))),
    ]
}
