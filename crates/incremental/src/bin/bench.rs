//! Warm-vs-cold incremental checking benchmark.
//!
//! Measures, on one generated design:
//!
//! * the cold full check (no cache),
//! * a warm *full* re-check through the persistent result cache after
//!   a single-polygon edit (what a fresh process with a sidecar cache
//!   pays),
//! * warm *delta* re-checks for growing edit sizes (what a live
//!   session pays).
//!
//! ```text
//! odrc-incr-bench [--design <tiny|aes|ethmac|ibex|jpeg|sha3|uart>]
//!                 [--seed <n>] [--parallel] [--edits <k,k,...>]
//! ```

use std::time::Instant;

use odrc::{rules::rule, Engine, ResultCache, RuleDeck};
use odrc_db::Layout;
use odrc_geometry::Point;
use odrc_incremental::{EditOp, Session};
use odrc_layoutgen::{generate_layout, tech, DesignSpec};

fn deck() -> RuleDeck {
    RuleDeck::new(vec![
        rule()
            .layer(tech::M1)
            .space()
            .greater_than(tech::M1_SPACE)
            .named("M1.S.1"),
        rule()
            .layer(tech::M2)
            .space()
            .greater_than(tech::M2_SPACE)
            .named("M2.S.1"),
        rule()
            .layer(tech::M3)
            .space()
            .greater_than(tech::M3_SPACE)
            .named("M3.S.1"),
        rule()
            .layer(tech::M2)
            .width()
            .greater_than(tech::M2_WIDTH)
            .named("M2.W.1"),
        rule()
            .layer(tech::V1)
            .enclosed_by(tech::M2)
            .greater_than(tech::V1_M2_ENCLOSURE)
            .named("V1.M2.EN.1"),
    ])
}

/// One-unit nudges of the first `k` distinct M2 leaf polygons.
fn nudge_ops(layout: &Layout, k: usize) -> Vec<EditOp> {
    layout
        .layer_polygons(tech::M2)
        .iter()
        .take(k)
        .map(|&(cell, index)| {
            let mut polygon = layout.cell(cell).polygons()[index].clone();
            polygon.polygon = polygon.polygon.translate(Point::new(1, 0));
            EditOp::ReplacePolygon {
                cell,
                index,
                polygon,
            }
        })
        .collect()
}

fn engine(parallel: bool) -> Engine {
    if parallel {
        Engine::parallel()
    } else {
        Engine::sequential()
    }
}

fn ms(d: std::time::Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

fn main() {
    let mut design = "tiny".to_owned();
    let mut seed = 7u64;
    let mut parallel = false;
    let mut profile = false;
    let mut edit_sizes = vec![1usize, 4, 16];
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--profile" => profile = true,
            "--design" => design = args.next().expect("--design needs a value"),
            "--seed" => {
                seed = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("--seed needs a number")
            }
            "--parallel" => parallel = true,
            "--edits" => {
                edit_sizes = args
                    .next()
                    .expect("--edits needs a list")
                    .split(',')
                    .map(|s| s.parse().expect("--edits takes numbers"))
                    .collect()
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }

    let spec = if design == "tiny" {
        DesignSpec::tiny(seed)
    } else {
        let mut s = DesignSpec::paper(&design).unwrap_or_else(|| {
            eprintln!("unknown design: {design}");
            std::process::exit(2);
        });
        s.seed = seed;
        s
    };
    let layout = generate_layout(&spec);
    let deck0 = deck();
    let stats = layout.stats();
    let flat: usize = stats
        .per_layer
        .iter()
        .map(|l| l.instantiated_polygons)
        .sum();
    println!(
        "design {design} seed {seed} ({} mode): {} cells, {} flat polygons, {} rules",
        if parallel { "parallel" } else { "sequential" },
        stats.cells,
        flat,
        deck0.rules().len()
    );

    // Cold: full check, empty cache.
    let t = Instant::now();
    let cold = engine(parallel).check(&layout, &deck0);
    let t_cold = t.elapsed();
    println!(
        "cold full check:          {:>8.2} ms   ({} violations, computed {}, reused {})",
        ms(t_cold),
        cold.violations.len(),
        cold.stats.checks_computed,
        cold.stats.checks_reused
    );
    if profile {
        println!("{}", cold.profile);
    }

    // Warm full re-check: prime a persistent cache on the pristine
    // layout, edit one polygon, run the full deck through the cache —
    // the cross-process path.
    let mut cache = ResultCache::new();
    engine(parallel).check_with_cache(&layout, &deck0, &mut cache);
    let mut edited = layout.clone();
    for op in nudge_ops(&layout, 1) {
        if let EditOp::ReplacePolygon {
            cell,
            index,
            polygon,
        } = op
        {
            edited.replace_polygon(cell, index, polygon).unwrap();
        }
    }
    let t = Instant::now();
    let warm = engine(parallel).check_with_cache(&edited, &deck0, &mut cache);
    let t_warm = t.elapsed();
    println!(
        "warm full check, 1 edit:  {:>8.2} ms   (computed {}, reused {})   speedup {:.1}x",
        ms(t_warm),
        warm.stats.checks_computed,
        warm.stats.checks_reused,
        ms(t_cold) / ms(t_warm).max(1e-6)
    );

    // Warm delta re-checks: a primed session, k edits, one check.
    for &k in &edit_sizes {
        let mut session = Session::new(layout.clone(), engine(parallel), deck());
        session.check(); // prime the baseline (untimed)
        session
            .apply_all(nudge_ops(&layout, k))
            .expect("nudges are valid edits");
        let t = Instant::now();
        let report = session.check();
        let t_delta = t.elapsed();
        println!(
            "delta re-check, {:>2} edit{}: {:>8.2} ms   (computed {}, reused {}, {} dirty rects, +{} -{})   speedup {:.1}x",
            k,
            if k == 1 { " " } else { "s" },
            ms(t_delta),
            report.stats.checks_computed,
            report.stats.checks_reused,
            report.dirty.len(),
            report.delta.added.len(),
            report.delta.removed.len(),
            ms(t_cold) / ms(t_delta).max(1e-6)
        );
        if profile {
            println!("{}", report.profile);
        }
    }
}
