//! # odrc-incremental — session-oriented incremental checking
//!
//! Turns the one-shot [`odrc::Engine`] into an edit-check loop:
//!
//! * **edits** are typed [`EditOp`]s applied through a [`Session`];
//!   the underlying `odrc_db::Layout` edit API keeps the layer-wise
//!   MBR hierarchy and inverted indices consistent in place, without a
//!   full rebuild (property-tested in `odrc-db`);
//! * **results persist**: the §IV-C per-cell memo is rekeyed by
//!   structural content hashes and serialized to a sidecar file
//!   (`odrc-cache.bin`), so a warm process reuses every verdict whose
//!   cell content did not change — an edit invalidates exactly the
//!   edited cell's ancestor chain;
//! * **re-checks are deltas**: [`Session::check`] diffs the layout
//!   against the last checked snapshot, re-runs only the checks inside
//!   the dirty halo ([`odrc::delta`]), and reports what changed as a
//!   [`DeltaReport`] — while always returning the *full* violation
//!   set, guaranteed equal to a from-scratch [`odrc::Engine::check`].
//!
//! # Examples
//!
//! ```
//! use odrc::{rules::rule, Engine, RuleDeck};
//! use odrc_incremental::{EditOp, Session};
//! use odrc_layoutgen::{generate_layout, tech, DesignSpec};
//!
//! let layout = generate_layout(&DesignSpec::tiny(1));
//! let deck = RuleDeck::new(vec![
//!     rule().layer(tech::M2).space().greater_than(tech::M2_SPACE).named("M2.S.1"),
//! ]);
//! let mut session = Session::new(layout, Engine::sequential(), deck);
//!
//! let first = session.check(); // full run, primes the baseline
//! assert!(first.full_run);
//!
//! // Edit: drop the first top-level placement, then re-check.
//! let top = session.layout().top();
//! session.apply(EditOp::RemoveRef { parent: top, index: 0 })?;
//! let second = session.check(); // windowed delta re-run
//! assert!(!second.full_run);
//! # Ok::<(), odrc_db::EditError>(())
//! ```

use std::io;
use std::path::{Path, PathBuf};

use odrc::delta::DeltaReport;
use odrc::{CacheKeys, Engine, EngineStats, ResultCache, RuleDeck, Violation};
use odrc_db::{CellId, CellRef, EditError, LayerPolygon, Layout};
use odrc_geometry::{Rect, Transform};
use odrc_infra::{CancelReason, Profiler};

pub use odrc::CACHE_FILE;

/// A typed edit over the session's layout, mirroring the `odrc_db`
/// edit API. Every op is validated by the database layer (unknown ids,
/// out-of-range indices, non-isometric transforms, and reference
/// cycles are rejected without mutating anything).
#[derive(Debug, Clone)]
pub enum EditOp {
    /// Append a reference to `child` inside `parent`.
    AddRef {
        parent: CellId,
        child: CellId,
        transform: Transform,
    },
    /// Remove the `index`-th reference of `parent`.
    RemoveRef { parent: CellId, index: usize },
    /// Re-place the `index`-th reference of `parent`.
    MoveRef {
        parent: CellId,
        index: usize,
        transform: Transform,
    },
    /// Append a leaf polygon to `cell`.
    AddPolygon { cell: CellId, polygon: LayerPolygon },
    /// Remove the `index`-th leaf polygon of `cell`.
    RemovePolygon { cell: CellId, index: usize },
    /// Replace the `index`-th leaf polygon of `cell`.
    ReplacePolygon {
        cell: CellId,
        index: usize,
        polygon: LayerPolygon,
    },
    /// Replace the whole definition (geometry and references) of `cell`.
    SwapDefinition {
        cell: CellId,
        polygons: Vec<LayerPolygon>,
        refs: Vec<CellRef>,
    },
}

/// The layout snapshot the next delta re-check diffs against, with
/// its content keys so neither side is re-hashed on the next check.
struct Baseline {
    layout: Layout,
    keys: CacheKeys,
    violations: Vec<Violation>,
}

/// The result of one [`Session::check`].
#[derive(Debug)]
pub struct SessionReport {
    /// All violations of the current layout, canonicalized — equal to
    /// a from-scratch [`Engine::check`].
    pub violations: Vec<Violation>,
    /// The change relative to the previous check (on the first check,
    /// everything counts as added).
    pub delta: DeltaReport,
    /// Work accounting of the run.
    pub stats: EngineStats,
    /// Wall-clock per pipeline phase.
    pub profile: Profiler,
    /// The dirty rectangles the re-check was windowed to (empty on a
    /// full run).
    pub dirty: Vec<Rect>,
    /// True when this was a full run (the first check of a session),
    /// false for a windowed delta re-run.
    pub full_run: bool,
    /// `Some(reason)` when the run was cancelled before the whole deck
    /// finished. The violation set is then partial, and the session
    /// did **not** advance its baseline — the next [`Session::check`]
    /// re-runs against the last *completed* state, so an interrupted
    /// job can never seed a delta with half-checked results.
    pub interrupted: Option<CancelReason>,
}

/// An edit-check session over one layout.
///
/// Holds the layout, the engine and deck to check it with, a
/// persistent result cache, and the snapshot of the last checked
/// state. Edits accumulate through [`Session::apply`]; the next
/// [`Session::check`] re-runs only what they can affect.
pub struct Session {
    layout: Layout,
    engine: Engine,
    deck: RuleDeck,
    cache: ResultCache,
    cache_path: Option<PathBuf>,
    baseline: Option<Baseline>,
}

impl Session {
    /// A session with an in-memory cache only.
    pub fn new(layout: Layout, engine: Engine, deck: RuleDeck) -> Session {
        Session {
            layout,
            engine,
            deck,
            cache: ResultCache::new(),
            cache_path: None,
            baseline: None,
        }
    }

    /// Attaches a cache directory: loads `<dir>/odrc-cache.bin` if it
    /// exists (a missing file is an empty cache) and makes
    /// [`Session::save_cache`] write back there.
    ///
    /// A corrupted or truncated sidecar is *not* an error: the cache is
    /// a pure accelerator, so the session starts cold (with a warning
    /// on stderr) and overwrites the damaged file on the next save.
    ///
    /// # Errors
    ///
    /// Currently infallible; the `Result` is kept so genuine I/O
    /// failures can be surfaced without an API break.
    pub fn with_cache_dir(mut self, dir: impl AsRef<Path>) -> io::Result<Session> {
        let path = dir.as_ref().join(CACHE_FILE);
        self.cache = ResultCache::load_or_cold(&path);
        self.cache_path = Some(path);
        Ok(self)
    }

    /// The current layout.
    pub fn layout(&self) -> &Layout {
        &self.layout
    }

    /// The rule deck the session checks against.
    pub fn deck(&self) -> &RuleDeck {
        &self.deck
    }

    /// The persistent result cache.
    pub fn cache(&self) -> &ResultCache {
        &self.cache
    }

    /// Mutable access to the session's engine, for per-job plumbing a
    /// server wires up between checks: a fresh [`CancelToken`] per
    /// job, a progress callback streaming rule completions, or a job's
    /// option overrides.
    ///
    /// [`CancelToken`]: odrc_infra::CancelToken
    pub fn engine_mut(&mut self) -> &mut Engine {
        &mut self.engine
    }

    /// Swaps the session's result cache for `cache`, returning the old
    /// one. A multi-tenant server checks a shared cache snapshot *in*
    /// before a job and merges the enriched copy back *out* after it,
    /// so verdicts flow between sessions without aliasing one
    /// `ResultCache` across concurrent runs.
    pub fn swap_cache(&mut self, cache: ResultCache) -> ResultCache {
        std::mem::replace(&mut self.cache, cache)
    }

    /// Applies one edit to the layout.
    ///
    /// # Errors
    ///
    /// Forwards the database layer's validation error; the layout is
    /// unchanged on failure.
    pub fn apply(&mut self, op: EditOp) -> Result<(), EditError> {
        match op {
            EditOp::AddRef {
                parent,
                child,
                transform,
            } => {
                self.layout.add_ref(parent, child, transform)?;
            }
            EditOp::RemoveRef { parent, index } => {
                self.layout.remove_ref(parent, index)?;
            }
            EditOp::MoveRef {
                parent,
                index,
                transform,
            } => {
                self.layout.move_ref(parent, index, transform)?;
            }
            EditOp::AddPolygon { cell, polygon } => {
                self.layout.add_polygon(cell, polygon)?;
            }
            EditOp::RemovePolygon { cell, index } => {
                self.layout.remove_polygon(cell, index)?;
            }
            EditOp::ReplacePolygon {
                cell,
                index,
                polygon,
            } => {
                self.layout.replace_polygon(cell, index, polygon)?;
            }
            EditOp::SwapDefinition {
                cell,
                polygons,
                refs,
            } => {
                self.layout.swap_cell_definition(cell, polygons, refs)?;
            }
        }
        Ok(())
    }

    /// Applies a sequence of edits, stopping at the first failure.
    ///
    /// # Errors
    ///
    /// Forwards the first rejected op's error; earlier ops stay
    /// applied.
    pub fn apply_all(&mut self, ops: impl IntoIterator<Item = EditOp>) -> Result<(), EditError> {
        for op in ops {
            self.apply(op)?;
        }
        Ok(())
    }

    /// Checks the current layout.
    ///
    /// The first call runs the full deck (through the persistent
    /// cache, so a warm cache still skips unchanged cells). Subsequent
    /// calls diff against the last checked snapshot and re-run only
    /// the affected checks. Either way the returned violation set is
    /// the complete, canonical result for the current layout.
    pub fn check(&mut self) -> SessionReport {
        let keys = CacheKeys::compute(&self.layout);
        let (report, restore) = match self.baseline.take() {
            None => {
                let report = self.engine.check_with_cache_keyed(
                    &self.layout,
                    &keys,
                    &self.deck,
                    &mut self.cache,
                );
                let report = SessionReport {
                    delta: DeltaReport {
                        added: report.violations.clone(),
                        removed: Vec::new(),
                        unchanged_count: 0,
                    },
                    stats: report.stats,
                    profile: report.profile,
                    dirty: Vec::new(),
                    full_run: true,
                    interrupted: report.interrupted,
                    violations: report.violations,
                };
                (report, None)
            }
            Some(base) => {
                let report = self.engine.check_delta_keyed(
                    &base.layout,
                    &base.keys.subtree,
                    &base.violations,
                    &self.layout,
                    &keys,
                    &self.deck,
                    Some(&mut self.cache),
                );
                let report = SessionReport {
                    delta: report.delta,
                    stats: report.stats,
                    profile: report.profile,
                    dirty: report.dirty,
                    full_run: false,
                    interrupted: report.interrupted,
                    violations: report.violations,
                };
                (report, Some(base))
            }
        };
        if report.interrupted.is_none() {
            self.baseline = Some(Baseline {
                layout: self.layout.clone(),
                keys,
                violations: report.violations.clone(),
            });
        } else {
            // A cancelled run produced a partial violation set; keep
            // the previous completed baseline (or stay cold) so the
            // next check diffs against trustworthy results.
            self.baseline = restore;
        }
        report
    }

    /// Writes the cache back to the attached directory (no-op without
    /// one).
    ///
    /// # Errors
    ///
    /// Forwards filesystem errors from creating the directory or
    /// writing the file.
    pub fn save_cache(&self) -> io::Result<()> {
        if let Some(path) = &self.cache_path {
            if let Some(parent) = path.parent() {
                std::fs::create_dir_all(parent)?;
            }
            // Merge-on-save under the sidecar's file lock: concurrent
            // sessions sharing one cache directory union their entries
            // instead of last-writer-wins clobbering.
            self.cache.save_merged(path)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use odrc::rules::rule;
    use odrc_geometry::Point;
    use odrc_layoutgen::{generate_layout, tech, DesignSpec};

    fn deck() -> RuleDeck {
        // M1 lives inside the standard cells (the per-cell cache's
        // domain); M2/V1 routing is top-level geometry.
        RuleDeck::new(vec![
            rule()
                .layer(tech::M1)
                .space()
                .greater_than(tech::M1_SPACE)
                .named("M1.S.1"),
            rule()
                .layer(tech::M1)
                .width()
                .greater_than(tech::M1_WIDTH)
                .named("M1.W.1"),
            rule()
                .layer(tech::M2)
                .space()
                .greater_than(tech::M2_SPACE)
                .named("M2.S.1"),
            rule()
                .layer(tech::M2)
                .width()
                .greater_than(tech::M2_WIDTH)
                .named("M2.W.1"),
            rule()
                .layer(tech::V1)
                .enclosed_by(tech::M2)
                .greater_than(tech::V1_M2_ENCLOSURE)
                .named("V1.M2.EN.1"),
        ])
    }

    /// Nudges one leaf polygon on M2 by one unit.
    fn nudge_op(layout: &Layout) -> EditOp {
        let &(cell, index) = layout
            .layer_polygons(tech::M2)
            .first()
            .expect("generated design has M2 shapes");
        let mut polygon = layout.cell(cell).polygons()[index].clone();
        polygon.polygon = polygon.polygon.translate(Point::new(1, 0));
        EditOp::ReplacePolygon {
            cell,
            index,
            polygon,
        }
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("odrc-incr-{}-{}", tag, std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn session_check_equals_from_scratch_after_edits() {
        let layout = generate_layout(&DesignSpec::tiny(21));
        let mut session = Session::new(layout, Engine::sequential(), deck());
        let first = session.check();
        assert!(first.full_run);
        assert_eq!(first.delta.added.len(), first.violations.len());

        let op = nudge_op(session.layout());
        session.apply(op).unwrap();
        let second = session.check();
        assert!(!second.full_run);
        assert!(!second.dirty.is_empty());
        let scratch = Engine::sequential().check(session.layout(), &deck());
        assert_eq!(second.violations, scratch.violations);

        // A third check with no edits in between is a no-op delta.
        let third = session.check();
        assert!(third.delta.is_clean());
        assert_eq!(third.violations, second.violations);
    }

    #[test]
    fn warm_cache_skips_unchanged_cells_across_processes() {
        let dir = temp_dir("warm");
        let spec = DesignSpec::tiny(22);

        // Process 1: cold full run, persist the cache.
        let cold_session = {
            let mut s = Session::new(generate_layout(&spec), Engine::sequential(), deck())
                .with_cache_dir(&dir)
                .unwrap();
            let report = s.check();
            s.save_cache().unwrap();
            (report, s)
        };
        let (cold, _s) = cold_session;
        assert!(cold.stats.checks_computed > 0);

        // Process 2: same design with one cell edited; the warm cache
        // answers every unchanged cell, so strictly fewer checks run.
        let mut layout = generate_layout(&spec);
        let mut s2 = Session::new(layout.clone(), Engine::sequential(), deck())
            .with_cache_dir(&dir)
            .unwrap();
        let op = nudge_op(&layout);
        if let EditOp::ReplacePolygon {
            cell,
            index,
            polygon,
        } = op.clone()
        {
            layout.replace_polygon(cell, index, polygon).unwrap();
        }
        s2.apply(op).unwrap();
        let warm = s2.check();
        assert!(warm.full_run);
        assert!(warm.stats.checks_reused > 0, "warm run must reuse results");
        assert!(
            warm.stats.checks_computed < cold.stats.checks_computed,
            "warm run must compute strictly fewer checks ({} vs {})",
            warm.stats.checks_computed,
            cold.stats.checks_computed
        );
        let scratch = Engine::sequential().check(&layout, &deck());
        assert_eq!(warm.violations, scratch.violations);

        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn interrupted_check_never_primes_the_baseline() {
        use odrc_infra::{CancelReason, CancelToken};
        let layout = generate_layout(&DesignSpec::tiny(24));
        let mut session = Session::new(layout, Engine::sequential(), deck());

        // First check arrives pre-cancelled: the full run is cut short
        // and must not become the delta baseline.
        let tok = CancelToken::new();
        tok.cancel(CancelReason::Interrupt);
        session.engine_mut().set_cancel(Some(tok));
        let cut = session.check();
        assert!(cut.full_run);
        assert!(cut.interrupted.is_some());

        // With the cancel cleared, the next check is again a *full*
        // run (the session stayed cold) and matches from-scratch.
        session.engine_mut().set_cancel(None);
        let first = session.check();
        assert!(first.full_run, "partial results must not seed a baseline");
        assert!(first.interrupted.is_none());
        let scratch = Engine::sequential().check(session.layout(), &deck());
        assert_eq!(first.violations, scratch.violations);

        // Now interrupt a *delta* run: the old baseline is restored,
        // so the following clean check diffs against completed state.
        let op = nudge_op(session.layout());
        session.apply(op).unwrap();
        let tok = CancelToken::new();
        tok.cancel(CancelReason::Interrupt);
        session.engine_mut().set_cancel(Some(tok));
        let cut = session.check();
        assert!(!cut.full_run);
        assert!(cut.interrupted.is_some());
        session.engine_mut().set_cancel(None);
        let healed = session.check();
        assert!(!healed.full_run, "completed baseline was kept");
        assert!(healed.interrupted.is_none());
        let scratch = Engine::sequential().check(session.layout(), &deck());
        assert_eq!(healed.violations, scratch.violations);
    }

    #[test]
    fn swap_cache_moves_verdicts_between_sessions() {
        let spec = DesignSpec::tiny(25);
        let mut warm = Session::new(generate_layout(&spec), Engine::sequential(), deck());
        let cold_report = warm.check();
        assert!(cold_report.stats.checks_computed > 0);

        // Check the warm cache out of one session and into another
        // over the same design: the second full run reuses verdicts.
        let shared = warm.swap_cache(ResultCache::new());
        let mut other = Session::new(generate_layout(&spec), Engine::sequential(), deck());
        let _empty = other.swap_cache(shared);
        let warm_report = other.check();
        assert!(warm_report.stats.checks_reused > 0);
        assert!(warm_report.stats.checks_computed < cold_report.stats.checks_computed);
        assert_eq!(warm_report.violations, cold_report.violations);
    }

    #[test]
    fn invalid_edit_leaves_session_usable() {
        let layout = generate_layout(&DesignSpec::tiny(23));
        let mut session = Session::new(layout, Engine::sequential(), deck());
        let top = session.layout().top();
        let err = session.apply(EditOp::RemoveRef {
            parent: top,
            index: usize::MAX,
        });
        assert!(err.is_err());
        let report = session.check();
        let scratch = Engine::sequential().check(session.layout(), &deck());
        assert_eq!(report.violations, scratch.violations);
    }
}
