//! The incremental correctness anchor: for ANY edit sequence,
//! `Session::check` must report exactly the violations a from-scratch
//! `Engine::check` reports on the edited layout — in both modes, with
//! pruning on and off. 100 randomized cases per mode.

use odrc::{rules::rule, Engine, EngineOptions, RuleDeck};
use odrc_db::{CellId, CellRef, LayerPolygon, Layout};
use odrc_gdsii::{Element, Library, Structure};
use odrc_geometry::{Point, Polygon, Rect, Rotation, Transform};
use odrc_incremental::{EditOp, Session};
use odrc_xpu::Device;
use proptest::prelude::*;

/// A randomized edit over the live layout. Raw targets are reduced
/// modulo the live cell/entry counts at apply time so most generated
/// ops are applicable; the few the database still rejects (cycles) are
/// skipped without mutating.
#[derive(Debug, Clone)]
enum Op {
    AddRef {
        parent: usize,
        child: usize,
        dx: i32,
        dy: i32,
        rot: i32,
        mirror: bool,
    },
    RemoveRef {
        parent: usize,
        index: usize,
    },
    MoveRef {
        parent: usize,
        index: usize,
        dx: i32,
        dy: i32,
    },
    AddPolygon {
        cell: usize,
        layer: u8,
        x: i32,
        y: i32,
        w: i32,
        h: i32,
    },
    RemovePolygon {
        cell: usize,
        index: usize,
    },
    ReplacePolygon {
        cell: usize,
        index: usize,
        layer: u8,
        x: i32,
        y: i32,
        w: i32,
        h: i32,
    },
    SwapDefinition {
        cell: usize,
        layer: u8,
        x: i32,
        y: i32,
        w: i32,
        h: i32,
        keep_refs: bool,
    },
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (
            0usize..8,
            0usize..8,
            -80i32..80,
            -80i32..80,
            0i32..4,
            proptest::bool::ANY
        )
            .prop_map(|(parent, child, dx, dy, rot, mirror)| Op::AddRef {
                parent,
                child,
                dx,
                dy,
                rot,
                mirror
            }),
        (0usize..8, 0usize..8).prop_map(|(parent, index)| Op::RemoveRef { parent, index }),
        (0usize..8, 0usize..8, -80i32..80, -80i32..80).prop_map(|(parent, index, dx, dy)| {
            Op::MoveRef {
                parent,
                index,
                dx,
                dy,
            }
        }),
        (
            0usize..8,
            1u8..3,
            -60i32..60,
            -60i32..60,
            2i32..30,
            2i32..30
        )
            .prop_map(|(cell, layer, x, y, w, h)| Op::AddPolygon {
                cell,
                layer,
                x,
                y,
                w,
                h
            }),
        (0usize..8, 0usize..8).prop_map(|(cell, index)| Op::RemovePolygon { cell, index }),
        (
            0usize..8,
            0usize..8,
            1u8..3,
            -60i32..60,
            -60i32..60,
            2i32..30,
            2i32..30
        )
            .prop_map(|(cell, index, layer, x, y, w, h)| Op::ReplacePolygon {
                cell,
                index,
                layer,
                x,
                y,
                w,
                h
            }),
        (
            0usize..8,
            1u8..3,
            -60i32..60,
            -60i32..60,
            2i32..30,
            2i32..30,
            proptest::bool::ANY
        )
            .prop_map(|(cell, layer, x, y, w, h, keep_refs)| Op::SwapDefinition {
                cell,
                layer,
                x,
                y,
                w,
                h,
                keep_refs
            }),
    ]
}

fn rect_poly(layer: u8, x: i32, y: i32, w: i32, h: i32) -> LayerPolygon {
    LayerPolygon {
        layer: i16::from(layer),
        datatype: 0,
        polygon: Polygon::rect(Rect::from_coords(x, y, x + w, y + h)),
        name: None,
    }
}

/// TOP -> {MID, LEAF x2}, MID -> LEAF. Layer 1 carries wide shapes,
/// layer 2 small ones, so every deck rule can fire as edits land.
fn base_layout() -> Layout {
    let mut lib = Library::new("equivalence");
    let mut leaf = Structure::new("LEAF");
    leaf.elements.push(Element::boundary(
        1,
        vec![
            Point::new(0, 0),
            Point::new(0, 20),
            Point::new(20, 20),
            Point::new(20, 0),
        ],
    ));
    leaf.elements.push(Element::boundary(
        2,
        vec![
            Point::new(6, 6),
            Point::new(6, 12),
            Point::new(12, 12),
            Point::new(12, 6),
        ],
    ));
    lib.structures.push(leaf);
    let mut mid = Structure::new("MID");
    mid.elements.push(Element::sref("LEAF", Point::new(4, 4)));
    mid.elements.push(Element::boundary(
        1,
        vec![
            Point::new(40, 0),
            Point::new(40, 30),
            Point::new(70, 30),
            Point::new(70, 0),
        ],
    ));
    lib.structures.push(mid);
    let mut top = Structure::new("TOP");
    top.elements.push(Element::sref("MID", Point::new(0, 0)));
    top.elements.push(Element::sref("LEAF", Point::new(100, 0)));
    top.elements.push(Element::sref("LEAF", Point::new(0, 60)));
    lib.structures.push(top);
    Layout::from_library(&lib).unwrap()
}

/// Every rule kind the engine supports, with thresholds tight enough
/// that random rects regularly violate and regularly pass.
fn deck() -> RuleDeck {
    RuleDeck::new(vec![
        rule().layer(1).space().greater_than(12).named("L1.S.1"),
        rule()
            .layer(1)
            .space()
            .when_projection_at_least(6)
            .greater_than(16)
            .named("L1.S.2"),
        rule().layer(2).space().greater_than(8).named("L2.S.1"),
        rule().layer(1).width().greater_than(8).named("L1.W.1"),
        rule().layer(1).area().greater_than(100).named("L1.A.1"),
        rule()
            .layer(2)
            .enclosed_by(1)
            .greater_than(3)
            .named("L2.L1.EN.1"),
        rule()
            .layer(2)
            .overlapping(1)
            .area_at_least(10)
            .named("L2.L1.OV.1"),
        rule().polygons().is_rectilinear(),
    ])
}

/// Maps a raw op onto live entries, or `None` when the target list is
/// empty.
fn map_op(layout: &Layout, op: &Op) -> Option<EditOp> {
    let ncells = layout.cell_count();
    let cell_at = |i: usize| CellId::from_index(i % ncells);
    match *op {
        Op::AddRef {
            parent,
            child,
            dx,
            dy,
            rot,
            mirror,
        } => Some(EditOp::AddRef {
            parent: cell_at(parent),
            child: cell_at(child),
            transform: Transform::new(
                mirror,
                Rotation::from_quarter_turns(rot),
                1,
                Point::new(dx, dy),
            ),
        }),
        Op::RemoveRef { parent, index } => {
            let p = cell_at(parent);
            let n = layout.cell(p).refs().len();
            (n > 0).then(|| EditOp::RemoveRef {
                parent: p,
                index: index % n,
            })
        }
        Op::MoveRef {
            parent,
            index,
            dx,
            dy,
        } => {
            let p = cell_at(parent);
            let n = layout.cell(p).refs().len();
            (n > 0).then(|| EditOp::MoveRef {
                parent: p,
                index: index % n,
                transform: Transform::translation(Point::new(dx, dy)),
            })
        }
        Op::AddPolygon {
            cell,
            layer,
            x,
            y,
            w,
            h,
        } => Some(EditOp::AddPolygon {
            cell: cell_at(cell),
            polygon: rect_poly(layer, x, y, w, h),
        }),
        Op::RemovePolygon { cell, index } => {
            let c = cell_at(cell);
            let n = layout.cell(c).polygons().len();
            (n > 0).then(|| EditOp::RemovePolygon {
                cell: c,
                index: index % n,
            })
        }
        Op::ReplacePolygon {
            cell,
            index,
            layer,
            x,
            y,
            w,
            h,
        } => {
            let c = cell_at(cell);
            let n = layout.cell(c).polygons().len();
            (n > 0).then(|| EditOp::ReplacePolygon {
                cell: c,
                index: index % n,
                polygon: rect_poly(layer, x, y, w, h),
            })
        }
        Op::SwapDefinition {
            cell,
            layer,
            x,
            y,
            w,
            h,
            keep_refs,
        } => {
            let c = cell_at(cell);
            let refs: Vec<CellRef> = if keep_refs {
                layout.cell(c).refs().to_vec()
            } else {
                Vec::new()
            };
            Some(EditOp::SwapDefinition {
                cell: c,
                polygons: vec![rect_poly(layer, x, y, w, h)],
                refs,
            })
        }
    }
}

fn run_case(make_engine: &dyn Fn() -> Engine, pruning: bool, ops: &[Op]) -> Result<(), String> {
    let options = EngineOptions {
        pruning,
        ..EngineOptions::default()
    };
    let engine = make_engine().with_options(options.clone());
    let mut session = Session::new(base_layout(), engine, deck());
    session.check();
    for op in ops {
        if let Some(edit) = map_op(session.layout(), op) {
            // The database may still reject (e.g. a would-be cycle);
            // rejections must leave the layout untouched.
            let _ = session.apply(edit);
        }
        let errors = session.layout().consistency_errors();
        if !errors.is_empty() {
            return Err(format!(
                "inconsistent db after {op:?}: {}",
                errors.join("\n")
            ));
        }
        let incremental = session.check();
        let scratch = make_engine()
            .with_options(options.clone())
            .check(session.layout(), &deck());
        if incremental.violations != scratch.violations {
            return Err(format!(
                "divergence after {op:?} (pruning={pruning}): incremental {} vs scratch {}",
                incremental.violations.len(),
                scratch.violations.len()
            ));
        }
        // The delta must reconcile with the full set.
        if incremental.delta.unchanged_count + incremental.delta.added.len()
            != incremental.violations.len()
        {
            return Err(format!("delta bookkeeping broken after {op:?}"));
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(100))]
    #[test]
    fn sequential_session_equals_from_scratch(
        ops in proptest::collection::vec(arb_op(), 1..8),
        pruning in proptest::bool::ANY,
    ) {
        if let Err(msg) = run_case(&Engine::sequential, pruning, &ops) {
            prop_assert!(false, "{}", msg);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(100))]
    #[test]
    fn parallel_session_equals_from_scratch(
        ops in proptest::collection::vec(arb_op(), 1..8),
        pruning in proptest::bool::ANY,
    ) {
        if let Err(msg) = run_case(&|| Engine::parallel_on(Device::new(2)), pruning, &ops) {
            prop_assert!(false, "{}", msg);
        }
    }
}
