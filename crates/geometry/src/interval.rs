//! Closed 1-D integer intervals.
//!
//! Intervals are the currency of the sweepline algorithms (§IV-D of the
//! paper) and of the adaptive row-based partitioner (§IV-B), where the
//! vertical extents of cells are merged into non-overlapping rows.

use std::fmt;

use crate::Coord;

/// A closed interval `[lo, hi]` with `lo <= hi`.
///
/// # Examples
///
/// ```
/// use odrc_geometry::Interval;
///
/// let a = Interval::new(0, 10);
/// let b = Interval::new(5, 20);
/// assert!(a.overlaps(b));
/// assert_eq!(a.intersection(b), Some(Interval::new(5, 10)));
/// assert_eq!(a.hull(b), Interval::new(0, 20));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Interval {
    lo: Coord,
    hi: Coord,
}

impl Interval {
    /// Creates the interval `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    #[inline]
    pub fn new(lo: Coord, hi: Coord) -> Self {
        assert!(lo <= hi, "interval lo ({lo}) must not exceed hi ({hi})");
        Interval { lo, hi }
    }

    /// Creates the interval spanning `a` and `b` regardless of their order.
    #[inline]
    pub fn spanning(a: Coord, b: Coord) -> Self {
        if a <= b {
            Interval { lo: a, hi: b }
        } else {
            Interval { lo: b, hi: a }
        }
    }

    /// Creates a degenerate single-point interval `[v, v]`.
    #[inline]
    pub const fn point(v: Coord) -> Self {
        Interval { lo: v, hi: v }
    }

    /// Lower endpoint.
    #[inline]
    pub const fn lo(self) -> Coord {
        self.lo
    }

    /// Upper endpoint.
    #[inline]
    pub const fn hi(self) -> Coord {
        self.hi
    }

    /// Length `hi - lo` widened to `i64`.
    #[inline]
    pub fn len(self) -> i64 {
        i64::from(self.hi) - i64::from(self.lo)
    }

    /// Returns `true` for degenerate (single point) intervals.
    #[inline]
    pub fn is_empty(self) -> bool {
        self.lo == self.hi
    }

    /// Returns `true` if `v` lies within the closed interval.
    #[inline]
    pub fn contains(self, v: Coord) -> bool {
        self.lo <= v && v <= self.hi
    }

    /// Returns `true` if the closed intervals share at least one point.
    #[inline]
    pub fn overlaps(self, other: Interval) -> bool {
        self.lo <= other.hi && other.lo <= self.hi
    }

    /// Returns `true` if the *open* interiors intersect (shared endpoints
    /// do not count). Useful for strict-overlap semantics in tiling.
    #[inline]
    pub fn overlaps_open(self, other: Interval) -> bool {
        self.lo < other.hi && other.lo < self.hi
    }

    /// Intersection with `other`, or `None` if disjoint.
    #[inline]
    pub fn intersection(self, other: Interval) -> Option<Interval> {
        let lo = self.lo.max(other.lo);
        let hi = self.hi.min(other.hi);
        (lo <= hi).then_some(Interval { lo, hi })
    }

    /// Smallest interval containing both `self` and `other`.
    #[inline]
    pub fn hull(self, other: Interval) -> Interval {
        Interval {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
        }
    }

    /// Interval grown by `amount` on both sides.
    ///
    /// Inflating by the minimum rule distance turns "MBRs do not overlap"
    /// into "no violation is possible" (§IV-C of the paper).
    ///
    /// # Panics
    ///
    /// Panics if the grown interval would be empty (negative `amount`
    /// larger than half the length) or overflow `i32`.
    #[inline]
    pub fn inflate(self, amount: Coord) -> Interval {
        Interval::new(self.lo - amount, self.hi + amount)
    }

    /// Length of the overlap between `self` and `other` (projection
    /// length), or 0 if disjoint.
    ///
    /// Conditional spacing rules ("different constraints given different
    /// projection lengths") are driven by this quantity.
    #[inline]
    pub fn overlap_len(self, other: Interval) -> i64 {
        match self.intersection(other) {
            Some(i) => i.len(),
            None => 0,
        }
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {}]", self.lo, self.hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    #[should_panic(expected = "must not exceed")]
    fn reversed_endpoints_panic() {
        let _ = Interval::new(3, 1);
    }

    #[test]
    fn spanning_reorders() {
        assert_eq!(Interval::spanning(5, -1), Interval::new(-1, 5));
        assert_eq!(Interval::spanning(-1, 5), Interval::new(-1, 5));
    }

    #[test]
    fn overlap_closed_vs_open() {
        let a = Interval::new(0, 5);
        let b = Interval::new(5, 9);
        assert!(a.overlaps(b));
        assert!(!a.overlaps_open(b));
        let c = Interval::new(6, 9);
        assert!(!a.overlaps(c));
    }

    #[test]
    fn intersection_and_hull() {
        let a = Interval::new(0, 10);
        let b = Interval::new(4, 20);
        assert_eq!(a.intersection(b), Some(Interval::new(4, 10)));
        assert_eq!(a.hull(b), Interval::new(0, 20));
        assert_eq!(a.intersection(Interval::new(11, 12)), None);
    }

    #[test]
    fn inflate_both_sides() {
        assert_eq!(Interval::new(2, 4).inflate(3), Interval::new(-1, 7));
    }

    #[test]
    fn overlap_len_matches_projection() {
        let a = Interval::new(0, 10);
        assert_eq!(a.overlap_len(Interval::new(5, 30)), 5);
        assert_eq!(a.overlap_len(Interval::new(20, 30)), 0);
        assert_eq!(a.overlap_len(Interval::new(10, 30)), 0); // touch only
    }

    #[test]
    fn point_interval() {
        let p = Interval::point(7);
        assert!(p.is_empty());
        assert!(p.contains(7));
        assert_eq!(p.len(), 0);
    }

    proptest! {
        #[test]
        fn overlap_is_symmetric(a in -1000i32..1000, b in -1000i32..1000,
                                c in -1000i32..1000, d in -1000i32..1000) {
            let x = Interval::spanning(a, b);
            let y = Interval::spanning(c, d);
            prop_assert_eq!(x.overlaps(y), y.overlaps(x));
            prop_assert_eq!(x.intersection(y), y.intersection(x));
            prop_assert_eq!(x.hull(y), y.hull(x));
        }

        #[test]
        fn intersection_iff_overlap(a in -1000i32..1000, b in -1000i32..1000,
                                    c in -1000i32..1000, d in -1000i32..1000) {
            let x = Interval::spanning(a, b);
            let y = Interval::spanning(c, d);
            prop_assert_eq!(x.overlaps(y), x.intersection(y).is_some());
        }

        #[test]
        fn hull_contains_both(a in -1000i32..1000, b in -1000i32..1000,
                              c in -1000i32..1000, d in -1000i32..1000) {
            let x = Interval::spanning(a, b);
            let y = Interval::spanning(c, d);
            let h = x.hull(y);
            prop_assert!(h.contains(x.lo()) && h.contains(x.hi()));
            prop_assert!(h.contains(y.lo()) && h.contains(y.hi()));
        }
    }
}
