//! Integer geometry primitives for the OpenDRC design rule checking engine.
//!
//! All coordinates are signed 32-bit *database units* (dbu). At the
//! ASAP7-like scale used by the benchmark layouts, 1 dbu corresponds to
//! 1 nm. Arithmetic that can overflow 32 bits (areas, squared distances)
//! is carried out in `i64`.
//!
//! The crate provides:
//!
//! * [`Point`] — a 2-D integer point / vector,
//! * [`Rect`] — an axis-aligned rectangle (used for minimum bounding
//!   rectangles, "MBRs", throughout OpenDRC),
//! * [`Interval`] — a closed 1-D integer interval,
//! * [`Edge`] — a directed axis-aligned polygon edge,
//! * [`Polygon`] — a rectilinear polygon stored in clockwise order, as
//!   required by the edge-based check procedures of the paper (§IV-D),
//! * [`Transform`] — a GDSII-style placement transform (rotation by
//!   multiples of 90°, optional x-axis mirror, integer magnification and
//!   translation).
//!
//! # Examples
//!
//! ```
//! use odrc_geometry::{Point, Polygon, Rect};
//!
//! let poly = Polygon::rect(Rect::new(Point::new(0, 0), Point::new(40, 20)));
//! assert!(poly.is_rectilinear());
//! assert_eq!(poly.area(), 800);
//! assert_eq!(poly.mbr(), Rect::new(Point::new(0, 0), Point::new(40, 20)));
//! ```

pub mod edge;
pub mod interval;
pub mod point;
pub mod polygon;
pub mod rect;
pub mod transform;

pub use edge::{Edge, EdgeDir, Orientation};
pub use interval::Interval;
pub use point::Point;
pub use polygon::{Polygon, PolygonError};
pub use rect::Rect;
pub use transform::{Rotation, Transform};

/// Database-unit coordinate type used across the engine.
pub type Coord = i32;

/// Wide type for products of coordinates (areas, squared distances).
pub type WideCoord = i64;
