//! Rectilinear polygons in clockwise vertex order.

use std::fmt;

use crate::{Edge, Point, Rect, WideCoord};

/// Error produced when validating polygon vertices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolygonError {
    /// A rectilinear polygon needs at least four vertices.
    TooFewVertices {
        /// Number of vertices supplied.
        count: usize,
    },
    /// Two consecutive vertices coincide.
    DegenerateEdge {
        /// Index of the edge's start vertex.
        index: usize,
    },
    /// An edge is neither horizontal nor vertical.
    NotRectilinear {
        /// Index of the offending edge's start vertex.
        index: usize,
    },
    /// The polygon encloses zero area.
    ZeroArea,
}

impl fmt::Display for PolygonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PolygonError::TooFewVertices { count } => {
                write!(f, "polygon has {count} vertices, at least 4 are required")
            }
            PolygonError::DegenerateEdge { index } => {
                write!(f, "polygon edge starting at vertex {index} has zero length")
            }
            PolygonError::NotRectilinear { index } => {
                write!(
                    f,
                    "polygon edge starting at vertex {index} is not axis-aligned"
                )
            }
            PolygonError::ZeroArea => write!(f, "polygon encloses zero area"),
        }
    }
}

impl std::error::Error for PolygonError {}

/// A simple rectilinear polygon.
///
/// Vertices are stored **without** repeating the first vertex and are
/// normalized to **clockwise** order at construction, as the paper's
/// edge-based check procedures require (§IV-D). Collinear runs are
/// merged so every stored vertex is a real corner.
///
/// # Examples
///
/// ```
/// use odrc_geometry::{Point, Polygon};
///
/// // An L-shape, given counter-clockwise; the constructor normalizes it.
/// let poly = Polygon::new(vec![
///     Point::new(0, 0),
///     Point::new(20, 0),
///     Point::new(20, 10),
///     Point::new(10, 10),
///     Point::new(10, 30),
///     Point::new(0, 30),
/// ])?;
/// assert!(poly.is_rectilinear());
/// assert_eq!(poly.area(), 20 * 10 + 10 * 20);
/// assert_eq!(poly.edges().count(), 6);
/// # Ok::<(), odrc_geometry::PolygonError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Polygon {
    vertices: Vec<Point>,
}

impl Polygon {
    /// Builds a polygon from its corner vertices (first vertex not
    /// repeated at the end; a repeated closing vertex is tolerated and
    /// dropped).
    ///
    /// The vertex list is validated to be rectilinear and is normalized:
    /// collinear intermediate vertices are merged, the orientation is
    /// made clockwise, and the vertex rotation starts at the
    /// lexicographically smallest corner so that equal shapes compare
    /// equal.
    ///
    /// # Errors
    ///
    /// Returns [`PolygonError`] if fewer than four corners remain after
    /// normalization, if an edge has zero length or is not axis-aligned,
    /// or if the polygon encloses zero area.
    pub fn new(mut vertices: Vec<Point>) -> Result<Self, PolygonError> {
        if vertices.len() >= 2 && vertices.first() == vertices.last() {
            vertices.pop();
        }
        if vertices.len() < 4 {
            return Err(PolygonError::TooFewVertices {
                count: vertices.len(),
            });
        }
        for i in 0..vertices.len() {
            let a = vertices[i];
            let b = vertices[(i + 1) % vertices.len()];
            if a == b {
                return Err(PolygonError::DegenerateEdge { index: i });
            }
            if a.x != b.x && a.y != b.y {
                return Err(PolygonError::NotRectilinear { index: i });
            }
        }
        let vertices = normalize_vertices(vertices);
        if vertices.len() < 4 {
            return Err(PolygonError::TooFewVertices {
                count: vertices.len(),
            });
        }
        let mut poly = Polygon { vertices };
        let signed = poly.signed_area2();
        if signed == 0 {
            return Err(PolygonError::ZeroArea);
        }
        // Shoelace is positive for counter-clockwise; flip to clockwise.
        if signed > 0 {
            poly.vertices.reverse();
        }
        poly.rotate_to_canonical_start();
        Ok(poly)
    }

    /// Builds the rectangle polygon covering `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r` is degenerate (zero width or height).
    pub fn rect(r: Rect) -> Self {
        assert!(
            !r.is_degenerate(),
            "cannot build a polygon from degenerate rect {r}"
        );
        Polygon::new(r.corners().to_vec()).expect("rect corners form a valid polygon")
    }

    /// The corner vertices in clockwise order.
    #[inline]
    pub fn vertices(&self) -> &[Point] {
        &self.vertices
    }

    /// Number of corners (== number of edges).
    #[inline]
    pub fn len(&self) -> usize {
        self.vertices.len()
    }

    /// Always `false`: a constructed polygon has at least four corners.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Iterates over the directed edges in clockwise order.
    pub fn edges(&self) -> impl Iterator<Item = Edge> + '_ {
        let n = self.vertices.len();
        (0..n).map(move |i| Edge::new(self.vertices[i], self.vertices[(i + 1) % n]))
    }

    /// Returns `true`: constructed polygons are always rectilinear.
    ///
    /// This is the predicate behind the `is_rectilinear()` rule of the
    /// programming interface (Listing 1 of the paper); it exists so that
    /// rule decks can assert the invariant on data that arrived through
    /// other paths.
    #[inline]
    pub fn is_rectilinear(&self) -> bool {
        let n = self.vertices.len();
        (0..n).all(|i| {
            let a = self.vertices[i];
            let b = self.vertices[(i + 1) % n];
            a.x == b.x || a.y == b.y
        })
    }

    /// Twice the signed area (positive for counter-clockwise input), by
    /// the Shoelace theorem. Exposed for testing; most callers want
    /// [`Polygon::area`].
    fn signed_area2(&self) -> WideCoord {
        let n = self.vertices.len();
        let mut acc: WideCoord = 0;
        for i in 0..n {
            let a = self.vertices[i];
            let b = self.vertices[(i + 1) % n];
            acc += a.cross(b);
        }
        acc
    }

    /// Enclosed area in square database units, by the Shoelace theorem
    /// (§IV-D: "OpenDRC computes polygon areas by the Shoelace Theorem").
    #[inline]
    pub fn area(&self) -> WideCoord {
        self.signed_area2().abs() / 2
    }

    /// Minimum bounding rectangle.
    pub fn mbr(&self) -> Rect {
        Rect::bounding(self.vertices.iter().copied()).expect("polygon has at least four vertices")
    }

    /// Returns `true` if `p` lies inside the polygon or on its boundary.
    ///
    /// Uses integer ray casting against the vertical edges, with the
    /// half-open span convention so vertices are counted once.
    pub fn contains(&self, p: Point) -> bool {
        // Boundary counts as inside.
        if self.edges().any(|e| {
            let m = e.mbr();
            m.contains(p)
        }) {
            return true;
        }
        let mut inside = false;
        for e in self.edges() {
            if e.orientation() != crate::Orientation::Vertical {
                continue;
            }
            let span = e.span();
            // Half-open [lo, hi) so a ray through a vertex toggles once.
            if span.lo() <= p.y && p.y < span.hi() && e.track() > p.x {
                inside = !inside;
            }
        }
        inside
    }

    /// The polygon translated by `delta`.
    pub fn translate(&self, delta: Point) -> Polygon {
        Polygon {
            vertices: self.vertices.iter().map(|&v| v + delta).collect(),
        }
    }

    fn rotate_to_canonical_start(&mut self) {
        let start = self
            .vertices
            .iter()
            .enumerate()
            .min_by_key(|&(_, v)| v)
            .map(|(i, _)| i)
            .expect("non-empty vertex list");
        self.vertices.rotate_left(start);
    }

    /// Rebuilds the polygon from raw transformed vertices, re-validating
    /// and re-normalizing. Used by [`Transform::apply_polygon`].
    ///
    /// [`Transform::apply_polygon`]: crate::Transform::apply_polygon
    pub(crate) fn from_transformed(vertices: Vec<Point>) -> Polygon {
        Polygon::new(vertices).expect("transform of a valid polygon is valid")
    }
}

/// Removes adjacent duplicates and merges collinear runs until stable.
/// Spike removal can create new duplicates, which in turn can create new
/// collinear runs, so a single pass is not enough.
fn normalize_vertices(mut vertices: Vec<Point>) -> Vec<Point> {
    loop {
        let before = vertices.len();
        // Drop adjacent duplicates, including across the wrap-around.
        let mut deduped: Vec<Point> = Vec::with_capacity(before);
        for v in vertices {
            if deduped.last() != Some(&v) {
                deduped.push(v);
            }
        }
        while deduped.len() > 1 && deduped.first() == deduped.last() {
            deduped.pop();
        }
        // Merge collinear runs (a spike's tip is also collinear).
        let n = deduped.len();
        let mut merged: Vec<Point> = Vec::with_capacity(n);
        for i in 0..n {
            let prev = deduped[(i + n - 1) % n];
            let cur = deduped[i];
            let next = deduped[(i + 1) % n];
            let collinear =
                (prev.x == cur.x && cur.x == next.x) || (prev.y == cur.y && cur.y == next.y);
            if !collinear {
                merged.push(cur);
            }
        }
        if merged.len() == before {
            return merged;
        }
        if merged.is_empty() {
            return merged;
        }
        vertices = merged;
    }
}

impl fmt::Display for Polygon {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "polygon[")?;
        for (i, v) in self.vertices.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Coord;
    use proptest::prelude::*;

    fn p(x: Coord, y: Coord) -> Point {
        Point::new(x, y)
    }

    fn lshape() -> Polygon {
        Polygon::new(vec![
            p(0, 0),
            p(20, 0),
            p(20, 10),
            p(10, 10),
            p(10, 30),
            p(0, 30),
        ])
        .unwrap()
    }

    #[test]
    fn validation_errors() {
        assert_eq!(
            Polygon::new(vec![p(0, 0), p(1, 0), p(1, 1)]),
            Err(PolygonError::TooFewVertices { count: 3 })
        );
        assert_eq!(
            Polygon::new(vec![p(0, 0), p(0, 0), p(1, 0), p(1, 1)]),
            Err(PolygonError::DegenerateEdge { index: 0 })
        );
        assert_eq!(
            Polygon::new(vec![p(0, 0), p(5, 5), p(5, 0), p(0, 0), p(0, 5)]),
            Err(PolygonError::NotRectilinear { index: 0 })
        );
        // A zero-area "blade": all vertices on one line collapse away
        // during collinear merging.
        assert_eq!(
            Polygon::new(vec![p(0, 0), p(0, 5), p(0, 9), p(0, 5)]),
            Err(PolygonError::TooFewVertices { count: 0 })
        );
        // A spike on an otherwise flat outline also collapses to nothing.
        assert_eq!(
            Polygon::new(vec![p(0, 0), p(0, 5), p(3, 5), p(3, 9), p(3, 5), p(0, 5)]),
            Err(PolygonError::TooFewVertices { count: 0 })
        );
    }

    #[test]
    fn closing_vertex_tolerated() {
        let a = Polygon::new(vec![p(0, 0), p(0, 5), p(5, 5), p(5, 0), p(0, 0)]).unwrap();
        let b = Polygon::new(vec![p(0, 0), p(0, 5), p(5, 5), p(5, 0)]).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn orientation_normalized_to_clockwise() {
        let cw = Polygon::new(vec![p(0, 0), p(0, 5), p(5, 5), p(5, 0)]).unwrap();
        let ccw = Polygon::new(vec![p(0, 0), p(5, 0), p(5, 5), p(0, 5)]).unwrap();
        assert_eq!(cw, ccw);
        // Clockwise: first edge from the lexicographically smallest vertex
        // goes up.
        assert_eq!(cw.vertices()[0], p(0, 0));
        assert_eq!(cw.vertices()[1], p(0, 5));
    }

    #[test]
    fn collinear_vertices_merged() {
        let with_extra =
            Polygon::new(vec![p(0, 0), p(0, 2), p(0, 5), p(5, 5), p(5, 0), p(2, 0)]).unwrap();
        let plain = Polygon::new(vec![p(0, 0), p(0, 5), p(5, 5), p(5, 0)]).unwrap();
        assert_eq!(with_extra, plain);
    }

    #[test]
    fn shoelace_area() {
        assert_eq!(Polygon::rect(Rect::from_coords(0, 0, 4, 7)).area(), 28);
        assert_eq!(lshape().area(), 400);
    }

    #[test]
    fn mbr_covers_shape() {
        assert_eq!(lshape().mbr(), Rect::from_coords(0, 0, 20, 30));
    }

    #[test]
    fn edge_iteration_clockwise_closed() {
        let sq = Polygon::rect(Rect::from_coords(0, 0, 5, 5));
        let edges: Vec<Edge> = sq.edges().collect();
        assert_eq!(edges.len(), 4);
        // The walk returns to the start.
        assert_eq!(edges[0].from, edges[3].to);
        // Interior is to the right of every clockwise edge.
        for e in &edges {
            assert!(e.interior_sign() == 1 || e.interior_sign() == -1);
        }
    }

    #[test]
    fn contains_points() {
        let l = lshape();
        assert!(l.contains(p(5, 5))); // inside lower arm
        assert!(l.contains(p(5, 25))); // inside upper arm
        assert!(!l.contains(p(15, 20))); // in the notch
        assert!(l.contains(p(0, 0))); // corner
        assert!(l.contains(p(10, 20))); // on inner boundary
        assert!(!l.contains(p(21, 5))); // outside right
        assert!(!l.contains(p(-1, 5))); // outside left
    }

    #[test]
    fn translate_preserves_shape() {
        let l = lshape();
        let t = l.translate(p(100, -50));
        assert_eq!(t.area(), l.area());
        assert_eq!(t.mbr(), l.mbr().translate(p(100, -50)));
    }

    #[test]
    fn rect_constructor_panics_on_degenerate() {
        let result = std::panic::catch_unwind(|| Polygon::rect(Rect::from_coords(0, 0, 0, 5)));
        assert!(result.is_err());
    }

    /// Strategy: a random rectilinear "staircase ring" polygon.
    fn arb_rectilinear() -> impl Strategy<Value = Polygon> {
        // Build from a random set of x/y cut coordinates forming a
        // histogram-like shape above a baseline.
        (2usize..8, 1i32..20).prop_flat_map(|(cols, _)| {
            proptest::collection::vec(1i32..20, cols).prop_map(move |raw| {
                // Force consecutive heights to differ so no vertical
                // step degenerates to a zero-length edge.
                let mut heights: Vec<i32> = Vec::with_capacity(raw.len());
                for h in raw {
                    match heights.last() {
                        Some(&prev) if prev == h => heights.push(h + 1),
                        _ => heights.push(h),
                    }
                }
                let mut verts = vec![Point::new(0, 0)];
                let mut x = 0;
                for (i, h) in heights.iter().enumerate() {
                    verts.push(Point::new(x, *h));
                    x += 5;
                    verts.push(Point::new(x, *h));
                    if i + 1 == heights.len() {
                        verts.push(Point::new(x, 0));
                    }
                }
                Polygon::new(verts).unwrap()
            })
        })
    }

    proptest! {
        #[test]
        fn area_matches_scanline_decomposition(poly in arb_rectilinear()) {
            // Integrate the histogram column areas directly.
            let mbr = poly.mbr();
            let mut brute: WideCoord = 0;
            for x in mbr.lo().x..mbr.hi().x {
                for y in mbr.lo().y..mbr.hi().y {
                    // Count unit cells whose center-ish representative
                    // (lower-left corner offset into the open cell) is inside.
                    if poly.contains(Point::new(x, y)) && poly.contains(Point::new(x + 1, y + 1))
                        && poly.contains(Point::new(x + 1, y)) && poly.contains(Point::new(x, y + 1)) {
                        brute += 1;
                    }
                }
            }
            // Every fully-contained unit cell contributes 1; boundary cells
            // are all inside for histogram shapes, so areas agree exactly.
            prop_assert_eq!(poly.area(), brute);
        }

        #[test]
        fn vertices_alternate_orientation(poly in arb_rectilinear()) {
            let edges: Vec<Edge> = poly.edges().collect();
            for w in edges.windows(2) {
                prop_assert_ne!(w[0].orientation(), w[1].orientation());
            }
        }

        #[test]
        fn translate_roundtrip(poly in arb_rectilinear(), dx in -100i32..100, dy in -100i32..100) {
            let t = poly.translate(Point::new(dx, dy)).translate(Point::new(-dx, -dy));
            prop_assert_eq!(t, poly);
        }
    }
}
