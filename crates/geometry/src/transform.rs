//! GDSII-style placement transforms.
//!
//! A structure reference (`SREF`/`AREF`) places a cell under a transform
//! composed of an optional mirror about the x-axis, a rotation by a
//! multiple of 90°, an integer magnification, and a translation — in
//! that order, matching the GDSII `STRANS` semantics. Hierarchical
//! check-result reuse (§IV-C of the paper) depends on transforms
//! preserving the geometric invariants of a check, which for the
//! isometric part (mirror + rotation) is always true of distance and
//! area rules; magnification scales distances and is therefore excluded
//! from reuse unless it is 1.

use std::fmt;

use crate::{Point, Polygon, Rect};

/// A counter-clockwise rotation by a multiple of 90°.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Rotation {
    /// No rotation.
    #[default]
    R0,
    /// 90° counter-clockwise.
    R90,
    /// 180°.
    R180,
    /// 270° counter-clockwise.
    R270,
}

impl Rotation {
    /// All four rotations, in increasing angle order.
    pub const ALL: [Rotation; 4] = [Rotation::R0, Rotation::R90, Rotation::R180, Rotation::R270];

    /// The rotation as a number of quarter turns (0..=3).
    #[inline]
    pub fn quarter_turns(self) -> u8 {
        match self {
            Rotation::R0 => 0,
            Rotation::R90 => 1,
            Rotation::R180 => 2,
            Rotation::R270 => 3,
        }
    }

    /// Builds a rotation from a number of quarter turns (taken mod 4).
    #[inline]
    pub fn from_quarter_turns(turns: i32) -> Rotation {
        match turns.rem_euclid(4) {
            0 => Rotation::R0,
            1 => Rotation::R90,
            2 => Rotation::R180,
            _ => Rotation::R270,
        }
    }

    /// Composition `self` followed by `other`.
    #[inline]
    pub fn then(self, other: Rotation) -> Rotation {
        Rotation::from_quarter_turns(
            i32::from(self.quarter_turns()) + i32::from(other.quarter_turns()),
        )
    }

    /// The inverse rotation.
    #[inline]
    pub fn inverse(self) -> Rotation {
        Rotation::from_quarter_turns(-i32::from(self.quarter_turns()))
    }

    /// Rotates a point about the origin.
    #[inline]
    pub fn apply(self, p: Point) -> Point {
        match self {
            Rotation::R0 => p,
            Rotation::R90 => Point::new(-p.y, p.x),
            Rotation::R180 => Point::new(-p.x, -p.y),
            Rotation::R270 => Point::new(p.y, -p.x),
        }
    }
}

/// A GDSII placement transform: mirror about the x-axis, then rotate,
/// then magnify, then translate.
///
/// # Examples
///
/// ```
/// use odrc_geometry::{Point, Rotation, Transform};
///
/// let t = Transform::new(true, Rotation::R90, 1, Point::new(100, 0));
/// // (10, 5) --mirror-x--> (10, -5) --R90--> (5, 10) --translate--> (105, 10)
/// assert_eq!(t.apply(Point::new(10, 5)), Point::new(105, 10));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Transform {
    mirror_x: bool,
    rotation: Rotation,
    mag: i32,
    translate: Point,
}

impl Default for Transform {
    fn default() -> Self {
        Transform::IDENTITY
    }
}

impl Transform {
    /// The identity transform.
    pub const IDENTITY: Transform = Transform {
        mirror_x: false,
        rotation: Rotation::R0,
        mag: 1,
        translate: Point::ORIGIN,
    };

    /// Creates a transform from its components.
    ///
    /// # Panics
    ///
    /// Panics if `mag < 1`; GDSII magnifications in this engine are
    /// positive integers (fractional magnification does not occur in the
    /// standard-cell layouts the engine targets).
    pub fn new(mirror_x: bool, rotation: Rotation, mag: i32, translate: Point) -> Self {
        assert!(mag >= 1, "magnification must be >= 1, got {mag}");
        Transform {
            mirror_x,
            rotation,
            mag,
            translate,
        }
    }

    /// A pure translation.
    #[inline]
    pub fn translation(delta: Point) -> Self {
        Transform {
            translate: delta,
            ..Transform::IDENTITY
        }
    }

    /// Whether the transform mirrors about the x-axis before rotating.
    #[inline]
    pub fn mirror_x(&self) -> bool {
        self.mirror_x
    }

    /// The rotation component.
    #[inline]
    pub fn rotation(&self) -> Rotation {
        self.rotation
    }

    /// The integer magnification.
    #[inline]
    pub fn mag(&self) -> i32 {
        self.mag
    }

    /// The translation component.
    #[inline]
    pub fn translate(&self) -> Point {
        self.translate
    }

    /// Returns `true` for transforms that preserve distances (mag 1).
    ///
    /// Isometries preserve every distance- and area-rule verdict, which
    /// is what makes hierarchical check-result reuse sound (§IV-C).
    #[inline]
    pub fn is_isometry(&self) -> bool {
        self.mag == 1
    }

    /// Applies the transform to a point.
    #[inline]
    pub fn apply(&self, p: Point) -> Point {
        let m = if self.mirror_x {
            Point::new(p.x, -p.y)
        } else {
            p
        };
        let r = self.rotation.apply(m);
        Point::new(r.x * self.mag, r.y * self.mag) + self.translate
    }

    /// Applies the transform to a rectangle (result is re-normalized, as
    /// rotation/mirror may swap corners).
    #[inline]
    pub fn apply_rect(&self, r: Rect) -> Rect {
        Rect::spanning(self.apply(r.lo()), self.apply(r.hi()))
    }

    /// Applies the transform to a polygon. The result is re-normalized
    /// to clockwise order (a mirror flips orientation).
    pub fn apply_polygon(&self, poly: &Polygon) -> Polygon {
        Polygon::from_transformed(poly.vertices().iter().map(|&v| self.apply(v)).collect())
    }

    /// The composition that applies `self` first, then `outer`.
    ///
    /// Used when descending the hierarchy tree: a child reference's
    /// transform composes under its parent's.
    pub fn then(&self, outer: &Transform) -> Transform {
        // outer(self(p)) = s2 R2 M2 (s1 R1 M1 p + t1) + t2.
        // Using M R = R⁻¹ M: the linear part has mirror m1^m2 and
        // rotation r2 + (m2 ? -r1 : r1); the translation is outer(t1).
        let rotation = if outer.mirror_x {
            outer.rotation.then(self.rotation.inverse())
        } else {
            outer.rotation.then(self.rotation)
        };
        Transform {
            mirror_x: self.mirror_x ^ outer.mirror_x,
            rotation,
            mag: self.mag * outer.mag,
            translate: outer.apply(self.translate),
        }
    }

    /// The inverse transform.
    ///
    /// # Panics
    ///
    /// Panics if the transform is not an isometry (`mag != 1`), as the
    /// inverse would not have integer coordinates.
    pub fn inverse(&self) -> Transform {
        assert!(
            self.is_isometry(),
            "cannot invert a magnifying transform (mag = {})",
            self.mag
        );
        // p' = R M p + t  =>  p = M⁻¹ R⁻¹ (p' - t) = (M R⁻¹) p' - M R⁻¹ t
        // with M² = I. The inverse transform in (mirror, rotation) form:
        // mirror stays, rotation becomes -r if no mirror, +r if mirrored.
        let rotation = if self.mirror_x {
            self.rotation
        } else {
            self.rotation.inverse()
        };
        let inv_linear = Transform {
            mirror_x: self.mirror_x,
            rotation,
            mag: 1,
            translate: Point::ORIGIN,
        };
        let t = inv_linear.apply(self.translate);
        Transform {
            translate: -t,
            ..inv_linear
        }
    }
}

impl fmt::Display for Transform {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{{mirror_x: {}, rot: {:?}, mag: {}, at {}}}",
            self.mirror_x, self.rotation, self.mag, self.translate
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn p(x: i32, y: i32) -> Point {
        Point::new(x, y)
    }

    #[test]
    fn rotation_basics() {
        assert_eq!(Rotation::R90.apply(p(1, 0)), p(0, 1));
        assert_eq!(Rotation::R180.apply(p(1, 2)), p(-1, -2));
        assert_eq!(Rotation::R270.apply(p(0, 1)), p(1, 0));
        assert_eq!(Rotation::R90.then(Rotation::R270), Rotation::R0);
        assert_eq!(Rotation::R90.inverse(), Rotation::R270);
        assert_eq!(Rotation::from_quarter_turns(-1), Rotation::R270);
        assert_eq!(Rotation::from_quarter_turns(6), Rotation::R180);
    }

    #[test]
    fn identity_is_noop() {
        let q = p(13, -7);
        assert_eq!(Transform::IDENTITY.apply(q), q);
        assert_eq!(Transform::default(), Transform::IDENTITY);
    }

    #[test]
    #[should_panic(expected = "magnification")]
    fn zero_mag_panics() {
        let _ = Transform::new(false, Rotation::R0, 0, Point::ORIGIN);
    }

    #[test]
    fn mirror_then_rotate_order() {
        let t = Transform::new(true, Rotation::R90, 1, Point::ORIGIN);
        // (1, 2) -mirror-> (1, -2) -R90-> (2, 1)
        assert_eq!(t.apply(p(1, 2)), p(2, 1));
    }

    #[test]
    fn magnification_scales_before_translation() {
        let t = Transform::new(false, Rotation::R0, 3, p(10, 0));
        assert_eq!(t.apply(p(2, 5)), p(16, 15));
        assert!(!t.is_isometry());
    }

    #[test]
    fn rect_transform_renormalizes() {
        let t = Transform::new(false, Rotation::R90, 1, Point::ORIGIN);
        let r = Rect::from_coords(1, 2, 5, 8);
        assert_eq!(t.apply_rect(r), Rect::from_coords(-8, 1, -2, 5));
    }

    #[test]
    fn polygon_transform_preserves_area() {
        let poly = Polygon::rect(Rect::from_coords(0, 0, 6, 3));
        for &rot in &Rotation::ALL {
            for &mx in &[false, true] {
                let t = Transform::new(mx, rot, 1, p(100, 50));
                let q = t.apply_polygon(&poly);
                assert_eq!(q.area(), poly.area(), "transform {t}");
                assert!(q.is_rectilinear());
            }
        }
    }

    fn arb_transform() -> impl Strategy<Value = Transform> {
        (proptest::bool::ANY, 0i32..4, -100i32..100, -100i32..100)
            .prop_map(|(m, r, x, y)| Transform::new(m, Rotation::from_quarter_turns(r), 1, p(x, y)))
    }

    proptest! {
        #[test]
        fn compose_matches_sequential_application(
            a in arb_transform(), b in arb_transform(),
            x in -50i32..50, y in -50i32..50,
        ) {
            let q = p(x, y);
            prop_assert_eq!(a.then(&b).apply(q), b.apply(a.apply(q)));
        }

        #[test]
        fn inverse_roundtrip(t in arb_transform(), x in -50i32..50, y in -50i32..50) {
            let q = p(x, y);
            prop_assert_eq!(t.inverse().apply(t.apply(q)), q);
            prop_assert_eq!(t.apply(t.inverse().apply(q)), q);
        }

        #[test]
        fn isometry_preserves_distance(
            t in arb_transform(),
            x0 in -50i32..50, y0 in -50i32..50,
            x1 in -50i32..50, y1 in -50i32..50,
        ) {
            let a = p(x0, y0);
            let b = p(x1, y1);
            prop_assert_eq!(t.apply(a).distance_sq(t.apply(b)), a.distance_sq(b));
        }
    }
}
