//! 2-D integer points and vectors.

use std::fmt;
use std::ops::{Add, AddAssign, Neg, Sub, SubAssign};

use crate::{Coord, WideCoord};

/// A 2-D point (or vector) in database units.
///
/// # Examples
///
/// ```
/// use odrc_geometry::Point;
///
/// let a = Point::new(3, 4);
/// let b = Point::new(1, 1);
/// assert_eq!(a + b, Point::new(4, 5));
/// assert_eq!(a - b, Point::new(2, 3));
/// assert_eq!(a.manhattan(b), 5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Point {
    /// Horizontal coordinate in database units.
    pub x: Coord,
    /// Vertical coordinate in database units.
    pub y: Coord,
}

impl Point {
    /// The origin `(0, 0)`.
    pub const ORIGIN: Point = Point { x: 0, y: 0 };

    /// Creates a point from its coordinates.
    #[inline]
    pub const fn new(x: Coord, y: Coord) -> Self {
        Point { x, y }
    }

    /// Manhattan (L1) distance to `other`, widened to avoid overflow.
    ///
    /// ```
    /// use odrc_geometry::Point;
    /// assert_eq!(Point::new(0, 0).manhattan(Point::new(-2, 5)), 7);
    /// ```
    #[inline]
    pub fn manhattan(self, other: Point) -> WideCoord {
        (WideCoord::from(self.x) - WideCoord::from(other.x)).abs()
            + (WideCoord::from(self.y) - WideCoord::from(other.y)).abs()
    }

    /// Squared Euclidean distance to `other` in `i64`.
    ///
    /// Distance rules compare squared distances against squared rule
    /// values so that no floating point enters the checker. The result
    /// saturates at `i64::MAX` for pathologically distant points (a
    /// full-range coordinate span squared exceeds 64 bits); saturation
    /// never affects a rule comparison, which involves small distances.
    #[inline]
    pub fn distance_sq(self, other: Point) -> WideCoord {
        let dx = WideCoord::from(self.x) - WideCoord::from(other.x);
        let dy = WideCoord::from(self.y) - WideCoord::from(other.y);
        dx.saturating_mul(dx).saturating_add(dy.saturating_mul(dy))
    }

    /// Cross product of vectors `self` and `other` (z-component), in `i64`.
    ///
    /// Positive when `other` is counter-clockwise from `self`.
    #[inline]
    pub fn cross(self, other: Point) -> WideCoord {
        WideCoord::from(self.x) * WideCoord::from(other.y)
            - WideCoord::from(self.y) * WideCoord::from(other.x)
    }

    /// Dot product in `i64`.
    #[inline]
    pub fn dot(self, other: Point) -> WideCoord {
        WideCoord::from(self.x) * WideCoord::from(other.x)
            + WideCoord::from(self.y) * WideCoord::from(other.y)
    }
}

impl Add for Point {
    type Output = Point;
    #[inline]
    fn add(self, rhs: Point) -> Point {
        Point::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl AddAssign for Point {
    #[inline]
    fn add_assign(&mut self, rhs: Point) {
        self.x += rhs.x;
        self.y += rhs.y;
    }
}

impl Sub for Point {
    type Output = Point;
    #[inline]
    fn sub(self, rhs: Point) -> Point {
        Point::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl SubAssign for Point {
    #[inline]
    fn sub_assign(&mut self, rhs: Point) {
        self.x -= rhs.x;
        self.y -= rhs.y;
    }
}

impl Neg for Point {
    type Output = Point;
    #[inline]
    fn neg(self) -> Point {
        Point::new(-self.x, -self.y)
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

impl From<(Coord, Coord)> for Point {
    #[inline]
    fn from((x, y): (Coord, Coord)) -> Self {
        Point::new(x, y)
    }
}

impl From<Point> for (Coord, Coord) {
    #[inline]
    fn from(p: Point) -> Self {
        (p.x, p.y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let a = Point::new(2, -3);
        let b = Point::new(-5, 7);
        assert_eq!(a + b, Point::new(-3, 4));
        assert_eq!(a - b, Point::new(7, -10));
        assert_eq!(-a, Point::new(-2, 3));
        let mut c = a;
        c += b;
        assert_eq!(c, a + b);
        c -= b;
        assert_eq!(c, a);
    }

    #[test]
    fn distances_do_not_overflow() {
        let a = Point::new(Coord::MIN, Coord::MIN);
        let b = Point::new(Coord::MAX, Coord::MAX);
        // 2 * (2^32 - 1) fits in i64.
        assert_eq!(a.manhattan(b), 2 * (WideCoord::from(u32::MAX)));
        assert!(a.distance_sq(b) > 0);
    }

    #[test]
    fn cross_sign_orientation() {
        // +x cross +y is counter-clockwise => positive.
        assert!(Point::new(1, 0).cross(Point::new(0, 1)) > 0);
        assert!(Point::new(0, 1).cross(Point::new(1, 0)) < 0);
        assert_eq!(Point::new(2, 2).cross(Point::new(4, 4)), 0);
    }

    #[test]
    fn dot_product() {
        assert_eq!(Point::new(1, 0).dot(Point::new(0, 1)), 0);
        assert_eq!(Point::new(3, 4).dot(Point::new(3, 4)), 25);
    }

    #[test]
    fn conversions_and_display() {
        let p: Point = (7, 8).into();
        assert_eq!(p, Point::new(7, 8));
        let t: (Coord, Coord) = p.into();
        assert_eq!(t, (7, 8));
        assert_eq!(p.to_string(), "(7, 8)");
    }

    #[test]
    fn ordering_is_lexicographic() {
        assert!(Point::new(1, 5) < Point::new(2, 0));
        assert!(Point::new(1, 2) < Point::new(1, 3));
    }
}
