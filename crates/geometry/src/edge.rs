//! Directed polygon edges.
//!
//! OpenDRC stores polygon vertices in clockwise order "so that positional
//! relations of edges are determined accordingly" (§IV-D of the paper).
//! With the clockwise convention (y pointing up), the polygon interior
//! lies to the *right* of an edge's direction of travel:
//!
//! * an upward vertical edge has its interior on the `+x` side,
//! * a downward vertical edge has its interior on the `-x` side,
//! * a rightward horizontal edge has its interior on the `-y` side,
//! * a leftward horizontal edge has its interior on the `+y` side.
//!
//! Width checks look for facing edges with the interior *between* them;
//! spacing checks look for facing edges with the exterior between them.

use std::fmt;

use crate::{Coord, Interval, Point, Rect, WideCoord};

/// Axis of an axis-aligned edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Orientation {
    /// The edge runs along the x-axis.
    Horizontal,
    /// The edge runs along the y-axis.
    Vertical,
}

/// Direction of travel of an axis-aligned edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EdgeDir {
    /// Travel towards `+y`.
    Up,
    /// Travel towards `-y`.
    Down,
    /// Travel towards `-x`.
    Left,
    /// Travel towards `+x`.
    Right,
}

impl EdgeDir {
    /// The axis this direction runs along.
    #[inline]
    pub fn orientation(self) -> Orientation {
        match self {
            EdgeDir::Up | EdgeDir::Down => Orientation::Vertical,
            EdgeDir::Left | EdgeDir::Right => Orientation::Horizontal,
        }
    }

    /// The opposite direction.
    #[inline]
    pub fn reversed(self) -> EdgeDir {
        match self {
            EdgeDir::Up => EdgeDir::Down,
            EdgeDir::Down => EdgeDir::Up,
            EdgeDir::Left => EdgeDir::Right,
            EdgeDir::Right => EdgeDir::Left,
        }
    }
}

/// A directed, axis-aligned polygon edge from [`Edge::from`] to
/// [`Edge::to`].
///
/// # Examples
///
/// ```
/// use odrc_geometry::{Edge, EdgeDir, Point};
///
/// let e = Edge::new(Point::new(0, 0), Point::new(0, 10));
/// assert_eq!(e.dir(), EdgeDir::Up);
/// // Clockwise polygons keep their interior to the right of travel,
/// // so this edge's interior is on the +x side.
/// assert_eq!(e.interior_sign(), 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Edge {
    /// Start vertex.
    pub from: Point,
    /// End vertex.
    pub to: Point,
}

impl Edge {
    /// Creates an axis-aligned edge.
    ///
    /// # Panics
    ///
    /// Panics if the endpoints coincide or the edge is not axis-aligned.
    /// Rectilinear layouts are the supported domain of the engine
    /// (general shapes are future work in the paper's roadmap); the
    /// [`Polygon`](crate::Polygon) constructor validates this before
    /// edges are ever produced.
    #[inline]
    pub fn new(from: Point, to: Point) -> Self {
        assert!(from != to, "degenerate edge at {from}");
        assert!(
            from.x == to.x || from.y == to.y,
            "edge {from} -> {to} is not axis-aligned"
        );
        Edge { from, to }
    }

    /// Direction of travel.
    #[inline]
    pub fn dir(self) -> EdgeDir {
        if self.from.x == self.to.x {
            if self.to.y > self.from.y {
                EdgeDir::Up
            } else {
                EdgeDir::Down
            }
        } else if self.to.x > self.from.x {
            EdgeDir::Right
        } else {
            EdgeDir::Left
        }
    }

    /// The axis the edge runs along.
    #[inline]
    pub fn orientation(self) -> Orientation {
        self.dir().orientation()
    }

    /// Edge length in database units (a geometric measure, not a
    /// container size — zero-length edges are meaningful).
    #[allow(clippy::len_without_is_empty)]
    #[inline]
    pub fn len(self) -> WideCoord {
        self.from.manhattan(self.to)
    }

    /// The coordinate that is constant along the edge (`x` for vertical
    /// edges, `y` for horizontal ones).
    #[inline]
    pub fn track(self) -> Coord {
        match self.orientation() {
            Orientation::Vertical => self.from.x,
            Orientation::Horizontal => self.from.y,
        }
    }

    /// The extent of the edge along its running axis, as a closed
    /// interval (endpoints sorted).
    #[inline]
    pub fn span(self) -> Interval {
        match self.orientation() {
            Orientation::Vertical => Interval::spanning(self.from.y, self.to.y),
            Orientation::Horizontal => Interval::spanning(self.from.x, self.to.x),
        }
    }

    /// The sign of the interior side along the axis *perpendicular* to
    /// the edge, under the clockwise-polygon convention: `+1` means the
    /// interior lies towards increasing perpendicular coordinate.
    #[inline]
    pub fn interior_sign(self) -> i32 {
        match self.dir() {
            EdgeDir::Up => 1,     // interior at +x
            EdgeDir::Down => -1,  // interior at -x
            EdgeDir::Right => -1, // interior at -y
            EdgeDir::Left => 1,   // interior at +y
        }
    }

    /// The edge with direction reversed.
    #[inline]
    pub fn reversed(self) -> Edge {
        Edge {
            from: self.to,
            to: self.from,
        }
    }

    /// Minimum bounding rectangle (degenerate: zero width or height).
    #[inline]
    pub fn mbr(self) -> Rect {
        Rect::spanning(self.from, self.to)
    }

    /// Exact squared Euclidean distance to another axis-aligned edge.
    ///
    /// An axis-aligned segment coincides with its (degenerate) bounding
    /// box, so the distance between two such segments is the distance
    /// between their boxes: the per-axis gaps combined by Pythagoras.
    /// The result is `0` when the segments touch or cross.
    ///
    /// ```
    /// use odrc_geometry::{Edge, Point};
    /// let a = Edge::new(Point::new(0, 0), Point::new(0, 10));
    /// let b = Edge::new(Point::new(3, 14), Point::new(9, 14));
    /// assert_eq!(a.distance_sq(b), 3 * 3 + 4 * 4);
    /// ```
    #[inline]
    pub fn distance_sq(self, other: Edge) -> WideCoord {
        let a = self.mbr();
        let b = other.mbr();
        let gx = axis_gap(a.x_range(), b.x_range());
        let gy = axis_gap(a.y_range(), b.y_range());
        gx.saturating_mul(gx).saturating_add(gy.saturating_mul(gy))
    }

    /// Returns `true` if both edges run along the same axis.
    #[inline]
    pub fn is_parallel(self, other: Edge) -> bool {
        self.orientation() == other.orientation()
    }

    /// Projection overlap length between two parallel edges, `0` when
    /// the edges are perpendicular or their projections are disjoint.
    ///
    /// Conditional spacing rules keyed on projection length use this.
    #[inline]
    pub fn projection_overlap(self, other: Edge) -> WideCoord {
        if !self.is_parallel(other) {
            return 0;
        }
        self.span().overlap_len(other.span())
    }
}

#[inline]
fn axis_gap(a: Interval, b: Interval) -> WideCoord {
    if a.overlaps(b) {
        0
    } else if a.hi() < b.lo() {
        WideCoord::from(b.lo()) - WideCoord::from(a.hi())
    } else {
        WideCoord::from(a.lo()) - WideCoord::from(b.hi())
    }
}

impl fmt::Display for Edge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} -> {}", self.from, self.to)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn e(x0: Coord, y0: Coord, x1: Coord, y1: Coord) -> Edge {
        Edge::new(Point::new(x0, y0), Point::new(x1, y1))
    }

    #[test]
    #[should_panic(expected = "degenerate")]
    fn zero_length_edge_panics() {
        let _ = e(1, 1, 1, 1);
    }

    #[test]
    #[should_panic(expected = "not axis-aligned")]
    fn diagonal_edge_panics() {
        let _ = e(0, 0, 3, 4);
    }

    #[test]
    fn directions() {
        assert_eq!(e(0, 0, 0, 5).dir(), EdgeDir::Up);
        assert_eq!(e(0, 5, 0, 0).dir(), EdgeDir::Down);
        assert_eq!(e(0, 0, 5, 0).dir(), EdgeDir::Right);
        assert_eq!(e(5, 0, 0, 0).dir(), EdgeDir::Left);
        assert_eq!(EdgeDir::Up.reversed(), EdgeDir::Down);
        assert_eq!(EdgeDir::Left.reversed(), EdgeDir::Right);
        assert_eq!(EdgeDir::Up.orientation(), Orientation::Vertical);
        assert_eq!(EdgeDir::Right.orientation(), Orientation::Horizontal);
    }

    #[test]
    fn interior_sides_clockwise_square() {
        // Clockwise square: up the left side, right along the top, ...
        let left = e(0, 0, 0, 10);
        let top = e(0, 10, 10, 10);
        let right = e(10, 10, 10, 0);
        let bottom = e(10, 0, 0, 0);
        assert_eq!(left.interior_sign(), 1); // interior at +x
        assert_eq!(top.interior_sign(), -1); // interior at -y
        assert_eq!(right.interior_sign(), -1); // interior at -x
        assert_eq!(bottom.interior_sign(), 1); // interior at +y
    }

    #[test]
    fn track_and_span() {
        let v = e(7, 2, 7, 9);
        assert_eq!(v.track(), 7);
        assert_eq!(v.span(), Interval::new(2, 9));
        let h = e(9, 3, 1, 3);
        assert_eq!(h.track(), 3);
        assert_eq!(h.span(), Interval::new(1, 9));
        assert_eq!(h.len(), 8);
    }

    #[test]
    fn distance_cases() {
        let a = e(0, 0, 0, 10);
        // Parallel, overlapping projection: pure horizontal gap.
        assert_eq!(a.distance_sq(e(6, 2, 6, 8)), 36);
        // Parallel, disjoint projection: corner-to-corner.
        assert_eq!(a.distance_sq(e(3, 14, 3, 20)), 9 + 16);
        // Perpendicular, touching: zero.
        assert_eq!(a.distance_sq(e(0, 10, 5, 10)), 0);
        // Crossing: zero.
        assert_eq!(e(-5, 5, 5, 5).distance_sq(a), 0);
    }

    #[test]
    fn projection_overlap_parallel_only() {
        let a = e(0, 0, 0, 10);
        assert_eq!(a.projection_overlap(e(4, 5, 4, 30)), 5);
        assert_eq!(a.projection_overlap(e(4, 20, 4, 30)), 0);
        assert_eq!(a.projection_overlap(e(0, 10, 5, 10)), 0); // perpendicular
    }

    #[test]
    fn reversal_flips_interior() {
        let a = e(0, 0, 0, 10);
        assert_eq!(a.reversed().dir(), EdgeDir::Down);
        assert_eq!(a.interior_sign(), -a.reversed().interior_sign());
    }

    #[test]
    fn display() {
        assert_eq!(e(0, 0, 0, 1).to_string(), "(0, 0) -> (0, 1)");
    }

    proptest! {
        #[test]
        fn distance_is_symmetric(
            x0 in -50i32..50, y0 in -50i32..50, l0 in 1i32..20, v0 in proptest::bool::ANY,
            x1 in -50i32..50, y1 in -50i32..50, l1 in 1i32..20, v1 in proptest::bool::ANY,
        ) {
            let a = if v0 { e(x0, y0, x0, y0 + l0) } else { e(x0, y0, x0 + l0, y0) };
            let b = if v1 { e(x1, y1, x1, y1 + l1) } else { e(x1, y1, x1 + l1, y1) };
            prop_assert_eq!(a.distance_sq(b), b.distance_sq(a));
            prop_assert_eq!(a.distance_sq(b), a.reversed().distance_sq(b));
            prop_assert!(a.distance_sq(b) >= 0);
        }

        #[test]
        fn distance_matches_brute_force_over_lattice(
            x0 in -12i32..12, y0 in -12i32..12, l0 in 1i32..6, v0 in proptest::bool::ANY,
            x1 in -12i32..12, y1 in -12i32..12, l1 in 1i32..6, v1 in proptest::bool::ANY,
        ) {
            let a = if v0 { e(x0, y0, x0, y0 + l0) } else { e(x0, y0, x0 + l0, y0) };
            let b = if v1 { e(x1, y1, x1, y1 + l1) } else { e(x1, y1, x1 + l1, y1) };
            // Integer lattice points of an axis-aligned segment include the
            // closest pair, because per-axis clamping lands on integers.
            let pts = |s: Edge| -> Vec<Point> {
                let d = match s.dir() {
                    EdgeDir::Up => Point::new(0, 1),
                    EdgeDir::Down => Point::new(0, -1),
                    EdgeDir::Right => Point::new(1, 0),
                    EdgeDir::Left => Point::new(-1, 0),
                };
                (0..=s.len()).map(|i| {
                    Point::new(s.from.x + d.x * i as i32, s.from.y + d.y * i as i32)
                }).collect()
            };
            let brute = pts(a).iter().flat_map(|p| {
                pts(b).into_iter().map(move |q| p.distance_sq(q))
            }).min().unwrap();
            prop_assert_eq!(a.distance_sq(b), brute);
        }
    }
}
