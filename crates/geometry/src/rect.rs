//! Axis-aligned rectangles (minimum bounding rectangles).

use std::fmt;

use crate::{Coord, Interval, Point, WideCoord};

/// An axis-aligned rectangle, stored as its lower-left and upper-right
/// corners with `lo.x <= hi.x` and `lo.y <= hi.y`.
///
/// Rectangles serve as the minimum bounding rectangles ("MBRs") that
/// augment the layout hierarchy tree (§IV-A of the paper) and as the
/// sweepline events of the overlap query (§IV-D).
///
/// # Examples
///
/// ```
/// use odrc_geometry::{Point, Rect};
///
/// let a = Rect::new(Point::new(0, 0), Point::new(10, 10));
/// let b = Rect::new(Point::new(5, 5), Point::new(20, 8));
/// assert!(a.overlaps(b));
/// assert_eq!(a.intersection(b), Some(Rect::new(Point::new(5, 5), Point::new(10, 8))));
/// assert_eq!(a.area(), 100);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Rect {
    lo: Point,
    hi: Point,
}

impl Rect {
    /// Creates a rectangle from its lower-left and upper-right corners.
    ///
    /// # Panics
    ///
    /// Panics if `lo.x > hi.x` or `lo.y > hi.y`.
    #[inline]
    pub fn new(lo: Point, hi: Point) -> Self {
        assert!(
            lo.x <= hi.x && lo.y <= hi.y,
            "rect corners out of order: lo={lo}, hi={hi}"
        );
        Rect { lo, hi }
    }

    /// Creates a rectangle from any two opposite corners.
    #[inline]
    pub fn spanning(a: Point, b: Point) -> Self {
        Rect {
            lo: Point::new(a.x.min(b.x), a.y.min(b.y)),
            hi: Point::new(a.x.max(b.x), a.y.max(b.y)),
        }
    }

    /// Creates a rectangle from coordinate extremes.
    ///
    /// # Panics
    ///
    /// Panics if `x0 > x1` or `y0 > y1`.
    #[inline]
    pub fn from_coords(x0: Coord, y0: Coord, x1: Coord, y1: Coord) -> Self {
        Rect::new(Point::new(x0, y0), Point::new(x1, y1))
    }

    /// The degenerate rectangle covering only `p`.
    #[inline]
    pub fn point(p: Point) -> Self {
        Rect { lo: p, hi: p }
    }

    /// Lower-left corner.
    #[inline]
    pub const fn lo(self) -> Point {
        self.lo
    }

    /// Upper-right corner.
    #[inline]
    pub const fn hi(self) -> Point {
        self.hi
    }

    /// Horizontal extent as a closed interval.
    #[inline]
    pub fn x_range(self) -> Interval {
        Interval::new(self.lo.x, self.hi.x)
    }

    /// Vertical extent as a closed interval.
    #[inline]
    pub fn y_range(self) -> Interval {
        Interval::new(self.lo.y, self.hi.y)
    }

    /// Width (`hi.x - lo.x`) widened to `i64`.
    #[inline]
    pub fn width(self) -> WideCoord {
        WideCoord::from(self.hi.x) - WideCoord::from(self.lo.x)
    }

    /// Height (`hi.y - lo.y`) widened to `i64`.
    #[inline]
    pub fn height(self) -> WideCoord {
        WideCoord::from(self.hi.y) - WideCoord::from(self.lo.y)
    }

    /// Area in square database units.
    #[inline]
    pub fn area(self) -> WideCoord {
        self.width() * self.height()
    }

    /// Returns `true` for zero-area rectangles.
    #[inline]
    pub fn is_degenerate(self) -> bool {
        self.lo.x == self.hi.x || self.lo.y == self.hi.y
    }

    /// Returns `true` if `p` lies inside the closed rectangle.
    #[inline]
    pub fn contains(self, p: Point) -> bool {
        self.x_range().contains(p.x) && self.y_range().contains(p.y)
    }

    /// Returns `true` if `other` lies entirely within `self`.
    #[inline]
    pub fn contains_rect(self, other: Rect) -> bool {
        self.contains(other.lo) && self.contains(other.hi)
    }

    /// Returns `true` if the closed rectangles share at least one point.
    #[inline]
    pub fn overlaps(self, other: Rect) -> bool {
        self.x_range().overlaps(other.x_range()) && self.y_range().overlaps(other.y_range())
    }

    /// Returns `true` if the open interiors intersect.
    #[inline]
    pub fn overlaps_open(self, other: Rect) -> bool {
        self.x_range().overlaps_open(other.x_range())
            && self.y_range().overlaps_open(other.y_range())
    }

    /// Intersection with `other`, or `None` if disjoint.
    #[inline]
    pub fn intersection(self, other: Rect) -> Option<Rect> {
        let x = self.x_range().intersection(other.x_range())?;
        let y = self.y_range().intersection(other.y_range())?;
        Some(Rect::from_coords(x.lo(), y.lo(), x.hi(), y.hi()))
    }

    /// Smallest rectangle containing both `self` and `other`.
    #[inline]
    pub fn hull(self, other: Rect) -> Rect {
        Rect {
            lo: Point::new(self.lo.x.min(other.lo.x), self.lo.y.min(other.lo.y)),
            hi: Point::new(self.hi.x.max(other.hi.x), self.hi.y.max(other.hi.y)),
        }
    }

    /// Rectangle grown by `amount` on all four sides.
    ///
    /// Enlarging MBRs by the minimum rule distance ensures that
    /// non-overlapping MBRs indeed indicate no violation (§IV-C).
    ///
    /// # Panics
    ///
    /// Panics if a negative `amount` would invert the rectangle.
    #[inline]
    pub fn inflate(self, amount: Coord) -> Rect {
        Rect::new(
            Point::new(self.lo.x - amount, self.lo.y - amount),
            Point::new(self.hi.x + amount, self.hi.y + amount),
        )
    }

    /// Rectangle translated by the vector `delta`.
    #[inline]
    pub fn translate(self, delta: Point) -> Rect {
        Rect {
            lo: self.lo + delta,
            hi: self.hi + delta,
        }
    }

    /// Minimum axis-aligned gap between two *disjoint* rectangles: the
    /// larger of the horizontal and vertical separations, 0 if they
    /// overlap or touch in both axes.
    ///
    /// For rectilinear geometry this is the Chebyshev-style separation
    /// used to prune pair checks: if `gap >= rule`, the Euclidean
    /// distance between any two contained points is also `>= rule`.
    #[inline]
    pub fn gap(self, other: Rect) -> WideCoord {
        let dx = gap_1d(self.x_range(), other.x_range());
        let dy = gap_1d(self.y_range(), other.y_range());
        dx.max(dy)
    }

    /// Smallest rectangle containing every point of `iter`.
    ///
    /// Returns `None` for an empty iterator.
    pub fn bounding<I: IntoIterator<Item = Point>>(iter: I) -> Option<Rect> {
        let mut it = iter.into_iter();
        let first = it.next()?;
        let mut r = Rect::point(first);
        for p in it {
            r.lo.x = r.lo.x.min(p.x);
            r.lo.y = r.lo.y.min(p.y);
            r.hi.x = r.hi.x.max(p.x);
            r.hi.y = r.hi.y.max(p.y);
        }
        Some(r)
    }

    /// The four corners in clockwise order starting from the lower-left.
    #[inline]
    pub fn corners(self) -> [Point; 4] {
        [
            self.lo,
            Point::new(self.lo.x, self.hi.y),
            self.hi,
            Point::new(self.hi.x, self.lo.y),
        ]
    }
}

#[inline]
fn gap_1d(a: Interval, b: Interval) -> WideCoord {
    if a.overlaps(b) {
        0
    } else if a.hi() < b.lo() {
        WideCoord::from(b.lo()) - WideCoord::from(a.hi())
    } else {
        WideCoord::from(a.lo()) - WideCoord::from(b.hi())
    }
}

impl fmt::Display for Rect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{} - {}]", self.lo, self.hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn r(x0: Coord, y0: Coord, x1: Coord, y1: Coord) -> Rect {
        Rect::from_coords(x0, y0, x1, y1)
    }

    #[test]
    #[should_panic(expected = "out of order")]
    fn inverted_corners_panic() {
        let _ = Rect::new(Point::new(1, 1), Point::new(0, 0));
    }

    #[test]
    fn spanning_normalizes() {
        assert_eq!(
            Rect::spanning(Point::new(5, 1), Point::new(0, 9)),
            r(0, 1, 5, 9)
        );
    }

    #[test]
    fn geometry_queries() {
        let a = r(0, 0, 10, 10);
        assert_eq!(a.width(), 10);
        assert_eq!(a.height(), 10);
        assert_eq!(a.area(), 100);
        assert!(a.contains(Point::new(10, 10)));
        assert!(!a.contains(Point::new(11, 10)));
        assert!(a.contains_rect(r(2, 2, 8, 8)));
        assert!(!a.contains_rect(r(2, 2, 11, 8)));
    }

    #[test]
    fn overlap_semantics() {
        let a = r(0, 0, 10, 10);
        assert!(a.overlaps(r(10, 10, 20, 20))); // corner touch
        assert!(!a.overlaps_open(r(10, 10, 20, 20)));
        assert!(!a.overlaps(r(11, 0, 20, 10)));
    }

    #[test]
    fn intersection_hull() {
        let a = r(0, 0, 10, 10);
        let b = r(5, -5, 20, 5);
        assert_eq!(a.intersection(b), Some(r(5, 0, 10, 5)));
        assert_eq!(a.hull(b), r(0, -5, 20, 10));
        assert_eq!(a.intersection(r(20, 20, 30, 30)), None);
    }

    #[test]
    fn inflate_and_translate() {
        assert_eq!(r(0, 0, 4, 4).inflate(2), r(-2, -2, 6, 6));
        assert_eq!(
            r(0, 0, 4, 4).translate(Point::new(10, -1)),
            r(10, -1, 14, 3)
        );
    }

    #[test]
    fn gap_between_rects() {
        let a = r(0, 0, 10, 10);
        assert_eq!(a.gap(r(15, 0, 20, 10)), 5);
        assert_eq!(a.gap(r(0, 22, 10, 30)), 12);
        assert_eq!(a.gap(r(13, 14, 20, 20)), 4); // diagonal: max(3, 4)
        assert_eq!(a.gap(r(5, 5, 6, 6)), 0);
    }

    #[test]
    fn bounding_points() {
        let pts = [Point::new(3, 7), Point::new(-1, 2), Point::new(5, 0)];
        assert_eq!(Rect::bounding(pts), Some(r(-1, 0, 5, 7)));
        assert_eq!(Rect::bounding(std::iter::empty()), None);
    }

    #[test]
    fn corners_clockwise() {
        let c = r(0, 0, 2, 3).corners();
        assert_eq!(
            c,
            [
                Point::new(0, 0),
                Point::new(0, 3),
                Point::new(2, 3),
                Point::new(2, 0)
            ]
        );
    }

    proptest! {
        #[test]
        fn overlap_matches_intersection(
            ax in -100i32..100, ay in -100i32..100, aw in 0i32..50, ah in 0i32..50,
            bx in -100i32..100, by in -100i32..100, bw in 0i32..50, bh in 0i32..50,
        ) {
            let a = r(ax, ay, ax + aw, ay + ah);
            let b = r(bx, by, bx + bw, by + bh);
            prop_assert_eq!(a.overlaps(b), a.intersection(b).is_some());
            prop_assert_eq!(a.overlaps(b), b.overlaps(a));
        }

        #[test]
        fn gap_zero_iff_overlap(
            ax in -100i32..100, ay in -100i32..100, aw in 0i32..50, ah in 0i32..50,
            bx in -100i32..100, by in -100i32..100, bw in 0i32..50, bh in 0i32..50,
        ) {
            let a = r(ax, ay, ax + aw, ay + ah);
            let b = r(bx, by, bx + bw, by + bh);
            prop_assert_eq!(a.gap(b) == 0, a.overlaps(b));
        }

        #[test]
        fn hull_contains_intersection(
            ax in -100i32..100, ay in -100i32..100, aw in 0i32..50, ah in 0i32..50,
            bx in -100i32..100, by in -100i32..100, bw in 0i32..50, bh in 0i32..50,
        ) {
            let a = r(ax, ay, ax + aw, ay + ah);
            let b = r(bx, by, bx + bw, by + bh);
            let h = a.hull(b);
            prop_assert!(h.contains_rect(a) && h.contains_rect(b));
            if let Some(i) = a.intersection(b) {
                prop_assert!(a.contains_rect(i) && b.contains_rect(i));
            }
        }
    }
}
