//! Device-side parallel primitives: exclusive prefix sum and reduction.
//!
//! The parallel sweepline of §IV-E runs in two kernels: "firstly, a
//! parallel scan determines the check range of each edge; then parallel
//! threads are launched to perform the check". The same count-scan-emit
//! pattern sizes the violation output of every parallel check kernel,
//! so the scan is a first-class device primitive here.
//!
//! The implementation is the classic chunked three-phase scan: parallel
//! per-chunk sums, a sequential scan over the (few) chunk sums, then a
//! parallel rewrite of each chunk with its base offset.

use crate::device::Device;

/// Exclusive prefix sum: returns a vector of length `values.len() + 1`
/// where `out[i]` is the sum of `values[..i]` (so `out[0] == 0` and
/// `out[n]` is the total).
///
/// The result doubles as the *offsets* array for scatter launches: item
/// `i` owns output range `out[i]..out[i + 1]`.
///
/// # Examples
///
/// ```
/// use odrc_xpu::{scan::exclusive_scan, Device};
///
/// let device = Device::new(4);
/// let offsets = exclusive_scan(&device, &[3, 0, 2, 5]);
/// assert_eq!(offsets, vec![0, 3, 3, 5, 10]);
/// ```
pub fn exclusive_scan(device: &Device, values: &[usize]) -> Vec<usize> {
    let n = values.len();
    let mut out = vec![0usize; n + 1];
    if n == 0 {
        return out;
    }
    let workers = device.workers().min(n);
    let chunk = n.div_ceil(workers);
    device.stats().record_launch(n);

    // Phase 1: per-chunk sums, distributed over the persistent pool.
    // The chunk boundaries derive from the device width (not from how
    // many pool workers join), so the output is identical either way.
    let n_chunks = n.div_ceil(chunk);
    let mut chunk_sums = vec![0usize; n_chunks];
    let mut tasks: Vec<(&mut usize, &[usize])> =
        chunk_sums.iter_mut().zip(values.chunks(chunk)).collect();
    device.dispatch_slices(&mut tasks, |_, tile| {
        for (slot, vals) in tile.iter_mut() {
            **slot = vals.iter().sum();
        }
    });

    // Phase 2: sequential exclusive scan over the few chunk sums.
    let mut bases = vec![0usize; n_chunks];
    let mut acc = 0usize;
    for (b, s) in bases.iter_mut().zip(&chunk_sums) {
        *b = acc;
        acc += s;
    }

    // Phase 3: per-chunk local scans shifted by the base, in parallel.
    // Chunk c owns out[c*chunk + 1 ..= min((c+1)*chunk, n)].
    device.stats().record_launch(n);
    let mut tasks: Vec<(&mut [usize], &[usize], usize)> = out[1..]
        .chunks_mut(chunk)
        .zip(values.chunks(chunk))
        .zip(bases.iter().copied())
        .map(|((o, v), b)| (o, v, b))
        .collect();
    device.dispatch_slices(&mut tasks, |_, tile| {
        for (out_chunk, vals, base) in tile.iter_mut() {
            let mut running = *base;
            for (o, v) in out_chunk.iter_mut().zip(vals.iter()) {
                running += v;
                *o = running;
            }
        }
    });
    // Convert the inclusive values written above into the exclusive
    // convention: out[i] currently holds sum(values[..i]) already, since
    // we wrote starting at index 1. out[0] stays 0.
    out
}

/// Parallel sum reduction.
///
/// ```
/// use odrc_xpu::{scan::reduce_sum, Device};
/// let device = Device::new(4);
/// assert_eq!(reduce_sum(&device, &[1i64, -2, 30]), 29);
/// ```
pub fn reduce_sum(device: &Device, values: &[i64]) -> i64 {
    let n = values.len();
    if n == 0 {
        return 0;
    }
    let workers = device.workers().min(n);
    let chunk = n.div_ceil(workers);
    device.stats().record_launch(n);
    let mut partials = vec![0i64; n.div_ceil(chunk)];
    let mut tasks: Vec<(&mut i64, &[i64])> =
        partials.iter_mut().zip(values.chunks(chunk)).collect();
    device.dispatch_slices(&mut tasks, |_, tile| {
        for (slot, vals) in tile.iter_mut() {
            **slot = vals.iter().sum();
        }
    });
    partials.iter().sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_scan() {
        let d = Device::new(2);
        assert_eq!(exclusive_scan(&d, &[]), vec![0]);
    }

    #[test]
    fn single_element() {
        let d = Device::new(2);
        assert_eq!(exclusive_scan(&d, &[7]), vec![0, 7]);
    }

    #[test]
    fn known_scan() {
        let d = Device::new(3);
        assert_eq!(
            exclusive_scan(&d, &[1, 2, 3, 4, 5]),
            vec![0, 1, 3, 6, 10, 15]
        );
    }

    #[test]
    fn zeros_scan_to_zeros() {
        let d = Device::new(2);
        assert_eq!(exclusive_scan(&d, &[0, 0, 0]), vec![0, 0, 0, 0]);
    }

    #[test]
    fn reduce_matches_iter_sum() {
        let d = Device::new(4);
        let vals: Vec<i64> = (0..1000).map(|i| i * 3 - 500).collect();
        assert_eq!(reduce_sum(&d, &vals), vals.iter().sum::<i64>());
        assert_eq!(reduce_sum(&d, &[]), 0);
    }

    proptest! {
        #[test]
        fn scan_matches_sequential(
            values in proptest::collection::vec(0usize..1000, 0..300),
            workers in 1usize..8,
        ) {
            let d = Device::new(workers);
            let fast = exclusive_scan(&d, &values);
            let mut slow = vec![0usize; values.len() + 1];
            for i in 0..values.len() {
                slow[i + 1] = slow[i] + values[i];
            }
            prop_assert_eq!(fast, slow);
        }
    }
}
