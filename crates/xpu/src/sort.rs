//! Device-side parallel sorting.
//!
//! X-Check sorts its edge arrays on the GPU before the sweep; the
//! engine's sweepline executor needs track-sorted edges too. This is
//! the classic parallel merge sort: per-worker chunks are sorted
//! concurrently, then merged in `log₂(workers)` parallel rounds.

use crate::device::Device;

/// Sorts `data` by `key` using the device's worker pool.
///
/// Stable ordering is not guaranteed for equal keys (like
/// `sort_unstable_by_key`). Arrays smaller than one cache-friendly
/// chunk are sorted inline without spawning workers.
///
/// # Examples
///
/// ```
/// use odrc_xpu::{sort::parallel_sort_by_key, Device};
///
/// let device = Device::new(4);
/// let mut v: Vec<i32> = (0..1000).rev().collect();
/// parallel_sort_by_key(&device, &mut v, |&x| x);
/// assert!(v.windows(2).all(|w| w[0] <= w[1]));
/// ```
pub fn parallel_sort_by_key<T, K, F>(device: &Device, data: &mut [T], key: F)
where
    T: Send + Sync + Copy,
    K: Ord,
    F: Fn(&T) -> K + Sync,
{
    let n = data.len();
    let workers = device.workers();
    if n < 2 {
        return;
    }
    if workers == 1 || n < 4096 {
        data.sort_unstable_by_key(|a| key(a));
        return;
    }
    device.stats().record_launch(n);

    // Phase 1: sort chunks in parallel over the persistent pool. The
    // chunk boundaries derive from the device width (not from how many
    // pool workers actually join), so the merge math below — and the
    // sorted result — is identical regardless of thread availability.
    let chunk = n.div_ceil(workers);
    {
        let mut parts: Vec<&mut [T]> = data.chunks_mut(chunk).collect();
        let key = &key;
        device.dispatch_slices(&mut parts, |_, tile| {
            for part in tile.iter_mut() {
                part.sort_unstable_by_key(|a| key(a));
            }
        });
    }

    // Phase 2: pairwise merges until one run remains.
    let mut run = chunk;
    let mut src: Vec<T> = data.to_vec();
    let mut dst: Vec<T> = data.to_vec();
    while run < n {
        device.stats().record_launch(n);
        let mut merges: Vec<(&[T], &[T], &mut [T])> = Vec::new();
        let mut src_rest: &[T] = &src;
        let mut dst_rest: &mut [T] = &mut dst;
        while !src_rest.is_empty() {
            let take = (2 * run).min(src_rest.len());
            let (s, s_tail) = src_rest.split_at(take);
            let (d, d_tail) = dst_rest.split_at_mut(take);
            src_rest = s_tail;
            dst_rest = d_tail;
            let mid = run.min(s.len());
            merges.push((&s[..mid], &s[mid..], d));
        }
        let key = &key;
        device.dispatch_slices(&mut merges, |_, tile| {
            for (a, b, d) in tile.iter_mut() {
                merge_into(a, b, d, key);
            }
        });
        std::mem::swap(&mut src, &mut dst);
        run *= 2;
    }
    data.copy_from_slice(&src);
}

fn merge_into<T: Copy, K: Ord>(a: &[T], b: &[T], out: &mut [T], key: &impl Fn(&T) -> K) {
    debug_assert_eq!(a.len() + b.len(), out.len());
    let (mut i, mut j) = (0, 0);
    for slot in out.iter_mut() {
        let take_a = j >= b.len() || (i < a.len() && key(&a[i]) <= key(&b[j]));
        if take_a {
            *slot = a[i];
            i += 1;
        } else {
            *slot = b[j];
            j += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_and_single() {
        let d = Device::new(3);
        let mut v: Vec<u32> = vec![];
        parallel_sort_by_key(&d, &mut v, |&x| x);
        assert!(v.is_empty());
        let mut v = vec![5u32];
        parallel_sort_by_key(&d, &mut v, |&x| x);
        assert_eq!(v, vec![5]);
    }

    #[test]
    fn sorts_reverse_large() {
        let d = Device::new(4);
        let mut v: Vec<i64> = (0..10_000).rev().collect();
        parallel_sort_by_key(&d, &mut v, |&x| x);
        assert_eq!(v, (0..10_000).collect::<Vec<_>>());
    }

    #[test]
    fn sorts_by_custom_key() {
        let d = Device::new(2);
        let mut v: Vec<(i32, i32)> = (0..5000).map(|i| (i % 7, i)).collect();
        parallel_sort_by_key(&d, &mut v, |&(k, _)| k);
        assert!(v.windows(2).all(|w| w[0].0 <= w[1].0));
        assert_eq!(v.len(), 5000);
    }

    proptest! {
        #[test]
        fn matches_std_sort(
            mut v in proptest::collection::vec(any::<i32>(), 0..12_000),
            workers in 1usize..7,
        ) {
            let d = Device::new(workers);
            let mut expected = v.clone();
            expected.sort_unstable();
            parallel_sort_by_key(&d, &mut v, |&x| x);
            prop_assert_eq!(v, expected);
        }
    }
}
