//! The device failure taxonomy.
//!
//! Real GPUs fail: allocations exhaust device memory, kernels trap on
//! bad accesses, streams wedge behind a hung operation, and transfers
//! abort mid-copy. The CUDA runtime surfaces all of these as
//! `cudaError_t` codes that most checkers ignore; *Fearless Concurrency
//! on the GPU* argues for routing them through the type system instead.
//! [`XpuError`] is that surface for the simulated device: every
//! fallible operation returns [`XpuResult`], and the engine's parallel
//! mode is written against it so a misbehaving device degrades the run
//! instead of killing it.

use std::fmt;

/// Direction of a host/device copy, for [`XpuError::TransferError`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TransferDirection {
    /// Host memory to device memory (`upload`).
    HostToDevice,
    /// Device memory to host memory (`download`).
    DeviceToHost,
}

impl fmt::Display for TransferDirection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransferDirection::HostToDevice => write!(f, "host-to-device"),
            TransferDirection::DeviceToHost => write!(f, "device-to-host"),
        }
    }
}

/// An error produced by the device layer.
///
/// The variants mirror the failure classes of a production GPU
/// runtime: memory exhaustion, kernel traps, wedged streams, failed
/// copies, and host-requested cancellation. All carry enough context to
/// log a reproducible diagnosis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XpuError {
    /// A stream-ordered allocation exceeded the device memory budget.
    Oom {
        /// Bytes the allocation requested.
        requested: usize,
        /// Bytes already reserved on the device.
        in_use: usize,
        /// The configured budget ([`Device::with_budget`]).
        ///
        /// [`Device::with_budget`]: crate::Device::with_budget
        budget: usize,
    },
    /// A kernel thread panicked; the launch failed but the worker pool
    /// survived (the panic is caught per SPMD thread).
    KernelPanic {
        /// Device-wide launch ordinal of the failing kernel.
        kernel: u64,
        /// Global thread id (`blockIdx * blockDim + threadIdx`) of the
        /// first thread that panicked.
        global_id: usize,
        /// The panic payload, stringified.
        message: String,
    },
    /// A stream operation stalled past the watchdog.
    StreamTimeout {
        /// What the stream was doing.
        op: &'static str,
    },
    /// A host/device copy failed.
    TransferError {
        /// Copy direction.
        direction: TransferDirection,
        /// Bytes the copy attempted to move.
        bytes: usize,
    },
    /// The run was cancelled; streams created after cancellation are
    /// born poisoned so retry loops fail fast instead of re-issuing
    /// work the run is about to discard.
    Cancelled,
}

impl fmt::Display for XpuError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            XpuError::Oom {
                requested,
                in_use,
                budget,
            } => write!(
                f,
                "device out of memory: {requested} bytes requested, \
                 {in_use} in use of {budget} budget"
            ),
            XpuError::KernelPanic {
                kernel,
                global_id,
                message,
            } => write!(
                f,
                "kernel #{kernel} panicked in thread {global_id}: {message}"
            ),
            XpuError::StreamTimeout { op } => {
                write!(f, "stream operation timed out while {op}")
            }
            XpuError::TransferError { direction, bytes } => {
                write!(f, "{direction} transfer of {bytes} bytes failed")
            }
            XpuError::Cancelled => f.write_str("operation cancelled"),
        }
    }
}

impl std::error::Error for XpuError {}

/// The result type of every fallible device operation.
pub type XpuResult<T> = Result<T, XpuError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = XpuError::Oom {
            requested: 1024,
            in_use: 96,
            budget: 1000,
        };
        let s = e.to_string();
        assert!(s.contains("1024") && s.contains("96") && s.contains("1000"));

        let e = XpuError::KernelPanic {
            kernel: 3,
            global_id: 517,
            message: "index out of bounds".to_owned(),
        };
        let s = e.to_string();
        assert!(s.contains("#3") && s.contains("517") && s.contains("index out of bounds"));

        let e = XpuError::StreamTimeout { op: "download" };
        assert!(e.to_string().contains("download"));

        let e = XpuError::TransferError {
            direction: TransferDirection::HostToDevice,
            bytes: 64,
        };
        assert!(e.to_string().contains("host-to-device"));
    }
}
