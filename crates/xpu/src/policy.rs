//! Execution policies: the Rust rendition of the paper's Listing 2.
//!
//! In the C++ original, the `sweepline` functor takes an *executor*
//! that is either `odrc::execution::sequenced_policy` (run on the CPU,
//! inline) or a wrapper over a `cudaStream_t` (append to the stream),
//! and dispatches between the two bodies with a `constexpr if` on type
//! traits. In Rust the same compile-time dispatch is a generic function
//! over the [`ExecutionPolicy`] trait: each impl is monomorphized
//! separately, so there is no runtime branching either.

use crate::device::Device;
use crate::stream::Stream;

mod sealed {
    pub trait Sealed {}
    impl Sealed for super::SequencedPolicy {}
    impl Sealed for super::StreamPolicy<'_> {}
}

/// Where a generic algorithm should run.
///
/// This trait is sealed: the engine defines exactly the two execution
/// environments of the paper (sequential CPU, asynchronous device
/// stream).
pub trait ExecutionPolicy: sealed::Sealed {
    /// `true` for device-backed policies; generic algorithms can use
    /// this the way the C++ code uses `constexpr if` on executor type
    /// traits (the value is a compile-time constant after
    /// monomorphization).
    const IS_DEVICE: bool;

    /// The device behind this policy, if any.
    fn device(&self) -> Option<&Device>;

    /// The stream behind this policy, if any.
    fn stream(&self) -> Option<&Stream>;
}

/// Run inline on the calling CPU thread
/// (`odrc::execution::sequenced_policy`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SequencedPolicy;

impl ExecutionPolicy for SequencedPolicy {
    const IS_DEVICE: bool = false;

    fn device(&self) -> Option<&Device> {
        None
    }

    fn stream(&self) -> Option<&Stream> {
        None
    }
}

/// Append operations to a device stream (the `cudaStream_t` wrapper).
#[derive(Debug)]
pub struct StreamPolicy<'a> {
    stream: &'a Stream,
}

impl<'a> StreamPolicy<'a> {
    /// Wraps a stream as an execution policy.
    pub fn new(stream: &'a Stream) -> Self {
        StreamPolicy { stream }
    }
}

impl ExecutionPolicy for StreamPolicy<'_> {
    const IS_DEVICE: bool = true;

    fn device(&self) -> Option<&Device> {
        Some(self.stream.device())
    }

    fn stream(&self) -> Option<&Stream> {
        Some(self.stream)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequenced_policy_has_no_device() {
        let p = SequencedPolicy;
        const { assert!(!SequencedPolicy::IS_DEVICE) }
        assert!(p.device().is_none());
        assert!(p.stream().is_none());
    }

    #[test]
    fn stream_policy_exposes_device() {
        let device = Device::new(2);
        let stream = device.stream();
        let p = StreamPolicy::new(&stream);
        const { assert!(StreamPolicy::IS_DEVICE) }
        assert_eq!(p.device().unwrap().workers(), 2);
        assert!(p.stream().is_some());
    }

    #[test]
    fn generic_dispatch_is_static() {
        fn run<E: ExecutionPolicy>(_exec: &E) -> &'static str {
            if E::IS_DEVICE {
                "device"
            } else {
                "cpu"
            }
        }
        let device = Device::new(1);
        let stream = device.stream();
        assert_eq!(run(&SequencedPolicy), "cpu");
        assert_eq!(run(&StreamPolicy::new(&stream)), "device");
    }
}
