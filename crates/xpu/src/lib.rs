//! A CUDA-like SPMD execution engine in software.
//!
//! The OpenDRC paper (§IV-E, §V-C) runs its parallel mode on an NVIDIA
//! GPU through CUDA: edge data is packed into flat arrays, copied to the
//! device asynchronously on *streams*, and processed by *kernels*
//! launched over a grid/block/thread hierarchy; a stream-ordered memory
//! allocator and events hide copy and compute latencies behind host-side
//! work.
//!
//! This crate reproduces that execution model in safe Rust so the
//! engine's parallel code paths are exercised verbatim on machines
//! without a GPU (see DESIGN.md §1 for the substitution rationale):
//!
//! * [`Device`] — the SPMD processor: launches kernels whose threads are
//!   identified by a [`ThreadCtx`] (block index, thread index, …) and
//!   executed by a worker pool,
//! * [`DeviceBuffer`] — device-resident memory with explicit host↔device
//!   copies,
//! * [`Stream`] — an ordered asynchronous command queue with
//!   [`Event`]-based cross-stream dependencies and stream-ordered
//!   allocation,
//! * [`scan`] — device-side primitives (exclusive prefix sum, reduce)
//!   used by the two-phase parallel sweepline,
//! * [`sort`] — device-side parallel merge sort (edge arrays are sorted
//!   on the device before sweeping, as in X-Check),
//! * [`ExecutionPolicy`] — the `odrc::execution::sequenced_policy` /
//!   stream-executor dispatch of the paper's Listing 2, as a trait.
//!
//! # Examples
//!
//! ```
//! use odrc_xpu::{Device, LaunchConfig};
//!
//! let device = Device::new(4);
//! let stream = device.stream();
//! let input = stream.upload((0..1000i64).collect::<Vec<_>>());
//! let squares = stream.alloc::<i64>(1000);
//! stream.launch_map(
//!     LaunchConfig::for_threads(1000),
//!     &squares,
//!     move |ctx, out| {
//!         let x = input.read()[ctx.global_id()];
//!         *out = x * x;
//!     },
//! );
//! let result = stream.download(&squares).wait();
//! assert_eq!(result[7], 49);
//! ```

pub mod buffer;
pub mod device;
pub mod error;
pub mod fault;
pub mod policy;
pub mod scan;
pub mod sort;
pub mod stream;

pub use buffer::{BufferReadGuard, DeviceBuffer, Pending};
pub use device::{Device, DeviceStats, DispatchMode, LaunchConfig, ThreadCtx};
pub use error::{TransferDirection, XpuError, XpuResult};
pub use fault::{Fault, FaultPlan};
pub use policy::{ExecutionPolicy, SequencedPolicy, StreamPolicy};
pub use stream::{Event, LaunchBatch, Stream};
