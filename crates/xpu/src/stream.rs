//! Asynchronous command streams and events.
//!
//! OpenDRC "utilizes asynchronous operations and \[a\] Stream Ordered
//! Memory Allocator to hide communication or computation latencies"
//! (§V-C). A [`Stream`] executes its operations in enqueue order on a
//! dedicated thread, so host code returns immediately from `upload` /
//! `launch_map` / `download` calls and overlaps its own work (e.g.
//! packing the next row's edges) with device work — the paper's
//! CPU/GPU latency-hiding pattern.

use std::sync::mpsc;
use std::sync::Arc;

use parking_lot::{Condvar, Mutex};

use crate::buffer::{DeviceBuffer, Pending};
use crate::device::{Device, LaunchConfig, ThreadCtx};

type Job = Box<dyn FnOnce(&Device) + Send>;

/// A cross-stream synchronization point, mirroring `cudaEvent_t`.
///
/// Record the event on one stream, wait on it from another (or from the
/// host). The event is triggered when the recording stream reaches it.
#[derive(Clone, Debug, Default)]
pub struct Event {
    state: Arc<(Mutex<bool>, Condvar)>,
}

impl Event {
    /// Creates an untriggered event.
    pub fn new() -> Self {
        Event::default()
    }

    /// Blocks the calling thread until the event triggers.
    pub fn wait(&self) {
        let (lock, cvar) = &*self.state;
        let mut done = lock.lock();
        while !*done {
            cvar.wait(&mut done);
        }
    }

    /// Returns `true` if the event has triggered.
    pub fn is_set(&self) -> bool {
        *self.state.0.lock()
    }

    fn set(&self) {
        let (lock, cvar) = &*self.state;
        *lock.lock() = true;
        cvar.notify_all();
    }
}

/// An ordered asynchronous command queue on a [`Device`].
///
/// Operations enqueue and return immediately; they execute in order on
/// the stream's worker thread. [`Stream::synchronize`] blocks until the
/// queue drains. Dropping the stream waits for completion (the
/// destructor never drops queued work).
///
/// # Examples
///
/// See the [crate-level example](crate).
#[derive(Debug)]
pub struct Stream {
    device: Device,
    tx: Option<mpsc::Sender<Job>>,
    worker: Option<std::thread::JoinHandle<()>>,
}

impl Stream {
    pub(crate) fn new(device: Device) -> Self {
        let (tx, rx) = mpsc::channel::<Job>();
        let worker_device = device.clone();
        let worker = std::thread::Builder::new()
            .name("xpu-stream".to_owned())
            .spawn(move || {
                while let Ok(job) = rx.recv() {
                    job(&worker_device);
                }
            })
            .expect("spawn stream worker");
        Stream {
            device,
            tx: Some(tx),
            worker: Some(worker),
        }
    }

    /// The device this stream executes on.
    pub fn device(&self) -> &Device {
        &self.device
    }

    fn submit(&self, job: Job) {
        self.tx
            .as_ref()
            .expect("stream channel open until drop")
            .send(job)
            .expect("stream worker alive until drop");
    }

    /// Stream-ordered allocation: the buffer handle is returned
    /// immediately, but the allocation (default-initialization) happens
    /// in stream order, like `cudaMallocAsync`.
    pub fn alloc<T>(&self, len: usize) -> DeviceBuffer<T>
    where
        T: Default + Clone + Send + Sync + 'static,
    {
        let buf: DeviceBuffer<T> = DeviceBuffer::from_vec(Vec::new());
        let handle = buf.clone();
        self.submit(Box::new(move |_| {
            handle.replace(vec![T::default(); len]);
        }));
        buf
    }

    /// Asynchronous host → device copy; the host vector is moved into
    /// the operation (no use-after-free by construction).
    pub fn upload<T>(&self, data: Vec<T>) -> DeviceBuffer<T>
    where
        T: Send + Sync + 'static,
    {
        let buf: DeviceBuffer<T> = DeviceBuffer::from_vec(Vec::new());
        let handle = buf.clone();
        self.submit(Box::new(move |device| {
            device
                .stats()
                .record_h2d(data.len() * std::mem::size_of::<T>());
            handle.replace(data);
        }));
        buf
    }

    /// Asynchronous device → host copy; the returned [`Pending`]
    /// resolves when the stream reaches this operation.
    pub fn download<T>(&self, buf: &DeviceBuffer<T>) -> Pending<Vec<T>>
    where
        T: Clone + Send + Sync + 'static,
    {
        let (tx, rx) = mpsc::channel();
        let handle = buf.clone();
        self.submit(Box::new(move |device| {
            let data = handle.to_vec();
            device
                .stats()
                .record_d2h(data.len() * std::mem::size_of::<T>());
            let _ = tx.send(data);
        }));
        Pending::new(rx)
    }

    /// Enqueues a kernel launch where thread `i` owns `out[i]`
    /// (see [`Device::launch_map_blocking`]).
    pub fn launch_map<T, F>(&self, cfg: LaunchConfig, out: &DeviceBuffer<T>, kernel: F)
    where
        T: Send + Sync + 'static,
        F: Fn(ThreadCtx, &mut T) + Send + Sync + 'static,
    {
        let out = out.clone();
        self.submit(Box::new(move |device| {
            device.launch_map_blocking(cfg, &out, kernel);
        }));
    }

    /// Enqueues a scatter kernel launch where thread `i` owns
    /// `out[offsets[i]..offsets[i + 1]]`
    /// (see [`Device::launch_scatter_blocking`]).
    pub fn launch_scatter<T, F>(
        &self,
        cfg: LaunchConfig,
        out: &DeviceBuffer<T>,
        offsets: Vec<usize>,
        kernel: F,
    ) where
        T: Send + Sync + 'static,
        F: Fn(ThreadCtx, &mut [T]) + Send + Sync + 'static,
    {
        let out = out.clone();
        self.submit(Box::new(move |device| {
            device.launch_scatter_blocking(cfg, &out, &offsets, kernel);
        }));
    }

    /// Enqueues an arbitrary device-side operation (used by the scan
    /// primitives and by tests).
    pub fn enqueue<F>(&self, op: F)
    where
        F: FnOnce(&Device) + Send + 'static,
    {
        self.submit(Box::new(op));
    }

    /// Records `event` in stream order: it triggers once all previously
    /// enqueued operations have completed.
    pub fn record_event(&self, event: &Event) {
        let event = event.clone();
        self.submit(Box::new(move |_| event.set()));
    }

    /// Makes this stream wait (in stream order) for `event`.
    pub fn wait_event(&self, event: &Event) {
        let event = event.clone();
        self.submit(Box::new(move |_| event.wait()));
    }

    /// Blocks until every previously enqueued operation has completed,
    /// mirroring `cudaStreamSynchronize`.
    pub fn synchronize(&self) {
        let event = Event::new();
        self.record_event(&event);
        event.wait();
    }
}

impl Drop for Stream {
    fn drop(&mut self) {
        // Close the channel, then join: queued work always completes.
        self.tx.take();
        if let Some(worker) = self.worker.take() {
            let _ = worker.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::time::Duration;

    #[test]
    fn operations_execute_in_order() {
        let device = Device::new(2);
        let stream = device.stream();
        let log = Arc::new(Mutex::new(Vec::new()));
        for i in 0..10 {
            let log = Arc::clone(&log);
            stream.enqueue(move |_| log.lock().push(i));
        }
        stream.synchronize();
        assert_eq!(*log.lock(), (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn upload_download_roundtrip() {
        let device = Device::new(2);
        let stream = device.stream();
        let buf = stream.upload(vec![5u8, 6, 7]);
        assert_eq!(stream.download(&buf).wait(), vec![5, 6, 7]);
        assert_eq!(device.stats().bytes_h2d(), 3);
        assert_eq!(device.stats().bytes_d2h(), 3);
    }

    #[test]
    fn alloc_is_stream_ordered() {
        let device = Device::new(2);
        let stream = device.stream();
        let buf = stream.alloc::<u32>(16);
        // The handle exists immediately, but length materializes in order.
        stream.synchronize();
        assert_eq!(buf.len(), 16);
    }

    #[test]
    fn kernel_launch_computes() {
        let device = Device::new(3);
        let stream = device.stream();
        let input = stream.upload((0..257i64).collect::<Vec<_>>());
        let out = stream.alloc::<i64>(257);
        stream.launch_map(LaunchConfig::for_threads(257), &out, move |ctx, slot| {
            *slot = input.read()[ctx.global_id()] * 2;
        });
        let result = stream.download(&out).wait();
        assert_eq!(result[0], 0);
        assert_eq!(result[256], 512);
    }

    #[test]
    fn scatter_launch_writes_ranges() {
        let device = Device::new(2);
        let stream = device.stream();
        let out = stream.alloc::<usize>(6);
        // Thread 0 owns [0..1), thread 1 owns [1..4), thread 2 owns [4..6).
        stream.launch_scatter(
            LaunchConfig::for_threads(3),
            &out,
            vec![0, 1, 4, 6],
            |ctx, slice| {
                for s in slice.iter_mut() {
                    *s = ctx.global_id() + 1;
                }
            },
        );
        assert_eq!(stream.download(&out).wait(), vec![1, 2, 2, 2, 3, 3]);
    }

    #[test]
    fn events_cross_streams() {
        let device = Device::new(2);
        let producer = device.stream();
        let consumer = device.stream();
        let flag = Arc::new(AtomicUsize::new(0));
        let event = Event::new();

        let f1 = Arc::clone(&flag);
        producer.enqueue(move |_| {
            std::thread::sleep(Duration::from_millis(20));
            f1.store(1, Ordering::SeqCst);
        });
        producer.record_event(&event);

        let f2 = Arc::clone(&flag);
        let observed = Arc::new(AtomicUsize::new(99));
        let obs = Arc::clone(&observed);
        consumer.wait_event(&event);
        consumer.enqueue(move |_| {
            obs.store(f2.load(Ordering::SeqCst), Ordering::SeqCst);
        });
        consumer.synchronize();
        assert_eq!(observed.load(Ordering::SeqCst), 1);
        assert!(event.is_set());
    }

    #[test]
    fn async_ops_overlap_host_work() {
        // The stream call returns before the work completes.
        let device = Device::new(2);
        let stream = device.stream();
        let started = std::time::Instant::now();
        stream.enqueue(|_| std::thread::sleep(Duration::from_millis(50)));
        let enqueue_latency = started.elapsed();
        assert!(enqueue_latency < Duration::from_millis(40));
        stream.synchronize();
        assert!(started.elapsed() >= Duration::from_millis(50));
    }

    #[test]
    fn drop_completes_queued_work() {
        let device = Device::new(2);
        let done = Arc::new(AtomicUsize::new(0));
        {
            let stream = device.stream();
            let d = Arc::clone(&done);
            stream.enqueue(move |_| {
                std::thread::sleep(Duration::from_millis(10));
                d.store(1, Ordering::SeqCst);
            });
        } // drop joins
        assert_eq!(done.load(Ordering::SeqCst), 1);
    }
}
