//! Asynchronous command streams and events.
//!
//! OpenDRC "utilizes asynchronous operations and \[a\] Stream Ordered
//! Memory Allocator to hide communication or computation latencies"
//! (§V-C). A [`Stream`] executes its operations in enqueue order on a
//! dedicated thread, so host code returns immediately from `upload` /
//! `launch_map` / `download` calls and overlaps its own work (e.g.
//! packing the next row's edges) with device work — the paper's
//! CPU/GPU latency-hiding pattern.
//!
//! # Failure model
//!
//! Streams fail the way CUDA streams do: the first error *poisons* the
//! stream (it is sticky), subsequent data operations are skipped, and
//! the error resurfaces from every later fallible call —
//! [`Stream::try_synchronize`], [`Pending::result`], and the `try_*`
//! enqueue methods. Control operations (event signalling) still
//! execute on a poisoned stream so waiters never deadlock. A poisoned
//! stream stays poisoned; recovery means retrying on a fresh stream
//! (streams are cheap). The legacy infallible methods are thin wrappers
//! that panic on device errors, which is the correct behavior for
//! callers that never install fault plans or budgets.

use std::sync::mpsc;
use std::sync::Arc;
use std::time::Instant;

use parking_lot::{Condvar, Mutex};

use crate::buffer::{DeviceBuffer, Pending, StallWatch};
use crate::device::{Device, LaunchConfig, ThreadCtx};
use crate::error::{TransferDirection, XpuError, XpuResult};

/// A boxed fallible device-side operation carried by a data command.
type DataJob = Box<dyn FnOnce(&Device) -> XpuResult<()> + Send>;

/// A stream command. Data commands are skipped once the stream is
/// poisoned and are subject to stall injection; control commands
/// (event signalling) always run. A fused command carries a batch of
/// sub-commands delivered to the worker in one send — one wake — while
/// each sub-command still runs under the exact per-op protocol
/// (sticky-skip, in-flight marking, fault ordinal tick), so fused and
/// unfused execution are observably identical apart from queue traffic.
enum Cmd {
    Data { op: &'static str, job: DataJob },
    Control(Box<dyn FnOnce(&Device) + Send>),
    Fused(Vec<Cmd>),
}

/// Executes one command on the stream worker; the single definition of
/// the per-op protocol (shared by plain and fused delivery, so fault
/// and watchdog behavior cannot diverge between them).
fn execute_cmd(
    cmd: Cmd,
    device: &Device,
    err: &ErrorSlot,
    in_flight: &Arc<Mutex<Option<(&'static str, Instant)>>>,
) {
    match cmd {
        Cmd::Control(f) => f(device),
        Cmd::Fused(cmds) => {
            for sub in cmds {
                execute_cmd(sub, device, err, in_flight);
            }
        }
        Cmd::Data { op, job } => {
            if err.lock().is_some() {
                // Poisoned: skip the job. Dropping it disconnects any
                // per-op sender, and the sticky error is already
                // visible.
                return;
            }
            // Mark the op in flight *before* the fault hook: an
            // injected hang sleeps in there and must be visible to
            // watchdogs.
            *in_flight.lock() = Some((op, Instant::now()));
            if let Some(e) = device.fault_stream_op(op) {
                // Injected stall: poison *before* the job (and its
                // senders) drops, so a disconnected Pending sees the
                // error.
                set_sticky(err, e);
                *in_flight.lock() = None;
                return;
            }
            if let Err(e) = job(device) {
                set_sticky(err, e);
            }
            *in_flight.lock() = None;
        }
    }
}

type ErrorSlot = Arc<Mutex<Option<XpuError>>>;

/// Records the stream's first error; later errors are dropped (sticky
/// semantics, like `cudaGetLastError` reporting the first failure).
fn set_sticky(slot: &ErrorSlot, e: XpuError) {
    let mut s = slot.lock();
    if s.is_none() {
        *s = Some(e);
    }
}

#[derive(Debug, Default)]
struct EventState {
    set: bool,
    err: Option<XpuError>,
}

/// A cross-stream synchronization point, mirroring `cudaEvent_t`.
///
/// Record the event on one stream, wait on it from another (or from the
/// host). The event is triggered when the recording stream reaches it.
/// An event recorded on a poisoned stream still triggers — carrying the
/// stream's sticky error, observable via [`Event::wait_result`] — so
/// waiters never deadlock on a failed stream.
#[derive(Clone, Debug, Default)]
pub struct Event {
    state: Arc<(Mutex<EventState>, Condvar)>,
}

impl Event {
    /// Creates an untriggered event.
    pub fn new() -> Self {
        Event::default()
    }

    /// Blocks the calling thread until the event triggers.
    pub fn wait(&self) {
        let (lock, cvar) = &*self.state;
        let mut state = lock.lock();
        while !state.set {
            cvar.wait(&mut state);
        }
    }

    /// Blocks until the event triggers, then reports the recording
    /// stream's sticky error, if it had one when the event fired.
    pub fn wait_result(&self) -> XpuResult<()> {
        let (lock, cvar) = &*self.state;
        let mut state = lock.lock();
        while !state.set {
            cvar.wait(&mut state);
        }
        match &state.err {
            None => Ok(()),
            Some(e) => Err(e.clone()),
        }
    }

    /// Returns `true` if the event has triggered.
    pub fn is_set(&self) -> bool {
        self.state.0.lock().set
    }

    /// Timed [`Event::wait_result`]: `None` when `timeout` elapses
    /// before the event triggers.
    pub(crate) fn wait_result_for(&self, timeout: std::time::Duration) -> Option<XpuResult<()>> {
        let (lock, cvar) = &*self.state;
        let deadline = Instant::now() + timeout;
        let mut state = lock.lock();
        while !state.set {
            let left = deadline
                .checked_duration_since(Instant::now())
                .filter(|d| !d.is_zero())?;
            let _ = cvar.wait_for(&mut state, left);
        }
        match &state.err {
            None => Some(Ok(())),
            Some(e) => Some(Err(e.clone())),
        }
    }

    fn set_with(&self, err: Option<XpuError>) {
        let (lock, cvar) = &*self.state;
        {
            let mut state = lock.lock();
            state.set = true;
            if state.err.is_none() {
                state.err = err;
            }
        }
        cvar.notify_all();
    }
}

/// An ordered asynchronous command queue on a [`Device`].
///
/// Operations enqueue and return immediately; they execute in order on
/// the stream's worker thread. [`Stream::synchronize`] blocks until the
/// queue drains. Dropping the stream waits for completion (the
/// destructor never drops queued work).
///
/// See the [module docs](self) for the failure model: errors are sticky
/// and recovery happens on a fresh stream.
///
/// # Examples
///
/// See the [crate-level example](crate).
#[derive(Debug)]
pub struct Stream {
    device: Device,
    err: ErrorSlot,
    /// The data operation currently executing on the worker (shared
    /// with watchdog-armed waits), with its start time.
    in_flight: Arc<Mutex<Option<(&'static str, Instant)>>>,
    tx: Option<mpsc::Sender<Cmd>>,
    worker: Option<std::thread::JoinHandle<()>>,
}

impl Stream {
    pub(crate) fn new(device: Device) -> Self {
        let (tx, rx) = mpsc::channel::<Cmd>();
        let worker_device = device.clone();
        let err: ErrorSlot = Arc::new(Mutex::new(None));
        // Streams requested after the run is cancelled are born
        // poisoned: every data op fails fast with `Cancelled`, so
        // recovery loops wind down instead of re-running work.
        if let Some(e) = device.cancel_error() {
            set_sticky(&err, e);
        }
        let in_flight: Arc<Mutex<Option<(&'static str, Instant)>>> = Arc::new(Mutex::new(None));
        let worker_err = Arc::clone(&err);
        let worker_in_flight = Arc::clone(&in_flight);
        let worker = std::thread::Builder::new()
            .name("xpu-stream".to_owned())
            .spawn(move || {
                while let Ok(cmd) = rx.recv() {
                    execute_cmd(cmd, &worker_device, &worker_err, &worker_in_flight);
                }
            })
            .expect("spawn stream worker");
        Stream {
            device,
            err,
            in_flight,
            tx: Some(tx),
            worker: Some(worker),
        }
    }

    /// The watchdog context for waits on this stream; `None` when the
    /// device has no watchdog armed.
    fn stall_watch(&self) -> Option<StallWatch> {
        self.device.watchdog().map(|limit| StallWatch {
            in_flight: Arc::clone(&self.in_flight),
            limit,
        })
    }

    /// The device this stream executes on.
    pub fn device(&self) -> &Device {
        &self.device
    }

    /// The stream's sticky error, if it has failed.
    pub fn error(&self) -> Option<XpuError> {
        self.err.lock().clone()
    }

    fn check_sticky(&self) -> XpuResult<()> {
        match self.error() {
            None => Ok(()),
            Some(e) => Err(e),
        }
    }

    fn submit(&self, cmd: Cmd) {
        self.tx
            .as_ref()
            .expect("stream channel open until drop")
            .send(cmd)
            .expect("stream worker alive until drop");
    }

    fn submit_data(&self, op: &'static str, job: DataJob) {
        self.submit(Cmd::Data { op, job });
    }

    /// Builds a stream-ordered allocation command without submitting
    /// it. All synchronous failure paths (sticky check, alloc fault,
    /// budget reservation) run here, on the caller thread, exactly as
    /// they would for an immediate enqueue — a fused batch observes the
    /// same errors at the same points.
    fn alloc_cmd<T>(&self, len: usize) -> XpuResult<(DeviceBuffer<T>, Cmd)>
    where
        T: Default + Clone + Send + Sync + 'static,
    {
        self.check_sticky()?;
        let bytes = len * std::mem::size_of::<T>();
        if let Some(e) = self.device.fault_alloc(bytes) {
            return Err(e);
        }
        let reservation = self.device.try_reserve(bytes)?;
        let buf: DeviceBuffer<T> = DeviceBuffer::reserved(reservation);
        let handle = buf.clone();
        let cmd = Cmd::Data {
            op: "alloc",
            job: Box::new(move |_| {
                handle.replace(vec![T::default(); len]);
                Ok(())
            }),
        };
        Ok((buf, cmd))
    }

    /// Fallible stream-ordered allocation: fails fast (without
    /// poisoning the stream) when the device's memory budget would be
    /// exceeded or an alloc fault is injected, like a `cudaMallocAsync`
    /// error return.
    pub fn try_alloc<T>(&self, len: usize) -> XpuResult<DeviceBuffer<T>>
    where
        T: Default + Clone + Send + Sync + 'static,
    {
        let (buf, cmd) = self.alloc_cmd(len)?;
        self.submit(cmd);
        Ok(buf)
    }

    /// Stream-ordered allocation: the buffer handle is returned
    /// immediately, but the allocation (default-initialization) happens
    /// in stream order, like `cudaMallocAsync`.
    ///
    /// # Panics
    ///
    /// Panics on device errors (budget exhaustion, poisoned stream);
    /// use [`Stream::try_alloc`] to recover instead.
    pub fn alloc<T>(&self, len: usize) -> DeviceBuffer<T>
    where
        T: Default + Clone + Send + Sync + 'static,
    {
        self.try_alloc(len)
            .unwrap_or_else(|e| panic!("device allocation failed: {e}"))
    }

    /// Fallible asynchronous host → device copy; fails fast on budget
    /// exhaustion or an injected transfer fault, leaving the stream
    /// healthy.
    pub fn try_upload<T>(&self, data: Vec<T>) -> XpuResult<DeviceBuffer<T>>
    where
        T: Send + Sync + 'static,
    {
        self.check_sticky()?;
        let bytes = data.len() * std::mem::size_of::<T>();
        if let Some(e) = self
            .device
            .fault_transfer(TransferDirection::HostToDevice, bytes)
        {
            return Err(e);
        }
        let reservation = self.device.try_reserve(bytes)?;
        let buf: DeviceBuffer<T> = DeviceBuffer::reserved(reservation);
        let handle = buf.clone();
        self.submit_data(
            "upload",
            Box::new(move |device| {
                device.stats().record_h2d(bytes);
                handle.replace(data);
                Ok(())
            }),
        );
        Ok(buf)
    }

    /// Asynchronous host → device copy; the host vector is moved into
    /// the operation (no use-after-free by construction).
    ///
    /// # Panics
    ///
    /// Panics on device errors; use [`Stream::try_upload`] to recover.
    pub fn upload<T>(&self, data: Vec<T>) -> DeviceBuffer<T>
    where
        T: Send + Sync + 'static,
    {
        self.try_upload(data)
            .unwrap_or_else(|e| panic!("device upload failed: {e}"))
    }

    /// Fallible zero-copy host → device upload: the device buffer
    /// aliases the shared host allocation instead of staging a private
    /// copy, so N streams uploading the same `Arc` move no bytes per
    /// call beyond the simulated transfer. The resulting buffer is
    /// read-only for kernels (writes panic), mirroring
    /// read-only-registered host memory.
    ///
    /// Transfer accounting, fault injection, and the memory budget
    /// behave exactly like [`Stream::try_upload`]: the simulated H2D
    /// transfer still happens — what is eliminated is the host-side
    /// staging clone.
    pub fn try_upload_shared<T>(&self, data: Arc<Vec<T>>) -> XpuResult<DeviceBuffer<T>>
    where
        T: Send + Sync + 'static,
    {
        let (buf, cmd) = self.upload_shared_cmd(data)?;
        self.submit(cmd);
        Ok(buf)
    }

    /// Builds a shared-upload command without submitting it; see
    /// [`Stream::alloc_cmd`] for the split.
    fn upload_shared_cmd<T>(&self, data: Arc<Vec<T>>) -> XpuResult<(DeviceBuffer<T>, Cmd)>
    where
        T: Send + Sync + 'static,
    {
        self.check_sticky()?;
        let bytes = data.len() * std::mem::size_of::<T>();
        if let Some(e) = self
            .device
            .fault_transfer(TransferDirection::HostToDevice, bytes)
        {
            return Err(e);
        }
        let reservation = self.device.try_reserve(bytes)?;
        let buf: DeviceBuffer<T> = DeviceBuffer::reserved(reservation);
        let handle = buf.clone();
        let cmd = Cmd::Data {
            op: "upload",
            job: Box::new(move |device| {
                device.stats().record_h2d(bytes);
                handle.replace_shared(data);
                Ok(())
            }),
        };
        Ok((buf, cmd))
    }

    /// Zero-copy host → device upload; see [`Stream::try_upload_shared`].
    ///
    /// # Panics
    ///
    /// Panics on device errors; use [`Stream::try_upload_shared`] to
    /// recover.
    pub fn upload_shared<T>(&self, data: Arc<Vec<T>>) -> DeviceBuffer<T>
    where
        T: Send + Sync + 'static,
    {
        self.try_upload_shared(data)
            .unwrap_or_else(|e| panic!("device upload failed: {e}"))
    }

    /// Fallible asynchronous device → host copy. The returned
    /// [`Pending`] resolves when the stream reaches this operation;
    /// if the stream fails first, [`Pending::result`] reports the
    /// sticky error instead of blocking forever.
    pub fn try_download<T>(&self, buf: &DeviceBuffer<T>) -> XpuResult<Pending<Vec<T>>>
    where
        T: Clone + Send + Sync + 'static,
    {
        let (pending, cmd) = self.download_cmd(buf)?;
        self.submit(cmd);
        Ok(pending)
    }

    /// Builds a download command without submitting it; see
    /// [`Stream::alloc_cmd`] for the split.
    fn download_cmd<T>(&self, buf: &DeviceBuffer<T>) -> XpuResult<(Pending<Vec<T>>, Cmd)>
    where
        T: Clone + Send + Sync + 'static,
    {
        self.check_sticky()?;
        let (tx, rx) = mpsc::channel();
        let handle = buf.clone();
        let err = Arc::clone(&self.err);
        let cmd = Cmd::Data {
            op: "download",
            job: Box::new(move |device| {
                let data = handle.to_vec();
                let bytes = data.len() * std::mem::size_of::<T>();
                if let Some(e) = device.fault_transfer(TransferDirection::DeviceToHost, bytes) {
                    // Poison before `tx` drops so the waiting Pending
                    // observes the error, not a bare disconnect.
                    set_sticky(&err, e.clone());
                    return Err(e);
                }
                device.stats().record_d2h(bytes);
                let _ = tx.send(data);
                Ok(())
            }),
        };
        let pending = Pending::with_watch(rx, Arc::clone(&self.err), self.stall_watch());
        Ok((pending, cmd))
    }

    /// Asynchronous device → host copy; the returned [`Pending`]
    /// resolves when the stream reaches this operation.
    ///
    /// # Panics
    ///
    /// Panics if the stream is already poisoned; use
    /// [`Stream::try_download`] to recover.
    pub fn download<T>(&self, buf: &DeviceBuffer<T>) -> Pending<Vec<T>>
    where
        T: Clone + Send + Sync + 'static,
    {
        self.try_download(buf)
            .unwrap_or_else(|e| panic!("device download failed: {e}"))
    }

    /// Fallibly enqueues a kernel launch where thread `i` owns `out[i]`
    /// (see [`Device::try_launch_map_blocking`]). Enqueueing succeeds
    /// on a healthy stream; a kernel panic during execution poisons the
    /// stream and surfaces from [`Stream::try_synchronize`] or any
    /// [`Pending::result`].
    pub fn try_launch_map<T, F>(
        &self,
        cfg: LaunchConfig,
        out: &DeviceBuffer<T>,
        kernel: F,
    ) -> XpuResult<()>
    where
        T: Send + Sync + 'static,
        F: Fn(ThreadCtx, &mut T) + Send + Sync + 'static,
    {
        let cmd = self.launch_map_cmd(cfg, out, kernel)?;
        self.submit(cmd);
        Ok(())
    }

    /// Builds a map-launch command without submitting it; see
    /// [`Stream::alloc_cmd`] for the split.
    fn launch_map_cmd<T, F>(
        &self,
        cfg: LaunchConfig,
        out: &DeviceBuffer<T>,
        kernel: F,
    ) -> XpuResult<Cmd>
    where
        T: Send + Sync + 'static,
        F: Fn(ThreadCtx, &mut T) + Send + Sync + 'static,
    {
        self.check_sticky()?;
        let out = out.clone();
        Ok(Cmd::Data {
            op: "launch_map",
            job: Box::new(move |device| device.try_launch_map_blocking(cfg, &out, kernel)),
        })
    }

    /// Fallibly enqueues a *tile* kernel launch: the kernel receives
    /// whole contiguous ranges of `out` instead of one call per element
    /// (see [`Device::try_launch_tiles_blocking`]).
    pub fn try_launch_tiles<T, F>(
        &self,
        cfg: LaunchConfig,
        out: &DeviceBuffer<T>,
        kernel: F,
    ) -> XpuResult<()>
    where
        T: Send + Sync + 'static,
        F: Fn(std::ops::Range<usize>, &mut [T]) + Send + Sync + 'static,
    {
        let cmd = self.launch_tiles_cmd(cfg, out, kernel)?;
        self.submit(cmd);
        Ok(())
    }

    /// Builds a tile-launch command without submitting it.
    fn launch_tiles_cmd<T, F>(
        &self,
        cfg: LaunchConfig,
        out: &DeviceBuffer<T>,
        kernel: F,
    ) -> XpuResult<Cmd>
    where
        T: Send + Sync + 'static,
        F: Fn(std::ops::Range<usize>, &mut [T]) + Send + Sync + 'static,
    {
        self.check_sticky()?;
        let out = out.clone();
        Ok(Cmd::Data {
            op: "launch_tiles",
            job: Box::new(move |device| device.try_launch_tiles_blocking(cfg, &out, kernel)),
        })
    }

    /// Fallibly enqueues a *scatter tile* kernel launch: the kernel
    /// receives contiguous tiles of per-thread output slices (see
    /// [`Device::try_launch_scatter_tiles_blocking`]).
    pub fn try_launch_scatter_tiles<T, F>(
        &self,
        cfg: LaunchConfig,
        out: &DeviceBuffer<T>,
        offsets: Vec<usize>,
        kernel: F,
    ) -> XpuResult<()>
    where
        T: Send + Sync + 'static,
        F: Fn(std::ops::Range<usize>, &mut [&mut [T]]) + Send + Sync + 'static,
    {
        let cmd = self.launch_scatter_tiles_cmd(cfg, out, offsets, kernel)?;
        self.submit(cmd);
        Ok(())
    }

    /// Builds a scatter-tile-launch command without submitting it.
    fn launch_scatter_tiles_cmd<T, F>(
        &self,
        cfg: LaunchConfig,
        out: &DeviceBuffer<T>,
        offsets: Vec<usize>,
        kernel: F,
    ) -> XpuResult<Cmd>
    where
        T: Send + Sync + 'static,
        F: Fn(std::ops::Range<usize>, &mut [&mut [T]]) + Send + Sync + 'static,
    {
        self.check_sticky()?;
        let out = out.clone();
        Ok(Cmd::Data {
            op: "launch_scatter_tiles",
            job: Box::new(move |device| {
                device.try_launch_scatter_tiles_blocking(cfg, &out, &offsets, kernel)
            }),
        })
    }

    /// Enqueues a kernel launch where thread `i` owns `out[i]`
    /// (see [`Device::launch_map_blocking`]).
    ///
    /// # Panics
    ///
    /// Panics if the stream is already poisoned; a kernel panic during
    /// execution poisons the stream and panics later waits.
    pub fn launch_map<T, F>(&self, cfg: LaunchConfig, out: &DeviceBuffer<T>, kernel: F)
    where
        T: Send + Sync + 'static,
        F: Fn(ThreadCtx, &mut T) + Send + Sync + 'static,
    {
        self.try_launch_map(cfg, out, kernel)
            .unwrap_or_else(|e| panic!("device launch failed: {e}"));
    }

    /// Fallibly enqueues a scatter kernel launch where thread `i` owns
    /// `out[offsets[i]..offsets[i + 1]]`
    /// (see [`Device::try_launch_scatter_blocking`]).
    pub fn try_launch_scatter<T, F>(
        &self,
        cfg: LaunchConfig,
        out: &DeviceBuffer<T>,
        offsets: Vec<usize>,
        kernel: F,
    ) -> XpuResult<()>
    where
        T: Send + Sync + 'static,
        F: Fn(ThreadCtx, &mut [T]) + Send + Sync + 'static,
    {
        self.check_sticky()?;
        let out = out.clone();
        self.submit_data(
            "launch_scatter",
            Box::new(move |device| device.try_launch_scatter_blocking(cfg, &out, &offsets, kernel)),
        );
        Ok(())
    }

    /// Enqueues a scatter kernel launch where thread `i` owns
    /// `out[offsets[i]..offsets[i + 1]]`
    /// (see [`Device::launch_scatter_blocking`]).
    ///
    /// # Panics
    ///
    /// Panics if the stream is already poisoned.
    pub fn launch_scatter<T, F>(
        &self,
        cfg: LaunchConfig,
        out: &DeviceBuffer<T>,
        offsets: Vec<usize>,
        kernel: F,
    ) where
        T: Send + Sync + 'static,
        F: Fn(ThreadCtx, &mut [T]) + Send + Sync + 'static,
    {
        self.try_launch_scatter(cfg, out, offsets, kernel)
            .unwrap_or_else(|e| panic!("device launch failed: {e}"));
    }

    /// Enqueues an arbitrary device-side operation (used by the scan
    /// primitives and by tests). Skipped if the stream is poisoned.
    pub fn enqueue<F>(&self, op: F)
    where
        F: FnOnce(&Device) + Send + 'static,
    {
        self.submit_data(
            "enqueue",
            Box::new(move |device| {
                op(device);
                Ok(())
            }),
        );
    }

    /// Records `event` in stream order: it triggers once all previously
    /// enqueued operations have completed. The event carries the
    /// stream's sticky error, if any, and fires even on a poisoned
    /// stream (a control operation), so waiters never deadlock.
    pub fn record_event(&self, event: &Event) {
        let cmd = self.record_event_cmd(event);
        self.submit(cmd);
    }

    /// Builds a record-event control command without submitting it.
    fn record_event_cmd(&self, event: &Event) -> Cmd {
        let event = event.clone();
        let err = Arc::clone(&self.err);
        Cmd::Control(Box::new(move |_| {
            event.set_with(err.lock().clone());
        }))
    }

    /// Makes this stream wait (in stream order) for `event`. A control
    /// operation: it preserves cross-stream ordering even when this
    /// stream is poisoned, and is never a fault-injection target.
    pub fn wait_event(&self, event: &Event) {
        self.submit(wait_event_cmd(event));
    }

    /// Opens a batched enqueue scope on this stream. With `fused =
    /// true`, commands pushed into the batch are packed into a single
    /// [`Cmd::Fused`] delivered to the worker in one send (one wake)
    /// when the batch flushes; with `fused = false` the batch is a pure
    /// passthrough submitting each command immediately, byte-identical
    /// to calling the stream methods directly — the unfused ablation.
    ///
    /// Dropping the batch flushes it, so early error returns leave the
    /// queue in the same state an unfused caller would have (commands
    /// built before the error are already committed to execute).
    pub fn batch(&self, fused: bool) -> LaunchBatch<'_> {
        LaunchBatch {
            stream: self,
            cmds: Vec::new(),
            fused,
            launches: 0,
        }
    }

    /// Blocks until every previously enqueued operation has completed
    /// or been skipped, then reports the stream's sticky error, if any
    /// — the fallible `cudaStreamSynchronize`.
    ///
    /// Under an armed watchdog ([`Device::set_watchdog`]) the wait
    /// polls the in-flight operation: an op stalled past the limit
    /// poisons the stream with [`XpuError::StreamTimeout`] and returns
    /// it immediately, without waiting for the stall to resolve.
    pub fn try_synchronize(&self) -> XpuResult<()> {
        let event = Event::new();
        self.record_event(&event);
        let Some(watch) = self.stall_watch() else {
            return event.wait_result();
        };
        loop {
            if let Some(result) = event.wait_result_for(watch.tick()) {
                return result;
            }
            if let Some(op) = watch.stalled_op() {
                let e = XpuError::StreamTimeout { op };
                set_sticky(&self.err, e.clone());
                return Err(e);
            }
        }
    }

    /// Blocks until every previously enqueued operation has completed,
    /// mirroring `cudaStreamSynchronize`.
    ///
    /// # Panics
    ///
    /// Panics if the stream failed; use [`Stream::try_synchronize`] to
    /// recover.
    pub fn synchronize(&self) {
        self.try_synchronize()
            .unwrap_or_else(|e| panic!("stream failed: {e}"));
    }
}

impl Drop for Stream {
    fn drop(&mut self) {
        // Close the channel, then join: queued work always completes.
        self.tx.take();
        if let Some(worker) = self.worker.take() {
            let _ = worker.join();
        }
    }
}

/// Builds a wait-event control command (free function: it does not
/// capture any stream state).
fn wait_event_cmd(event: &Event) -> Cmd {
    let event = event.clone();
    Cmd::Control(Box::new(move |_| event.wait()))
}

/// A batched enqueue scope created by [`Stream::batch`].
///
/// Mirrors the stream's fallible enqueue API; every synchronous check
/// (sticky error, fault ordinal, budget reservation) runs at the call,
/// on the caller thread, exactly as an immediate enqueue would — only
/// the handoff to the worker is deferred and packed. Flushing (or
/// dropping) a fused batch with two or more commands submits one
/// [`Cmd::Fused`] and credits the contained kernel launches to
/// [`DeviceStats::launches_fused`].
///
/// [`DeviceStats::launches_fused`]: crate::DeviceStats::launches_fused
pub struct LaunchBatch<'s> {
    stream: &'s Stream,
    cmds: Vec<Cmd>,
    fused: bool,
    launches: u64,
}

impl LaunchBatch<'_> {
    /// The stream this batch enqueues onto.
    pub fn stream(&self) -> &Stream {
        self.stream
    }

    fn push(&mut self, cmd: Cmd) {
        if self.fused {
            self.cmds.push(cmd);
        } else {
            self.stream.submit(cmd);
        }
    }

    /// Batched [`Stream::try_alloc`].
    pub fn try_alloc<T>(&mut self, len: usize) -> XpuResult<DeviceBuffer<T>>
    where
        T: Default + Clone + Send + Sync + 'static,
    {
        let (buf, cmd) = self.stream.alloc_cmd(len)?;
        self.push(cmd);
        Ok(buf)
    }

    /// Batched [`Stream::try_upload_shared`].
    pub fn try_upload_shared<T>(&mut self, data: Arc<Vec<T>>) -> XpuResult<DeviceBuffer<T>>
    where
        T: Send + Sync + 'static,
    {
        let (buf, cmd) = self.stream.upload_shared_cmd(data)?;
        self.push(cmd);
        Ok(buf)
    }

    /// Batched [`Stream::try_download`].
    pub fn try_download<T>(&mut self, buf: &DeviceBuffer<T>) -> XpuResult<Pending<Vec<T>>>
    where
        T: Clone + Send + Sync + 'static,
    {
        let (pending, cmd) = self.stream.download_cmd(buf)?;
        self.push(cmd);
        Ok(pending)
    }

    /// Batched [`Stream::try_launch_map`].
    pub fn try_launch_map<T, F>(
        &mut self,
        cfg: LaunchConfig,
        out: &DeviceBuffer<T>,
        kernel: F,
    ) -> XpuResult<()>
    where
        T: Send + Sync + 'static,
        F: Fn(ThreadCtx, &mut T) + Send + Sync + 'static,
    {
        let cmd = self.stream.launch_map_cmd(cfg, out, kernel)?;
        self.launches += 1;
        self.push(cmd);
        Ok(())
    }

    /// Batched [`Stream::try_launch_tiles`].
    pub fn try_launch_tiles<T, F>(
        &mut self,
        cfg: LaunchConfig,
        out: &DeviceBuffer<T>,
        kernel: F,
    ) -> XpuResult<()>
    where
        T: Send + Sync + 'static,
        F: Fn(std::ops::Range<usize>, &mut [T]) + Send + Sync + 'static,
    {
        let cmd = self.stream.launch_tiles_cmd(cfg, out, kernel)?;
        self.launches += 1;
        self.push(cmd);
        Ok(())
    }

    /// Batched [`Stream::try_launch_scatter_tiles`].
    pub fn try_launch_scatter_tiles<T, F>(
        &mut self,
        cfg: LaunchConfig,
        out: &DeviceBuffer<T>,
        offsets: Vec<usize>,
        kernel: F,
    ) -> XpuResult<()>
    where
        T: Send + Sync + 'static,
        F: Fn(std::ops::Range<usize>, &mut [&mut [T]]) + Send + Sync + 'static,
    {
        let cmd = self
            .stream
            .launch_scatter_tiles_cmd(cfg, out, offsets, kernel)?;
        self.launches += 1;
        self.push(cmd);
        Ok(())
    }

    /// Batched [`Stream::record_event`].
    pub fn record_event(&mut self, event: &Event) {
        let cmd = self.stream.record_event_cmd(event);
        self.push(cmd);
    }

    /// Batched [`Stream::wait_event`].
    pub fn wait_event(&mut self, event: &Event) {
        self.push(wait_event_cmd(event));
    }

    /// Submits everything accumulated so far. A single pending command
    /// is submitted plain (fusing it would only add wrapping); two or
    /// more are packed into one [`Cmd::Fused`].
    fn flush(&mut self) {
        if self.cmds.is_empty() {
            self.launches = 0;
            return;
        }
        let cmds = std::mem::take(&mut self.cmds);
        if cmds.len() == 1 {
            let cmd = cmds.into_iter().next().expect("len checked");
            self.stream.submit(cmd);
        } else {
            self.stream.device().stats().record_fused(self.launches);
            self.stream.submit(Cmd::Fused(cmds));
        }
        self.launches = 0;
    }

    /// Flushes and consumes the batch.
    pub fn commit(mut self) {
        self.flush();
    }
}

impl Drop for LaunchBatch<'_> {
    fn drop(&mut self) {
        self.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::time::Duration;

    #[test]
    fn operations_execute_in_order() {
        let device = Device::new(2);
        let stream = device.stream();
        let log = Arc::new(Mutex::new(Vec::new()));
        for i in 0..10 {
            let log = Arc::clone(&log);
            stream.enqueue(move |_| log.lock().push(i));
        }
        stream.synchronize();
        assert_eq!(*log.lock(), (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn upload_download_roundtrip() {
        let device = Device::new(2);
        let stream = device.stream();
        let buf = stream.upload(vec![5u8, 6, 7]);
        assert_eq!(stream.download(&buf).wait(), vec![5, 6, 7]);
        assert_eq!(device.stats().bytes_h2d(), 3);
        assert_eq!(device.stats().bytes_d2h(), 3);
    }

    #[test]
    fn shared_upload_aliases_host_memory() {
        let device = Device::new(2);
        let stream = device.stream();
        let host = Arc::new((0..64u32).collect::<Vec<_>>());
        let buf = stream.upload_shared(Arc::clone(&host));
        let out = stream.alloc::<u32>(64);
        let kernel_buf = buf.clone();
        stream.launch_map(LaunchConfig::for_threads(64), &out, move |ctx, slot| {
            *slot = kernel_buf.read()[ctx.global_id()] + 1;
        });
        let result = stream.download(&out).wait();
        assert_eq!(result[63], 64);
        // H2D bytes are still accounted (the transfer is simulated).
        assert_eq!(device.stats().bytes_h2d(), 64 * 4);
        // No staging copy: the host Arc is still aliased by the buffer
        // (one holder here, one inside the device buffer).
        assert_eq!(Arc::strong_count(&host), 2);
    }

    #[test]
    fn alloc_is_stream_ordered() {
        let device = Device::new(2);
        let stream = device.stream();
        let buf = stream.alloc::<u32>(16);
        // The handle exists immediately, but length materializes in order.
        stream.synchronize();
        assert_eq!(buf.len(), 16);
    }

    #[test]
    fn kernel_launch_computes() {
        let device = Device::new(3);
        let stream = device.stream();
        let input = stream.upload((0..257i64).collect::<Vec<_>>());
        let out = stream.alloc::<i64>(257);
        stream.launch_map(LaunchConfig::for_threads(257), &out, move |ctx, slot| {
            *slot = input.read()[ctx.global_id()] * 2;
        });
        let result = stream.download(&out).wait();
        assert_eq!(result[0], 0);
        assert_eq!(result[256], 512);
    }

    #[test]
    fn scatter_launch_writes_ranges() {
        let device = Device::new(2);
        let stream = device.stream();
        let out = stream.alloc::<usize>(6);
        // Thread 0 owns [0..1), thread 1 owns [1..4), thread 2 owns [4..6).
        stream.launch_scatter(
            LaunchConfig::for_threads(3),
            &out,
            vec![0, 1, 4, 6],
            |ctx, slice| {
                for s in slice.iter_mut() {
                    *s = ctx.global_id() + 1;
                }
            },
        );
        assert_eq!(stream.download(&out).wait(), vec![1, 2, 2, 2, 3, 3]);
    }

    #[test]
    fn events_cross_streams() {
        let device = Device::new(2);
        let producer = device.stream();
        let consumer = device.stream();
        let flag = Arc::new(AtomicUsize::new(0));
        let event = Event::new();

        let f1 = Arc::clone(&flag);
        producer.enqueue(move |_| {
            std::thread::sleep(Duration::from_millis(20));
            f1.store(1, Ordering::SeqCst);
        });
        producer.record_event(&event);

        let f2 = Arc::clone(&flag);
        let observed = Arc::new(AtomicUsize::new(99));
        let obs = Arc::clone(&observed);
        consumer.wait_event(&event);
        consumer.enqueue(move |_| {
            obs.store(f2.load(Ordering::SeqCst), Ordering::SeqCst);
        });
        consumer.synchronize();
        assert_eq!(observed.load(Ordering::SeqCst), 1);
        assert!(event.is_set());
        assert!(event.wait_result().is_ok());
    }

    #[test]
    fn async_ops_overlap_host_work() {
        // The stream call returns before the work completes.
        let device = Device::new(2);
        let stream = device.stream();
        let started = std::time::Instant::now();
        stream.enqueue(|_| std::thread::sleep(Duration::from_millis(50)));
        let enqueue_latency = started.elapsed();
        assert!(enqueue_latency < Duration::from_millis(40));
        stream.synchronize();
        assert!(started.elapsed() >= Duration::from_millis(50));
    }

    #[test]
    fn drop_completes_queued_work() {
        let device = Device::new(2);
        let done = Arc::new(AtomicUsize::new(0));
        {
            let stream = device.stream();
            let d = Arc::clone(&done);
            stream.enqueue(move |_| {
                std::thread::sleep(Duration::from_millis(10));
                d.store(1, Ordering::SeqCst);
            });
        } // drop joins
        assert_eq!(done.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn kernel_panic_poisons_stream() {
        let device = Device::new(2);
        let stream = device.stream();
        let buf = stream.alloc::<u32>(100);
        stream
            .try_launch_map(LaunchConfig::for_threads(100), &buf, |ctx, _| {
                if ctx.global_id() == 42 {
                    panic!("kernel bug");
                }
            })
            .expect("enqueue succeeds on a healthy stream");
        let err = stream.try_synchronize().unwrap_err();
        assert!(matches!(err, XpuError::KernelPanic { global_id: 42, .. }));
        // Sticky: later enqueues fail fast with the same error.
        assert!(stream.try_alloc::<u32>(1).is_err());
        assert!(stream.error().is_some());
        // A fresh stream on the same device works fine.
        let fresh = device.stream();
        let b2 = fresh.try_upload(vec![1u8, 2]).unwrap();
        assert_eq!(
            fresh.try_download(&b2).unwrap().result().unwrap(),
            vec![1, 2]
        );
    }

    #[test]
    fn pending_on_poisoned_stream_reports_error() {
        let device = Device::new(2);
        let stream = device.stream();
        let buf = stream.upload(vec![0u32; 10]);
        // Hold the worker until both the failing launch and the
        // download are enqueued: without the hold, the launch can
        // execute (and poison the stream) before `try_download` runs,
        // which would fail the enqueue fast instead of exercising the
        // skipped-job path this test is about.
        let (hold_tx, hold_rx) = mpsc::channel::<()>();
        stream.submit(Cmd::Control(Box::new(move |_| {
            let _ = hold_rx.recv();
        })));
        stream
            .try_launch_map(LaunchConfig::for_threads(10), &buf, |_, _| {
                panic!("boom");
            })
            .unwrap();
        // The download is enqueued after the failing launch: it gets
        // skipped, and the Pending resolves to the sticky error.
        let pending = stream.try_download(&buf).unwrap();
        hold_tx.send(()).unwrap();
        assert!(matches!(
            pending.result(),
            Err(XpuError::KernelPanic { .. })
        ));
    }

    #[test]
    fn fused_batch_matches_unfused_results() {
        let run = |fused: bool| -> (Vec<i64>, u64) {
            let device = Device::new(2);
            let stream = device.stream();
            let mut batch = stream.batch(fused);
            let input = batch
                .try_upload_shared(Arc::new((0..300i64).collect::<Vec<_>>()))
                .unwrap();
            let out = batch.try_alloc::<i64>(300).unwrap();
            batch
                .try_launch_tiles(
                    LaunchConfig::for_threads(300),
                    &out,
                    move |range, tile: &mut [i64]| {
                        let inp = input.read();
                        for (i, slot) in range.zip(tile.iter_mut()) {
                            *slot = inp[i] * 3;
                        }
                    },
                )
                .unwrap();
            let pending = batch.try_download(&out).unwrap();
            batch.commit();
            let data = pending.result().unwrap();
            (data, device.stats().launches_fused())
        };
        let (fused, fused_count) = run(true);
        let (unfused, unfused_count) = run(false);
        assert_eq!(fused, unfused);
        assert_eq!(fused[299], 897);
        assert_eq!(fused_count, 1, "fused batch credits its launch");
        assert_eq!(unfused_count, 0, "passthrough batch fuses nothing");
    }

    #[test]
    fn fused_batch_preserves_fault_ordinals() {
        use crate::fault::{Fault, FaultPlan};
        // Stall stream op #2 (the third alloc) in both modes: the
        // fused delivery must tick per-op ordinals identically.
        let run = |fused: bool| -> XpuError {
            let device = Device::new(2);
            device.set_fault_plan(Some(FaultPlan::new().with(Fault::StreamStall { nth: 2 })));
            let stream = device.stream();
            let mut batch = stream.batch(fused);
            let _a = batch.try_alloc::<u32>(8).unwrap(); // op 0
            let _b = batch.try_alloc::<u32>(8).unwrap(); // op 1
            let out = batch.try_alloc::<u32>(8).unwrap(); // op 2: stalls
            batch
                .try_launch_tiles(LaunchConfig::for_threads(8), &out, |_, _: &mut [u32]| {})
                .unwrap();
            batch.commit();
            stream.try_synchronize().unwrap_err()
        };
        let fused_err = run(true);
        let unfused_err = run(false);
        assert_eq!(fused_err, unfused_err);
        assert!(matches!(fused_err, XpuError::StreamTimeout { op: "alloc" }));
    }

    #[test]
    fn tile_launch_on_stream_computes() {
        let device = Device::new(3);
        let stream = device.stream();
        let out = stream.alloc::<u64>(1000);
        stream
            .try_launch_tiles(LaunchConfig::for_threads(1000), &out, |range, tile| {
                for (i, slot) in range.zip(tile.iter_mut()) {
                    *slot = (i * i) as u64;
                }
            })
            .unwrap();
        let data = stream.download(&out).wait();
        assert_eq!(data[31], 961);
        assert_eq!(device.stats().threads_executed(), 1000);
        assert_eq!(device.stats().kernels_launched(), 1);
    }

    #[test]
    fn scatter_tile_launch_writes_ranges() {
        let device = Device::new(2);
        let stream = device.stream();
        let out = stream.alloc::<usize>(6);
        stream
            .try_launch_scatter_tiles(
                LaunchConfig::for_threads(3),
                &out,
                vec![0, 1, 4, 6],
                |range, slices| {
                    for (i, slice) in range.zip(slices.iter_mut()) {
                        for s in slice.iter_mut() {
                            *s = i + 1;
                        }
                    }
                },
            )
            .unwrap();
        assert_eq!(stream.download(&out).wait(), vec![1, 2, 2, 2, 3, 3]);
    }

    #[test]
    #[should_panic(expected = "stream failed")]
    fn legacy_synchronize_panics_on_poisoned_stream() {
        let device = Device::new(2);
        let stream = device.stream();
        let buf = stream.alloc::<u8>(4);
        stream
            .try_launch_map(LaunchConfig::for_threads(4), &buf, |_, _| panic!("bug"))
            .unwrap();
        stream.synchronize();
    }

    #[test]
    fn watchdog_surfaces_genuine_hang_from_synchronize() {
        use crate::fault::{Fault, FaultPlan};
        let device = Device::new(2);
        device.set_fault_plan(Some(FaultPlan::new().with(Fault::StreamHang {
            nth: 0,
            millis: 300,
        })));
        device.set_watchdog(Some(Duration::from_millis(25)));
        let stream = device.stream();
        stream.enqueue(|_| {});
        let started = std::time::Instant::now();
        let err = stream.try_synchronize().unwrap_err();
        assert!(matches!(err, XpuError::StreamTimeout { op: "enqueue" }));
        assert!(
            started.elapsed() < Duration::from_millis(250),
            "watchdog must fire before the hang resolves"
        );
        // The stream is poisoned like any other stream failure.
        assert!(stream.error().is_some());
        assert_eq!(device.faults_injected(), 1);
        // A fresh stream works: the hang was one-shot.
        let fresh = device.stream();
        fresh.enqueue(|_| {});
        assert!(fresh.try_synchronize().is_ok());
    }

    #[test]
    fn watchdog_surfaces_genuine_hang_from_pending() {
        use crate::fault::{Fault, FaultPlan};
        let device = Device::new(2);
        device.set_fault_plan(Some(FaultPlan::new().with(Fault::StreamHang {
            nth: 1,
            millis: 300,
        })));
        device.set_watchdog(Some(Duration::from_millis(25)));
        let stream = device.stream();
        let buf = stream.upload(vec![1u8, 2, 3]); // op 0
        let pending = stream.try_download(&buf).unwrap(); // op 1: hangs
        let err = pending.result().unwrap_err();
        assert!(matches!(err, XpuError::StreamTimeout { op: "download" }));
        assert!(stream.error().is_some());
    }

    #[test]
    fn hang_without_watchdog_is_just_slow() {
        use crate::fault::{Fault, FaultPlan};
        let device = Device::new(2);
        device.set_fault_plan(Some(
            FaultPlan::new().with(Fault::StreamHang { nth: 0, millis: 30 }),
        ));
        let stream = device.stream();
        let buf = stream.upload(vec![7u8]);
        assert!(stream.try_synchronize().is_ok());
        assert_eq!(stream.download(&buf).wait(), vec![7]);
    }

    #[test]
    fn watchdog_passes_healthy_ops() {
        let device = Device::new(2);
        device.set_watchdog(Some(Duration::from_millis(200)));
        let stream = device.stream();
        let buf = stream.upload((0..512u32).collect::<Vec<_>>());
        let out = stream.alloc::<u32>(512);
        let input = buf.clone();
        stream.launch_map(LaunchConfig::for_threads(512), &out, move |ctx, slot| {
            *slot = input.read()[ctx.global_id()] + 1;
        });
        assert!(stream.try_synchronize().is_ok());
        assert_eq!(stream.try_download(&out).unwrap().result().unwrap()[10], 11);
    }

    #[test]
    fn cancelled_device_births_poisoned_streams() {
        use odrc_infra::{CancelReason, CancelToken};
        let device = Device::new(2);
        let token = CancelToken::new();
        device.set_cancel(Some(token.clone()));
        // Streams created before cancellation keep working.
        let before = device.stream();
        token.cancel(CancelReason::Interrupt);
        let b = before.try_upload(vec![1u8, 2]).unwrap();
        assert_eq!(
            before.try_download(&b).unwrap().result().unwrap(),
            vec![1, 2]
        );
        // Streams created after cancellation fail fast.
        let after = device.stream();
        assert_eq!(after.try_alloc::<u8>(4).unwrap_err(), XpuError::Cancelled);
        assert_eq!(after.error(), Some(XpuError::Cancelled));
        // Detaching the token restores normal stream creation.
        device.set_cancel(None);
        let detached = device.stream();
        assert!(detached.try_alloc::<u8>(4).is_ok());
    }

    #[test]
    fn event_carries_stream_error() {
        let device = Device::new(2);
        let stream = device.stream();
        let buf = stream.alloc::<u8>(4);
        stream
            .try_launch_map(LaunchConfig::for_threads(4), &buf, |_, _| panic!("bug"))
            .unwrap();
        let event = Event::new();
        stream.record_event(&event);
        assert!(event.wait_result().is_err());
        assert!(event.is_set());
    }
}
