//! The simulated SPMD device.

use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::buffer::DeviceBuffer;
use crate::error::{TransferDirection, XpuError, XpuResult};
use crate::fault::{FaultPlan, FaultState};
use crate::stream::Stream;

/// Per-thread identity inside a kernel launch, mirroring CUDA's
/// `blockIdx` / `threadIdx` / `blockDim` / `gridDim` built-ins.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ThreadCtx {
    /// Index of this thread's block within the grid.
    pub block_idx: usize,
    /// Index of this thread within its block.
    pub thread_idx: usize,
    /// Threads per block.
    pub block_dim: usize,
    /// Blocks in the grid.
    pub grid_dim: usize,
}

impl ThreadCtx {
    /// The flattened global thread id
    /// (`blockIdx.x * blockDim.x + threadIdx.x`).
    #[inline]
    pub fn global_id(&self) -> usize {
        self.block_idx * self.block_dim + self.thread_idx
    }

    /// Total threads in the launch.
    #[inline]
    pub fn total_threads(&self) -> usize {
        self.block_dim * self.grid_dim
    }
}

/// A kernel launch configuration: grid and block dimensions.
///
/// Launches are 1-D; the engine's edge kernels never need 2-D/3-D
/// shapes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaunchConfig {
    /// Blocks in the grid.
    pub grid_dim: usize,
    /// Threads per block.
    pub block_dim: usize,
}

impl LaunchConfig {
    /// The default CUDA-style block size.
    pub const DEFAULT_BLOCK: usize = 256;

    /// A config with at least `n` threads using the default block size
    /// (the usual `(n + B - 1) / B` grid computation).
    pub fn for_threads(n: usize) -> Self {
        Self::for_threads_with_block(n, Self::DEFAULT_BLOCK)
    }

    /// A config with at least `n` threads and the given block size.
    ///
    /// # Panics
    ///
    /// Panics if `block_dim` is zero.
    pub fn for_threads_with_block(n: usize, block_dim: usize) -> Self {
        assert!(block_dim > 0, "block dimension must be positive");
        LaunchConfig {
            grid_dim: n.div_ceil(block_dim).max(1),
            block_dim,
        }
    }

    /// Total threads launched.
    #[inline]
    pub fn total_threads(&self) -> usize {
        self.grid_dim * self.block_dim
    }
}

/// Cumulative device statistics, useful for asserting that work really
/// executed on the device (e.g. that copies were hidden behind compute).
#[derive(Debug, Default)]
pub struct DeviceStats {
    kernels_launched: AtomicU64,
    threads_executed: AtomicU64,
    bytes_h2d: AtomicU64,
    bytes_d2h: AtomicU64,
}

impl DeviceStats {
    /// Number of kernel launches so far.
    pub fn kernels_launched(&self) -> u64 {
        self.kernels_launched.load(Ordering::Relaxed)
    }

    /// Number of SPMD threads executed so far.
    pub fn threads_executed(&self) -> u64 {
        self.threads_executed.load(Ordering::Relaxed)
    }

    /// Bytes copied host → device.
    pub fn bytes_h2d(&self) -> u64 {
        self.bytes_h2d.load(Ordering::Relaxed)
    }

    /// Bytes copied device → host.
    pub fn bytes_d2h(&self) -> u64 {
        self.bytes_d2h.load(Ordering::Relaxed)
    }

    pub(crate) fn record_launch(&self, threads: usize) {
        self.kernels_launched.fetch_add(1, Ordering::Relaxed);
        self.threads_executed
            .fetch_add(threads as u64, Ordering::Relaxed);
    }

    pub(crate) fn record_h2d(&self, bytes: usize) {
        self.bytes_h2d.fetch_add(bytes as u64, Ordering::Relaxed);
    }

    pub(crate) fn record_d2h(&self, bytes: usize) {
        self.bytes_d2h.fetch_add(bytes as u64, Ordering::Relaxed);
    }
}

pub(crate) struct DeviceInner {
    workers: usize,
    stats: DeviceStats,
    /// Device-memory budget in bytes; `None` means unlimited.
    budget: Option<usize>,
    /// Bytes currently reserved by live stream-ordered buffers.
    mem_in_use: AtomicUsize,
    /// Deterministic ordinals addressed by [`FaultPlan`] entries.
    alloc_ordinal: AtomicU64,
    transfer_ordinal: AtomicU64,
    launch_ordinal: AtomicU64,
    stream_op_ordinal: AtomicU64,
    /// Installed fault schedule; `None` (the default) injects nothing.
    faults: Mutex<Option<FaultState>>,
    /// Fast-path flag mirroring `faults.is_some()` so the common
    /// fault-free case pays one relaxed load, not a mutex.
    faults_enabled: AtomicU64,
    /// Extra-thread budget shared with the host executor. When
    /// installed, kernel dispatch draws its worker threads from this
    /// gate so host fan-outs and device launches never add up past the
    /// configured host parallelism; `None` (the default) reproduces the
    /// ungated pool exactly.
    host_gate: Mutex<Option<Arc<odrc_infra::ThreadGate>>>,
    /// Stream watchdog limit in nanoseconds; 0 means no watchdog. Waits
    /// on streams of this device poll the in-flight operation and
    /// surface ops stalled past the limit as
    /// [`XpuError::StreamTimeout`](crate::XpuError::StreamTimeout).
    watchdog_nanos: AtomicU64,
    /// The run's cancel token. Streams created after cancellation are
    /// born poisoned with [`XpuError::Cancelled`](crate::XpuError::Cancelled),
    /// so retry/recovery loops fail fast during shutdown.
    cancel: Mutex<Option<odrc_infra::CancelToken>>,
}

/// A device-memory reservation held by a [`DeviceBuffer`]; releases its
/// bytes when the last buffer handle drops.
pub(crate) struct MemReservation {
    inner: Arc<DeviceInner>,
    bytes: usize,
}

impl fmt::Debug for MemReservation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "MemReservation({} bytes)", self.bytes)
    }
}

impl Drop for MemReservation {
    fn drop(&mut self) {
        self.inner
            .mem_in_use
            .fetch_sub(self.bytes, Ordering::Relaxed);
    }
}

/// The simulated SPMD device.
///
/// A `Device` is cheap to clone (it is a handle). Kernels launched on it
/// execute their threads in parallel across `workers` OS threads, in
/// SPMD style: every thread runs the same closure with its own
/// [`ThreadCtx`].
///
/// # Failure model
///
/// The fallible entry points (`try_*` on [`Stream`], and
/// [`Device::try_launch_map_blocking`] /
/// [`Device::try_launch_scatter_blocking`] here) return
/// [`XpuResult`]s; kernel panics are caught per SPMD thread, so one bad
/// thread fails the *launch*, never the worker pool. A configurable
/// memory budget ([`Device::with_budget`]) bounds stream-ordered
/// allocations, and a deterministic [`FaultPlan`]
/// ([`Device::set_fault_plan`]) injects seeded OOM / panic / stall /
/// transfer faults for testing recovery paths. The legacy infallible
/// methods remain and panic on device errors.
///
/// # Examples
///
/// See the [crate-level example](crate).
#[derive(Clone)]
pub struct Device {
    inner: Arc<DeviceInner>,
}

impl fmt::Debug for Device {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Device")
            .field("workers", &self.inner.workers)
            .field("kernels_launched", &self.stats().kernels_launched())
            .finish()
    }
}

impl Default for Device {
    /// A device sized to the host's available parallelism.
    fn default() -> Self {
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        Device::new(workers)
    }
}

impl Device {
    /// Creates a device with the given number of worker threads and no
    /// memory budget.
    ///
    /// # Panics
    ///
    /// Panics if `workers` is zero.
    pub fn new(workers: usize) -> Self {
        Device::build(workers, None)
    }

    /// Creates a device with a memory budget: stream-ordered
    /// allocations ([`Stream::try_alloc`], [`Stream::try_upload`]) that
    /// would push the total reserved bytes past `budget_bytes` fail
    /// with [`XpuError::Oom`]. Bytes are released when the last handle
    /// to a buffer drops.
    ///
    /// [`Stream::try_alloc`]: crate::Stream::try_alloc
    /// [`Stream::try_upload`]: crate::Stream::try_upload
    ///
    /// # Panics
    ///
    /// Panics if `workers` is zero.
    pub fn with_budget(workers: usize, budget_bytes: usize) -> Self {
        Device::build(workers, Some(budget_bytes))
    }

    fn build(workers: usize, budget: Option<usize>) -> Self {
        assert!(workers > 0, "device needs at least one worker");
        Device {
            inner: Arc::new(DeviceInner {
                workers,
                stats: DeviceStats::default(),
                budget,
                mem_in_use: AtomicUsize::new(0),
                alloc_ordinal: AtomicU64::new(0),
                transfer_ordinal: AtomicU64::new(0),
                launch_ordinal: AtomicU64::new(0),
                stream_op_ordinal: AtomicU64::new(0),
                faults: Mutex::new(None),
                faults_enabled: AtomicU64::new(0),
                host_gate: Mutex::new(None),
                watchdog_nanos: AtomicU64::new(0),
                cancel: Mutex::new(None),
            }),
        }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.inner.workers
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> &DeviceStats {
        &self.inner.stats
    }

    /// The configured memory budget in bytes, if any.
    pub fn budget(&self) -> Option<usize> {
        self.inner.budget
    }

    /// Bytes currently reserved by live stream-ordered buffers.
    pub fn mem_in_use(&self) -> usize {
        self.inner.mem_in_use.load(Ordering::Relaxed)
    }

    /// Installs (or with `None` removes) the extra-thread gate shared
    /// with the host executor — the pool-sizing handshake. While a gate
    /// is installed, kernel dispatch acquires its spawned threads from
    /// the gate (the dispatching thread always proceeds inline, so an
    /// exhausted gate degrades to sequential execution rather than
    /// deadlocking) and releases them when the launch completes.
    /// Without a gate the pre-existing ungated worker pool is used,
    /// bit-for-bit.
    pub fn set_host_gate(&self, gate: Option<Arc<odrc_infra::ThreadGate>>) {
        *self.inner.host_gate.lock() = gate;
    }

    /// Arms (or with `None` disarms) the stream watchdog: waits on this
    /// device's streams ([`Stream::try_synchronize`], [`Pending::result`])
    /// poll the stream's in-flight operation and surface any op stalled
    /// past `limit` as [`XpuError::StreamTimeout`] — poisoning the
    /// stream exactly like an injected stall, so the engine's
    /// retry-on-a-fresh-stream / CPU-fallback path handles genuine
    /// hangs the same way.
    ///
    /// The watchdog *detects* stalls; it cannot abort the wedged
    /// operation (neither can CUDA). The stalled op keeps the worker
    /// until it finishes, and dropping the stream joins the worker, so
    /// a truly infinite hang still blocks teardown — the policy is
    /// detect-and-route-around, not kill.
    ///
    /// [`Stream::try_synchronize`]: crate::Stream::try_synchronize
    /// [`Pending::result`]: crate::Pending::result
    pub fn set_watchdog(&self, limit: Option<std::time::Duration>) {
        let nanos = limit.map_or(0, |d| {
            u64::try_from(d.as_nanos()).unwrap_or(u64::MAX).max(1)
        });
        self.inner.watchdog_nanos.store(nanos, Ordering::Relaxed);
    }

    /// The armed watchdog limit, if any.
    pub fn watchdog(&self) -> Option<std::time::Duration> {
        match self.inner.watchdog_nanos.load(Ordering::Relaxed) {
            0 => None,
            n => Some(std::time::Duration::from_nanos(n)),
        }
    }

    /// Attaches (or with `None` detaches) the run's cancel token.
    /// Streams created while the token reports cancelled are born
    /// poisoned with [`XpuError::Cancelled`], so recovery loops that
    /// retry on fresh streams fail fast during shutdown instead of
    /// re-issuing work the run is about to discard. Streams that
    /// already exist are unaffected — in-flight work drains normally.
    pub fn set_cancel(&self, token: Option<odrc_infra::CancelToken>) {
        *self.inner.cancel.lock() = token;
    }

    /// `Some(XpuError::Cancelled)` once the attached token (if any)
    /// reports cancelled.
    pub(crate) fn cancel_error(&self) -> Option<XpuError> {
        self.inner
            .cancel
            .lock()
            .as_ref()
            .filter(|t| t.is_cancelled())
            .map(|_| XpuError::Cancelled)
    }

    /// Installs (or with `None` removes) a fault schedule at runtime.
    /// Replacing a plan resets nothing else: ordinals keep counting, so
    /// a plan installed mid-run addresses operations by their absolute
    /// device-wide index.
    pub fn set_fault_plan(&self, plan: Option<FaultPlan>) {
        let mut guard = self.inner.faults.lock();
        self.inner
            .faults_enabled
            .store(u64::from(plan.is_some()), Ordering::Relaxed);
        *guard = plan.map(FaultState::new);
    }

    /// Number of faults the installed plans have actually delivered.
    pub fn faults_injected(&self) -> u64 {
        self.inner
            .faults
            .lock()
            .as_ref()
            .map(|s| s.injected())
            .unwrap_or(0)
    }

    #[inline]
    fn faults_on(&self) -> bool {
        self.inner.faults_enabled.load(Ordering::Relaxed) != 0
    }

    /// Ticks the allocation ordinal and reports an injected OOM, if the
    /// plan schedules one here.
    pub(crate) fn fault_alloc(&self, requested: usize) -> Option<XpuError> {
        let n = self.inner.alloc_ordinal.fetch_add(1, Ordering::Relaxed);
        if !self.faults_on() {
            return None;
        }
        let fired = self
            .inner
            .faults
            .lock()
            .as_mut()
            .is_some_and(|s| s.take_alloc(n));
        fired.then(|| XpuError::Oom {
            requested,
            in_use: self.mem_in_use(),
            budget: self.inner.budget.unwrap_or(usize::MAX),
        })
    }

    /// Ticks the transfer ordinal and reports an injected transfer
    /// failure, if the plan schedules one here.
    pub(crate) fn fault_transfer(
        &self,
        direction: TransferDirection,
        bytes: usize,
    ) -> Option<XpuError> {
        let n = self.inner.transfer_ordinal.fetch_add(1, Ordering::Relaxed);
        if !self.faults_on() {
            return None;
        }
        let fired = self
            .inner
            .faults
            .lock()
            .as_mut()
            .is_some_and(|s| s.take_transfer(n));
        fired.then_some(XpuError::TransferError { direction, bytes })
    }

    /// Ticks the stream-op ordinal and reports an injected stall, if
    /// the plan schedules one here. A scheduled *hang*
    /// ([`Fault::StreamHang`]) sleeps for its duration right here — on
    /// the stream worker, with the op already marked in flight — so an
    /// armed watchdog observes a genuine stall; the op then proceeds
    /// normally.
    pub(crate) fn fault_stream_op(&self, op: &'static str) -> Option<XpuError> {
        let n = self.inner.stream_op_ordinal.fetch_add(1, Ordering::Relaxed);
        if !self.faults_on() {
            return None;
        }
        let (hang_millis, stalled) = match self.inner.faults.lock().as_mut() {
            Some(s) => (s.take_stream_hang(n), s.take_stream_op(n)),
            None => (None, false),
        };
        if let Some(millis) = hang_millis {
            std::thread::sleep(std::time::Duration::from_millis(millis));
        }
        stalled.then_some(XpuError::StreamTimeout { op })
    }

    /// Ticks the launch ordinal and returns `(ordinal, thread to panic
    /// in)` if the plan schedules a kernel fault for this launch.
    fn next_launch(&self, useful_threads: usize) -> (u64, Option<usize>) {
        let k = self.inner.launch_ordinal.fetch_add(1, Ordering::Relaxed);
        if !self.faults_on() {
            return (k, None);
        }
        let thread = self
            .inner
            .faults
            .lock()
            .as_mut()
            .and_then(|s| s.take_kernel(k, useful_threads));
        (k, thread)
    }

    /// Reserves `bytes` against the budget, failing with
    /// [`XpuError::Oom`] when the budget would be exceeded.
    pub(crate) fn try_reserve(&self, bytes: usize) -> XpuResult<Option<Arc<MemReservation>>> {
        let Some(budget) = self.inner.budget else {
            return Ok(None); // unlimited: skip the accounting entirely
        };
        // Optimistic reservation: add, then check, then roll back on
        // failure — correct under concurrent reservers.
        let prev = self.inner.mem_in_use.fetch_add(bytes, Ordering::Relaxed);
        if prev.saturating_add(bytes) > budget {
            self.inner.mem_in_use.fetch_sub(bytes, Ordering::Relaxed);
            return Err(XpuError::Oom {
                requested: bytes,
                in_use: prev,
                budget,
            });
        }
        Ok(Some(Arc::new(MemReservation {
            inner: Arc::clone(&self.inner),
            bytes,
        })))
    }

    /// Creates a new asynchronous command [`Stream`] on this device
    /// ("When OpenDRC starts, it creates CUDA stream objects that are
    /// responsible for asynchronous operations", §V-C).
    pub fn stream(&self) -> Stream {
        Stream::new(self.clone())
    }

    /// Fallible synchronous kernel launch where thread `i` receives
    /// exclusive access to `out[i]`.
    ///
    /// A panic in any SPMD thread — a genuine kernel bug or an injected
    /// [`Fault::KernelPanic`] — is caught per thread and surfaces as
    /// [`XpuError::KernelPanic`] carrying the launch ordinal and the
    /// first panicking global thread id. The worker pool survives; the
    /// device remains usable.
    ///
    /// [`Fault::KernelPanic`]: crate::Fault::KernelPanic
    ///
    /// # Panics
    ///
    /// Panics if the config provides fewer threads than `out.len()`
    /// (a programmer error, not a device fault).
    pub fn try_launch_map_blocking<T, F>(
        &self,
        cfg: LaunchConfig,
        out: &DeviceBuffer<T>,
        kernel: F,
    ) -> XpuResult<()>
    where
        T: Send + Sync,
        F: Fn(ThreadCtx, &mut T) + Send + Sync,
    {
        let mut guard = out.write();
        let slots: &mut [T] = &mut guard;
        assert!(
            cfg.total_threads() >= slots.len(),
            "launch config provides {} threads for {} outputs",
            cfg.total_threads(),
            slots.len()
        );
        let (launch_id, panic_thread) = self.next_launch(slots.len());
        self.inner.stats.record_launch(slots.len());
        let block_dim = cfg.block_dim;
        let grid_dim = cfg.grid_dim;
        let kernel = &kernel;
        let panicked: Mutex<Option<(usize, String)>> = Mutex::new(None);
        self.dispatch_slices(slots, |range, chunk: &mut [T]| {
            for (offset, slot) in range.zip(chunk.iter_mut()) {
                let ctx = ThreadCtx {
                    block_idx: offset / block_dim,
                    thread_idx: offset % block_dim,
                    block_dim,
                    grid_dim,
                };
                run_spmd_thread(
                    offset,
                    panic_thread,
                    launch_id,
                    &panicked,
                    std::panic::AssertUnwindSafe(|| kernel(ctx, slot)),
                );
            }
        });
        finish_launch(launch_id, panicked)
    }

    /// Synchronously launches a kernel where thread `i` receives
    /// exclusive access to `out[i]`.
    ///
    /// The number of useful threads is `out.len()`; surplus threads in
    /// the launch config (block-size round-up) are masked out, exactly
    /// like the `if (tid < n) return;` guard of CUDA kernels.
    ///
    /// Most callers go through [`Stream::launch_map`], which enqueues
    /// the launch asynchronously.
    ///
    /// # Panics
    ///
    /// Panics if the config provides fewer threads than `out.len()`, if
    /// the kernel reads its own output buffer (lock recursion), or if
    /// any kernel thread panics (see
    /// [`Device::try_launch_map_blocking`] for the recoverable form).
    pub fn launch_map_blocking<T, F>(&self, cfg: LaunchConfig, out: &DeviceBuffer<T>, kernel: F)
    where
        T: Send + Sync,
        F: Fn(ThreadCtx, &mut T) + Send + Sync,
    {
        if let Err(e) = self.try_launch_map_blocking(cfg, out, kernel) {
            panic!("device launch failed: {e}");
        }
    }

    /// Fallible synchronous *scatter* launch where thread `i` receives
    /// exclusive access to the slice `out[offsets[i]..offsets[i + 1]]`.
    /// See [`Device::try_launch_map_blocking`] for the failure model.
    ///
    /// # Panics
    ///
    /// Panics on malformed `offsets` or an undersized launch config
    /// (programmer errors, not device faults).
    pub fn try_launch_scatter_blocking<T, F>(
        &self,
        cfg: LaunchConfig,
        out: &DeviceBuffer<T>,
        offsets: &[usize],
        kernel: F,
    ) -> XpuResult<()>
    where
        T: Send + Sync,
        F: Fn(ThreadCtx, &mut [T]) + Send + Sync,
    {
        let n_threads = offsets.len().saturating_sub(1);
        assert!(
            cfg.total_threads() >= n_threads,
            "launch config provides {} threads for {} ranges",
            cfg.total_threads(),
            n_threads
        );
        let mut guard = out.write();
        let mut rest: &mut [T] = &mut guard;
        let total = rest.len();
        assert!(
            offsets.last().copied().unwrap_or(0) <= total,
            "offsets end past the output buffer"
        );
        // Slice the output into per-thread disjoint ranges up front; the
        // split is sequential but O(n_threads) and cheap.
        let mut slices: Vec<&mut [T]> = Vec::with_capacity(n_threads);
        let mut consumed = 0usize;
        for w in offsets.windows(2) {
            let (lo, hi) = (w[0], w[1]);
            assert!(lo <= hi, "offsets must be non-decreasing");
            let (skip, tail) = rest.split_at_mut(lo - consumed);
            debug_assert!(skip.is_empty() || lo > consumed);
            let (mine, tail) = tail.split_at_mut(hi - lo);
            slices.push(mine);
            rest = tail;
            consumed = hi;
        }
        let (launch_id, panic_thread) = self.next_launch(n_threads);
        self.inner.stats.record_launch(n_threads);
        let block_dim = cfg.block_dim;
        let grid_dim = cfg.grid_dim;
        let kernel = &kernel;
        let panicked: Mutex<Option<(usize, String)>> = Mutex::new(None);
        self.dispatch_slices(&mut slices, |range, chunk: &mut [&mut [T]]| {
            for (offset, slice) in range.zip(chunk.iter_mut()) {
                let ctx = ThreadCtx {
                    block_idx: offset / block_dim,
                    thread_idx: offset % block_dim,
                    block_dim,
                    grid_dim,
                };
                run_spmd_thread(
                    offset,
                    panic_thread,
                    launch_id,
                    &panicked,
                    std::panic::AssertUnwindSafe(|| kernel(ctx, slice)),
                );
            }
        });
        finish_launch(launch_id, panicked)
    }

    /// Synchronously launches a *scatter* kernel where thread `i`
    /// receives exclusive access to the slice
    /// `out[offsets[i]..offsets[i + 1]]`.
    ///
    /// This is the output pattern of the second phase of the parallel
    /// sweepline (§IV-E): a prefix-sum of per-thread counts determines
    /// each thread's private output range.
    ///
    /// # Panics
    ///
    /// Panics if `offsets` is not monotonically non-decreasing, if its
    /// last entry exceeds `out.len()`, if the config provides fewer
    /// threads than `offsets.len() - 1`, or if any kernel thread
    /// panics (see [`Device::try_launch_scatter_blocking`]).
    pub fn launch_scatter_blocking<T, F>(
        &self,
        cfg: LaunchConfig,
        out: &DeviceBuffer<T>,
        offsets: &[usize],
        kernel: F,
    ) where
        T: Send + Sync,
        F: Fn(ThreadCtx, &mut [T]) + Send + Sync,
    {
        if let Err(e) = self.try_launch_scatter_blocking(cfg, out, offsets, kernel) {
            panic!("device launch failed: {e}");
        }
    }

    /// Runs `body(start_index, chunk)` for contiguous chunks of `work`
    /// distributed over the worker pool.
    pub(crate) fn dispatch_slices<T, F>(&self, work: &mut [T], body: F)
    where
        T: Send,
        F: Fn(std::ops::Range<usize>, &mut [T]) + Send + Sync,
    {
        let n = work.len();
        if n == 0 {
            return;
        }
        let workers = self.inner.workers.min(n);
        if workers == 1 {
            body(0..n, work);
            return;
        }
        let gate = self.inner.host_gate.lock().clone();
        let Some(gate) = gate else {
            // No handshake installed: the original ungated pool.
            let chunk_size = n.div_ceil(workers);
            std::thread::scope(|scope| {
                let mut start = 0usize;
                let body = &body;
                for chunk in work.chunks_mut(chunk_size) {
                    let range = start..start + chunk.len();
                    start += chunk.len();
                    scope.spawn(move || body(range, chunk));
                }
            });
            return;
        };
        // Gated: spawned threads come out of the shared host budget and
        // the dispatching thread works a chunk itself, so a launch uses
        // at most `1 + acquired` threads and never oversubscribes.
        let extra = gate.try_acquire(workers - 1);
        if extra == 0 {
            body(0..n, work);
            return;
        }
        let chunk_size = n.div_ceil(extra + 1);
        let mut parts: Vec<(std::ops::Range<usize>, &mut [T])> = Vec::new();
        let mut start = 0usize;
        for chunk in work.chunks_mut(chunk_size) {
            let range = start..start + chunk.len();
            start += chunk.len();
            parts.push((range, chunk));
        }
        let own = parts.pop();
        std::thread::scope(|scope| {
            let body = &body;
            for (range, chunk) in parts {
                scope.spawn(move || body(range, chunk));
            }
            if let Some((range, chunk)) = own {
                body(range, chunk);
            }
        });
        gate.release(extra);
    }
}

/// Executes one SPMD thread with a per-thread panic boundary: a panic
/// (genuine or injected) is recorded in `panicked` instead of
/// propagating into the worker pool. Only the first panic is kept.
fn run_spmd_thread<F: FnOnce()>(
    global_id: usize,
    injected_panic_thread: Option<usize>,
    launch_id: u64,
    panicked: &Mutex<Option<(usize, String)>>,
    body: std::panic::AssertUnwindSafe<F>,
) {
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        if injected_panic_thread == Some(global_id) {
            panic!("injected fault: kernel #{launch_id} thread {global_id}");
        }
        let std::panic::AssertUnwindSafe(f) = body;
        f();
    }));
    if let Err(payload) = result {
        let message = panic_message(payload.as_ref());
        let mut slot = panicked.lock();
        if slot.is_none() {
            *slot = Some((global_id, message));
        }
    }
}

/// Converts the first recorded SPMD-thread panic into the launch error.
fn finish_launch(launch_id: u64, panicked: Mutex<Option<(usize, String)>>) -> XpuResult<()> {
    match panicked.into_inner() {
        None => Ok(()),
        Some((global_id, message)) => Err(XpuError::KernelPanic {
            kernel: launch_id,
            global_id,
            message,
        }),
    }
}

/// Stringifies a panic payload (`&str` and `String` payloads cover
/// `panic!` and runtime panics; anything else gets a placeholder).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::Fault;

    #[test]
    fn launch_config_round_up() {
        let cfg = LaunchConfig::for_threads(1000);
        assert_eq!(cfg.block_dim, 256);
        assert_eq!(cfg.grid_dim, 4);
        assert_eq!(cfg.total_threads(), 1024);
        let one = LaunchConfig::for_threads(0);
        assert_eq!(one.grid_dim, 1);
    }

    #[test]
    #[should_panic(expected = "block dimension")]
    fn zero_block_panics() {
        let _ = LaunchConfig::for_threads_with_block(10, 0);
    }

    #[test]
    fn thread_ctx_global_id() {
        let ctx = ThreadCtx {
            block_idx: 3,
            thread_idx: 17,
            block_dim: 256,
            grid_dim: 8,
        };
        assert_eq!(ctx.global_id(), 3 * 256 + 17);
        assert_eq!(ctx.total_threads(), 2048);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_panics() {
        let _ = Device::new(0);
    }

    #[test]
    fn launch_map_validates_thread_count() {
        let d = Device::new(2);
        let buf = crate::buffer::DeviceBuffer::from_vec(vec![0u8; 10]);
        let cfg = LaunchConfig {
            grid_dim: 1,
            block_dim: 4, // 4 threads for 10 outputs
        };
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            d.launch_map_blocking(cfg, &buf, |_, _| {});
        }));
        assert!(result.is_err(), "undersized launch must panic");
    }

    #[test]
    fn launch_scatter_validates_offsets() {
        let d = Device::new(2);
        let buf = crate::buffer::DeviceBuffer::from_vec(vec![0u8; 4]);
        // Non-monotonic offsets.
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            d.launch_scatter_blocking(LaunchConfig::for_threads(2), &buf, &[0, 3, 1], |_, _| {});
        }));
        assert!(result.is_err());
        // Offsets past the buffer end.
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            d.launch_scatter_blocking(LaunchConfig::for_threads(2), &buf, &[0, 2, 9], |_, _| {});
        }));
        assert!(result.is_err());
    }

    #[test]
    fn launch_scatter_empty_ranges_ok() {
        let d = Device::new(2);
        let buf = crate::buffer::DeviceBuffer::from_vec(vec![0u32; 3]);
        // Threads 0 and 2 own nothing; thread 1 owns everything.
        d.launch_scatter_blocking(
            LaunchConfig::for_threads(3),
            &buf,
            &[0, 0, 3, 3],
            |ctx, slice| {
                for s in slice.iter_mut() {
                    *s = ctx.global_id() as u32 + 1;
                }
            },
        );
        assert_eq!(buf.to_vec(), vec![2, 2, 2]);
    }

    #[test]
    fn stats_accumulate() {
        let d = Device::new(2);
        let s = d.stream();
        let buf = s.alloc::<u64>(100);
        s.launch_map(LaunchConfig::for_threads(100), &buf, |ctx, out| {
            *out = ctx.global_id() as u64;
        });
        s.synchronize();
        assert_eq!(d.stats().kernels_launched(), 1);
        assert_eq!(d.stats().threads_executed(), 100);
    }

    #[test]
    fn genuine_kernel_panic_is_caught() {
        let d = Device::new(3);
        let buf = DeviceBuffer::from_vec(vec![0u32; 600]);
        let err = d
            .try_launch_map_blocking(LaunchConfig::for_threads(600), &buf, |ctx, out| {
                if ctx.global_id() == 300 {
                    panic!("boom at {}", ctx.global_id());
                }
                *out = 1;
            })
            .unwrap_err();
        match err {
            XpuError::KernelPanic {
                global_id, message, ..
            } => {
                assert_eq!(global_id, 300);
                assert!(message.contains("boom"));
            }
            other => panic!("expected KernelPanic, got {other:?}"),
        }
        // The pool survived: the device still launches fine.
        d.launch_map_blocking(LaunchConfig::for_threads(600), &buf, |_, out| *out = 2);
        assert!(buf.to_vec().iter().all(|&v| v == 2));
    }

    #[test]
    fn injected_kernel_panic_names_kernel_and_thread() {
        let d = Device::new(2);
        d.set_fault_plan(Some(FaultPlan::new().with(Fault::KernelPanic {
            kernel: 0,
            thread: 5,
        })));
        let buf = DeviceBuffer::from_vec(vec![0u8; 16]);
        let err = d
            .try_launch_map_blocking(LaunchConfig::for_threads(16), &buf, |_, _| {})
            .unwrap_err();
        assert_eq!(
            err,
            XpuError::KernelPanic {
                kernel: 0,
                global_id: 5,
                message: "injected fault: kernel #0 thread 5".to_owned(),
            }
        );
        assert_eq!(d.faults_injected(), 1);
        // Consumed: the next launch succeeds.
        assert!(d
            .try_launch_map_blocking(LaunchConfig::for_threads(16), &buf, |_, _| {})
            .is_ok());
    }

    #[test]
    fn budget_reserve_and_release() {
        let d = Device::with_budget(2, 1000);
        let r1 = d.try_reserve(600).unwrap();
        assert_eq!(d.mem_in_use(), 600);
        let err = d.try_reserve(600).unwrap_err();
        assert!(matches!(err, XpuError::Oom { requested: 600, .. }));
        drop(r1);
        assert_eq!(d.mem_in_use(), 0);
        assert!(d.try_reserve(600).is_ok());
    }

    #[test]
    fn unlimited_device_skips_accounting() {
        let d = Device::new(1);
        assert!(d.try_reserve(usize::MAX).unwrap().is_none());
        assert_eq!(d.mem_in_use(), 0);
    }
}
