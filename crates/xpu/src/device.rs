//! The simulated SPMD device.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::buffer::DeviceBuffer;
use crate::stream::Stream;

/// Per-thread identity inside a kernel launch, mirroring CUDA's
/// `blockIdx` / `threadIdx` / `blockDim` / `gridDim` built-ins.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ThreadCtx {
    /// Index of this thread's block within the grid.
    pub block_idx: usize,
    /// Index of this thread within its block.
    pub thread_idx: usize,
    /// Threads per block.
    pub block_dim: usize,
    /// Blocks in the grid.
    pub grid_dim: usize,
}

impl ThreadCtx {
    /// The flattened global thread id
    /// (`blockIdx.x * blockDim.x + threadIdx.x`).
    #[inline]
    pub fn global_id(&self) -> usize {
        self.block_idx * self.block_dim + self.thread_idx
    }

    /// Total threads in the launch.
    #[inline]
    pub fn total_threads(&self) -> usize {
        self.block_dim * self.grid_dim
    }
}

/// A kernel launch configuration: grid and block dimensions.
///
/// Launches are 1-D; the engine's edge kernels never need 2-D/3-D
/// shapes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaunchConfig {
    /// Blocks in the grid.
    pub grid_dim: usize,
    /// Threads per block.
    pub block_dim: usize,
}

impl LaunchConfig {
    /// The default CUDA-style block size.
    pub const DEFAULT_BLOCK: usize = 256;

    /// A config with at least `n` threads using the default block size
    /// (the usual `(n + B - 1) / B` grid computation).
    pub fn for_threads(n: usize) -> Self {
        Self::for_threads_with_block(n, Self::DEFAULT_BLOCK)
    }

    /// A config with at least `n` threads and the given block size.
    ///
    /// # Panics
    ///
    /// Panics if `block_dim` is zero.
    pub fn for_threads_with_block(n: usize, block_dim: usize) -> Self {
        assert!(block_dim > 0, "block dimension must be positive");
        LaunchConfig {
            grid_dim: n.div_ceil(block_dim).max(1),
            block_dim,
        }
    }

    /// Total threads launched.
    #[inline]
    pub fn total_threads(&self) -> usize {
        self.grid_dim * self.block_dim
    }
}

/// Cumulative device statistics, useful for asserting that work really
/// executed on the device (e.g. that copies were hidden behind compute).
#[derive(Debug, Default)]
pub struct DeviceStats {
    kernels_launched: AtomicU64,
    threads_executed: AtomicU64,
    bytes_h2d: AtomicU64,
    bytes_d2h: AtomicU64,
}

impl DeviceStats {
    /// Number of kernel launches so far.
    pub fn kernels_launched(&self) -> u64 {
        self.kernels_launched.load(Ordering::Relaxed)
    }

    /// Number of SPMD threads executed so far.
    pub fn threads_executed(&self) -> u64 {
        self.threads_executed.load(Ordering::Relaxed)
    }

    /// Bytes copied host → device.
    pub fn bytes_h2d(&self) -> u64 {
        self.bytes_h2d.load(Ordering::Relaxed)
    }

    /// Bytes copied device → host.
    pub fn bytes_d2h(&self) -> u64 {
        self.bytes_d2h.load(Ordering::Relaxed)
    }

    pub(crate) fn record_launch(&self, threads: usize) {
        self.kernels_launched.fetch_add(1, Ordering::Relaxed);
        self.threads_executed
            .fetch_add(threads as u64, Ordering::Relaxed);
    }

    pub(crate) fn record_h2d(&self, bytes: usize) {
        self.bytes_h2d.fetch_add(bytes as u64, Ordering::Relaxed);
    }

    pub(crate) fn record_d2h(&self, bytes: usize) {
        self.bytes_d2h.fetch_add(bytes as u64, Ordering::Relaxed);
    }
}

struct DeviceInner {
    workers: usize,
    stats: DeviceStats,
}

/// The simulated SPMD device.
///
/// A `Device` is cheap to clone (it is a handle). Kernels launched on it
/// execute their threads in parallel across `workers` OS threads, in
/// SPMD style: every thread runs the same closure with its own
/// [`ThreadCtx`].
///
/// # Examples
///
/// See the [crate-level example](crate).
#[derive(Clone)]
pub struct Device {
    inner: Arc<DeviceInner>,
}

impl fmt::Debug for Device {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Device")
            .field("workers", &self.inner.workers)
            .field("kernels_launched", &self.stats().kernels_launched())
            .finish()
    }
}

impl Default for Device {
    /// A device sized to the host's available parallelism.
    fn default() -> Self {
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        Device::new(workers)
    }
}

impl Device {
    /// Creates a device with the given number of worker threads.
    ///
    /// # Panics
    ///
    /// Panics if `workers` is zero.
    pub fn new(workers: usize) -> Self {
        assert!(workers > 0, "device needs at least one worker");
        Device {
            inner: Arc::new(DeviceInner {
                workers,
                stats: DeviceStats::default(),
            }),
        }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.inner.workers
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> &DeviceStats {
        &self.inner.stats
    }

    /// Creates a new asynchronous command [`Stream`] on this device
    /// ("When OpenDRC starts, it creates CUDA stream objects that are
    /// responsible for asynchronous operations", §V-C).
    pub fn stream(&self) -> Stream {
        Stream::new(self.clone())
    }

    /// Synchronously launches a kernel where thread `i` receives
    /// exclusive access to `out[i]`.
    ///
    /// The number of useful threads is `out.len()`; surplus threads in
    /// the launch config (block-size round-up) are masked out, exactly
    /// like the `if (tid < n) return;` guard of CUDA kernels.
    ///
    /// Most callers go through [`Stream::launch_map`], which enqueues
    /// the launch asynchronously.
    ///
    /// # Panics
    ///
    /// Panics if the config provides fewer threads than `out.len()`, or
    /// if the kernel reads its own output buffer (lock recursion).
    pub fn launch_map_blocking<T, F>(&self, cfg: LaunchConfig, out: &DeviceBuffer<T>, kernel: F)
    where
        T: Send + Sync,
        F: Fn(ThreadCtx, &mut T) + Send + Sync,
    {
        let mut guard = out.write();
        let slots: &mut [T] = &mut guard;
        assert!(
            cfg.total_threads() >= slots.len(),
            "launch config provides {} threads for {} outputs",
            cfg.total_threads(),
            slots.len()
        );
        self.inner.stats.record_launch(slots.len());
        let block_dim = cfg.block_dim;
        let grid_dim = cfg.grid_dim;
        let kernel = &kernel;
        self.dispatch_slices(slots, |range, chunk: &mut [T]| {
            for (offset, slot) in range.zip(chunk.iter_mut()) {
                let ctx = ThreadCtx {
                    block_idx: offset / block_dim,
                    thread_idx: offset % block_dim,
                    block_dim,
                    grid_dim,
                };
                kernel(ctx, slot);
            }
        });
    }

    /// Synchronously launches a *scatter* kernel where thread `i`
    /// receives exclusive access to the slice
    /// `out[offsets[i]..offsets[i + 1]]`.
    ///
    /// This is the output pattern of the second phase of the parallel
    /// sweepline (§IV-E): a prefix-sum of per-thread counts determines
    /// each thread's private output range.
    ///
    /// # Panics
    ///
    /// Panics if `offsets` is not monotonically non-decreasing, if its
    /// last entry exceeds `out.len()`, or if the config provides fewer
    /// threads than `offsets.len() - 1`.
    pub fn launch_scatter_blocking<T, F>(
        &self,
        cfg: LaunchConfig,
        out: &DeviceBuffer<T>,
        offsets: &[usize],
        kernel: F,
    ) where
        T: Send + Sync,
        F: Fn(ThreadCtx, &mut [T]) + Send + Sync,
    {
        let n_threads = offsets.len().saturating_sub(1);
        assert!(
            cfg.total_threads() >= n_threads,
            "launch config provides {} threads for {} ranges",
            cfg.total_threads(),
            n_threads
        );
        let mut guard = out.write();
        let mut rest: &mut [T] = &mut guard;
        let total = rest.len();
        assert!(
            offsets.last().copied().unwrap_or(0) <= total,
            "offsets end past the output buffer"
        );
        // Slice the output into per-thread disjoint ranges up front; the
        // split is sequential but O(n_threads) and cheap.
        let mut slices: Vec<&mut [T]> = Vec::with_capacity(n_threads);
        let mut consumed = 0usize;
        for w in offsets.windows(2) {
            let (lo, hi) = (w[0], w[1]);
            assert!(lo <= hi, "offsets must be non-decreasing");
            let (skip, tail) = rest.split_at_mut(lo - consumed);
            debug_assert!(skip.is_empty() || lo > consumed);
            let (mine, tail) = tail.split_at_mut(hi - lo);
            slices.push(mine);
            rest = tail;
            consumed = hi;
        }
        self.inner.stats.record_launch(n_threads);
        let block_dim = cfg.block_dim;
        let grid_dim = cfg.grid_dim;
        let kernel = &kernel;
        self.dispatch_slices(&mut slices, |range, chunk: &mut [&mut [T]]| {
            for (offset, slice) in range.zip(chunk.iter_mut()) {
                let ctx = ThreadCtx {
                    block_idx: offset / block_dim,
                    thread_idx: offset % block_dim,
                    block_dim,
                    grid_dim,
                };
                kernel(ctx, slice);
            }
        });
    }

    /// Runs `body(start_index, chunk)` for contiguous chunks of `work`
    /// distributed over the worker pool.
    pub(crate) fn dispatch_slices<T, F>(&self, work: &mut [T], body: F)
    where
        T: Send,
        F: Fn(std::ops::Range<usize>, &mut [T]) + Send + Sync,
    {
        let n = work.len();
        if n == 0 {
            return;
        }
        let workers = self.inner.workers.min(n);
        let chunk_size = n.div_ceil(workers);
        if workers == 1 {
            body(0..n, work);
            return;
        }
        std::thread::scope(|scope| {
            let mut start = 0usize;
            let body = &body;
            for chunk in work.chunks_mut(chunk_size) {
                let range = start..start + chunk.len();
                start += chunk.len();
                scope.spawn(move || body(range, chunk));
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn launch_config_round_up() {
        let cfg = LaunchConfig::for_threads(1000);
        assert_eq!(cfg.block_dim, 256);
        assert_eq!(cfg.grid_dim, 4);
        assert_eq!(cfg.total_threads(), 1024);
        let one = LaunchConfig::for_threads(0);
        assert_eq!(one.grid_dim, 1);
    }

    #[test]
    #[should_panic(expected = "block dimension")]
    fn zero_block_panics() {
        let _ = LaunchConfig::for_threads_with_block(10, 0);
    }

    #[test]
    fn thread_ctx_global_id() {
        let ctx = ThreadCtx {
            block_idx: 3,
            thread_idx: 17,
            block_dim: 256,
            grid_dim: 8,
        };
        assert_eq!(ctx.global_id(), 3 * 256 + 17);
        assert_eq!(ctx.total_threads(), 2048);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_panics() {
        let _ = Device::new(0);
    }

    #[test]
    fn launch_map_validates_thread_count() {
        let d = Device::new(2);
        let buf = crate::buffer::DeviceBuffer::from_vec(vec![0u8; 10]);
        let cfg = LaunchConfig {
            grid_dim: 1,
            block_dim: 4, // 4 threads for 10 outputs
        };
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            d.launch_map_blocking(cfg, &buf, |_, _| {});
        }));
        assert!(result.is_err(), "undersized launch must panic");
    }

    #[test]
    fn launch_scatter_validates_offsets() {
        let d = Device::new(2);
        let buf = crate::buffer::DeviceBuffer::from_vec(vec![0u8; 4]);
        // Non-monotonic offsets.
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            d.launch_scatter_blocking(LaunchConfig::for_threads(2), &buf, &[0, 3, 1], |_, _| {});
        }));
        assert!(result.is_err());
        // Offsets past the buffer end.
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            d.launch_scatter_blocking(LaunchConfig::for_threads(2), &buf, &[0, 2, 9], |_, _| {});
        }));
        assert!(result.is_err());
    }

    #[test]
    fn launch_scatter_empty_ranges_ok() {
        let d = Device::new(2);
        let buf = crate::buffer::DeviceBuffer::from_vec(vec![0u32; 3]);
        // Threads 0 and 2 own nothing; thread 1 owns everything.
        d.launch_scatter_blocking(
            LaunchConfig::for_threads(3),
            &buf,
            &[0, 0, 3, 3],
            |ctx, slice| {
                for s in slice.iter_mut() {
                    *s = ctx.global_id() as u32 + 1;
                }
            },
        );
        assert_eq!(buf.to_vec(), vec![2, 2, 2]);
    }

    #[test]
    fn stats_accumulate() {
        let d = Device::new(2);
        let s = d.stream();
        let buf = s.alloc::<u64>(100);
        s.launch_map(LaunchConfig::for_threads(100), &buf, |ctx, out| {
            *out = ctx.global_id() as u64;
        });
        s.synchronize();
        assert_eq!(d.stats().kernels_launched(), 1);
        assert_eq!(d.stats().threads_executed(), 100);
    }
}
