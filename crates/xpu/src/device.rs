//! The simulated SPMD device.

use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::{Condvar, Mutex};

use crate::buffer::DeviceBuffer;
use crate::error::{TransferDirection, XpuError, XpuResult};
use crate::fault::{FaultPlan, FaultState};
use crate::stream::Stream;

/// Per-thread identity inside a kernel launch, mirroring CUDA's
/// `blockIdx` / `threadIdx` / `blockDim` / `gridDim` built-ins.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ThreadCtx {
    /// Index of this thread's block within the grid.
    pub block_idx: usize,
    /// Index of this thread within its block.
    pub thread_idx: usize,
    /// Threads per block.
    pub block_dim: usize,
    /// Blocks in the grid.
    pub grid_dim: usize,
}

impl ThreadCtx {
    /// The flattened global thread id
    /// (`blockIdx.x * blockDim.x + threadIdx.x`).
    #[inline]
    pub fn global_id(&self) -> usize {
        self.block_idx * self.block_dim + self.thread_idx
    }

    /// Total threads in the launch.
    #[inline]
    pub fn total_threads(&self) -> usize {
        self.block_dim * self.grid_dim
    }
}

/// A kernel launch configuration: grid and block dimensions.
///
/// Launches are 1-D; the engine's edge kernels never need 2-D/3-D
/// shapes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaunchConfig {
    /// Blocks in the grid.
    pub grid_dim: usize,
    /// Threads per block.
    pub block_dim: usize,
}

impl LaunchConfig {
    /// The default CUDA-style block size.
    pub const DEFAULT_BLOCK: usize = 256;

    /// A config with at least `n` threads using the default block size
    /// (the usual `(n + B - 1) / B` grid computation).
    pub fn for_threads(n: usize) -> Self {
        Self::for_threads_with_block(n, Self::DEFAULT_BLOCK)
    }

    /// A config with at least `n` threads and the given block size.
    ///
    /// # Panics
    ///
    /// Panics if `block_dim` is zero.
    pub fn for_threads_with_block(n: usize, block_dim: usize) -> Self {
        assert!(block_dim > 0, "block dimension must be positive");
        LaunchConfig {
            grid_dim: n.div_ceil(block_dim).max(1),
            block_dim,
        }
    }

    /// Total threads launched.
    #[inline]
    pub fn total_threads(&self) -> usize {
        self.grid_dim * self.block_dim
    }
}

/// Cumulative device statistics, useful for asserting that work really
/// executed on the device (e.g. that copies were hidden behind compute).
#[derive(Debug, Default)]
pub struct DeviceStats {
    kernels_launched: AtomicU64,
    threads_executed: AtomicU64,
    bytes_h2d: AtomicU64,
    bytes_d2h: AtomicU64,
    launches_fused: AtomicU64,
    /// Shared with the persistent pool workers (which must not keep the
    /// device alive), hence the `Arc`.
    worker_wakeups: Arc<AtomicU64>,
}

impl DeviceStats {
    /// Number of kernel launches so far.
    pub fn kernels_launched(&self) -> u64 {
        self.kernels_launched.load(Ordering::Relaxed)
    }

    /// Number of SPMD threads executed so far.
    pub fn threads_executed(&self) -> u64 {
        self.threads_executed.load(Ordering::Relaxed)
    }

    /// Bytes copied host → device.
    pub fn bytes_h2d(&self) -> u64 {
        self.bytes_h2d.load(Ordering::Relaxed)
    }

    /// Bytes copied device → host.
    pub fn bytes_d2h(&self) -> u64 {
        self.bytes_d2h.load(Ordering::Relaxed)
    }

    /// Number of kernel launches that rode a fused batch instead of a
    /// dedicated stream command.
    pub fn launches_fused(&self) -> u64 {
        self.launches_fused.load(Ordering::Relaxed)
    }

    /// Times a persistent pool worker woke up and joined a dispatch.
    pub fn worker_wakeups(&self) -> u64 {
        self.worker_wakeups.load(Ordering::Relaxed)
    }

    pub(crate) fn record_fused(&self, launches: u64) {
        self.launches_fused.fetch_add(launches, Ordering::Relaxed);
    }

    pub(crate) fn wakeups_handle(&self) -> Arc<AtomicU64> {
        Arc::clone(&self.worker_wakeups)
    }

    pub(crate) fn record_launch(&self, threads: usize) {
        self.kernels_launched.fetch_add(1, Ordering::Relaxed);
        self.threads_executed
            .fetch_add(threads as u64, Ordering::Relaxed);
    }

    pub(crate) fn record_h2d(&self, bytes: usize) {
        self.bytes_h2d.fetch_add(bytes as u64, Ordering::Relaxed);
    }

    pub(crate) fn record_d2h(&self, bytes: usize) {
        self.bytes_d2h.fetch_add(bytes as u64, Ordering::Relaxed);
    }
}

pub(crate) struct DeviceInner {
    workers: usize,
    stats: DeviceStats,
    /// Device-memory budget in bytes; `None` means unlimited.
    budget: Option<usize>,
    /// Bytes currently reserved by live stream-ordered buffers.
    mem_in_use: AtomicUsize,
    /// Deterministic ordinals addressed by [`FaultPlan`] entries.
    alloc_ordinal: AtomicU64,
    transfer_ordinal: AtomicU64,
    launch_ordinal: AtomicU64,
    stream_op_ordinal: AtomicU64,
    shard_load_ordinal: AtomicU64,
    /// Installed fault schedule; `None` (the default) injects nothing.
    faults: Mutex<Option<FaultState>>,
    /// Fast-path flag mirroring `faults.is_some()` so the common
    /// fault-free case pays one relaxed load, not a mutex.
    faults_enabled: AtomicU64,
    /// Extra-thread budget shared with the host executor. When
    /// installed, kernel dispatch draws its worker threads from this
    /// gate so host fan-outs and device launches never add up past the
    /// configured host parallelism; `None` (the default) reproduces the
    /// ungated pool exactly.
    host_gate: Mutex<Option<Arc<odrc_infra::ThreadGate>>>,
    /// Stream watchdog limit in nanoseconds; 0 means no watchdog. Waits
    /// on streams of this device poll the in-flight operation and
    /// surface ops stalled past the limit as
    /// [`XpuError::StreamTimeout`](crate::XpuError::StreamTimeout).
    watchdog_nanos: AtomicU64,
    /// The run's cancel token. Streams created after cancellation are
    /// born poisoned with [`XpuError::Cancelled`](crate::XpuError::Cancelled),
    /// so retry/recovery loops fail fast during shutdown.
    cancel: Mutex<Option<odrc_infra::CancelToken>>,
    /// Persistent worker pool, started lazily at the first parallel
    /// dispatch. `None` until then; shut down and joined on drop.
    pool: Mutex<Option<Arc<PoolShared>>>,
    /// Join handles of the pool workers (lock order: `pool` first).
    pool_handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
    /// [`DispatchMode`] discriminant (0 = pooled, 1 = scoped).
    dispatch_mode: AtomicU64,
}

/// How `dispatch_slices` distributes chunks over extra threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DispatchMode {
    /// Hand chunks to the persistent worker pool (the default): workers
    /// are spawned once, park on a condvar between launches, and claim
    /// pre-sliced chunks from a shared mailbox.
    #[default]
    Pooled,
    /// Reference mode: spawn scoped threads per launch, the pre-pool
    /// behavior. Kept for A/B equivalence testing.
    Scoped,
}

/// State shared between dispatching threads and pool workers.
struct PoolShared {
    state: Mutex<PoolState>,
    /// Workers park here; signalled when a job is published or on
    /// shutdown.
    work_cv: Condvar,
    /// Dispatchers park here while draining a retracted job's last
    /// participants.
    done_cv: Condvar,
    wakeups: Arc<AtomicU64>,
}

struct PoolState {
    /// Published jobs with unclaimed chunks. A job is retracted by its
    /// dispatcher (under this lock) before the dispatcher returns, so a
    /// handle in this list always points at a live header.
    jobs: Vec<JobHandle>,
    shutdown: bool,
}

/// Type-erased pointer to a dispatcher-owned [`JobHeader`]; only valid
/// while the job is published or the holder is a registered
/// participant.
#[derive(Clone, Copy, PartialEq, Eq)]
struct JobHandle(*const JobHeader);

// SAFETY: the pointee is shared across threads only under the
// publication/participation protocol documented on `PoolState::jobs`,
// and `JobHeader` itself is `Sync` (atomics + immutable fields).
unsafe impl Send for JobHandle {}
unsafe impl Sync for JobHandle {}

/// One launch's chunk mailbox, living on the dispatcher's stack.
struct JobHeader {
    /// Next unclaimed chunk index; claimed with `fetch_add`.
    next: AtomicUsize,
    n_chunks: usize,
    /// Pool workers currently executing chunks of this job. Mutated
    /// only while holding the pool state lock; the dispatcher waits for
    /// zero (under the same lock) before freeing the header.
    participants: AtomicUsize,
    /// Cap on pool workers that may join (the gate handshake size).
    max_workers: usize,
    /// Points at the dispatcher's [`ChunkSet`].
    data: *const (),
    /// Monomorphized chunk runner for `data`.
    run: unsafe fn(*const (), usize),
}

/// The typed side of a job: raw chunk descriptors plus the kernel body.
struct ChunkSet<'a, T, F> {
    chunks: Vec<RawChunk<T>>,
    body: &'a F,
    /// First panic payload from any chunk; re-thrown by the dispatcher
    /// after the job completes (parity with scoped-spawn propagation).
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

/// A disjoint sub-slice of the launch's work, sendable by raw pointer.
struct RawChunk<T> {
    start: usize,
    ptr: *mut T,
    len: usize,
}

/// Runs chunk `idx` of the [`ChunkSet`] behind `data`.
///
/// # Safety
///
/// `data` must point at a live `ChunkSet<'_, T, F>` whose chunks are
/// disjoint, and no two callers may pass the same `idx`.
unsafe fn run_chunk<T, F>(data: *const (), idx: usize)
where
    T: Send,
    F: Fn(std::ops::Range<usize>, &mut [T]) + Send + Sync,
{
    let set = &*(data as *const ChunkSet<'_, T, F>);
    let c = &set.chunks[idx];
    let chunk = std::slice::from_raw_parts_mut(c.ptr, c.len);
    let range = c.start..c.start + c.len;
    let result =
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| (set.body)(range, chunk)));
    if let Err(payload) = result {
        let mut slot = set.panic.lock();
        if slot.is_none() {
            *slot = Some(payload);
        }
    }
}

/// Body of a persistent pool worker: park until a job is published,
/// register as a participant, drain chunks, deregister, repeat.
fn pool_worker(pool: Arc<PoolShared>) {
    let mut state = pool.state.lock();
    loop {
        if state.shutdown {
            return;
        }
        let found = state.jobs.iter().copied().find(|j| {
            // SAFETY: published handles point at live headers (see
            // `PoolState::jobs`); we hold the state lock.
            let h = unsafe { &*j.0 };
            h.participants.load(Ordering::Relaxed) < h.max_workers
                && h.next.load(Ordering::Relaxed) < h.n_chunks
        });
        let Some(job) = found else {
            pool.work_cv.wait(&mut state);
            continue;
        };
        // SAFETY: registering under the lock keeps the header alive
        // past the unlock — the dispatcher retracts the job and then
        // waits (under this lock) for participants to reach zero
        // before its stack frame unwinds.
        let header = unsafe { &*job.0 };
        header.participants.fetch_add(1, Ordering::Relaxed);
        drop(state);
        pool.wakeups.fetch_add(1, Ordering::Relaxed);
        loop {
            let idx = header.next.fetch_add(1, Ordering::Relaxed);
            if idx >= header.n_chunks {
                break;
            }
            // SAFETY: `fetch_add` hands out each index exactly once.
            unsafe { (header.run)(header.data, idx) };
        }
        state = pool.state.lock();
        header.participants.fetch_sub(1, Ordering::Relaxed);
        pool.done_cv.notify_all();
    }
}

/// Reference dispatch: scoped threads per launch (the pre-pool path).
fn scoped_dispatch<T, F>(work: &mut [T], chunk_size: usize, body: &F)
where
    T: Send,
    F: Fn(std::ops::Range<usize>, &mut [T]) + Send + Sync,
{
    let mut parts: Vec<(std::ops::Range<usize>, &mut [T])> = Vec::new();
    let mut start = 0usize;
    for chunk in work.chunks_mut(chunk_size) {
        let range = start..start + chunk.len();
        start += chunk.len();
        parts.push((range, chunk));
    }
    let own = parts.pop();
    std::thread::scope(|scope| {
        for (range, chunk) in parts {
            scope.spawn(move || body(range, chunk));
        }
        if let Some((range, chunk)) = own {
            body(range, chunk);
        }
    });
}

impl Drop for DeviceInner {
    fn drop(&mut self) {
        if let Some(pool) = self.pool.get_mut().take() {
            pool.state.lock().shutdown = true;
            pool.work_cv.notify_all();
            for handle in self.pool_handles.get_mut().drain(..) {
                let _ = handle.join();
            }
        }
    }
}

/// A device-memory reservation held by a [`DeviceBuffer`]; releases its
/// bytes when the last buffer handle drops.
pub(crate) struct MemReservation {
    inner: Arc<DeviceInner>,
    bytes: usize,
}

impl fmt::Debug for MemReservation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "MemReservation({} bytes)", self.bytes)
    }
}

impl Drop for MemReservation {
    fn drop(&mut self) {
        self.inner
            .mem_in_use
            .fetch_sub(self.bytes, Ordering::Relaxed);
    }
}

/// The simulated SPMD device.
///
/// A `Device` is cheap to clone (it is a handle). Kernels launched on it
/// execute their threads in parallel across `workers` OS threads, in
/// SPMD style: every thread runs the same closure with its own
/// [`ThreadCtx`].
///
/// # Failure model
///
/// The fallible entry points (`try_*` on [`Stream`], and
/// [`Device::try_launch_map_blocking`] /
/// [`Device::try_launch_scatter_blocking`] here) return
/// [`XpuResult`]s; kernel panics are caught per SPMD thread, so one bad
/// thread fails the *launch*, never the worker pool. A configurable
/// memory budget ([`Device::with_budget`]) bounds stream-ordered
/// allocations, and a deterministic [`FaultPlan`]
/// ([`Device::set_fault_plan`]) injects seeded OOM / panic / stall /
/// transfer faults for testing recovery paths. The legacy infallible
/// methods remain and panic on device errors.
///
/// # Examples
///
/// See the [crate-level example](crate).
#[derive(Clone)]
pub struct Device {
    inner: Arc<DeviceInner>,
}

impl fmt::Debug for Device {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Device")
            .field("workers", &self.inner.workers)
            .field("kernels_launched", &self.stats().kernels_launched())
            .finish()
    }
}

impl Default for Device {
    /// A device sized to the host's available parallelism.
    fn default() -> Self {
        Device::new(physical_parallelism())
    }
}

/// Physical parallelism of this host, cached once per process.
fn physical_parallelism() -> usize {
    static PHYS: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *PHYS.get_or_init(|| std::thread::available_parallelism().map_or(1, |n| n.get()))
}

impl Device {
    /// Creates a device with the given number of worker threads and no
    /// memory budget.
    ///
    /// # Panics
    ///
    /// Panics if `workers` is zero.
    pub fn new(workers: usize) -> Self {
        Device::build(workers, None)
    }

    /// Creates a device with a memory budget: stream-ordered
    /// allocations ([`Stream::try_alloc`], [`Stream::try_upload`]) that
    /// would push the total reserved bytes past `budget_bytes` fail
    /// with [`XpuError::Oom`]. Bytes are released when the last handle
    /// to a buffer drops.
    ///
    /// [`Stream::try_alloc`]: crate::Stream::try_alloc
    /// [`Stream::try_upload`]: crate::Stream::try_upload
    ///
    /// # Panics
    ///
    /// Panics if `workers` is zero.
    pub fn with_budget(workers: usize, budget_bytes: usize) -> Self {
        Device::build(workers, Some(budget_bytes))
    }

    fn build(workers: usize, budget: Option<usize>) -> Self {
        assert!(workers > 0, "device needs at least one worker");
        Device {
            inner: Arc::new(DeviceInner {
                workers,
                stats: DeviceStats::default(),
                budget,
                mem_in_use: AtomicUsize::new(0),
                alloc_ordinal: AtomicU64::new(0),
                transfer_ordinal: AtomicU64::new(0),
                launch_ordinal: AtomicU64::new(0),
                stream_op_ordinal: AtomicU64::new(0),
                shard_load_ordinal: AtomicU64::new(0),
                faults: Mutex::new(None),
                faults_enabled: AtomicU64::new(0),
                host_gate: Mutex::new(None),
                watchdog_nanos: AtomicU64::new(0),
                cancel: Mutex::new(None),
                pool: Mutex::new(None),
                pool_handles: Mutex::new(Vec::new()),
                dispatch_mode: AtomicU64::new(0),
            }),
        }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.inner.workers
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> &DeviceStats {
        &self.inner.stats
    }

    /// The configured memory budget in bytes, if any.
    pub fn budget(&self) -> Option<usize> {
        self.inner.budget
    }

    /// Bytes currently reserved by live stream-ordered buffers.
    pub fn mem_in_use(&self) -> usize {
        self.inner.mem_in_use.load(Ordering::Relaxed)
    }

    /// Installs (or with `None` removes) the extra-thread gate shared
    /// with the host executor — the pool-sizing handshake. While a gate
    /// is installed, kernel dispatch acquires its spawned threads from
    /// the gate (the dispatching thread always proceeds inline, so an
    /// exhausted gate degrades to sequential execution rather than
    /// deadlocking) and releases them when the launch completes.
    /// Without a gate the pre-existing ungated worker pool is used,
    /// bit-for-bit.
    pub fn set_host_gate(&self, gate: Option<Arc<odrc_infra::ThreadGate>>) {
        *self.inner.host_gate.lock() = gate;
    }

    /// Arms (or with `None` disarms) the stream watchdog: waits on this
    /// device's streams ([`Stream::try_synchronize`], [`Pending::result`])
    /// poll the stream's in-flight operation and surface any op stalled
    /// past `limit` as [`XpuError::StreamTimeout`] — poisoning the
    /// stream exactly like an injected stall, so the engine's
    /// retry-on-a-fresh-stream / CPU-fallback path handles genuine
    /// hangs the same way.
    ///
    /// The watchdog *detects* stalls; it cannot abort the wedged
    /// operation (neither can CUDA). The stalled op keeps the worker
    /// until it finishes, and dropping the stream joins the worker, so
    /// a truly infinite hang still blocks teardown — the policy is
    /// detect-and-route-around, not kill.
    ///
    /// [`Stream::try_synchronize`]: crate::Stream::try_synchronize
    /// [`Pending::result`]: crate::Pending::result
    pub fn set_watchdog(&self, limit: Option<std::time::Duration>) {
        let nanos = limit.map_or(0, |d| {
            u64::try_from(d.as_nanos()).unwrap_or(u64::MAX).max(1)
        });
        self.inner.watchdog_nanos.store(nanos, Ordering::Relaxed);
    }

    /// The armed watchdog limit, if any.
    pub fn watchdog(&self) -> Option<std::time::Duration> {
        match self.inner.watchdog_nanos.load(Ordering::Relaxed) {
            0 => None,
            n => Some(std::time::Duration::from_nanos(n)),
        }
    }

    /// Attaches (or with `None` detaches) the run's cancel token.
    /// Streams created while the token reports cancelled are born
    /// poisoned with [`XpuError::Cancelled`], so recovery loops that
    /// retry on fresh streams fail fast during shutdown instead of
    /// re-issuing work the run is about to discard. Streams that
    /// already exist are unaffected — in-flight work drains normally.
    pub fn set_cancel(&self, token: Option<odrc_infra::CancelToken>) {
        *self.inner.cancel.lock() = token;
    }

    /// `Some(XpuError::Cancelled)` once the attached token (if any)
    /// reports cancelled.
    pub(crate) fn cancel_error(&self) -> Option<XpuError> {
        self.inner
            .cancel
            .lock()
            .as_ref()
            .filter(|t| t.is_cancelled())
            .map(|_| XpuError::Cancelled)
    }

    /// Installs (or with `None` removes) a fault schedule at runtime.
    /// Replacing a plan resets nothing else: ordinals keep counting, so
    /// a plan installed mid-run addresses operations by their absolute
    /// device-wide index.
    pub fn set_fault_plan(&self, plan: Option<FaultPlan>) {
        let mut guard = self.inner.faults.lock();
        self.inner
            .faults_enabled
            .store(u64::from(plan.is_some()), Ordering::Relaxed);
        *guard = plan.map(FaultState::new);
    }

    /// Number of faults the installed plans have actually delivered.
    pub fn faults_injected(&self) -> u64 {
        self.inner
            .faults
            .lock()
            .as_ref()
            .map(|s| s.injected())
            .unwrap_or(0)
    }

    #[inline]
    fn faults_on(&self) -> bool {
        self.inner.faults_enabled.load(Ordering::Relaxed) != 0
    }

    /// Ticks the allocation ordinal and reports an injected OOM, if the
    /// plan schedules one here.
    pub(crate) fn fault_alloc(&self, requested: usize) -> Option<XpuError> {
        let n = self.inner.alloc_ordinal.fetch_add(1, Ordering::Relaxed);
        if !self.faults_on() {
            return None;
        }
        let fired = self
            .inner
            .faults
            .lock()
            .as_mut()
            .is_some_and(|s| s.take_alloc(n));
        fired.then(|| XpuError::Oom {
            requested,
            in_use: self.mem_in_use(),
            budget: self.inner.budget.unwrap_or(usize::MAX),
        })
    }

    /// Ticks the shard-load ordinal and reports whether the plan
    /// schedules an injected allocation failure for this load.
    ///
    /// Shard loads are host-side scene builds, not device allocations,
    /// but they are addressed by the same deterministic-schedule
    /// machinery ([`Fault::AllocFail`](crate::Fault::AllocFail)) so the
    /// out-of-core evict/degrade path is exercised by the seeded fault
    /// sweeps. Like every fault consult this is one relaxed load when
    /// no plan is installed.
    pub fn fault_shard_load(&self) -> bool {
        let n = self
            .inner
            .shard_load_ordinal
            .fetch_add(1, Ordering::Relaxed);
        if !self.faults_on() {
            return false;
        }
        self.inner
            .faults
            .lock()
            .as_mut()
            .is_some_and(|s| s.take_shard_load(n))
    }

    /// Ticks the transfer ordinal and reports an injected transfer
    /// failure, if the plan schedules one here.
    pub(crate) fn fault_transfer(
        &self,
        direction: TransferDirection,
        bytes: usize,
    ) -> Option<XpuError> {
        let n = self.inner.transfer_ordinal.fetch_add(1, Ordering::Relaxed);
        if !self.faults_on() {
            return None;
        }
        let fired = self
            .inner
            .faults
            .lock()
            .as_mut()
            .is_some_and(|s| s.take_transfer(n));
        fired.then_some(XpuError::TransferError { direction, bytes })
    }

    /// Ticks the stream-op ordinal and reports an injected stall, if
    /// the plan schedules one here. A scheduled *hang*
    /// ([`Fault::StreamHang`]) sleeps for its duration right here — on
    /// the stream worker, with the op already marked in flight — so an
    /// armed watchdog observes a genuine stall; the op then proceeds
    /// normally.
    pub(crate) fn fault_stream_op(&self, op: &'static str) -> Option<XpuError> {
        let n = self.inner.stream_op_ordinal.fetch_add(1, Ordering::Relaxed);
        if !self.faults_on() {
            return None;
        }
        let (hang_millis, stalled) = match self.inner.faults.lock().as_mut() {
            Some(s) => (s.take_stream_hang(n), s.take_stream_op(n)),
            None => (None, false),
        };
        if let Some(millis) = hang_millis {
            std::thread::sleep(std::time::Duration::from_millis(millis));
        }
        stalled.then_some(XpuError::StreamTimeout { op })
    }

    /// Ticks the launch ordinal and returns `(ordinal, thread to panic
    /// in)` if the plan schedules a kernel fault for this launch.
    fn next_launch(&self, useful_threads: usize) -> (u64, Option<usize>) {
        let k = self.inner.launch_ordinal.fetch_add(1, Ordering::Relaxed);
        if !self.faults_on() {
            return (k, None);
        }
        let thread = self
            .inner
            .faults
            .lock()
            .as_mut()
            .and_then(|s| s.take_kernel(k, useful_threads));
        (k, thread)
    }

    /// Reserves `bytes` against the budget, failing with
    /// [`XpuError::Oom`] when the budget would be exceeded.
    pub(crate) fn try_reserve(&self, bytes: usize) -> XpuResult<Option<Arc<MemReservation>>> {
        let Some(budget) = self.inner.budget else {
            return Ok(None); // unlimited: skip the accounting entirely
        };
        // Optimistic reservation: add, then check, then roll back on
        // failure — correct under concurrent reservers.
        let prev = self.inner.mem_in_use.fetch_add(bytes, Ordering::Relaxed);
        if prev.saturating_add(bytes) > budget {
            self.inner.mem_in_use.fetch_sub(bytes, Ordering::Relaxed);
            return Err(XpuError::Oom {
                requested: bytes,
                in_use: prev,
                budget,
            });
        }
        Ok(Some(Arc::new(MemReservation {
            inner: Arc::clone(&self.inner),
            bytes,
        })))
    }

    /// Creates a new asynchronous command [`Stream`] on this device
    /// ("When OpenDRC starts, it creates CUDA stream objects that are
    /// responsible for asynchronous operations", §V-C).
    pub fn stream(&self) -> Stream {
        Stream::new(self.clone())
    }

    /// Fallible synchronous kernel launch where thread `i` receives
    /// exclusive access to `out[i]`.
    ///
    /// A panic in any SPMD thread — a genuine kernel bug or an injected
    /// [`Fault::KernelPanic`] — is caught per thread and surfaces as
    /// [`XpuError::KernelPanic`] carrying the launch ordinal and the
    /// first panicking global thread id. The worker pool survives; the
    /// device remains usable.
    ///
    /// [`Fault::KernelPanic`]: crate::Fault::KernelPanic
    ///
    /// # Panics
    ///
    /// Panics if the config provides fewer threads than `out.len()`
    /// (a programmer error, not a device fault).
    pub fn try_launch_map_blocking<T, F>(
        &self,
        cfg: LaunchConfig,
        out: &DeviceBuffer<T>,
        kernel: F,
    ) -> XpuResult<()>
    where
        T: Send + Sync,
        F: Fn(ThreadCtx, &mut T) + Send + Sync,
    {
        let mut guard = out.write();
        let slots: &mut [T] = &mut guard;
        assert!(
            cfg.total_threads() >= slots.len(),
            "launch config provides {} threads for {} outputs",
            cfg.total_threads(),
            slots.len()
        );
        let (launch_id, panic_thread) = self.next_launch(slots.len());
        self.inner.stats.record_launch(slots.len());
        let block_dim = cfg.block_dim;
        let grid_dim = cfg.grid_dim;
        let kernel = &kernel;
        let panicked: Mutex<Option<(usize, String)>> = Mutex::new(None);
        self.dispatch_slices(slots, |range, chunk: &mut [T]| {
            for (offset, slot) in range.zip(chunk.iter_mut()) {
                let ctx = ThreadCtx {
                    block_idx: offset / block_dim,
                    thread_idx: offset % block_dim,
                    block_dim,
                    grid_dim,
                };
                run_spmd_thread(
                    offset,
                    panic_thread,
                    launch_id,
                    &panicked,
                    std::panic::AssertUnwindSafe(|| kernel(ctx, slot)),
                );
            }
        });
        finish_launch(launch_id, panicked)
    }

    /// Synchronously launches a kernel where thread `i` receives
    /// exclusive access to `out[i]`.
    ///
    /// The number of useful threads is `out.len()`; surplus threads in
    /// the launch config (block-size round-up) are masked out, exactly
    /// like the `if (tid < n) return;` guard of CUDA kernels.
    ///
    /// Most callers go through [`Stream::launch_map`], which enqueues
    /// the launch asynchronously.
    ///
    /// # Panics
    ///
    /// Panics if the config provides fewer threads than `out.len()`, if
    /// the kernel reads its own output buffer (lock recursion), or if
    /// any kernel thread panics (see
    /// [`Device::try_launch_map_blocking`] for the recoverable form).
    pub fn launch_map_blocking<T, F>(&self, cfg: LaunchConfig, out: &DeviceBuffer<T>, kernel: F)
    where
        T: Send + Sync,
        F: Fn(ThreadCtx, &mut T) + Send + Sync,
    {
        if let Err(e) = self.try_launch_map_blocking(cfg, out, kernel) {
            panic!("device launch failed: {e}");
        }
    }

    /// Fallible synchronous *scatter* launch where thread `i` receives
    /// exclusive access to the slice `out[offsets[i]..offsets[i + 1]]`.
    /// See [`Device::try_launch_map_blocking`] for the failure model.
    ///
    /// # Panics
    ///
    /// Panics on malformed `offsets` or an undersized launch config
    /// (programmer errors, not device faults).
    pub fn try_launch_scatter_blocking<T, F>(
        &self,
        cfg: LaunchConfig,
        out: &DeviceBuffer<T>,
        offsets: &[usize],
        kernel: F,
    ) -> XpuResult<()>
    where
        T: Send + Sync,
        F: Fn(ThreadCtx, &mut [T]) + Send + Sync,
    {
        let n_threads = offsets.len().saturating_sub(1);
        assert!(
            cfg.total_threads() >= n_threads,
            "launch config provides {} threads for {} ranges",
            cfg.total_threads(),
            n_threads
        );
        let mut guard = out.write();
        let mut rest: &mut [T] = &mut guard;
        let total = rest.len();
        assert!(
            offsets.last().copied().unwrap_or(0) <= total,
            "offsets end past the output buffer"
        );
        // Slice the output into per-thread disjoint ranges up front; the
        // split is sequential but O(n_threads) and cheap.
        let mut slices: Vec<&mut [T]> = Vec::with_capacity(n_threads);
        let mut consumed = 0usize;
        for w in offsets.windows(2) {
            let (lo, hi) = (w[0], w[1]);
            assert!(lo <= hi, "offsets must be non-decreasing");
            let (skip, tail) = rest.split_at_mut(lo - consumed);
            debug_assert!(skip.is_empty() || lo > consumed);
            let (mine, tail) = tail.split_at_mut(hi - lo);
            slices.push(mine);
            rest = tail;
            consumed = hi;
        }
        let (launch_id, panic_thread) = self.next_launch(n_threads);
        self.inner.stats.record_launch(n_threads);
        let block_dim = cfg.block_dim;
        let grid_dim = cfg.grid_dim;
        let kernel = &kernel;
        let panicked: Mutex<Option<(usize, String)>> = Mutex::new(None);
        self.dispatch_slices(&mut slices, |range, chunk: &mut [&mut [T]]| {
            for (offset, slice) in range.zip(chunk.iter_mut()) {
                let ctx = ThreadCtx {
                    block_idx: offset / block_dim,
                    thread_idx: offset % block_dim,
                    block_dim,
                    grid_dim,
                };
                run_spmd_thread(
                    offset,
                    panic_thread,
                    launch_id,
                    &panicked,
                    std::panic::AssertUnwindSafe(|| kernel(ctx, slice)),
                );
            }
        });
        finish_launch(launch_id, panicked)
    }

    /// Synchronously launches a *scatter* kernel where thread `i`
    /// receives exclusive access to the slice
    /// `out[offsets[i]..offsets[i + 1]]`.
    ///
    /// This is the output pattern of the second phase of the parallel
    /// sweepline (§IV-E): a prefix-sum of per-thread counts determines
    /// each thread's private output range.
    ///
    /// # Panics
    ///
    /// Panics if `offsets` is not monotonically non-decreasing, if its
    /// last entry exceeds `out.len()`, if the config provides fewer
    /// threads than `offsets.len() - 1`, or if any kernel thread
    /// panics (see [`Device::try_launch_scatter_blocking`]).
    pub fn launch_scatter_blocking<T, F>(
        &self,
        cfg: LaunchConfig,
        out: &DeviceBuffer<T>,
        offsets: &[usize],
        kernel: F,
    ) where
        T: Send + Sync,
        F: Fn(ThreadCtx, &mut [T]) + Send + Sync,
    {
        if let Err(e) = self.try_launch_scatter_blocking(cfg, out, offsets, kernel) {
            panic!("device launch failed: {e}");
        }
    }

    /// Fallible synchronous *tile* launch: the kernel is handed whole
    /// contiguous ranges of `out` (one call per dispatch chunk) instead
    /// of one call per element, so per-element framework overhead —
    /// panic boundary, context construction, buffer-lock traffic — is
    /// paid once per tile. Semantically identical to
    /// [`Device::try_launch_map_blocking`] with a kernel that loops
    /// over its tile: ordinals tick once per launch, injected
    /// per-thread faults still fire for exactly their thread (the tile
    /// is split around the faulted element), and a genuine tile panic
    /// surfaces as [`XpuError::KernelPanic`] carrying the tile's first
    /// global id.
    ///
    /// # Panics
    ///
    /// Panics if the config provides fewer threads than `out.len()`.
    pub fn try_launch_tiles_blocking<T, F>(
        &self,
        cfg: LaunchConfig,
        out: &DeviceBuffer<T>,
        kernel: F,
    ) -> XpuResult<()>
    where
        T: Send + Sync,
        F: Fn(std::ops::Range<usize>, &mut [T]) + Send + Sync,
    {
        let mut guard = out.write();
        let slots: &mut [T] = &mut guard;
        assert!(
            cfg.total_threads() >= slots.len(),
            "launch config provides {} threads for {} outputs",
            cfg.total_threads(),
            slots.len()
        );
        let (launch_id, panic_thread) = self.next_launch(slots.len());
        self.inner.stats.record_launch(slots.len());
        let kernel = &kernel;
        let panicked: Mutex<Option<(usize, String)>> = Mutex::new(None);
        self.dispatch_slices(slots, |range, chunk: &mut [T]| {
            run_spmd_tile(range, chunk, panic_thread, launch_id, &panicked, kernel);
        });
        finish_launch(launch_id, panicked)
    }

    /// Fallible synchronous *scatter tile* launch: like
    /// [`Device::try_launch_scatter_blocking`], but the kernel receives
    /// a contiguous tile of per-thread output slices
    /// (`out[offsets[i]..offsets[i + 1]]` for each `i` in the tile's
    /// range) per call. See [`Device::try_launch_tiles_blocking`] for
    /// the tile semantics and failure model.
    ///
    /// # Panics
    ///
    /// Panics on malformed `offsets` or an undersized launch config.
    pub fn try_launch_scatter_tiles_blocking<T, F>(
        &self,
        cfg: LaunchConfig,
        out: &DeviceBuffer<T>,
        offsets: &[usize],
        kernel: F,
    ) -> XpuResult<()>
    where
        T: Send + Sync,
        F: Fn(std::ops::Range<usize>, &mut [&mut [T]]) + Send + Sync,
    {
        let n_threads = offsets.len().saturating_sub(1);
        assert!(
            cfg.total_threads() >= n_threads,
            "launch config provides {} threads for {} ranges",
            cfg.total_threads(),
            n_threads
        );
        let mut guard = out.write();
        let mut rest: &mut [T] = &mut guard;
        let total = rest.len();
        assert!(
            offsets.last().copied().unwrap_or(0) <= total,
            "offsets end past the output buffer"
        );
        let mut slices: Vec<&mut [T]> = Vec::with_capacity(n_threads);
        let mut consumed = 0usize;
        for w in offsets.windows(2) {
            let (lo, hi) = (w[0], w[1]);
            assert!(lo <= hi, "offsets must be non-decreasing");
            let (skip, tail) = rest.split_at_mut(lo - consumed);
            debug_assert!(skip.is_empty() || lo > consumed);
            let (mine, tail) = tail.split_at_mut(hi - lo);
            slices.push(mine);
            rest = tail;
            consumed = hi;
        }
        let (launch_id, panic_thread) = self.next_launch(n_threads);
        self.inner.stats.record_launch(n_threads);
        let kernel = &kernel;
        let panicked: Mutex<Option<(usize, String)>> = Mutex::new(None);
        self.dispatch_slices(&mut slices, |range, chunk: &mut [&mut [T]]| {
            run_spmd_tile(range, chunk, panic_thread, launch_id, &panicked, kernel);
        });
        finish_launch(launch_id, panicked)
    }

    /// Selects how parallel dispatch hands chunks to extra threads; the
    /// default is [`DispatchMode::Pooled`]. [`DispatchMode::Scoped`] is
    /// the pre-pool spawn-per-launch reference, kept for equivalence
    /// testing.
    pub fn set_dispatch_mode(&self, mode: DispatchMode) {
        self.inner
            .dispatch_mode
            .store(mode as u64, Ordering::Relaxed);
    }

    /// The active [`DispatchMode`].
    pub fn dispatch_mode(&self) -> DispatchMode {
        match self.inner.dispatch_mode.load(Ordering::Relaxed) {
            0 => DispatchMode::Pooled,
            _ => DispatchMode::Scoped,
        }
    }

    /// Returns the persistent pool, starting its workers on first use.
    fn pool(&self) -> Arc<PoolShared> {
        let mut guard = self.inner.pool.lock();
        if let Some(pool) = guard.as_ref() {
            return Arc::clone(pool);
        }
        let pool = Arc::new(PoolShared {
            state: Mutex::new(PoolState {
                jobs: Vec::new(),
                shutdown: false,
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
            wakeups: self.inner.stats.wakeups_handle(),
        });
        let mut handles = self.inner.pool_handles.lock();
        for i in 0..self.inner.workers.saturating_sub(1) {
            let worker_pool = Arc::clone(&pool);
            let handle = std::thread::Builder::new()
                .name(format!("xpu-pool-{i}"))
                .spawn(move || pool_worker(worker_pool))
                .expect("failed to spawn xpu pool worker");
            handles.push(handle);
        }
        *guard = Some(Arc::clone(&pool));
        pool
    }

    /// Publishes one launch's chunks to the pool mailbox, drains chunks
    /// on the dispatching thread, then retracts the job and waits for
    /// any participating workers before returning.
    fn pool_dispatch<T, F>(&self, work: &mut [T], chunk_size: usize, max_workers: usize, body: &F)
    where
        T: Send,
        F: Fn(std::ops::Range<usize>, &mut [T]) + Send + Sync,
    {
        let mut chunks = Vec::new();
        let mut start = 0usize;
        for chunk in work.chunks_mut(chunk_size) {
            chunks.push(RawChunk {
                start,
                ptr: chunk.as_mut_ptr(),
                len: chunk.len(),
            });
            start += chunk.len();
        }
        let n_chunks = chunks.len();
        let set = ChunkSet {
            chunks,
            body,
            panic: Mutex::new(None),
        };
        let header = JobHeader {
            next: AtomicUsize::new(0),
            n_chunks,
            participants: AtomicUsize::new(0),
            max_workers,
            data: &set as *const ChunkSet<'_, T, F> as *const (),
            run: run_chunk::<T, F>,
        };
        let pool = self.pool();
        let handle = JobHandle(&header as *const JobHeader);
        pool.state.lock().jobs.push(handle);
        pool.work_cv.notify_all();
        // The dispatcher is participant zero: it drains chunks inline
        // rather than parking, so a launch never blocks on a wake.
        loop {
            let idx = header.next.fetch_add(1, Ordering::Relaxed);
            if idx >= n_chunks {
                break;
            }
            // SAFETY: each index is claimed exactly once via fetch_add.
            unsafe { (header.run)(header.data, idx) };
        }
        {
            let mut state = pool.state.lock();
            state.jobs.retain(|j| *j != handle);
            // Workers register/deregister under this lock, so once the
            // count reads zero with the job retracted, no worker can
            // touch the header or chunks again.
            while header.participants.load(Ordering::Relaxed) != 0 {
                pool.done_cv.wait(&mut state);
            }
        }
        if let Some(payload) = set.panic.into_inner() {
            std::panic::resume_unwind(payload);
        }
    }

    /// Runs `body(range, chunk)` for contiguous chunks of `work`
    /// distributed over the device's workers.
    ///
    /// Gated and ungated launches share one code path: an installed
    /// host gate caps the extra threads by the shared budget, while the
    /// absence of a gate grants the full pool width. Either way the
    /// dispatching thread works chunks itself, so a launch uses at most
    /// `1 + extra` threads and degrades to inline execution when no
    /// extra thread is available.
    pub(crate) fn dispatch_slices<T, F>(&self, work: &mut [T], body: F)
    where
        T: Send,
        F: Fn(std::ops::Range<usize>, &mut [T]) + Send + Sync,
    {
        let n = work.len();
        if n == 0 {
            return;
        }
        let workers = self.inner.workers.min(n);
        if workers == 1 {
            body(0..n, work);
            return;
        }
        let gate = self.inner.host_gate.lock().clone();
        let extra = match &gate {
            // The sizing handshake exists to keep the engine from
            // oversubscribing the machine, so a gated launch is also
            // clamped to the cores that physically exist — waking pool
            // workers past that count only adds switch latency (an
            // ungated device keeps its configured width so unit tests
            // exercise the pool regardless of host shape).
            Some(g) => g.try_acquire((workers - 1).min(physical_parallelism() - 1)),
            None => workers - 1,
        };
        if extra == 0 {
            body(0..n, work);
            return;
        }
        let chunk_size = n.div_ceil(extra + 1);
        match self.dispatch_mode() {
            DispatchMode::Pooled => self.pool_dispatch(work, chunk_size, extra, &body),
            DispatchMode::Scoped => scoped_dispatch(work, chunk_size, &body),
        }
        if let Some(g) = &gate {
            g.release(extra);
        }
    }
}

/// Executes one SPMD thread with a per-thread panic boundary: a panic
/// (genuine or injected) is recorded in `panicked` instead of
/// propagating into the worker pool. Only the first panic is kept.
fn run_spmd_thread<F: FnOnce()>(
    global_id: usize,
    injected_panic_thread: Option<usize>,
    launch_id: u64,
    panicked: &Mutex<Option<(usize, String)>>,
    body: std::panic::AssertUnwindSafe<F>,
) {
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        if injected_panic_thread == Some(global_id) {
            panic!("injected fault: kernel #{launch_id} thread {global_id}");
        }
        let std::panic::AssertUnwindSafe(f) = body;
        f();
    }));
    if let Err(payload) = result {
        let message = panic_message(payload.as_ref());
        let mut slot = panicked.lock();
        if slot.is_none() {
            *slot = Some((global_id, message));
        }
    }
}

/// Executes one tile of SPMD threads with a single panic boundary. An
/// injected per-thread fault splits the tile around the faulted thread
/// so its neighbours still execute — preserving the per-thread fault
/// semantics of the element-granular dispatch. A genuine panic inside
/// the tile records the tile's first global id (the per-element path
/// records the exact id; multi-worker recording was already
/// first-wins-racy, and errors only feed recovery, which re-runs).
fn run_spmd_tile<E, F>(
    range: std::ops::Range<usize>,
    chunk: &mut [E],
    injected_panic_thread: Option<usize>,
    launch_id: u64,
    panicked: &Mutex<Option<(usize, String)>>,
    kernel: &F,
) where
    F: Fn(std::ops::Range<usize>, &mut [E]),
{
    if let Some(p) = injected_panic_thread {
        if range.contains(&p) {
            let split = p - range.start;
            let (lo, rest) = chunk.split_at_mut(split);
            let (_faulted, hi) = rest.split_at_mut(1);
            run_tile_guarded(range.start..p, lo, panicked, kernel);
            run_spmd_thread(
                p,
                Some(p),
                launch_id,
                panicked,
                std::panic::AssertUnwindSafe(|| {}),
            );
            run_tile_guarded(p + 1..range.end, hi, panicked, kernel);
            return;
        }
    }
    run_tile_guarded(range, chunk, panicked, kernel);
}

/// Runs a (sub-)tile behind one `catch_unwind`, recording the first
/// panic against the tile's first global id.
fn run_tile_guarded<E, F>(
    range: std::ops::Range<usize>,
    chunk: &mut [E],
    panicked: &Mutex<Option<(usize, String)>>,
    kernel: &F,
) where
    F: Fn(std::ops::Range<usize>, &mut [E]),
{
    if range.is_empty() {
        return;
    }
    let first = range.start;
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| kernel(range, chunk)));
    if let Err(payload) = result {
        let message = panic_message(payload.as_ref());
        let mut slot = panicked.lock();
        if slot.is_none() {
            *slot = Some((first, message));
        }
    }
}

/// Converts the first recorded SPMD-thread panic into the launch error.
fn finish_launch(launch_id: u64, panicked: Mutex<Option<(usize, String)>>) -> XpuResult<()> {
    match panicked.into_inner() {
        None => Ok(()),
        Some((global_id, message)) => Err(XpuError::KernelPanic {
            kernel: launch_id,
            global_id,
            message,
        }),
    }
}

/// Stringifies a panic payload (`&str` and `String` payloads cover
/// `panic!` and runtime panics; anything else gets a placeholder).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::Fault;

    #[test]
    fn launch_config_round_up() {
        let cfg = LaunchConfig::for_threads(1000);
        assert_eq!(cfg.block_dim, 256);
        assert_eq!(cfg.grid_dim, 4);
        assert_eq!(cfg.total_threads(), 1024);
        let one = LaunchConfig::for_threads(0);
        assert_eq!(one.grid_dim, 1);
    }

    #[test]
    #[should_panic(expected = "block dimension")]
    fn zero_block_panics() {
        let _ = LaunchConfig::for_threads_with_block(10, 0);
    }

    #[test]
    fn thread_ctx_global_id() {
        let ctx = ThreadCtx {
            block_idx: 3,
            thread_idx: 17,
            block_dim: 256,
            grid_dim: 8,
        };
        assert_eq!(ctx.global_id(), 3 * 256 + 17);
        assert_eq!(ctx.total_threads(), 2048);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_panics() {
        let _ = Device::new(0);
    }

    #[test]
    fn launch_map_validates_thread_count() {
        let d = Device::new(2);
        let buf = crate::buffer::DeviceBuffer::from_vec(vec![0u8; 10]);
        let cfg = LaunchConfig {
            grid_dim: 1,
            block_dim: 4, // 4 threads for 10 outputs
        };
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            d.launch_map_blocking(cfg, &buf, |_, _| {});
        }));
        assert!(result.is_err(), "undersized launch must panic");
    }

    #[test]
    fn launch_scatter_validates_offsets() {
        let d = Device::new(2);
        let buf = crate::buffer::DeviceBuffer::from_vec(vec![0u8; 4]);
        // Non-monotonic offsets.
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            d.launch_scatter_blocking(LaunchConfig::for_threads(2), &buf, &[0, 3, 1], |_, _| {});
        }));
        assert!(result.is_err());
        // Offsets past the buffer end.
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            d.launch_scatter_blocking(LaunchConfig::for_threads(2), &buf, &[0, 2, 9], |_, _| {});
        }));
        assert!(result.is_err());
    }

    #[test]
    fn launch_scatter_empty_ranges_ok() {
        let d = Device::new(2);
        let buf = crate::buffer::DeviceBuffer::from_vec(vec![0u32; 3]);
        // Threads 0 and 2 own nothing; thread 1 owns everything.
        d.launch_scatter_blocking(
            LaunchConfig::for_threads(3),
            &buf,
            &[0, 0, 3, 3],
            |ctx, slice| {
                for s in slice.iter_mut() {
                    *s = ctx.global_id() as u32 + 1;
                }
            },
        );
        assert_eq!(buf.to_vec(), vec![2, 2, 2]);
    }

    #[test]
    fn stats_accumulate() {
        let d = Device::new(2);
        let s = d.stream();
        let buf = s.alloc::<u64>(100);
        s.launch_map(LaunchConfig::for_threads(100), &buf, |ctx, out| {
            *out = ctx.global_id() as u64;
        });
        s.synchronize();
        assert_eq!(d.stats().kernels_launched(), 1);
        assert_eq!(d.stats().threads_executed(), 100);
    }

    #[test]
    fn genuine_kernel_panic_is_caught() {
        let d = Device::new(3);
        let buf = DeviceBuffer::from_vec(vec![0u32; 600]);
        let err = d
            .try_launch_map_blocking(LaunchConfig::for_threads(600), &buf, |ctx, out| {
                if ctx.global_id() == 300 {
                    panic!("boom at {}", ctx.global_id());
                }
                *out = 1;
            })
            .unwrap_err();
        match err {
            XpuError::KernelPanic {
                global_id, message, ..
            } => {
                assert_eq!(global_id, 300);
                assert!(message.contains("boom"));
            }
            other => panic!("expected KernelPanic, got {other:?}"),
        }
        // The pool survived: the device still launches fine.
        d.launch_map_blocking(LaunchConfig::for_threads(600), &buf, |_, out| *out = 2);
        assert!(buf.to_vec().iter().all(|&v| v == 2));
    }

    #[test]
    fn injected_kernel_panic_names_kernel_and_thread() {
        let d = Device::new(2);
        d.set_fault_plan(Some(FaultPlan::new().with(Fault::KernelPanic {
            kernel: 0,
            thread: 5,
        })));
        let buf = DeviceBuffer::from_vec(vec![0u8; 16]);
        let err = d
            .try_launch_map_blocking(LaunchConfig::for_threads(16), &buf, |_, _| {})
            .unwrap_err();
        assert_eq!(
            err,
            XpuError::KernelPanic {
                kernel: 0,
                global_id: 5,
                message: "injected fault: kernel #0 thread 5".to_owned(),
            }
        );
        assert_eq!(d.faults_injected(), 1);
        // Consumed: the next launch succeeds.
        assert!(d
            .try_launch_map_blocking(LaunchConfig::for_threads(16), &buf, |_, _| {})
            .is_ok());
    }

    #[test]
    fn budget_reserve_and_release() {
        let d = Device::with_budget(2, 1000);
        let r1 = d.try_reserve(600).unwrap();
        assert_eq!(d.mem_in_use(), 600);
        let err = d.try_reserve(600).unwrap_err();
        assert!(matches!(err, XpuError::Oom { requested: 600, .. }));
        drop(r1);
        assert_eq!(d.mem_in_use(), 0);
        assert!(d.try_reserve(600).is_ok());
    }

    #[test]
    fn unlimited_device_skips_accounting() {
        let d = Device::new(1);
        assert!(d.try_reserve(usize::MAX).unwrap().is_none());
        assert_eq!(d.mem_in_use(), 0);
    }
}
