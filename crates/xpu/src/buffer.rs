//! Device-resident memory.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::mpsc;
use std::sync::Arc;

use parking_lot::{Mutex, RwLock, RwLockReadGuard, RwLockWriteGuard};

use crate::device::MemReservation;
use crate::error::{TransferDirection, XpuError, XpuResult};

/// The backing store of a device buffer.
///
/// `Owned` is device-private memory (allocations, plain uploads).
/// `Shared` aliases host memory that was uploaded through
/// [`Stream::try_upload_shared`] without a staging copy; it is
/// read-only from kernels, like CUDA memory mapped with
/// `cudaHostRegisterReadOnly`.
///
/// [`Stream::try_upload_shared`]: crate::Stream::try_upload_shared
enum Repr<T> {
    Owned(Vec<T>),
    Shared(Arc<Vec<T>>),
}

impl<T> Repr<T> {
    fn as_slice(&self) -> &[T] {
        match self {
            Repr::Owned(v) => v,
            Repr::Shared(a) => a,
        }
    }

    fn as_mut_slice(&mut self) -> &mut [T] {
        match self {
            Repr::Owned(v) => v,
            Repr::Shared(_) => panic!(
                "kernel writes to a shared (zero-copy) device buffer; \
                 shared uploads are read-only"
            ),
        }
    }
}

/// Read access to a device buffer's contents; derefs to `[T]`.
pub struct BufferReadGuard<'a, T>(RwLockReadGuard<'a, Repr<T>>);

impl<T> Deref for BufferReadGuard<'_, T> {
    type Target = [T];

    fn deref(&self) -> &[T] {
        self.0.as_slice()
    }
}

/// Write access to a device buffer's contents; derefs to `[T]`.
///
/// # Panics
///
/// Dereferencing panics if the buffer is a shared (zero-copy) upload:
/// those are read-only by construction.
pub(crate) struct BufferWriteGuard<'a, T>(RwLockWriteGuard<'a, Repr<T>>);

impl<T> Deref for BufferWriteGuard<'_, T> {
    type Target = [T];

    fn deref(&self) -> &[T] {
        self.0.as_slice()
    }
}

impl<T> DerefMut for BufferWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut [T] {
        self.0.as_mut_slice()
    }
}

/// A device-resident buffer of `T`.
///
/// Like CUDA device memory, a `DeviceBuffer` lives on the device and is
/// populated through explicit copies ([`Stream::upload`],
/// [`Stream::download`]) or by kernels. The handle is cheap to clone;
/// all clones alias the same memory.
///
/// Reads from kernels use [`DeviceBuffer::read`]; writes happen through
/// the structured launch primitives on [`Device`], which hand each SPMD
/// thread a disjoint slot or range — this is what makes the simulated
/// kernels data-race-free by construction.
///
/// Buffers obtained from a budgeted device's stream
/// ([`Stream::try_alloc`] / [`Stream::try_upload`]) carry a memory
/// reservation that is released when the last handle drops, mirroring
/// the stream-ordered allocator's accounting.
///
/// [`Stream::upload`]: crate::Stream::upload
/// [`Stream::download`]: crate::Stream::download
/// [`Stream::try_alloc`]: crate::Stream::try_alloc
/// [`Stream::try_upload`]: crate::Stream::try_upload
/// [`Device`]: crate::Device
pub struct DeviceBuffer<T> {
    data: Arc<RwLock<Repr<T>>>,
    /// Budget accounting for stream-ordered allocations; `None` for
    /// direct (unbudgeted) buffers and unlimited devices.
    reservation: Option<Arc<MemReservation>>,
}

impl<T> Clone for DeviceBuffer<T> {
    fn clone(&self) -> Self {
        DeviceBuffer {
            data: Arc::clone(&self.data),
            reservation: self.reservation.clone(),
        }
    }
}

impl<T: fmt::Debug> fmt::Debug for DeviceBuffer<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "DeviceBuffer(len = {})", self.len())
    }
}

impl<T> DeviceBuffer<T> {
    /// Allocates a zero-initialized (default-initialized) buffer.
    ///
    /// Direct allocations bypass any device memory budget; only the
    /// stream-ordered allocator ([`Stream::try_alloc`]) is budgeted.
    ///
    /// [`Stream::try_alloc`]: crate::Stream::try_alloc
    pub fn alloc(len: usize) -> Self
    where
        T: Default + Clone,
    {
        DeviceBuffer::from_vec(vec![T::default(); len])
    }

    /// Wraps host data into a device buffer (a synchronous upload).
    pub fn from_vec(data: Vec<T>) -> Self {
        DeviceBuffer {
            data: Arc::new(RwLock::new(Repr::Owned(data))),
            reservation: None,
        }
    }

    /// An empty buffer carrying a budget reservation (the backing store
    /// materializes in stream order).
    pub(crate) fn reserved(reservation: Option<Arc<MemReservation>>) -> Self {
        DeviceBuffer {
            data: Arc::new(RwLock::new(Repr::Owned(Vec::new()))),
            reservation,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.read().as_slice().len()
    }

    /// Returns `true` for zero-length buffers.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Read access for kernels and host-side inspection.
    ///
    /// # Panics
    ///
    /// Deadlocks (or panics under `parking_lot` deadlock detection) if
    /// called from a kernel writing the same buffer; a kernel must not
    /// read its own output.
    pub fn read(&self) -> BufferReadGuard<'_, T> {
        BufferReadGuard(self.data.read())
    }

    /// Copies the contents back to host memory.
    pub fn to_vec(&self) -> Vec<T>
    where
        T: Clone,
    {
        self.data.read().as_slice().to_vec()
    }

    pub(crate) fn write(&self) -> BufferWriteGuard<'_, T> {
        BufferWriteGuard(self.data.write())
    }

    /// Replaces the entire contents (used by stream-ordered copies).
    pub(crate) fn replace(&self, data: Vec<T>) {
        *self.data.write() = Repr::Owned(data);
    }

    /// Points the buffer at shared host memory without copying (used by
    /// the zero-copy upload path). The buffer becomes read-only.
    pub(crate) fn replace_shared(&self, data: Arc<Vec<T>>) {
        *self.data.write() = Repr::Shared(data);
    }
}

/// A value that becomes available when the producing stream reaches the
/// corresponding operation — the result handle of an asynchronous
/// download.
///
/// If the producing stream fails before reaching the operation (a
/// sticky stream error, see [`Stream`]), [`Pending::result`] returns
/// that error instead of blocking forever; [`Pending::wait`] panics
/// with it.
///
/// [`Stream`]: crate::Stream
///
/// # Examples
///
/// ```
/// use odrc_xpu::Device;
///
/// let device = Device::new(2);
/// let stream = device.stream();
/// let buf = stream.upload(vec![1u32, 2, 3]);
/// let pending = stream.download(&buf);
/// assert_eq!(pending.wait(), vec![1, 2, 3]);
/// ```
#[derive(Debug)]
pub struct Pending<T> {
    rx: mpsc::Receiver<T>,
    /// The producing stream's sticky error slot, consulted when the
    /// channel disconnects without delivering a value.
    err: Option<Arc<Mutex<Option<XpuError>>>>,
    /// Watchdog context: the producing stream's in-flight op marker and
    /// the armed limit. `None` when the device has no watchdog.
    watch: Option<StallWatch>,
}

/// What a watchdog-armed wait polls: the producing stream's in-flight
/// operation marker (shared with the stream worker) and the stall
/// limit.
pub(crate) struct StallWatch {
    pub(crate) in_flight: Arc<Mutex<Option<(&'static str, std::time::Instant)>>>,
    pub(crate) limit: std::time::Duration,
}

impl std::fmt::Debug for StallWatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "StallWatch(limit = {:?})", self.limit)
    }
}

impl StallWatch {
    /// `Some(op)` when the in-flight operation has outlived the limit.
    pub(crate) fn stalled_op(&self) -> Option<&'static str> {
        let guard = self.in_flight.lock();
        match &*guard {
            Some((op, since)) if since.elapsed() > self.limit => Some(op),
            _ => None,
        }
    }

    /// The polling interval for timed waits under this watchdog: a
    /// fraction of the limit, bounded away from busy-spinning and from
    /// sluggish detection.
    pub(crate) fn tick(&self) -> std::time::Duration {
        (self.limit / 4).clamp(
            std::time::Duration::from_millis(1),
            std::time::Duration::from_millis(20),
        )
    }
}

impl<T> Pending<T> {
    pub(crate) fn with_watch(
        rx: mpsc::Receiver<T>,
        err: Arc<Mutex<Option<XpuError>>>,
        watch: Option<StallWatch>,
    ) -> Self {
        Pending {
            rx,
            err: Some(err),
            watch,
        }
    }

    /// Blocks until the value is produced or the producing stream
    /// fails. A skipped operation on a poisoned stream resolves to the
    /// stream's first (sticky) error. Under an armed watchdog
    /// ([`Device::set_watchdog`]) the wait also polls the producing
    /// stream's in-flight operation, and a genuine stall past the limit
    /// resolves to [`XpuError::StreamTimeout`], poisoning the stream.
    ///
    /// [`Device::set_watchdog`]: crate::Device::set_watchdog
    pub fn result(self) -> XpuResult<T> {
        if let Some(watch) = &self.watch {
            loop {
                match self.rx.recv_timeout(watch.tick()) {
                    Ok(value) => return Ok(value),
                    Err(mpsc::RecvTimeoutError::Disconnected) => return self.disconnected(),
                    Err(mpsc::RecvTimeoutError::Timeout) => {
                        // A stream that failed while we waited skips our
                        // job eventually; surface the sticky error now.
                        if let Some(slot) = &self.err {
                            if let Some(e) = slot.lock().clone() {
                                return Err(e);
                            }
                        }
                        if let Some(op) = watch.stalled_op() {
                            let e = XpuError::StreamTimeout { op };
                            if let Some(slot) = &self.err {
                                let mut s = slot.lock();
                                if s.is_none() {
                                    *s = Some(e.clone());
                                }
                            }
                            return Err(e);
                        }
                    }
                }
            }
        }
        match self.rx.recv() {
            Ok(value) => Ok(value),
            // The sender dropped without sending: the stream either hit
            // a sticky error (recorded before the job was dropped) or
            // was torn down. Consult the error slot first.
            Err(mpsc::RecvError) => self.disconnected(),
        }
    }

    /// The channel disconnected without a value: report the stream's
    /// sticky error, or a generic failed transfer.
    fn disconnected(&self) -> XpuResult<T> {
        if let Some(slot) = &self.err {
            if let Some(e) = slot.lock().clone() {
                return Err(e);
            }
        }
        Err(XpuError::TransferError {
            direction: TransferDirection::DeviceToHost,
            bytes: 0,
        })
    }

    /// Blocks until the value is produced.
    ///
    /// # Panics
    ///
    /// Panics if the producing stream failed or was dropped before
    /// executing the operation. Use [`Pending::result`] to recover
    /// instead.
    pub fn wait(self) -> T {
        self.result()
            .unwrap_or_else(|e| panic!("device operation failed: {e}"))
    }

    /// Non-blocking poll; returns the value if it is ready.
    pub fn try_wait(&self) -> Option<T> {
        self.rx.try_recv().ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_default_initialized() {
        let b: DeviceBuffer<i32> = DeviceBuffer::alloc(5);
        assert_eq!(b.len(), 5);
        assert!(!b.is_empty());
        assert_eq!(b.to_vec(), vec![0; 5]);
    }

    #[test]
    fn clones_alias() {
        let a = DeviceBuffer::from_vec(vec![1, 2, 3]);
        let b = a.clone();
        a.replace(vec![9, 9]);
        assert_eq!(b.to_vec(), vec![9, 9]);
        assert_eq!(b.len(), 2);
    }

    #[test]
    fn read_guard_indexing() {
        let a = DeviceBuffer::from_vec(vec![10, 20, 30]);
        assert_eq!(a.read()[1], 20);
    }

    #[test]
    fn empty_buffer() {
        let b: DeviceBuffer<u8> = DeviceBuffer::alloc(0);
        assert!(b.is_empty());
        assert!(b.to_vec().is_empty());
    }

    #[test]
    fn shared_buffer_reads_without_copy() {
        let host = Arc::new(vec![1u32, 2, 3]);
        let buf: DeviceBuffer<u32> = DeviceBuffer::from_vec(Vec::new());
        buf.replace_shared(Arc::clone(&host));
        assert_eq!(buf.len(), 3);
        assert_eq!(buf.read()[2], 3);
        assert_eq!(buf.to_vec(), vec![1, 2, 3]);
        // Still aliased: the Arc has two strong holders.
        assert_eq!(Arc::strong_count(&host), 2);
    }

    #[test]
    #[should_panic(expected = "read-only")]
    fn shared_buffer_rejects_writes() {
        let buf: DeviceBuffer<u32> = DeviceBuffer::from_vec(Vec::new());
        buf.replace_shared(Arc::new(vec![1, 2]));
        let mut guard = buf.write();
        let _slots: &mut [u32] = &mut guard;
    }

    #[test]
    fn orphan_pending_resolves_to_error() {
        let (tx, rx) = mpsc::channel::<u8>();
        let pending = Pending {
            rx,
            err: None,
            watch: None,
        };
        drop(tx);
        assert!(pending.result().is_err());
    }

    #[test]
    fn orphan_pending_reports_sticky_error() {
        let (tx, rx) = mpsc::channel::<u8>();
        let slot = Arc::new(Mutex::new(Some(XpuError::StreamTimeout { op: "download" })));
        let pending = Pending::with_watch(rx, Arc::clone(&slot), None);
        drop(tx);
        assert_eq!(
            pending.result(),
            Err(XpuError::StreamTimeout { op: "download" })
        );
    }
}
