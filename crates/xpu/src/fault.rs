//! Deterministic, seeded fault injection for the simulated device.
//!
//! The ODIN replay-driven-simulation line of work motivates testing
//! failure handling against *reproducible* fault schedules rather than
//! random chaos: a schedule derived from a seed can be replayed
//! bit-for-bit, so a CPU-fallback bug found under seed 17 stays
//! debuggable. A [`FaultPlan`] is such a schedule: a list of one-shot
//! [`Fault`]s addressed by deterministic device counters (the Nth
//! allocation, the Kth kernel launch, the Nth stream operation). The
//! plan is installed at runtime with [`Device::set_fault_plan`] and is
//! **off by default** — a device without a plan never injects anything
//! and pays one relaxed atomic load per operation.
//!
//! [`Device::set_fault_plan`]: crate::Device::set_fault_plan

/// One injected fault. Every fault fires at most once (it is consumed
/// by the operation it hits), which models transient failures and
/// guarantees that a retry loop with enough attempts eventually runs
/// fault-free.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Fail the `nth` stream-ordered allocation (0-based, device-wide)
    /// with [`XpuError::Oom`](crate::XpuError::Oom).
    AllocOom {
        /// Which allocation to fail.
        nth: u64,
    },
    /// Fail the `nth` host/device transfer (0-based, uploads and
    /// downloads share the counter) with [`XpuError::TransferError`](crate::XpuError::TransferError).
    TransferFail {
        /// Which transfer to fail.
        nth: u64,
    },
    /// Panic in the `kernel`-th launch (0-based, device-wide) inside
    /// the SPMD thread with global id `thread`. The panic is raised in
    /// the worker and caught by the launch, surfacing as
    /// [`XpuError::KernelPanic`](crate::XpuError::KernelPanic). A `thread` beyond the launch's useful
    /// thread count never fires (the fault is discarded).
    KernelPanic {
        /// Launch ordinal to hit.
        kernel: u64,
        /// Global thread id that panics.
        thread: usize,
    },
    /// Stall the `nth` data operation of a stream (0-based,
    /// device-wide) past the watchdog, surfacing as
    /// [`XpuError::StreamTimeout`](crate::XpuError::StreamTimeout).
    StreamStall {
        /// Which stream operation to stall.
        nth: u64,
    },
    /// Fail the `nth` *shard-load* allocation (0-based, device-wide).
    /// Shard loads are the host-side scene builds of the out-of-core
    /// checker, consulted via [`Device::fault_shard_load`]; a fired
    /// fault makes the shard pool treat the build as an allocation
    /// failure and exercise its evict/degrade path without real memory
    /// pressure.
    ///
    /// [`Device::fault_shard_load`]: crate::Device::fault_shard_load
    AllocFail {
        /// Which shard load to fail.
        nth: u64,
    },
    /// Genuinely hang the `nth` stream data operation (0-based,
    /// device-wide) for `millis` of real wall-clock time before letting
    /// it proceed. Unlike [`Fault::StreamStall`] — which *reports* a
    /// timeout without wasting any time — a hang only becomes an error
    /// if a watchdog is armed ([`Device::set_watchdog`]) and the hang
    /// outlives it; this is how the watchdog's genuine-stall detection
    /// is tested end to end. Not part of [`FaultPlan::from_seed`]
    /// schedules (seeded schedules stay wall-clock-free and
    /// reproducible across machines).
    ///
    /// [`Device::set_watchdog`]: crate::Device::set_watchdog
    StreamHang {
        /// Which stream operation to hang.
        nth: u64,
        /// How long the operation sleeps, in milliseconds.
        millis: u64,
    },
}

/// A deterministic schedule of one-shot faults.
///
/// # Examples
///
/// ```
/// use odrc_xpu::{Device, Fault, FaultPlan, XpuError};
///
/// let device = Device::new(2);
/// device.set_fault_plan(Some(FaultPlan::new().with(Fault::AllocOom { nth: 0 })));
/// let stream = device.stream();
/// assert!(matches!(
///     stream.try_alloc::<u64>(10),
///     Err(XpuError::Oom { .. })
/// ));
/// // The fault was consumed: the retry succeeds.
/// assert!(stream.try_alloc::<u64>(10).is_ok());
/// assert_eq!(device.faults_injected(), 1);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    pub(crate) faults: Vec<Fault>,
}

/// SplitMix64: a tiny, high-quality step function used to derive fault
/// schedules from a seed without depending on an RNG crate.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

impl FaultPlan {
    /// An empty plan (injects nothing).
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// Adds one fault to the schedule.
    #[must_use]
    pub fn with(mut self, fault: Fault) -> FaultPlan {
        self.faults.push(fault);
        self
    }

    /// Derives a pseudo-random schedule of `n_faults` faults from a
    /// seed. The same `(seed, n_faults)` pair always produces the same
    /// schedule, making failures reproducible by quoting the seed.
    ///
    /// Counters are drawn from small ranges (allocations/transfers/
    /// stream ops in `0..64`, kernels in `0..32`, threads in `0..2048`,
    /// shard loads in `0..16`) so schedules are likely to actually fire
    /// on realistic workloads; faults addressing operations a run never
    /// reaches simply stay dormant.
    pub fn from_seed(seed: u64, n_faults: usize) -> FaultPlan {
        let mut state = seed_state(seed);
        let mut faults = Vec::with_capacity(n_faults);
        for _ in 0..n_faults {
            let kind = splitmix64(&mut state) % 5;
            let fault = match kind {
                0 => Fault::AllocOom {
                    nth: splitmix64(&mut state) % 64,
                },
                1 => Fault::TransferFail {
                    nth: splitmix64(&mut state) % 64,
                },
                2 => Fault::KernelPanic {
                    kernel: splitmix64(&mut state) % 32,
                    thread: (splitmix64(&mut state) % 2048) as usize,
                },
                3 => Fault::StreamStall {
                    nth: splitmix64(&mut state) % 64,
                },
                _ => Fault::AllocFail {
                    nth: splitmix64(&mut state) % 16,
                },
            };
            faults.push(fault);
        }
        FaultPlan { faults }
    }

    /// Number of faults still pending in the schedule.
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// Whether the schedule holds no faults.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }
}

/// Salts the seed so `from_seed(0, ..)` is not the all-zero SplitMix64
/// stream.
fn seed_state(seed: u64) -> u64 {
    seed ^ 0x0dcc_5eed_fa17_0001
}

/// Mutable injector state owned by the device: the remaining schedule
/// plus a count of faults actually delivered.
#[derive(Debug, Default)]
pub(crate) struct FaultState {
    remaining: Vec<Fault>,
    injected: u64,
}

impl FaultState {
    pub(crate) fn new(plan: FaultPlan) -> FaultState {
        FaultState {
            remaining: plan.faults,
            injected: 0,
        }
    }

    pub(crate) fn injected(&self) -> u64 {
        self.injected
    }

    /// Consumes a matching alloc fault for allocation ordinal `n`.
    pub(crate) fn take_alloc(&mut self, n: u64) -> bool {
        self.take(|f| matches!(f, Fault::AllocOom { nth } if *nth == n))
    }

    /// Consumes a matching transfer fault for transfer ordinal `n`.
    pub(crate) fn take_transfer(&mut self, n: u64) -> bool {
        self.take(|f| matches!(f, Fault::TransferFail { nth } if *nth == n))
    }

    /// Consumes a matching stream-stall fault for op ordinal `n`.
    pub(crate) fn take_stream_op(&mut self, n: u64) -> bool {
        self.take(|f| matches!(f, Fault::StreamStall { nth } if *nth == n))
    }

    /// Consumes a matching shard-load fault for load ordinal `n`.
    pub(crate) fn take_shard_load(&mut self, n: u64) -> bool {
        self.take(|f| matches!(f, Fault::AllocFail { nth } if *nth == n))
    }

    /// Consumes a matching stream-hang fault for op ordinal `n`,
    /// returning the hang duration in milliseconds.
    pub(crate) fn take_stream_hang(&mut self, n: u64) -> Option<u64> {
        let idx = self
            .remaining
            .iter()
            .position(|f| matches!(f, Fault::StreamHang { nth, .. } if *nth == n))?;
        let Fault::StreamHang { millis, .. } = self.remaining.swap_remove(idx) else {
            unreachable!("position matched a StreamHang");
        };
        self.injected += 1;
        Some(millis)
    }

    /// Consumes a kernel-panic fault for launch ordinal `k`, returning
    /// the global thread id that must panic. Faults whose thread id
    /// falls outside the launch's `useful_threads` are discarded
    /// without counting as injected (they can never fire: launch
    /// ordinals are unique).
    pub(crate) fn take_kernel(&mut self, k: u64, useful_threads: usize) -> Option<usize> {
        let idx = self
            .remaining
            .iter()
            .position(|f| matches!(f, Fault::KernelPanic { kernel, .. } if *kernel == k))?;
        let Fault::KernelPanic { thread, .. } = self.remaining.swap_remove(idx) else {
            unreachable!("position matched a KernelPanic");
        };
        if thread < useful_threads {
            self.injected += 1;
            Some(thread)
        } else {
            None
        }
    }

    fn take(&mut self, pred: impl Fn(&Fault) -> bool) -> bool {
        if let Some(idx) = self.remaining.iter().position(pred) {
            self.remaining.swap_remove(idx);
            self.injected += 1;
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_seed_is_deterministic() {
        let a = FaultPlan::from_seed(17, 8);
        let b = FaultPlan::from_seed(17, 8);
        assert_eq!(a, b);
        assert_eq!(a.len(), 8);
        let c = FaultPlan::from_seed(18, 8);
        assert_ne!(a, c, "different seeds should differ");
    }

    #[test]
    fn faults_fire_once() {
        let plan = FaultPlan::new()
            .with(Fault::AllocOom { nth: 2 })
            .with(Fault::StreamStall { nth: 0 });
        let mut state = FaultState::new(plan);
        assert!(!state.take_alloc(0));
        assert!(!state.take_alloc(1));
        assert!(state.take_alloc(2));
        assert!(!state.take_alloc(2), "consumed faults never refire");
        assert!(state.take_stream_op(0));
        assert_eq!(state.injected(), 2);
    }

    #[test]
    fn stream_hang_fires_once_with_duration() {
        let plan = FaultPlan::new().with(Fault::StreamHang { nth: 3, millis: 25 });
        let mut state = FaultState::new(plan);
        assert_eq!(state.take_stream_hang(2), None);
        assert_eq!(state.take_stream_hang(3), Some(25));
        assert_eq!(state.take_stream_hang(3), None, "consumed, never refires");
        assert_eq!(state.injected(), 1);
        // Hangs and stalls use separate matchers on the shared ordinal.
        assert!(!state.take_stream_op(3));
    }

    #[test]
    fn kernel_fault_masked_by_thread_count() {
        let plan = FaultPlan::new().with(Fault::KernelPanic {
            kernel: 1,
            thread: 100,
        });
        let mut state = FaultState::new(plan);
        assert_eq!(state.take_kernel(0, 1000), None);
        // Thread 100 is outside a 10-thread launch: discarded silently.
        assert_eq!(state.take_kernel(1, 10), None);
        assert_eq!(state.injected(), 0);
        // And it does not linger for later launches.
        assert_eq!(state.take_kernel(1, 1000), None);
    }

    #[test]
    fn kernel_fault_fires_in_range() {
        let plan = FaultPlan::new().with(Fault::KernelPanic {
            kernel: 3,
            thread: 7,
        });
        let mut state = FaultState::new(plan);
        assert_eq!(state.take_kernel(3, 64), Some(7));
        assert_eq!(state.injected(), 1);
    }

    #[test]
    fn seed_state_salts_zero() {
        assert_ne!(seed_state(0), 0);
    }

    #[test]
    fn shard_load_faults_fire_once() {
        let plan = FaultPlan::new().with(Fault::AllocFail { nth: 1 });
        let mut state = FaultState::new(plan);
        assert!(!state.take_shard_load(0));
        assert!(state.take_shard_load(1));
        assert!(!state.take_shard_load(1), "consumed, never refires");
        assert_eq!(state.injected(), 1);
        // Shard loads and device allocations use separate matchers.
        let mut state = FaultState::new(FaultPlan::new().with(Fault::AllocOom { nth: 0 }));
        assert!(!state.take_shard_load(0));
    }

    #[test]
    fn seeded_schedules_draw_shard_load_faults() {
        // With five kinds in the draw, a modest sweep of seeds must
        // produce at least one AllocFail (probabilistic only in the
        // sense that the fixed seeds below are known to cover it).
        let any = (0..32).any(|seed| {
            FaultPlan::from_seed(seed, 8)
                .faults
                .iter()
                .any(|f| matches!(f, Fault::AllocFail { .. }))
        });
        assert!(any, "seeded sweeps must exercise the shard-load fault");
    }
}
