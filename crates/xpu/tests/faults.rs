//! Fault-path integration tests for the simulated device.
//!
//! Each test drives the public fallible API through one failure class
//! — budget OOM, injected OOM, kernel panic, transfer failure, stream
//! stall — and asserts the documented contract: the error is typed,
//! the fault is one-shot (a retry on a fresh stream converges), and a
//! device that survives a fault keeps computing correct results.

use odrc_xpu::{Device, Fault, FaultPlan, LaunchConfig, Stream, XpuError};

/// Uploads `0..n`, doubles on the device, downloads — the smallest
/// end-to-end pipeline worth breaking.
fn doubled(stream: &Stream, n: usize) -> Result<Vec<u64>, XpuError> {
    let input: Vec<u64> = (0..n as u64).collect();
    let buf = stream.try_upload(input)?;
    stream.try_launch_map(LaunchConfig::for_threads(n), &buf, |_, v: &mut u64| {
        *v *= 2;
    })?;
    let pending = stream.try_download(&buf)?;
    pending.result()
}

fn expected(n: usize) -> Vec<u64> {
    (0..n as u64).map(|v| v * 2).collect()
}

#[test]
fn budget_oom_fails_alloc_without_poisoning() {
    let device = Device::with_budget(2, 64);
    let stream = device.stream();
    // 16 u64s = 128 bytes > the 64-byte budget.
    match stream.try_alloc::<u64>(16) {
        Err(XpuError::Oom {
            requested, budget, ..
        }) => {
            assert_eq!(requested, 128);
            assert_eq!(budget, 64);
        }
        other => panic!("expected Oom, got {other:?}"),
    }
    // The failure was fail-fast: the same stream still works within
    // budget, and dropping buffers returns their bytes.
    let small = stream.try_alloc::<u64>(4).expect("within budget");
    stream.try_synchronize().expect("stream healthy");
    drop(small);
    stream.try_synchronize().expect("drain release");
    assert_eq!(device.mem_in_use(), 0);
}

#[test]
fn injected_oom_is_transient() {
    let device = Device::new(2);
    device.set_fault_plan(Some(FaultPlan::new().with(Fault::AllocOom { nth: 0 })));
    let stream = device.stream();
    assert!(matches!(
        stream.try_alloc::<u64>(8),
        Err(XpuError::Oom { .. })
    ));
    // One-shot: the identical retry succeeds on the same stream.
    assert!(stream.try_alloc::<u64>(8).is_ok());
    stream.try_synchronize().expect("stream never poisoned");
    assert_eq!(device.faults_injected(), 1);
}

#[test]
fn injected_kernel_panic_poisons_stream_and_fresh_stream_recovers() {
    let device = Device::new(4);
    device.set_fault_plan(Some(FaultPlan::new().with(Fault::KernelPanic {
        kernel: 0,
        thread: 5,
    })));
    let stream = device.stream();
    let err = doubled(&stream, 100).expect_err("kernel 0 panics");
    match &err {
        XpuError::KernelPanic {
            kernel, global_id, ..
        } => {
            assert_eq!(*kernel, 0);
            assert_eq!(*global_id, 5);
        }
        other => panic!("expected KernelPanic, got {other:?}"),
    }
    // The stream is now sticky-failed: later work is refused with the
    // same error.
    assert_eq!(stream.error(), Some(err));
    assert!(stream.try_upload(vec![1u64]).is_err());
    // Recovery is a fresh stream; the fault was consumed, so the
    // second attempt computes the right answer.
    let fresh = device.stream();
    assert_eq!(doubled(&fresh, 100).expect("fault consumed"), expected(100));
    assert_eq!(device.faults_injected(), 1);
}

#[test]
fn injected_transfer_failure_fails_upload_fast() {
    let device = Device::new(2);
    device.set_fault_plan(Some(FaultPlan::new().with(Fault::TransferFail { nth: 0 })));
    let stream = device.stream();
    assert!(matches!(
        stream.try_upload(vec![1u64, 2, 3]),
        Err(XpuError::TransferError { .. })
    ));
    // Fail-fast at enqueue: the stream is still healthy and the retry
    // pipeline runs to completion.
    assert_eq!(doubled(&stream, 10).expect("fault consumed"), expected(10));
}

#[test]
fn injected_stream_stall_surfaces_as_timeout() {
    let device = Device::new(2);
    // Stall the first data operation the device sees.
    device.set_fault_plan(Some(FaultPlan::new().with(Fault::StreamStall { nth: 0 })));
    let stream = device.stream();
    let buf = stream.try_upload(vec![1u64, 2, 3]).expect("enqueue ok");
    let err = stream.try_synchronize().expect_err("stalled op times out");
    assert!(matches!(err, XpuError::StreamTimeout { .. }));
    drop(buf);
    // Fresh stream, consumed fault: the device is fully usable again.
    let fresh = device.stream();
    assert_eq!(doubled(&fresh, 10).expect("fault consumed"), expected(10));
}

#[test]
fn pending_never_hangs_on_failed_stream() {
    let device = Device::new(2);
    device.set_fault_plan(Some(FaultPlan::new().with(Fault::StreamStall { nth: 1 })));
    let stream = device.stream();
    let buf = stream.try_upload(vec![7u64; 32]).expect("upload enqueued");
    // The download (data op #1) is the stalled one: its Pending must
    // resolve to the stream error, not block forever.
    let pending = stream.try_download(&buf).expect("enqueue ok");
    assert!(matches!(
        pending.result(),
        Err(XpuError::StreamTimeout { .. })
    ));
}

#[test]
fn seeded_plan_runs_identically_twice() {
    // The same seed must inject the same faults at the same points:
    // run the same workload on two devices with the same plan and
    // compare every outcome.
    let run = || {
        let device = Device::new(2);
        device.set_fault_plan(Some(FaultPlan::from_seed(42, 8)));
        let mut outcomes = Vec::new();
        for round in 0..6 {
            let stream = device.stream();
            outcomes.push(doubled(&stream, 50 + round));
        }
        (outcomes, device.faults_injected())
    };
    let (a, injected_a) = run();
    let (b, injected_b) = run();
    assert_eq!(a, b, "same seed, same schedule, same outcomes");
    assert_eq!(injected_a, injected_b);
}

#[test]
fn fault_free_device_injects_nothing() {
    let device = Device::new(2);
    let stream = device.stream();
    assert_eq!(doubled(&stream, 64).expect("no faults"), expected(64));
    assert_eq!(device.faults_injected(), 0);
    // Installing then clearing a plan leaves the device clean.
    device.set_fault_plan(Some(FaultPlan::from_seed(7, 4)));
    device.set_fault_plan(None);
    let stream = device.stream();
    assert_eq!(doubled(&stream, 64).expect("plan cleared"), expected(64));
    assert_eq!(device.faults_injected(), 0);
}
