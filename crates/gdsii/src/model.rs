//! In-memory model of a GDSII library.

use std::fmt;

use odrc_geometry::{Point, Rotation, Transform};

/// Database units of a library.
///
/// GDSII stores two reals: the size of a database unit in *user units*
/// and in *meters*. The common convention (and this engine's default)
/// is 1 dbu = 1 nm with user units of 1 µm.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Units {
    /// Database unit in user units (e.g. `1e-3` for nm within µm).
    pub user_per_dbu: f64,
    /// Database unit in meters (e.g. `1e-9` for nm).
    pub meters_per_dbu: f64,
}

impl Default for Units {
    fn default() -> Self {
        Units {
            user_per_dbu: 1e-3,
            meters_per_dbu: 1e-9,
        }
    }
}

/// A polygon element (`BOUNDARY`).
///
/// Vertices are stored without the closing point. Validation (closure,
/// rectilinearity) happens when the library is imported into the layout
/// database, not at parse time, so malformed input can still be
/// inspected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BoundaryElement {
    /// Layer number.
    pub layer: i16,
    /// Data type number.
    pub datatype: i16,
    /// Vertices (closing point omitted).
    pub points: Vec<Point>,
    /// `PROPATTR`/`PROPVALUE` pairs. Property 1 conventionally carries
    /// an object name, which the rule DSL's `name` predicates inspect.
    pub properties: Vec<(i16, String)>,
}

/// A wire element (`PATH`): a centerline with a width.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathElement {
    /// Layer number.
    pub layer: i16,
    /// Data type number.
    pub datatype: i16,
    /// Path end-cap style: 0 = flush, 1 = round (unsupported for
    /// checking), 2 = extended by half width.
    pub path_type: i16,
    /// Wire width in database units.
    pub width: i32,
    /// Centerline vertices.
    pub points: Vec<Point>,
    /// Property pairs.
    pub properties: Vec<(i16, String)>,
}

/// A text label element (`TEXT`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TextElement {
    /// Layer number.
    pub layer: i16,
    /// Text type number.
    pub texttype: i16,
    /// Anchor position.
    pub position: Point,
    /// Label contents.
    pub string: String,
}

/// A structure reference (`SREF`) or array reference (`AREF`).
#[derive(Debug, Clone, PartialEq)]
pub struct RefElement {
    /// Name of the referenced structure.
    pub sname: String,
    /// Origin of the (first) placement.
    pub origin: Point,
    /// Mirror about the x-axis before rotation (`STRANS` bit 15).
    pub mirror_x: bool,
    /// Rotation angle in degrees, counter-clockwise.
    pub angle_deg: f64,
    /// Magnification.
    pub mag: f64,
    /// Array geometry: `None` for `SREF`; for `AREF`, the per-column
    /// step vector, per-row step vector, and the column/row counts.
    pub array: Option<ArrayParams>,
}

/// `AREF` array parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArrayParams {
    /// Number of columns (>= 1).
    pub cols: u16,
    /// Number of rows (>= 1).
    pub rows: u16,
    /// Displacement between adjacent columns.
    pub col_step: Point,
    /// Displacement between adjacent rows.
    pub row_step: Point,
}

/// Error converting a reference's transform into the engine's exact
/// integer [`Transform`].
#[derive(Debug, Clone, PartialEq)]
pub enum TransformError {
    /// The rotation is not a multiple of 90 degrees.
    UnsupportedAngle {
        /// The offending angle in degrees.
        angle_deg: f64,
    },
    /// The magnification is not a positive integer.
    UnsupportedMag {
        /// The offending magnification.
        mag: f64,
    },
}

impl fmt::Display for TransformError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransformError::UnsupportedAngle { angle_deg } => {
                write!(f, "rotation of {angle_deg} degrees is not a multiple of 90")
            }
            TransformError::UnsupportedMag { mag } => {
                write!(f, "magnification {mag} is not a positive integer")
            }
        }
    }
}

impl std::error::Error for TransformError {}

impl RefElement {
    /// Creates a plain `SREF` with an identity orientation.
    pub fn sref(sname: impl Into<String>, origin: Point) -> Self {
        RefElement {
            sname: sname.into(),
            origin,
            mirror_x: false,
            angle_deg: 0.0,
            mag: 1.0,
            array: None,
        }
    }

    /// The placement transform of the reference (of the first element,
    /// for an `AREF`).
    ///
    /// # Errors
    ///
    /// Returns [`TransformError`] for non-quarter-turn angles or
    /// non-integer magnifications, which mask layouts do not use and the
    /// exact integer engine does not support.
    pub fn transform(&self) -> Result<Transform, TransformError> {
        let quarter = self.angle_deg / 90.0;
        let rounded = quarter.round();
        if (quarter - rounded).abs() > 1e-9 {
            return Err(TransformError::UnsupportedAngle {
                angle_deg: self.angle_deg,
            });
        }
        let mag_round = self.mag.round();
        if self.mag < 0.5 || (self.mag - mag_round).abs() > 1e-9 {
            return Err(TransformError::UnsupportedMag { mag: self.mag });
        }
        Ok(Transform::new(
            self.mirror_x,
            Rotation::from_quarter_turns(rounded as i32),
            mag_round as i32,
            self.origin,
        ))
    }

    /// Iterates over the placement transforms of every array instance
    /// (a single transform for an `SREF`).
    ///
    /// # Errors
    ///
    /// Same as [`RefElement::transform`].
    pub fn instance_transforms(&self) -> Result<Vec<Transform>, TransformError> {
        let base = self.transform()?;
        let Some(array) = self.array else {
            return Ok(vec![base]);
        };
        let mut out = Vec::with_capacity(usize::from(array.cols) * usize::from(array.rows));
        for row in 0..array.rows {
            for col in 0..array.cols {
                let dx = Point::new(
                    array.col_step.x * i32::from(col) + array.row_step.x * i32::from(row),
                    array.col_step.y * i32::from(col) + array.row_step.y * i32::from(row),
                );
                out.push(Transform::new(
                    base.mirror_x(),
                    base.rotation(),
                    base.mag(),
                    base.translate() + dx,
                ));
            }
        }
        Ok(out)
    }
}

/// A structure element.
#[derive(Debug, Clone, PartialEq)]
pub enum Element {
    /// Polygon.
    Boundary(BoundaryElement),
    /// Wire.
    Path(PathElement),
    /// Label.
    Text(TextElement),
    /// Structure or array reference.
    Ref(RefElement),
}

impl Element {
    /// Convenience constructor for an unnamed boundary.
    pub fn boundary(layer: i16, points: Vec<Point>) -> Element {
        Element::Boundary(BoundaryElement {
            layer,
            datatype: 0,
            points,
            properties: Vec::new(),
        })
    }

    /// Convenience constructor for an `SREF`.
    pub fn sref(sname: impl Into<String>, origin: Point) -> Element {
        Element::Ref(RefElement::sref(sname, origin))
    }
}

/// A structure (cell): a named list of elements (§IV-A).
#[derive(Debug, Clone, PartialEq)]
pub struct Structure {
    /// Structure name (unique within the library).
    pub name: String,
    /// Elements in stream order.
    pub elements: Vec<Element>,
}

impl Structure {
    /// Creates an empty structure.
    pub fn new(name: impl Into<String>) -> Self {
        Structure {
            name: name.into(),
            elements: Vec::new(),
        }
    }
}

/// A GDSII library: units plus a list of structures.
///
/// The *top* structures (not referenced by any other) are the layout
/// roots; [`Library::top_structures`] finds them.
#[derive(Debug, Clone, PartialEq)]
pub struct Library {
    /// Library name.
    pub name: String,
    /// Database units.
    pub units: Units,
    /// Structures in stream order.
    pub structures: Vec<Structure>,
}

impl Library {
    /// Creates an empty library with default units (1 dbu = 1 nm).
    pub fn new(name: impl Into<String>) -> Self {
        Library {
            name: name.into(),
            units: Units::default(),
            structures: Vec::new(),
        }
    }

    /// Finds a structure by name.
    pub fn structure(&self, name: &str) -> Option<&Structure> {
        self.structures.iter().find(|s| s.name == name)
    }

    /// Names of structures that are not referenced by any other
    /// structure, in stream order. A well-formed single-design layout
    /// has exactly one.
    pub fn top_structures(&self) -> Vec<&str> {
        let mut referenced = std::collections::HashSet::new();
        for s in &self.structures {
            for e in &s.elements {
                if let Element::Ref(r) = e {
                    referenced.insert(r.sname.as_str());
                }
            }
        }
        self.structures
            .iter()
            .map(|s| s.name.as_str())
            .filter(|n| !referenced.contains(n))
            .collect()
    }

    /// Total element count across all structures (references counted
    /// once, not expanded).
    pub fn element_count(&self) -> usize {
        self.structures.iter().map(|s| s.elements.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(x: i32, y: i32) -> Point {
        Point::new(x, y)
    }

    #[test]
    fn default_units_are_nanometers() {
        let u = Units::default();
        assert_eq!(u.user_per_dbu, 1e-3);
        assert_eq!(u.meters_per_dbu, 1e-9);
    }

    #[test]
    fn sref_transform_identity() {
        let r = RefElement::sref("CELL", p(100, 200));
        let t = r.transform().unwrap();
        assert_eq!(t.translate(), p(100, 200));
        assert_eq!(t.rotation(), Rotation::R0);
        assert!(!t.mirror_x());
    }

    #[test]
    fn transform_rejects_odd_angles() {
        let mut r = RefElement::sref("CELL", p(0, 0));
        r.angle_deg = 45.0;
        assert_eq!(
            r.transform(),
            Err(TransformError::UnsupportedAngle { angle_deg: 45.0 })
        );
        r.angle_deg = 270.0;
        assert_eq!(r.transform().unwrap().rotation(), Rotation::R270);
    }

    #[test]
    fn transform_rejects_fractional_mag() {
        let mut r = RefElement::sref("CELL", p(0, 0));
        r.mag = 1.5;
        assert!(matches!(
            r.transform(),
            Err(TransformError::UnsupportedMag { .. })
        ));
        r.mag = 2.0;
        assert_eq!(r.transform().unwrap().mag(), 2);
    }

    #[test]
    fn aref_expands_instances() {
        let mut r = RefElement::sref("CELL", p(10, 20));
        r.array = Some(ArrayParams {
            cols: 3,
            rows: 2,
            col_step: p(100, 0),
            row_step: p(0, 50),
        });
        let ts = r.instance_transforms().unwrap();
        assert_eq!(ts.len(), 6);
        assert_eq!(ts[0].translate(), p(10, 20));
        assert_eq!(ts[2].translate(), p(210, 20));
        assert_eq!(ts[3].translate(), p(10, 70));
        assert_eq!(ts[5].translate(), p(210, 70));
    }

    #[test]
    fn top_structures_excludes_referenced() {
        let mut lib = Library::new("lib");
        let mut top = Structure::new("TOP");
        top.elements.push(Element::sref("CHILD", p(0, 0)));
        lib.structures.push(top);
        lib.structures.push(Structure::new("CHILD"));
        lib.structures.push(Structure::new("ORPHAN"));
        assert_eq!(lib.top_structures(), vec!["TOP", "ORPHAN"]);
    }

    #[test]
    fn element_count_sums_structures() {
        let mut lib = Library::new("lib");
        let mut s = Structure::new("A");
        s.elements.push(Element::boundary(
            1,
            vec![p(0, 0), p(0, 1), p(1, 1), p(1, 0)],
        ));
        s.elements.push(Element::sref("B", p(0, 0)));
        lib.structures.push(s);
        lib.structures.push(Structure::new("B"));
        assert_eq!(lib.element_count(), 2);
        assert!(lib.structure("B").is_some());
        assert!(lib.structure("C").is_none());
    }
}
