//! Streaming (out-of-core) GDSII access.
//!
//! [`read()`](crate::read()) materializes the whole element model
//! before anything can be checked — on a chip-scale stream that
//! doubles the load-time footprint (raw bytes *and* the full
//! [`Library`](crate::Library)). This module splits the load into two
//! passes that never hold both:
//!
//! 1. [`index_file`] scans record *headers* only, seeking over
//!    payloads, and produces a [`StreamIndex`]: library name, units,
//!    and one [`StructureEntry`] (name + byte span) per structure. The
//!    index is a few dozen bytes per structure regardless of how much
//!    geometry the structures hold.
//! 2. [`read_structure`] seeks back to one entry's span and parses
//!    just that structure with the ordinary grammar parser. Callers
//!    convert and drop each structure before fetching the next, so the
//!    peak footprint is one structure, not the library.
//!
//! Feeding each parsed structure straight into
//! `odrc_db::LayoutBuilder` yields the out-of-core load path used by
//! `odrc check --out-of-core`.

use std::fs::File;
use std::io::{BufReader, Read, Seek, SeekFrom};
use std::path::Path;

use crate::model::{Structure, Units};
use crate::read::{parse_structure, Parser, ReadError};
use crate::record::{real8_to_f64, RecordType};

/// Byte span of one structure within the stream.
///
/// The span starts at the `STRNAME` record (the grammar parser expects
/// `BGNSTR` to have been consumed) and ends just past `ENDSTR`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StructureEntry {
    /// Structure name, as declared by `STRNAME`.
    pub name: String,
    /// Offset of the `STRNAME` record.
    pub offset: u64,
    /// Span length in bytes, through the end of `ENDSTR`.
    pub len: u64,
}

/// Header-level index of a GDSII stream: everything needed to load
/// structures lazily, with none of their geometry.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamIndex {
    /// Library name.
    pub name: String,
    /// Database units.
    pub units: Units,
    /// Structure spans, in stream order.
    pub entries: Vec<StructureEntry>,
}

impl StreamIndex {
    /// Finds a structure entry by name.
    pub fn entry(&self, name: &str) -> Option<&StructureEntry> {
        self.entries.iter().find(|e| e.name == name)
    }
}

/// Minimal record-header scanner over a seekable stream.
///
/// Reads the 4-byte header of each record and *seeks* over payloads it
/// does not need, so indexing cost is proportional to record count,
/// not stream size.
struct Scanner<R> {
    inner: R,
    offset: u64,
}

impl<R: Read + Seek> Scanner<R> {
    /// Reads the next record header: `(offset, type, payload length)`.
    fn next_header(&mut self) -> Result<(u64, RecordType, u64), ReadError> {
        let start = self.offset;
        let mut head = [0u8; 4];
        self.inner
            .read_exact(&mut head)
            .map_err(|_| ReadError::UnexpectedEof {
                offset: start as usize,
            })?;
        let len = u16::from_be_bytes([head[0], head[1]]);
        if len < 4 || !len.is_multiple_of(2) {
            return Err(ReadError::BadRecordLength {
                offset: start as usize,
                len,
            });
        }
        let rtype = RecordType::from_code(head[2]).ok_or(ReadError::UnknownRecordType {
            offset: start as usize,
            code: head[2],
        })?;
        self.offset = start + 4;
        Ok((start, rtype, u64::from(len) - 4))
    }

    /// Reads a payload of `len` bytes following the current header.
    fn payload(&mut self, len: u64) -> Result<Vec<u8>, ReadError> {
        let mut buf = vec![0u8; len as usize];
        self.inner
            .read_exact(&mut buf)
            .map_err(|_| ReadError::UnexpectedEof {
                offset: self.offset as usize,
            })?;
        self.offset += len;
        Ok(buf)
    }

    /// Seeks past a payload without reading it.
    fn skip(&mut self, len: u64) -> Result<(), ReadError> {
        self.inner.seek(SeekFrom::Current(len as i64))?;
        self.offset += len;
        Ok(())
    }
}

/// Trims trailing NUL padding and decodes a GDSII string payload.
fn decode_string(payload: &[u8], offset: u64) -> Result<String, ReadError> {
    let trimmed: &[u8] = match payload.iter().rposition(|&b| b != 0) {
        Some(last) => &payload[..=last],
        None => &[],
    };
    String::from_utf8(trimmed.to_vec()).map_err(|_| ReadError::BadString {
        offset: offset as usize,
    })
}

/// Indexes a GDSII stream without materializing any structure.
///
/// # Errors
///
/// Returns [`ReadError`] for I/O failures and for the same framing
/// and grammar problems [`read()`](crate::read()) rejects at the
/// library level. Element-level problems inside structures are *not*
/// detected here — they surface when the structure is parsed by
/// [`read_structure`].
fn index_reader<R: Read + Seek>(inner: R) -> Result<StreamIndex, ReadError> {
    let mut s = Scanner { inner, offset: 0 };

    let (off, rtype, len) = s.next_header()?;
    if rtype != RecordType::Header {
        return Err(ReadError::UnexpectedRecord {
            offset: off as usize,
            record: rtype,
            context: "reading stream header",
        });
    }
    s.skip(len)?;
    let (off, rtype, len) = s.next_header()?;
    if rtype != RecordType::BgnLib {
        return Err(ReadError::UnexpectedRecord {
            offset: off as usize,
            record: rtype,
            context: "reading library begin",
        });
    }
    s.skip(len)?;
    let (off, rtype, len) = s.next_header()?;
    if rtype != RecordType::LibName {
        return Err(ReadError::UnexpectedRecord {
            offset: off as usize,
            record: rtype,
            context: "reading library name",
        });
    }
    let name = decode_string(&s.payload(len)?, off)?;
    let (off, rtype, len) = s.next_header()?;
    if rtype != RecordType::Units || len != 16 {
        return Err(ReadError::UnexpectedRecord {
            offset: off as usize,
            record: rtype,
            context: "reading units",
        });
    }
    let payload = s.payload(len)?;
    let units = Units {
        user_per_dbu: real8_to_f64(payload[..8].try_into().expect("8 bytes")),
        meters_per_dbu: real8_to_f64(payload[8..].try_into().expect("8 bytes")),
    };

    let mut entries = Vec::new();
    loop {
        let (off, rtype, len) = s.next_header()?;
        match rtype {
            RecordType::EndLib => break,
            RecordType::BgnStr => {
                s.skip(len)?;
                let (start, rtype, len) = s.next_header()?;
                if rtype != RecordType::StrName {
                    return Err(ReadError::UnexpectedRecord {
                        offset: start as usize,
                        record: rtype,
                        context: "reading structure name",
                    });
                }
                let name = decode_string(&s.payload(len)?, start)?;
                // Seek to ENDSTR; structures do not nest.
                loop {
                    let (_, rtype, len) = s.next_header()?;
                    s.skip(len)?;
                    if rtype == RecordType::EndStr {
                        break;
                    }
                }
                entries.push(StructureEntry {
                    name,
                    offset: start,
                    len: s.offset - start,
                });
            }
            _ => {
                return Err(ReadError::UnexpectedRecord {
                    offset: off as usize,
                    record: rtype,
                    context: "reading structures",
                })
            }
        }
    }
    Ok(StreamIndex {
        name,
        units,
        entries,
    })
}

/// Indexes a GDSII file from disk; see the [module docs](self).
///
/// # Errors
///
/// Propagates I/O errors and library-level framing errors.
///
/// # Examples
///
/// ```no_run
/// let index = odrc_gdsii::stream::index_file("chip.gds")?;
/// println!("{} structures", index.entries.len());
/// # Ok::<(), odrc_gdsii::ReadError>(())
/// ```
pub fn index_file(path: impl AsRef<Path>) -> Result<StreamIndex, ReadError> {
    index_reader(BufReader::new(File::open(path)?))
}

/// Indexes an in-memory GDSII stream (the bytes are scanned, never
/// copied).
///
/// # Errors
///
/// Same as [`index_file`], minus file I/O.
pub fn index(bytes: &[u8]) -> Result<StreamIndex, ReadError> {
    index_reader(std::io::Cursor::new(bytes))
}

/// Parses one indexed structure from a seekable stream.
///
/// Only `entry.len` bytes are read. Error offsets are relative to the
/// structure span, not the file.
///
/// # Errors
///
/// Returns [`ReadError`] for I/O failures and for grammar or payload
/// problems inside the span.
pub fn read_structure<R: Read + Seek>(
    source: &mut R,
    entry: &StructureEntry,
) -> Result<Structure, ReadError> {
    source.seek(SeekFrom::Start(entry.offset))?;
    let mut buf = vec![0u8; entry.len as usize];
    source
        .read_exact(&mut buf)
        .map_err(|_| ReadError::UnexpectedEof {
            offset: entry.offset as usize,
        })?;
    let mut p = Parser::at(&buf, 0);
    parse_structure(&mut p)
}

/// Parses one indexed structure from an in-memory stream.
///
/// # Errors
///
/// Same as [`read_structure`].
pub fn structure_at(bytes: &[u8], entry: &StructureEntry) -> Result<Structure, ReadError> {
    let end = entry
        .offset
        .checked_add(entry.len)
        .filter(|&e| e <= bytes.len() as u64)
        .ok_or(ReadError::UnexpectedEof {
            offset: entry.offset as usize,
        })? as usize;
    let mut p = Parser::at(&bytes[..end], entry.offset as usize);
    parse_structure(&mut p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Element, Library, RefElement, Structure};
    use crate::write::write;
    use odrc_geometry::Point;

    fn sample() -> Library {
        let mut lib = Library::new("streamed");
        for i in 0..5 {
            let mut s = Structure::new(format!("CELL{i}"));
            for j in 0..4 {
                let x = i * 100 + j * 20;
                s.elements.push(Element::boundary(
                    1,
                    vec![
                        Point::new(x, 0),
                        Point::new(x, 10),
                        Point::new(x + 10, 10),
                        Point::new(x + 10, 0),
                    ],
                ));
            }
            lib.structures.push(s);
        }
        let mut top = Structure::new("TOP");
        for i in 0..5 {
            top.elements.push(Element::Ref(RefElement::sref(
                format!("CELL{i}"),
                Point::new(i * 200, 0),
            )));
        }
        lib.structures.push(top);
        lib
    }

    #[test]
    fn index_lists_every_structure_in_order() {
        let lib = sample();
        let bytes = write(&lib).unwrap();
        let idx = index(&bytes).unwrap();
        assert_eq!(idx.name, "streamed");
        assert_eq!(idx.units, lib.units);
        let names: Vec<&str> = idx.entries.iter().map(|e| e.name.as_str()).collect();
        assert_eq!(names, ["CELL0", "CELL1", "CELL2", "CELL3", "CELL4", "TOP"]);
    }

    #[test]
    fn streamed_structures_equal_full_parse() {
        let lib = sample();
        let bytes = write(&lib).unwrap();
        let idx = index(&bytes).unwrap();
        for (entry, expected) in idx.entries.iter().zip(&lib.structures) {
            assert_eq!(&structure_at(&bytes, entry).unwrap(), expected);
            let mut cursor = std::io::Cursor::new(&bytes[..]);
            assert_eq!(&read_structure(&mut cursor, entry).unwrap(), expected);
        }
    }

    #[test]
    fn index_file_roundtrips_through_disk() {
        let lib = sample();
        let bytes = write(&lib).unwrap();
        let path = std::env::temp_dir().join(format!("odrc-stream-{}.gds", std::process::id()));
        std::fs::write(&path, &bytes).unwrap();
        let idx = index_file(&path).unwrap();
        assert_eq!(idx, index(&bytes).unwrap());
        let mut f = File::open(&path).unwrap();
        for (entry, expected) in idx.entries.iter().zip(&lib.structures) {
            assert_eq!(&read_structure(&mut f, entry).unwrap(), expected);
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn truncated_stream_reports_offset() {
        let bytes = write(&sample()).unwrap();
        for cut in [0, 7, bytes.len() / 2, bytes.len() - 3] {
            assert!(index(&bytes[..cut]).is_err());
        }
    }

    #[test]
    fn entry_past_end_rejected() {
        let bytes = write(&sample()).unwrap();
        let idx = index(&bytes).unwrap();
        let mut entry = idx.entries[0].clone();
        entry.len = bytes.len() as u64 + 100;
        assert!(structure_at(&bytes, &entry).is_err());
    }

    #[test]
    fn index_matches_materializing_reader() {
        // The two loaders must agree on which structures exist.
        let bytes = write(&sample()).unwrap();
        let full = crate::read(&bytes).unwrap();
        let idx = index(&bytes).unwrap();
        assert_eq!(full.structures.len(), idx.entries.len());
        for (s, e) in full.structures.iter().zip(&idx.entries) {
            assert_eq!(s.name, e.name);
        }
    }
}
