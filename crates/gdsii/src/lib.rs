//! GDSII stream format reader and writer for OpenDRC.
//!
//! The GDSII stream format [Calma, 1987] is the interchange format for
//! hierarchical mask layouts. Its Backus-Naur structure (§IV-A of the
//! paper) defines a library as a list of *structures* (cells), each a
//! list of *elements*; an element can be a geometric primitive
//! (`BOUNDARY`, `PATH`, `TEXT`) or a reference to another structure
//! (`SREF`, `AREF`), which is how unbounded hierarchy arises.
//!
//! This crate provides:
//!
//! * [`Library`], [`Structure`], [`Element`] — a faithful in-memory
//!   model of the stream contents,
//! * [`read()`] / [`read_file`] — a binary stream parser with
//!   offset-carrying errors,
//! * [`write()`] / [`write_file`] — a binary stream writer, the exact
//!   inverse of the parser,
//! * [`record`] — the low-level record codec (types, lengths, and the
//!   excess-64 base-16 8-byte real number format),
//! * [`stream`] — a two-pass out-of-core loader: a header-level
//!   structure index (no geometry materialized) plus per-structure
//!   lazy parsing for memory-budgeted runs.
//!
//! # Examples
//!
//! ```
//! use odrc_gdsii::{Element, Library, Structure};
//! use odrc_geometry::Point;
//!
//! let mut lib = Library::new("demo");
//! let mut cell = Structure::new("INV");
//! cell.elements.push(Element::boundary(
//!     1,
//!     vec![
//!         Point::new(0, 0),
//!         Point::new(0, 50),
//!         Point::new(30, 50),
//!         Point::new(30, 0),
//!     ],
//! ));
//! lib.structures.push(cell);
//!
//! let bytes = odrc_gdsii::write(&lib)?;
//! let back = odrc_gdsii::read(&bytes)?;
//! assert_eq!(back, lib);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod model;
pub mod read;
pub mod record;
pub mod stream;
pub mod write;

pub use model::{
    BoundaryElement, Element, Library, PathElement, RefElement, Structure, TextElement,
    TransformError, Units,
};
pub use read::{read, read_file, ReadError};
pub use write::{write, write_file, WriteError};
