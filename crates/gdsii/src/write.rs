//! GDSII stream writer.

use std::fmt;
use std::path::Path;

use bytes::{BufMut, BytesMut};
use odrc_geometry::Point;

use crate::model::{Element, Library};
use crate::record::{real8_from_f64, DataType, RecordType};

/// Error produced while serializing a library.
#[derive(Debug)]
pub enum WriteError {
    /// A name or string exceeds the format's record capacity.
    StringTooLong {
        /// Length of the offending string in bytes.
        len: usize,
    },
    /// An `XY` list exceeds the format's record capacity.
    TooManyPoints {
        /// Number of points in the offending list.
        count: usize,
    },
    /// Underlying I/O failure (file output only).
    Io(std::io::Error),
}

impl fmt::Display for WriteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WriteError::StringTooLong { len } => {
                write!(f, "string of {len} bytes exceeds GDSII record capacity")
            }
            WriteError::TooManyPoints { count } => {
                write!(
                    f,
                    "coordinate list of {count} points exceeds GDSII record capacity"
                )
            }
            WriteError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for WriteError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WriteError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for WriteError {
    fn from(e: std::io::Error) -> Self {
        WriteError::Io(e)
    }
}

/// Serializes a library to GDSII stream bytes.
///
/// # Errors
///
/// Returns [`WriteError`] if a string or coordinate list exceeds the
/// 16-bit record length limit of the format.
///
/// # Examples
///
/// ```
/// use odrc_gdsii::{write, Library};
/// let bytes = write(&Library::new("empty"))?;
/// assert_eq!(&bytes[2..4], &[0x00, 0x02]); // HEADER record
/// # Ok::<(), odrc_gdsii::WriteError>(())
/// ```
pub fn write(lib: &Library) -> Result<Vec<u8>, WriteError> {
    let mut w = Writer::default();
    w.record_i16(RecordType::Header, &[600]);
    w.record_i16(RecordType::BgnLib, &[0; 12]);
    w.record_str(RecordType::LibName, &lib.name)?;
    w.record_real(
        RecordType::Units,
        &[lib.units.user_per_dbu, lib.units.meters_per_dbu],
    );
    for s in &lib.structures {
        w.record_i16(RecordType::BgnStr, &[0; 12]);
        w.record_str(RecordType::StrName, &s.name)?;
        for e in &s.elements {
            w.element(e)?;
        }
        w.record_none(RecordType::EndStr);
    }
    w.record_none(RecordType::EndLib);
    Ok(w.buf.to_vec())
}

/// Serializes a library directly to a file.
///
/// # Errors
///
/// Propagates [`write()`] errors and file I/O errors.
pub fn write_file(lib: &Library, path: impl AsRef<Path>) -> Result<(), WriteError> {
    let bytes = write(lib)?;
    std::fs::write(path, bytes)?;
    Ok(())
}

#[derive(Default)]
struct Writer {
    buf: BytesMut,
}

impl Writer {
    fn header(&mut self, rt: RecordType, payload_len: usize) {
        let total = payload_len + 4;
        debug_assert!(total <= usize::from(u16::MAX));
        self.buf.put_u16(total as u16);
        self.buf.put_u8(rt.code());
        self.buf.put_u8(rt.data_type().code());
    }

    fn record_none(&mut self, rt: RecordType) {
        debug_assert_eq!(rt.data_type(), DataType::None);
        self.header(rt, 0);
    }

    fn record_i16(&mut self, rt: RecordType, values: &[i16]) {
        debug_assert_eq!(rt.data_type(), DataType::Int16);
        self.header(rt, values.len() * 2);
        for &v in values {
            self.buf.put_i16(v);
        }
    }

    fn record_real(&mut self, rt: RecordType, values: &[f64]) {
        debug_assert_eq!(rt.data_type(), DataType::Real64);
        self.header(rt, values.len() * 8);
        for &v in values {
            self.buf.put_slice(&real8_from_f64(v));
        }
    }

    fn record_str(&mut self, rt: RecordType, s: &str) -> Result<(), WriteError> {
        debug_assert_eq!(rt.data_type(), DataType::Ascii);
        let mut bytes = s.as_bytes().to_vec();
        if bytes.len() % 2 == 1 {
            bytes.push(0);
        }
        if bytes.len() + 4 > usize::from(u16::MAX) {
            return Err(WriteError::StringTooLong { len: s.len() });
        }
        self.header(rt, bytes.len());
        self.buf.put_slice(&bytes);
        Ok(())
    }

    fn record_xy(&mut self, points: &[Point]) -> Result<(), WriteError> {
        let payload = points.len() * 8;
        if payload + 4 > usize::from(u16::MAX) {
            return Err(WriteError::TooManyPoints {
                count: points.len(),
            });
        }
        self.header(RecordType::Xy, payload);
        for p in points {
            self.buf.put_i32(p.x);
            self.buf.put_i32(p.y);
        }
        Ok(())
    }

    fn strans(&mut self, mirror_x: bool, mag: f64, angle_deg: f64) {
        if mirror_x || mag != 1.0 || angle_deg != 0.0 {
            let flags: i16 = if mirror_x { i16::MIN } else { 0 }; // bit 15
            self.record_i16(RecordType::Strans, &[flags]);
            if mag != 1.0 {
                self.record_real(RecordType::Mag, &[mag]);
            }
            if angle_deg != 0.0 {
                self.record_real(RecordType::Angle, &[angle_deg]);
            }
        }
    }

    fn properties(&mut self, props: &[(i16, String)]) -> Result<(), WriteError> {
        for (attr, value) in props {
            self.record_i16(RecordType::PropAttr, &[*attr]);
            self.record_str(RecordType::PropValue, value)?;
        }
        Ok(())
    }

    fn element(&mut self, e: &Element) -> Result<(), WriteError> {
        match e {
            Element::Boundary(b) => {
                self.record_none(RecordType::Boundary);
                self.record_i16(RecordType::Layer, &[b.layer]);
                self.record_i16(RecordType::Datatype, &[b.datatype]);
                // GDSII repeats the first point to close the boundary.
                let mut pts = b.points.clone();
                if let Some(&first) = pts.first() {
                    pts.push(first);
                }
                self.record_xy(&pts)?;
                self.properties(&b.properties)?;
            }
            Element::Path(p) => {
                self.record_none(RecordType::Path);
                self.record_i16(RecordType::Layer, &[p.layer]);
                self.record_i16(RecordType::Datatype, &[p.datatype]);
                if p.path_type != 0 {
                    self.record_i16(RecordType::PathType, &[p.path_type]);
                }
                if p.width != 0 {
                    self.header(RecordType::Width, 4);
                    self.buf.put_i32(p.width);
                }
                self.record_xy(&p.points)?;
                self.properties(&p.properties)?;
            }
            Element::Text(t) => {
                self.record_none(RecordType::Text);
                self.record_i16(RecordType::Layer, &[t.layer]);
                self.record_i16(RecordType::TextType, &[t.texttype]);
                self.record_xy(std::slice::from_ref(&t.position))?;
                self.record_str(RecordType::String, &t.string)?;
            }
            Element::Ref(r) => match r.array {
                None => {
                    self.record_none(RecordType::Sref);
                    self.record_str(RecordType::Sname, &r.sname)?;
                    self.strans(r.mirror_x, r.mag, r.angle_deg);
                    self.record_xy(std::slice::from_ref(&r.origin))?;
                }
                Some(a) => {
                    self.record_none(RecordType::Aref);
                    self.record_str(RecordType::Sname, &r.sname)?;
                    self.strans(r.mirror_x, r.mag, r.angle_deg);
                    self.record_i16(RecordType::Colrow, &[a.cols as i16, a.rows as i16]);
                    let col_ref = Point::new(
                        r.origin.x + a.col_step.x * i32::from(a.cols),
                        r.origin.y + a.col_step.y * i32::from(a.cols),
                    );
                    let row_ref = Point::new(
                        r.origin.x + a.row_step.x * i32::from(a.rows),
                        r.origin.y + a.row_step.y * i32::from(a.rows),
                    );
                    self.record_xy(&[r.origin, col_ref, row_ref])?;
                }
            },
        }
        self.record_none(RecordType::EndEl);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Structure;

    #[test]
    fn empty_library_layout() {
        let bytes = write(&Library::new("lib")).unwrap();
        // HEADER(6+4=... ) starts with length 6, type 0x00, dtype 0x02.
        assert_eq!(&bytes[..4], &[0x00, 0x06, 0x00, 0x02]);
        // Stream ends with ENDLIB (length 4, type 0x04, dtype 0x00).
        assert_eq!(&bytes[bytes.len() - 4..], &[0x00, 0x04, 0x04, 0x00]);
    }

    #[test]
    fn odd_length_names_padded() {
        let mut lib = Library::new("abc"); // 3 bytes -> padded to 4
        lib.structures.push(Structure::new("X"));
        let bytes = write(&lib).unwrap();
        // Every record length must be even.
        let mut off = 0;
        while off < bytes.len() {
            let len = u16::from_be_bytes([bytes[off], bytes[off + 1]]) as usize;
            assert!(len.is_multiple_of(2) && len >= 4);
            off += len;
        }
        assert_eq!(off, bytes.len());
    }

    #[test]
    fn boundary_closes_polygon() {
        let mut lib = Library::new("l");
        let mut s = Structure::new("S");
        s.elements.push(Element::boundary(
            5,
            vec![
                Point::new(0, 0),
                Point::new(0, 10),
                Point::new(10, 10),
                Point::new(10, 0),
            ],
        ));
        lib.structures.push(s);
        let bytes = write(&lib).unwrap();
        // Find the XY record (type 0x10): its payload must hold 5 points.
        let mut off = 0;
        let mut found = false;
        while off < bytes.len() {
            let len = u16::from_be_bytes([bytes[off], bytes[off + 1]]) as usize;
            if bytes[off + 2] == 0x10 {
                assert_eq!(len - 4, 5 * 8);
                found = true;
            }
            off += len;
        }
        assert!(found);
    }
}
