//! GDSII stream parser.

use std::fmt;
use std::path::Path;

use odrc_geometry::Point;

use crate::model::{
    ArrayParams, BoundaryElement, Element, Library, PathElement, RefElement, Structure,
    TextElement, Units,
};
use crate::record::{real8_to_f64, RecordType};

/// Error produced while parsing a GDSII stream.
///
/// Every variant carries the byte offset of the offending record so
/// corrupt files can be diagnosed with a hex dump.
#[derive(Debug)]
pub enum ReadError {
    /// The stream ended inside a record.
    UnexpectedEof {
        /// Offset where more bytes were required.
        offset: usize,
    },
    /// A record header declared an impossible length.
    BadRecordLength {
        /// Offset of the record header.
        offset: usize,
        /// The declared total length.
        len: u16,
    },
    /// A record type byte is not part of the format.
    UnknownRecordType {
        /// Offset of the record header.
        offset: usize,
        /// The unknown type byte.
        code: u8,
    },
    /// A known record carried the wrong payload size for its type.
    BadPayloadLength {
        /// Offset of the record header.
        offset: usize,
        /// The record type.
        record: RecordType,
        /// Actual payload size in bytes.
        len: usize,
    },
    /// A record appeared where the grammar does not allow it.
    UnexpectedRecord {
        /// Offset of the record header.
        offset: usize,
        /// The record type found.
        record: RecordType,
        /// What the parser was doing.
        context: &'static str,
    },
    /// The stream ended before the grammar was complete.
    MissingRecord {
        /// What the parser was expecting.
        context: &'static str,
    },
    /// An `AREF` lattice vector does not divide evenly by its count.
    NonIntegerArrayPitch {
        /// Offset of the `XY` record.
        offset: usize,
    },
    /// `COLROW` holds non-positive counts.
    BadColrow {
        /// Offset of the record.
        offset: usize,
        /// Declared column count.
        cols: i16,
        /// Declared row count.
        rows: i16,
    },
    /// A string payload is not valid ASCII/UTF-8.
    BadString {
        /// Offset of the record.
        offset: usize,
    },
    /// Underlying I/O failure (file input only).
    Io(std::io::Error),
}

impl fmt::Display for ReadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReadError::UnexpectedEof { offset } => {
                write!(f, "unexpected end of stream at byte {offset}")
            }
            ReadError::BadRecordLength { offset, len } => {
                write!(f, "record at byte {offset} declares invalid length {len}")
            }
            ReadError::UnknownRecordType { offset, code } => {
                write!(f, "unknown record type {code:#04x} at byte {offset}")
            }
            ReadError::BadPayloadLength {
                offset,
                record,
                len,
            } => write!(
                f,
                "record {record} at byte {offset} has invalid payload length {len}"
            ),
            ReadError::UnexpectedRecord {
                offset,
                record,
                context,
            } => write!(f, "unexpected {record} at byte {offset} while {context}"),
            ReadError::MissingRecord { context } => {
                write!(f, "stream ended while {context}")
            }
            ReadError::NonIntegerArrayPitch { offset } => {
                write!(f, "AREF at byte {offset} has a non-integer lattice pitch")
            }
            ReadError::BadColrow { offset, cols, rows } => {
                write!(f, "AREF at byte {offset} has invalid COLROW {cols}x{rows}")
            }
            ReadError::BadString { offset } => {
                write!(f, "string record at byte {offset} is not valid text")
            }
            ReadError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for ReadError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ReadError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ReadError {
    fn from(e: std::io::Error) -> Self {
        ReadError::Io(e)
    }
}

/// One raw record: offset, type, payload.
#[derive(Debug, Clone, Copy)]
struct RawRecord<'a> {
    offset: usize,
    rtype: RecordType,
    data: &'a [u8],
}

impl<'a> RawRecord<'a> {
    fn i16s(&self) -> Result<Vec<i16>, ReadError> {
        if !self.data.len().is_multiple_of(2) {
            return Err(self.bad_len());
        }
        Ok(self
            .data
            .chunks_exact(2)
            .map(|c| i16::from_be_bytes([c[0], c[1]]))
            .collect())
    }

    fn single_i16(&self) -> Result<i16, ReadError> {
        if self.data.len() != 2 {
            return Err(self.bad_len());
        }
        Ok(i16::from_be_bytes([self.data[0], self.data[1]]))
    }

    fn single_i32(&self) -> Result<i32, ReadError> {
        if self.data.len() != 4 {
            return Err(self.bad_len());
        }
        Ok(i32::from_be_bytes([
            self.data[0],
            self.data[1],
            self.data[2],
            self.data[3],
        ]))
    }

    fn reals(&self) -> Result<Vec<f64>, ReadError> {
        if !self.data.len().is_multiple_of(8) {
            return Err(self.bad_len());
        }
        Ok(self
            .data
            .chunks_exact(8)
            .map(|c| real8_to_f64(c.try_into().expect("chunk of 8")))
            .collect())
    }

    fn string(&self) -> Result<String, ReadError> {
        let trimmed: &[u8] = match self.data.iter().rposition(|&b| b != 0) {
            Some(last) => &self.data[..=last],
            None => &[],
        };
        String::from_utf8(trimmed.to_vec()).map_err(|_| ReadError::BadString {
            offset: self.offset,
        })
    }

    fn points(&self) -> Result<Vec<Point>, ReadError> {
        if !self.data.len().is_multiple_of(8) {
            return Err(self.bad_len());
        }
        Ok(self
            .data
            .chunks_exact(8)
            .map(|c| {
                Point::new(
                    i32::from_be_bytes([c[0], c[1], c[2], c[3]]),
                    i32::from_be_bytes([c[4], c[5], c[6], c[7]]),
                )
            })
            .collect())
    }

    fn bad_len(&self) -> ReadError {
        ReadError::BadPayloadLength {
            offset: self.offset,
            record: self.rtype,
            len: self.data.len(),
        }
    }

    fn unexpected(&self, context: &'static str) -> ReadError {
        ReadError::UnexpectedRecord {
            offset: self.offset,
            record: self.rtype,
            context,
        }
    }
}

pub(crate) struct Parser<'a> {
    bytes: &'a [u8],
    offset: usize,
    peeked: Option<RawRecord<'a>>,
}

impl<'a> Parser<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Parser {
            bytes,
            offset: 0,
            peeked: None,
        }
    }

    /// A parser positioned mid-stream, for re-parsing an indexed span
    /// (see [`crate::stream`]). Error offsets are relative to `bytes`.
    pub(crate) fn at(bytes: &'a [u8], offset: usize) -> Self {
        Parser {
            bytes,
            offset,
            peeked: None,
        }
    }

    /// Reads the next raw record, or `None` at a clean end of stream.
    fn next(&mut self) -> Result<Option<RawRecord<'a>>, ReadError> {
        if let Some(r) = self.peeked.take() {
            return Ok(Some(r));
        }
        // Tolerate trailing NUL padding after ENDLIB (tape blocks).
        if self.bytes[self.offset..].iter().all(|&b| b == 0) {
            return Ok(None);
        }
        if self.offset + 4 > self.bytes.len() {
            return Err(ReadError::UnexpectedEof {
                offset: self.offset,
            });
        }
        let start = self.offset;
        let len = u16::from_be_bytes([self.bytes[start], self.bytes[start + 1]]);
        if len < 4 || !len.is_multiple_of(2) {
            return Err(ReadError::BadRecordLength { offset: start, len });
        }
        let end = start + usize::from(len);
        if end > self.bytes.len() {
            return Err(ReadError::UnexpectedEof { offset: start });
        }
        let code = self.bytes[start + 2];
        let rtype = RecordType::from_code(code).ok_or(ReadError::UnknownRecordType {
            offset: start,
            code,
        })?;
        self.offset = end;
        Ok(Some(RawRecord {
            offset: start,
            rtype,
            data: &self.bytes[start + 4..end],
        }))
    }

    fn next_required(&mut self, context: &'static str) -> Result<RawRecord<'a>, ReadError> {
        self.next()?.ok_or(ReadError::MissingRecord { context })
    }

    fn expect(
        &mut self,
        rtype: RecordType,
        context: &'static str,
    ) -> Result<RawRecord<'a>, ReadError> {
        let rec = self.next_required(context)?;
        if rec.rtype != rtype {
            return Err(rec.unexpected(context));
        }
        Ok(rec)
    }
}

/// Parses a GDSII stream from bytes.
///
/// # Errors
///
/// Returns [`ReadError`] with the byte offset of the first malformed
/// record for truncated, corrupted, or grammatically invalid streams.
///
/// # Examples
///
/// ```
/// use odrc_gdsii::{read, write, Library};
/// let lib = Library::new("roundtrip");
/// let back = read(&write(&lib)?)?;
/// assert_eq!(back.name, "roundtrip");
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn read(bytes: &[u8]) -> Result<Library, ReadError> {
    let mut p = Parser::new(bytes);
    p.expect(RecordType::Header, "reading stream header")?;
    p.expect(RecordType::BgnLib, "reading library begin")?;
    let name = p
        .expect(RecordType::LibName, "reading library name")?
        .string()?;
    let units_rec = p.expect(RecordType::Units, "reading units")?;
    let reals = units_rec.reals()?;
    if reals.len() != 2 {
        return Err(units_rec.bad_len());
    }
    let mut lib = Library {
        name,
        units: Units {
            user_per_dbu: reals[0],
            meters_per_dbu: reals[1],
        },
        structures: Vec::new(),
    };

    loop {
        let rec = p.next_required("reading structures")?;
        match rec.rtype {
            RecordType::BgnStr => {
                lib.structures.push(parse_structure(&mut p)?);
            }
            RecordType::EndLib => break,
            _ => return Err(rec.unexpected("reading structures")),
        }
    }
    Ok(lib)
}

/// Parses a GDSII file from disk.
///
/// # Errors
///
/// Propagates [`read`] errors and file I/O errors.
pub fn read_file(path: impl AsRef<Path>) -> Result<Library, ReadError> {
    let bytes = std::fs::read(path)?;
    read(&bytes)
}

pub(crate) fn parse_structure(p: &mut Parser<'_>) -> Result<Structure, ReadError> {
    let name = p
        .expect(RecordType::StrName, "reading structure name")?
        .string()?;
    let mut st = Structure::new(name);
    loop {
        let rec = p.next_required("reading structure elements")?;
        match rec.rtype {
            RecordType::EndStr => break,
            RecordType::Boundary => st.elements.push(parse_boundary(p)?),
            RecordType::Path => st.elements.push(parse_path(p)?),
            RecordType::Sref => st.elements.push(parse_ref(p, false, rec.offset)?),
            RecordType::Aref => st.elements.push(parse_ref(p, true, rec.offset)?),
            RecordType::Text => st.elements.push(parse_text(p)?),
            _ => return Err(rec.unexpected("reading structure elements")),
        }
    }
    Ok(st)
}

/// Consumes optional `ELFLAGS` / `PLEX` records, which this engine
/// ignores.
fn skip_optional_flags<'a>(p: &mut Parser<'a>) -> Result<RawRecord<'a>, ReadError> {
    loop {
        let rec = p.next_required("reading element body")?;
        match rec.rtype {
            RecordType::ElFlags | RecordType::Plex => continue,
            _ => return Ok(rec),
        }
    }
}

/// Parses trailing `PROPATTR`/`PROPVALUE` pairs up to `ENDEL`.
fn parse_properties(p: &mut Parser<'_>) -> Result<Vec<(i16, String)>, ReadError> {
    let mut props = Vec::new();
    loop {
        let rec = p.next_required("reading element properties")?;
        match rec.rtype {
            RecordType::EndEl => return Ok(props),
            RecordType::PropAttr => {
                let attr = rec.single_i16()?;
                let value = p
                    .expect(RecordType::PropValue, "reading property value")?
                    .string()?;
                props.push((attr, value));
            }
            _ => return Err(rec.unexpected("reading element properties")),
        }
    }
}

fn parse_boundary(p: &mut Parser<'_>) -> Result<Element, ReadError> {
    let rec = skip_optional_flags(p)?;
    if rec.rtype != RecordType::Layer {
        return Err(rec.unexpected("reading boundary layer"));
    }
    let layer = rec.single_i16()?;
    let datatype = p
        .expect(RecordType::Datatype, "reading boundary datatype")?
        .single_i16()?;
    let xy = p.expect(RecordType::Xy, "reading boundary coordinates")?;
    let mut points = xy.points()?;
    if points.len() < 4 {
        return Err(xy.bad_len());
    }
    // Drop the repeated closing vertex.
    if points.len() >= 2 && points.first() == points.last() {
        points.pop();
    }
    let properties = parse_properties(p)?;
    Ok(Element::Boundary(BoundaryElement {
        layer,
        datatype,
        points,
        properties,
    }))
}

fn parse_path(p: &mut Parser<'_>) -> Result<Element, ReadError> {
    let rec = skip_optional_flags(p)?;
    if rec.rtype != RecordType::Layer {
        return Err(rec.unexpected("reading path layer"));
    }
    let layer = rec.single_i16()?;
    let datatype = p
        .expect(RecordType::Datatype, "reading path datatype")?
        .single_i16()?;
    let mut path_type = 0i16;
    let mut width = 0i32;
    let xy = loop {
        let rec = p.next_required("reading path body")?;
        match rec.rtype {
            RecordType::PathType => path_type = rec.single_i16()?,
            RecordType::Width => width = rec.single_i32()?,
            RecordType::Xy => break rec,
            _ => return Err(rec.unexpected("reading path body")),
        }
    };
    let points = xy.points()?;
    if points.len() < 2 {
        return Err(xy.bad_len());
    }
    let properties = parse_properties(p)?;
    Ok(Element::Path(PathElement {
        layer,
        datatype,
        path_type,
        width,
        points,
        properties,
    }))
}

fn parse_text(p: &mut Parser<'_>) -> Result<Element, ReadError> {
    let rec = skip_optional_flags(p)?;
    if rec.rtype != RecordType::Layer {
        return Err(rec.unexpected("reading text layer"));
    }
    let layer = rec.single_i16()?;
    let texttype = p
        .expect(RecordType::TextType, "reading text type")?
        .single_i16()?;
    // Optional presentation/strans records may precede the position.
    let xy = loop {
        let rec = p.next_required("reading text body")?;
        match rec.rtype {
            RecordType::Presentation | RecordType::Strans => continue,
            RecordType::Mag | RecordType::Angle => continue,
            RecordType::Xy => break rec,
            _ => return Err(rec.unexpected("reading text body")),
        }
    };
    let points = xy.points()?;
    if points.len() != 1 {
        return Err(xy.bad_len());
    }
    let string = p
        .expect(RecordType::String, "reading text string")?
        .string()?;
    // Consume up to ENDEL (texts may carry properties too; discard).
    let _ = parse_properties(p)?;
    Ok(Element::Text(TextElement {
        layer,
        texttype,
        position: points[0],
        string,
    }))
}

fn parse_ref(
    p: &mut Parser<'_>,
    is_array: bool,
    start_offset: usize,
) -> Result<Element, ReadError> {
    let rec = skip_optional_flags(p)?;
    if rec.rtype != RecordType::Sname {
        return Err(rec.unexpected("reading reference name"));
    }
    let sname = rec.string()?;
    let mut mirror_x = false;
    let mut mag = 1.0f64;
    let mut angle_deg = 0.0f64;
    let mut colrow: Option<(i16, i16)> = None;
    let xy = loop {
        let rec = p.next_required("reading reference body")?;
        match rec.rtype {
            RecordType::Strans => {
                let flags = rec.single_i16()? as u16;
                mirror_x = flags & 0x8000 != 0;
            }
            RecordType::Mag => {
                let reals = rec.reals()?;
                if reals.len() != 1 {
                    return Err(rec.bad_len());
                }
                mag = reals[0];
            }
            RecordType::Angle => {
                let reals = rec.reals()?;
                if reals.len() != 1 {
                    return Err(rec.bad_len());
                }
                angle_deg = reals[0];
            }
            RecordType::Colrow => {
                let v = rec.i16s()?;
                if v.len() != 2 {
                    return Err(rec.bad_len());
                }
                colrow = Some((v[0], v[1]));
            }
            RecordType::Xy => break rec,
            _ => return Err(rec.unexpected("reading reference body")),
        }
    };
    let points = xy.points()?;
    let array = if is_array {
        let (cols, rows) = colrow.ok_or(ReadError::MissingRecord {
            context: "reading AREF COLROW",
        })?;
        if cols <= 0 || rows <= 0 {
            return Err(ReadError::BadColrow {
                offset: start_offset,
                cols,
                rows,
            });
        }
        if points.len() != 3 {
            return Err(xy.bad_len());
        }
        let origin = points[0];
        let col_span = points[1] - origin;
        let row_span = points[2] - origin;
        let div = |v: Point, n: i32| -> Result<Point, ReadError> {
            if v.x % n != 0 || v.y % n != 0 {
                return Err(ReadError::NonIntegerArrayPitch { offset: xy.offset });
            }
            Ok(Point::new(v.x / n, v.y / n))
        };
        Some(ArrayParams {
            cols: cols as u16,
            rows: rows as u16,
            col_step: div(col_span, i32::from(cols))?,
            row_step: div(row_span, i32::from(rows))?,
        })
    } else {
        if points.len() != 1 {
            return Err(xy.bad_len());
        }
        None
    };
    let origin = points[0];
    let _ = parse_properties(p)?;
    Ok(Element::Ref(RefElement {
        sname,
        origin,
        mirror_x,
        angle_deg,
        mag,
        array,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{ArrayParams, Library, Structure};
    use crate::write::write;

    fn p2(x: i32, y: i32) -> Point {
        Point::new(x, y)
    }

    fn sample_library() -> Library {
        let mut lib = Library::new("sample");
        let mut inv = Structure::new("INV");
        inv.elements.push(Element::Boundary(BoundaryElement {
            layer: 1,
            datatype: 0,
            points: vec![p2(0, 0), p2(0, 50), p2(30, 50), p2(30, 0)],
            properties: vec![(1, "poly0".to_owned())],
        }));
        inv.elements.push(Element::Path(PathElement {
            layer: 2,
            datatype: 0,
            path_type: 2,
            width: 10,
            points: vec![p2(0, 25), p2(100, 25)],
            properties: vec![],
        }));
        inv.elements.push(Element::Text(TextElement {
            layer: 63,
            texttype: 0,
            position: p2(5, 5),
            string: "label".to_owned(),
        }));
        lib.structures.push(inv);

        let mut top = Structure::new("TOP");
        let mut r = RefElement::sref("INV", p2(1000, 0));
        r.mirror_x = true;
        r.angle_deg = 90.0;
        top.elements.push(Element::Ref(r));
        let mut ar = RefElement::sref("INV", p2(0, 0));
        ar.array = Some(ArrayParams {
            cols: 4,
            rows: 2,
            col_step: p2(200, 0),
            row_step: p2(0, 300),
        });
        top.elements.push(Element::Ref(ar));
        lib.structures.push(top);
        lib
    }

    #[test]
    fn roundtrip_full_library() {
        let lib = sample_library();
        let bytes = write(&lib).unwrap();
        let back = read(&bytes).unwrap();
        assert_eq!(back, lib);
    }

    #[test]
    fn truncated_stream_reports_offset() {
        let bytes = write(&sample_library()).unwrap();
        let err = read(&bytes[..bytes.len() - 10]).unwrap_err();
        match err {
            ReadError::UnexpectedEof { .. } | ReadError::MissingRecord { .. } => {}
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn every_truncation_point_errors_cleanly() {
        let bytes = write(&sample_library()).unwrap();
        for cut in (0..bytes.len() - 1).step_by(7) {
            // Never panics; always a structured error.
            let _ = read(&bytes[..cut]).unwrap_err();
        }
    }

    #[test]
    fn corrupt_record_type_detected() {
        let mut bytes = write(&sample_library()).unwrap();
        bytes[2] = 0xEE; // clobber HEADER's record type
        match read(&bytes).unwrap_err() {
            ReadError::UnknownRecordType {
                offset: 0,
                code: 0xEE,
            } => {}
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn bad_record_length_detected() {
        let mut bytes = write(&sample_library()).unwrap();
        bytes[0] = 0;
        bytes[1] = 3; // odd length < 4
        match read(&bytes).unwrap_err() {
            ReadError::BadRecordLength { offset: 0, len: 3 } => {}
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn grammar_violation_detected() {
        // ENDLIB directly after UNITS is fine (empty library); but a
        // LAYER record at library level is not.
        let mut lib_bytes = write(&Library::new("x")).unwrap();
        // Splice a LAYER record before the trailing ENDLIB.
        let endlib = lib_bytes.split_off(lib_bytes.len() - 4);
        lib_bytes.extend_from_slice(&[0x00, 0x06, 0x0D, 0x02, 0x00, 0x01]);
        lib_bytes.extend_from_slice(&endlib);
        match read(&lib_bytes).unwrap_err() {
            ReadError::UnexpectedRecord {
                record: RecordType::Layer,
                ..
            } => {}
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn trailing_padding_tolerated() {
        let mut bytes = write(&sample_library()).unwrap();
        bytes.extend_from_slice(&[0u8; 64]);
        assert!(read(&bytes).is_ok());
    }

    #[test]
    fn aref_pitch_division() {
        let lib = {
            let mut lib = Library::new("a");
            lib.structures.push(Structure::new("LEAF"));
            let mut top = Structure::new("TOP");
            let mut r = RefElement::sref("LEAF", p2(10, 10));
            r.array = Some(ArrayParams {
                cols: 3,
                rows: 5,
                col_step: p2(7, 0),
                row_step: p2(0, 11),
            });
            top.elements.push(Element::Ref(r));
            lib.structures.push(top);
            lib
        };
        let back = read(&write(&lib).unwrap()).unwrap();
        assert_eq!(back, lib);
    }

    #[test]
    fn boundary_without_closure_still_reads() {
        // Hand-build a boundary whose XY does not repeat the first point;
        // some tools emit this. The parser keeps all points.
        let mut lib = Library::new("l");
        let mut s = Structure::new("S");
        s.elements.push(Element::boundary(
            1,
            vec![p2(0, 0), p2(0, 4), p2(4, 4), p2(4, 0)],
        ));
        lib.structures.push(s);
        let back = read(&write(&lib).unwrap()).unwrap();
        assert_eq!(back, lib);
    }
}
