//! The GDSII record codec.
//!
//! A GDSII stream is a sequence of records. Each record starts with a
//! 4-byte header: a big-endian `u16` total record length (including the
//! header), a record-type byte, and a data-type byte. The payload
//! follows, in one of five encodings: no data, 2-byte integers, 4-byte
//! integers, 8-byte excess-64 base-16 reals, or ASCII strings (padded to
//! even length with a NUL).

use std::fmt;

/// GDSII record types used by this engine (subset of the full standard
/// sufficient for mask layouts; unknown types are skipped or rejected by
/// the reader depending on whether they can affect geometry).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum RecordType {
    /// Stream format version.
    Header = 0x00,
    /// Begin library (modification timestamps).
    BgnLib = 0x01,
    /// Library name.
    LibName = 0x02,
    /// Database units.
    Units = 0x03,
    /// End of library.
    EndLib = 0x04,
    /// Begin structure (timestamps).
    BgnStr = 0x05,
    /// Structure name.
    StrName = 0x06,
    /// End of structure.
    EndStr = 0x07,
    /// Begin boundary element.
    Boundary = 0x08,
    /// Begin path element.
    Path = 0x09,
    /// Begin structure reference element.
    Sref = 0x0A,
    /// Begin array reference element.
    Aref = 0x0B,
    /// Begin text element.
    Text = 0x0C,
    /// Layer number.
    Layer = 0x0D,
    /// Data type number.
    Datatype = 0x0E,
    /// Path width.
    Width = 0x0F,
    /// Coordinate list.
    Xy = 0x10,
    /// End of element.
    EndEl = 0x11,
    /// Referenced structure name.
    Sname = 0x12,
    /// Array columns and rows.
    Colrow = 0x13,
    /// Text type number.
    TextType = 0x16,
    /// Text presentation flags.
    Presentation = 0x17,
    /// Text string.
    String = 0x19,
    /// Transform flags (bit 15: mirror about x before rotation).
    Strans = 0x1A,
    /// Magnification.
    Mag = 0x1B,
    /// Rotation angle in degrees, counter-clockwise.
    Angle = 0x1C,
    /// Path end-cap style.
    PathType = 0x21,
    /// Element flags (ignored).
    ElFlags = 0x26,
    /// Plex number (ignored).
    Plex = 0x2F,
    /// Property attribute number.
    PropAttr = 0x2B,
    /// Property value string.
    PropValue = 0x2C,
}

impl RecordType {
    /// Decodes a record-type byte.
    pub fn from_code(code: u8) -> Option<RecordType> {
        use RecordType::*;
        Some(match code {
            0x00 => Header,
            0x01 => BgnLib,
            0x02 => LibName,
            0x03 => Units,
            0x04 => EndLib,
            0x05 => BgnStr,
            0x06 => StrName,
            0x07 => EndStr,
            0x08 => Boundary,
            0x09 => Path,
            0x0A => Sref,
            0x0B => Aref,
            0x0C => Text,
            0x0D => Layer,
            0x0E => Datatype,
            0x0F => Width,
            0x10 => Xy,
            0x11 => EndEl,
            0x12 => Sname,
            0x13 => Colrow,
            0x16 => TextType,
            0x17 => Presentation,
            0x19 => String,
            0x1A => Strans,
            0x1B => Mag,
            0x1C => Angle,
            0x21 => PathType,
            0x26 => ElFlags,
            0x2F => Plex,
            0x2B => PropAttr,
            0x2C => PropValue,
            _ => return None,
        })
    }

    /// The record-type byte.
    #[inline]
    pub fn code(self) -> u8 {
        self as u8
    }

    /// The data-type byte this record carries in a conforming stream.
    pub fn data_type(self) -> DataType {
        use RecordType::*;
        match self {
            EndLib | EndStr | Boundary | Path | Sref | Aref | Text | EndEl => DataType::None,
            Header | BgnLib | BgnStr | Layer | Datatype | Colrow | TextType | Presentation
            | Strans | PathType | PropAttr => DataType::Int16,
            Width | Xy | Plex | ElFlags => DataType::Int32,
            Units | Mag | Angle => DataType::Real64,
            LibName | StrName | Sname | String | PropValue => DataType::Ascii,
        }
    }
}

impl fmt::Display for RecordType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

/// Payload encoding of a record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DataType {
    /// No payload.
    None,
    /// Big-endian 2-byte signed integers.
    Int16,
    /// Big-endian 4-byte signed integers.
    Int32,
    /// 8-byte excess-64 base-16 reals.
    Real64,
    /// ASCII, NUL-padded to even length.
    Ascii,
}

impl DataType {
    /// The data-type byte written to the stream.
    pub fn code(self) -> u8 {
        match self {
            DataType::None => 0x00,
            DataType::Int16 => 0x02,
            DataType::Int32 => 0x03,
            DataType::Real64 => 0x05,
            DataType::Ascii => 0x06,
        }
    }
}

/// Encodes an `f64` into the GDSII 8-byte real format: a sign bit, a
/// 7-bit excess-64 base-16 exponent, and a 56-bit mantissa interpreted
/// as a fraction in `[1/16, 1)` (for normalized non-zero values).
///
/// ```
/// use odrc_gdsii::record::{real8_from_f64, real8_to_f64};
/// let bytes = real8_from_f64(1e-9);
/// assert!((real8_to_f64(bytes) - 1e-9).abs() < 1e-24);
/// ```
pub fn real8_from_f64(value: f64) -> [u8; 8] {
    if value == 0.0 {
        return [0; 8];
    }
    let sign = value < 0.0;
    let mut mantissa = value.abs();
    // Normalize mantissa into [1/16, 1) by choosing a base-16 exponent.
    let mut exponent: i32 = 0;
    while mantissa >= 1.0 {
        mantissa /= 16.0;
        exponent += 1;
    }
    while mantissa < 1.0 / 16.0 {
        mantissa *= 16.0;
        exponent -= 1;
    }
    let biased = (exponent + 64) as u64;
    debug_assert!(biased < 128, "GDSII real exponent out of range for {value}");
    // 56-bit mantissa.
    let mant_bits = (mantissa * 2f64.powi(56)).round() as u64;
    // Rounding can push the mantissa to 2^56 exactly; renormalize.
    let (mant_bits, biased) = if mant_bits >> 56 != 0 {
        (mant_bits >> 4, biased + 1)
    } else {
        (mant_bits, biased)
    };
    let word = ((sign as u64) << 63) | (biased << 56) | (mant_bits & ((1 << 56) - 1));
    word.to_be_bytes()
}

/// Decodes a GDSII 8-byte real into an `f64`.
pub fn real8_to_f64(bytes: [u8; 8]) -> f64 {
    let word = u64::from_be_bytes(bytes);
    if word & !(1 << 63) == 0 {
        return 0.0;
    }
    let sign = if word >> 63 == 1 { -1.0 } else { 1.0 };
    let exponent = ((word >> 56) & 0x7F) as i32 - 64;
    let mantissa = (word & ((1 << 56) - 1)) as f64 / 2f64.powi(56);
    sign * mantissa * 16f64.powi(exponent)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn record_type_roundtrip() {
        for code in 0u8..=0x3F {
            if let Some(rt) = RecordType::from_code(code) {
                assert_eq!(rt.code(), code);
            }
        }
        assert_eq!(RecordType::from_code(0xEE), None);
    }

    #[test]
    fn data_type_codes_match_standard() {
        assert_eq!(RecordType::Header.data_type().code(), 0x02);
        assert_eq!(RecordType::Xy.data_type().code(), 0x03);
        assert_eq!(RecordType::Units.data_type().code(), 0x05);
        assert_eq!(RecordType::LibName.data_type().code(), 0x06);
        assert_eq!(RecordType::EndLib.data_type().code(), 0x00);
    }

    #[test]
    fn real8_zero() {
        assert_eq!(real8_from_f64(0.0), [0; 8]);
        assert_eq!(real8_to_f64([0; 8]), 0.0);
    }

    #[test]
    fn real8_known_values() {
        // 1.0 = 0x4110000000000000 in GDSII real format.
        assert_eq!(real8_from_f64(1.0), [0x41, 0x10, 0, 0, 0, 0, 0, 0]);
        assert_eq!(real8_to_f64([0x41, 0x10, 0, 0, 0, 0, 0, 0]), 1.0);
        // -2.0.
        assert_eq!(real8_from_f64(-2.0), [0xC1, 0x20, 0, 0, 0, 0, 0, 0]);
        // 1e-3 (typical user-unit) and 1e-9 (typical meters-per-dbu)
        // round-trip within double precision.
        for v in [1e-3, 1e-9, 0.5, 90.0, 180.0, 270.0] {
            let rt = real8_to_f64(real8_from_f64(v));
            assert!((rt - v).abs() <= v.abs() * 1e-15, "{v} -> {rt}");
        }
    }

    proptest! {
        #[test]
        fn real8_roundtrip(v in -1e12f64..1e12) {
            let rt = real8_to_f64(real8_from_f64(v));
            // 56-bit mantissa with base-16 normalization keeps ~16-17
            // significant decimal digits minus up to 3 bits of slack.
            let tol = v.abs().max(1e-300) * 1e-13;
            prop_assert!((rt - v).abs() <= tol, "{} -> {}", v, rt);
        }

        #[test]
        fn real8_sign_symmetry(v in 1e-9f64..1e9) {
            let pos = real8_from_f64(v);
            let neg = real8_from_f64(-v);
            prop_assert_eq!(pos[0] | 0x80, neg[0]);
            prop_assert_eq!(&pos[1..], &neg[1..]);
        }
    }
}
