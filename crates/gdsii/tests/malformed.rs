//! A malformed-file corpus for the GDSII parser.
//!
//! Each case derives a corrupt file from a valid serialized library,
//! writes it to disk, and asserts that [`read_file`] reports the
//! expected *typed* error — not just "something failed", and never a
//! panic. The corpus covers the failure classes a checker meets in the
//! wild: truncated headers, lying record lengths, unknown record
//! types, structures the stream never terminates, payload size
//! mismatches, and non-text string payloads.

use odrc_gdsii::record::RecordType;
use odrc_gdsii::{read_file, write, Element, Library, ReadError, Structure};
use odrc_geometry::Point;

fn sample_library() -> Library {
    let mut lib = Library::new("corpus");
    let mut leaf = Structure::new("LEAF");
    leaf.elements.push(Element::boundary(
        1,
        vec![
            Point::new(0, 0),
            Point::new(0, 40),
            Point::new(25, 40),
            Point::new(25, 0),
        ],
    ));
    lib.structures.push(leaf);
    let mut top = Structure::new("TOP");
    top.elements.push(Element::Ref(odrc_gdsii::RefElement::sref(
        "LEAF",
        Point::new(100, 0),
    )));
    lib.structures.push(top);
    lib
}

/// Walks the record stream, returning `(offset, total_len, code)` per
/// record — the corruption helpers target records by type code.
fn records(bytes: &[u8]) -> Vec<(usize, usize, u8)> {
    let mut out = Vec::new();
    let mut off = 0;
    while off + 4 <= bytes.len() {
        let len = u16::from_be_bytes([bytes[off], bytes[off + 1]]) as usize;
        if len < 4 {
            break;
        }
        out.push((off, len, bytes[off + 2]));
        off += len;
    }
    out
}

fn find_record(bytes: &[u8], rtype: RecordType) -> (usize, usize) {
    records(bytes)
        .into_iter()
        .find(|&(_, _, code)| code == rtype.code())
        .map(|(off, len, _)| (off, len))
        .unwrap_or_else(|| panic!("sample stream has no {rtype} record"))
}

/// Writes corpus bytes to a uniquely named file and parses it back,
/// exercising the same path the CLI takes.
fn read_corpus_file(name: &str, bytes: &[u8]) -> Result<Library, ReadError> {
    let dir = std::env::temp_dir().join("odrc-gdsii-malformed");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    std::fs::write(&path, bytes).unwrap();
    let result = read_file(&path);
    std::fs::remove_file(&path).unwrap();
    result
}

#[test]
fn control_case_parses() {
    let lib = sample_library();
    let bytes = write(&lib).unwrap();
    assert_eq!(read_corpus_file("control.gds", &bytes).unwrap(), lib);
}

#[test]
fn truncated_header() {
    let bytes = write(&sample_library()).unwrap();
    // The file ends inside the very first record header.
    match read_corpus_file("truncated-header.gds", &bytes[..3]).unwrap_err() {
        ReadError::UnexpectedEof { offset: 0 } => {}
        other => panic!("unexpected error {other:?}"),
    }
}

#[test]
fn bad_record_length() {
    let mut bytes = write(&sample_library()).unwrap();
    let (off, _) = find_record(&bytes, RecordType::Units);
    // Odd lengths below the 4-byte header minimum are impossible.
    bytes[off] = 0;
    bytes[off + 1] = 3;
    match read_corpus_file("bad-record-length.gds", &bytes).unwrap_err() {
        ReadError::BadRecordLength { offset, len: 3 } => assert_eq!(offset, off),
        other => panic!("unexpected error {other:?}"),
    }
}

#[test]
fn record_length_past_eof() {
    let mut bytes = write(&sample_library()).unwrap();
    let (off, _) = find_record(&bytes, RecordType::BgnStr);
    // A length that runs past the end of the file.
    bytes[off] = 0xFF;
    bytes[off + 1] = 0xFE;
    match read_corpus_file("length-past-eof.gds", &bytes).unwrap_err() {
        ReadError::UnexpectedEof { offset } => assert_eq!(offset, off),
        other => panic!("unexpected error {other:?}"),
    }
}

#[test]
fn unknown_record_type() {
    let mut bytes = write(&sample_library()).unwrap();
    let (off, _) = find_record(&bytes, RecordType::Boundary);
    bytes[off + 2] = 0xEE;
    match read_corpus_file("unknown-record-type.gds", &bytes).unwrap_err() {
        ReadError::UnknownRecordType { offset, code: 0xEE } => assert_eq!(offset, off),
        other => panic!("unexpected error {other:?}"),
    }
}

#[test]
fn unterminated_structure() {
    let bytes = write(&sample_library()).unwrap();
    // Cut the stream at a record boundary just past the first STRNAME:
    // the structure body never sees an ENDSTR (or anything else).
    let (off, len) = find_record(&bytes, RecordType::StrName);
    match read_corpus_file("unterminated-structure.gds", &bytes[..off + len]).unwrap_err() {
        ReadError::MissingRecord { context } => {
            assert_eq!(context, "reading structure elements");
        }
        other => panic!("unexpected error {other:?}"),
    }
}

#[test]
fn unterminated_element() {
    let bytes = write(&sample_library()).unwrap();
    // Cut right after the first XY record: the boundary never reaches
    // its ENDEL.
    let (off, len) = find_record(&bytes, RecordType::Xy);
    match read_corpus_file("unterminated-element.gds", &bytes[..off + len]).unwrap_err() {
        ReadError::MissingRecord { context } => {
            assert_eq!(context, "reading element properties");
        }
        other => panic!("unexpected error {other:?}"),
    }
}

#[test]
fn wrong_payload_size() {
    let mut bytes = write(&sample_library()).unwrap();
    // Grow the LAYER record from one i16 to two by splicing in two
    // bytes and fixing its declared length: the framing stays valid,
    // but LAYER must carry exactly one i16.
    let (off, len) = find_record(&bytes, RecordType::Layer);
    assert_eq!(len, 6, "LAYER is a 2-byte-payload record");
    bytes[off + 1] = 8;
    bytes.splice(off + len..off + len, [0u8, 0u8]);
    match read_corpus_file("wrong-payload-size.gds", &bytes).unwrap_err() {
        ReadError::BadPayloadLength {
            offset,
            record: RecordType::Layer,
            len: 4,
        } => assert_eq!(offset, off),
        other => panic!("unexpected error {other:?}"),
    }
}

#[test]
fn non_text_string_payload() {
    let mut bytes = write(&sample_library()).unwrap();
    // LIBNAME payload bytes must decode as text; 0xFF never does.
    let (off, len) = find_record(&bytes, RecordType::LibName);
    assert!(len > 4, "LIBNAME carries the library name");
    bytes[off + 4] = 0xFF;
    match read_corpus_file("non-text-string.gds", &bytes).unwrap_err() {
        ReadError::BadString { offset } => assert_eq!(offset, off),
        other => panic!("unexpected error {other:?}"),
    }
}

#[test]
fn grammar_violation_inside_structure() {
    let mut bytes = write(&sample_library()).unwrap();
    // Turn the first BOUNDARY into a COLROW: legal record, illegal
    // position.
    let (off, _) = find_record(&bytes, RecordType::Boundary);
    bytes[off + 2] = RecordType::Colrow.code();
    match read_corpus_file("grammar-violation.gds", &bytes).unwrap_err() {
        ReadError::UnexpectedRecord {
            offset,
            record: RecordType::Colrow,
            ..
        } => assert_eq!(offset, off),
        other => panic!("unexpected error {other:?}"),
    }
}

#[test]
fn missing_file_reports_io_error() {
    match read_file("/nonexistent/odrc-missing.gds").unwrap_err() {
        ReadError::Io(e) => assert_eq!(e.kind(), std::io::ErrorKind::NotFound),
        other => panic!("unexpected error {other:?}"),
    }
}
