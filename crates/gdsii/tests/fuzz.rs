//! Robustness fuzzing of the GDSII parser: arbitrary corruption must
//! produce a structured error or a parsed library — never a panic.

use odrc_gdsii::{read, write, Element, Library, PathElement, RefElement, Structure};
use odrc_geometry::Point;
use proptest::prelude::*;

fn sample_library() -> Library {
    let mut lib = Library::new("fuzz-sample");
    let mut leaf = Structure::new("LEAF");
    leaf.elements.push(Element::boundary(
        3,
        vec![
            Point::new(0, 0),
            Point::new(0, 40),
            Point::new(25, 40),
            Point::new(25, 0),
        ],
    ));
    leaf.elements.push(Element::Path(PathElement {
        layer: 4,
        datatype: 1,
        path_type: 2,
        width: 8,
        points: vec![Point::new(0, 0), Point::new(100, 0)],
        properties: vec![(1, "n".to_owned())],
    }));
    lib.structures.push(leaf);
    let mut top = Structure::new("TOP");
    let mut r = RefElement::sref("LEAF", Point::new(7, 9));
    r.angle_deg = 270.0;
    r.mirror_x = true;
    top.elements.push(Element::Ref(r));
    lib.structures.push(top);
    lib
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]
    #[test]
    fn byte_flips_never_panic(
        flips in proptest::collection::vec((0usize..4096, 0u8..=255), 1..8),
    ) {
        let mut bytes = write(&sample_library()).expect("serialize");
        for &(pos, val) in &flips {
            let len = bytes.len();
            bytes[pos % len] = val;
        }
        // Either outcome is fine; panicking is not.
        let _ = read(&bytes);
    }

    #[test]
    fn truncations_never_panic(cut in 0usize..1024) {
        let bytes = write(&sample_library()).expect("serialize");
        let cut = cut % bytes.len();
        let _ = read(&bytes[..cut]);
    }

    #[test]
    fn random_garbage_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = read(&bytes);
    }

    #[test]
    fn random_garbage_with_valid_header_never_panics(
        tail in proptest::collection::vec(any::<u8>(), 0..512),
    ) {
        // A valid HEADER record followed by garbage exercises the
        // deeper parser states.
        let mut bytes = vec![0x00, 0x06, 0x00, 0x02, 0x02, 0x58];
        bytes.extend(tail);
        let _ = read(&bytes);
    }
}

#[test]
fn corrupted_lengths_never_panic() {
    let bytes = write(&sample_library()).expect("serialize");
    // Clobber every record length in turn with hostile values.
    let mut off = 0;
    let mut headers = Vec::new();
    while off + 4 <= bytes.len() {
        let len = u16::from_be_bytes([bytes[off], bytes[off + 1]]) as usize;
        headers.push(off);
        if len < 4 {
            break;
        }
        off += len;
    }
    for &h in &headers {
        for evil in [0u16, 1, 2, 3, 5, 7, 0xFFFE, 0xFFFF] {
            let mut b = bytes.clone();
            b[h] = (evil >> 8) as u8;
            b[h + 1] = (evil & 0xFF) as u8;
            let _ = read(&b); // must not panic
        }
    }
}
