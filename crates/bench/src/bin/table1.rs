//! Regenerates **Table I**: runtime comparisons for intra-polygon
//! design rule checks (width and area rules) across the six benchmark
//! designs, for KLayout flat/deep/tile, X-Check, and OpenDRC
//! sequential/parallel.
//!
//! Expected shape (paper §VI): both OpenDRC modes run equally fast and
//! beat the flat/deep baselines by a wide margin thanks to hierarchical
//! reuse; X-Check cannot run the area rule (empty column).

use odrc_bench::{intra_rules, load_designs, parse_args, print_table, Contender};

fn main() {
    let (filter, repeat) = parse_args();
    let designs = load_designs(filter.as_deref());
    print_table(
        "Table I: intra-polygon checks (seconds)",
        &designs,
        &intra_rules(),
        &Contender::ALL,
        repeat,
    );
}
