//! Benchmarks the cross-rule execution planner on a multi-rule deck:
//! both engine modes, planner on versus off (the per-rule-loop
//! baseline), per design. With `--json`, writes the machine-readable
//! `BENCH_pipeline.json` so the perf trajectory is tracked across PRs.
//!
//! `--scaling` instead sweeps the host executor's thread count
//! (1/2/4/max, deduplicated) over the sequential planned engine and
//! writes `BENCH_host.json` — the host-parallelism scaling table.
//!
//! ```text
//! cargo run -p odrc-bench --release --bin pipeline -- \
//!     [--designs aes,jpeg] [--repeat N] [--host-threads N] [--json]
//! cargo run -p odrc-bench --release --bin pipeline -- \
//!     --scaling [--designs uart,aes] [--repeat N] [--json]
//! ```

use std::time::Instant;

use odrc::{CheckReport, Engine, EngineOptions, Mode, RuleDeck};
use odrc_bench::{load_designs, pipeline_deck, BenchDesign};

struct RunResult {
    mode: &'static str,
    planner: bool,
    wall_ms: f64,
    report: Option<CheckReport>,
}

impl RunResult {
    fn report(&self) -> &CheckReport {
        self.report.as_ref().expect("configuration was run")
    }
}

fn engine(mode: Mode, planner: bool, host_threads: Option<usize>) -> Engine {
    let base = match mode {
        Mode::Sequential => Engine::sequential(),
        Mode::Parallel => Engine::parallel(),
    };
    base.with_options(EngineOptions {
        planner,
        host_threads,
        ..EngineOptions::default()
    })
}

/// Runs every configuration `repeat` times in round-robin order —
/// interleaving cancels drift (thermal, allocator growth) that would
/// otherwise systematically penalize later configurations — and keeps
/// each configuration's minimum wall time, the noise-robust statistic
/// for a CPU-bound simulated device.
fn run_configs(
    design: &BenchDesign,
    deck: &RuleDeck,
    configs: &[(Mode, bool)],
    repeat: usize,
    host_threads: Option<usize>,
) -> Vec<RunResult> {
    let mut results: Vec<RunResult> = configs
        .iter()
        .map(|&(mode, planner)| RunResult {
            mode: match mode {
                Mode::Sequential => "sequential",
                Mode::Parallel => "parallel",
            },
            planner,
            wall_ms: f64::INFINITY,
            report: None,
        })
        .collect();
    for _ in 0..repeat.max(1) {
        for (slot, &(mode, planner)) in results.iter_mut().zip(configs) {
            let e = engine(mode, planner, host_threads);
            let start = Instant::now();
            let r = e.check(&design.layout, deck);
            slot.wall_ms = slot.wall_ms.min(start.elapsed().as_secs_f64() * 1e3);
            slot.report = Some(r);
        }
    }
    results
}

/// One host-thread-count measurement in the `--scaling` sweep.
struct ScaleRun {
    threads: usize,
    wall_ms: f64,
    report: Option<CheckReport>,
}

impl ScaleRun {
    fn report(&self) -> &CheckReport {
        self.report.as_ref().expect("configuration was run")
    }
}

/// The `--scaling` thread ladder: 1, 2, 4, and every core, deduplicated
/// (on small hosts the rungs collapse; the table is recorded anyway so
/// the scaling trajectory is comparable across machines).
fn scaling_ladder() -> Vec<usize> {
    let max = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut rungs = vec![1, 2, 4, max];
    rungs.sort_unstable();
    rungs.dedup();
    rungs
}

/// Sweeps the sequential planned engine over the thread ladder,
/// interleaved min-of-N like [`run_configs`].
fn run_scaling(
    design: &BenchDesign,
    deck: &RuleDeck,
    ladder: &[usize],
    repeat: usize,
) -> Vec<ScaleRun> {
    let mut results: Vec<ScaleRun> = ladder
        .iter()
        .map(|&threads| ScaleRun {
            threads,
            wall_ms: f64::INFINITY,
            report: None,
        })
        .collect();
    for _ in 0..repeat.max(1) {
        for slot in results.iter_mut() {
            let e = engine(Mode::Sequential, true, Some(slot.threads));
            let start = Instant::now();
            let r = e.check(&design.layout, deck);
            slot.wall_ms = slot.wall_ms.min(start.elapsed().as_secs_f64() * 1e3);
            slot.report = Some(r);
        }
    }
    results
}

fn write_scaling_json(path: &str, results: &[(String, Vec<ScaleRun>)]) -> std::io::Result<()> {
    use std::io::Write;
    let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
    writeln!(f, "{{")?;
    writeln!(f, "  \"bench\": \"host-scaling\",")?;
    writeln!(f, "  \"mode\": \"sequential+planner\",")?;
    writeln!(f, "  \"designs\": [")?;
    for (di, (name, runs)) in results.iter().enumerate() {
        writeln!(f, "    {{")?;
        writeln!(f, "      \"name\": \"{name}\",")?;
        writeln!(f, "      \"runs\": [")?;
        let base = runs.first().map(|r| r.wall_ms).unwrap_or(f64::NAN);
        for (ri, r) in runs.iter().enumerate() {
            let s = &r.report().stats;
            writeln!(f, "        {{")?;
            writeln!(f, "          \"host_threads\": {},", r.threads)?;
            writeln!(f, "          \"wall_ms\": {:.3},", r.wall_ms)?;
            writeln!(
                f,
                "          \"violations\": {},",
                r.report().violations.len()
            )?;
            writeln!(f, "          \"host_tasks\": {},", s.host_tasks)?;
            writeln!(f, "          \"host_steals\": {},", s.host_steals)?;
            writeln!(f, "          \"speedup_vs_1\": {:.3}", base / r.wall_ms)?;
            writeln!(
                f,
                "        }}{}",
                if ri + 1 < runs.len() { "," } else { "" }
            )?;
        }
        writeln!(f, "      ]")?;
        writeln!(f, "    }}{}", if di + 1 < results.len() { "," } else { "" })?;
    }
    writeln!(f, "  ]")?;
    writeln!(f, "}}")?;
    Ok(())
}

fn write_json(path: &str, results: &[(String, Vec<RunResult>)]) -> std::io::Result<()> {
    use std::io::Write;
    let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
    writeln!(f, "{{")?;
    writeln!(f, "  \"bench\": \"pipeline\",")?;
    writeln!(f, "  \"designs\": [")?;
    for (di, (name, runs)) in results.iter().enumerate() {
        writeln!(f, "    {{")?;
        writeln!(f, "      \"name\": \"{name}\",")?;
        writeln!(f, "      \"runs\": [")?;
        for (ri, r) in runs.iter().enumerate() {
            let s = &r.report().stats;
            writeln!(f, "        {{")?;
            writeln!(f, "          \"mode\": \"{}\",", r.mode)?;
            writeln!(f, "          \"planner\": {},", r.planner)?;
            writeln!(f, "          \"wall_ms\": {:.3},", r.wall_ms)?;
            writeln!(
                f,
                "          \"violations\": {},",
                r.report().violations.len()
            )?;
            writeln!(f, "          \"checks_computed\": {},", s.checks_computed)?;
            writeln!(f, "          \"checks_reused\": {},", s.checks_reused)?;
            writeln!(f, "          \"rows\": {},", s.rows)?;
            writeln!(f, "          \"scenes_built\": {},", s.scenes_built)?;
            writeln!(f, "          \"scenes_reused\": {},", s.scenes_reused)?;
            writeln!(f, "          \"uploads_elided\": {},", s.uploads_elided)?;
            writeln!(f, "          \"bytes_uploaded\": {},", s.bytes_uploaded)?;
            writeln!(f, "          \"degraded\": {},", s.degraded())?;
            writeln!(f, "          \"phases_ms\": {{")?;
            let phases = r.report().profile.phases();
            for (pi, (phase, d)) in phases.iter().enumerate() {
                writeln!(
                    f,
                    "            \"{}\": {:.3}{}",
                    phase,
                    d.as_secs_f64() * 1e3,
                    if pi + 1 < phases.len() { "," } else { "" }
                )?;
            }
            writeln!(f, "          }}")?;
            writeln!(
                f,
                "        }}{}",
                if ri + 1 < runs.len() { "," } else { "" }
            )?;
        }
        writeln!(f, "      ]")?;
        writeln!(f, "    }}{}", if di + 1 < results.len() { "," } else { "" })?;
    }
    writeln!(f, "  ]")?;
    writeln!(f, "}}")?;
    Ok(())
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut designs: Option<String> = None;
    let mut repeat = 1usize;
    let mut json = false;
    let mut scaling = false;
    let mut host_threads: Option<usize> = None;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--designs" if i + 1 < args.len() => {
                designs = Some(args[i + 1].clone());
                i += 2;
            }
            "--repeat" if i + 1 < args.len() => {
                repeat = args[i + 1].parse().unwrap_or(1).max(1);
                i += 2;
            }
            "--host-threads" if i + 1 < args.len() => {
                host_threads = Some(args[i + 1].parse().unwrap_or(1).max(1));
                i += 2;
            }
            "--scaling" => {
                scaling = true;
                i += 1;
            }
            "--json" => {
                json = true;
                i += 1;
            }
            other => {
                eprintln!("ignoring unknown argument '{other}'");
                i += 1;
            }
        }
    }
    // The scaling sweep defaults to the small/medium pair so the table
    // stays cheap enough to regenerate every PR.
    let designs =
        designs.unwrap_or_else(|| if scaling { "uart,aes" } else { "aes,jpeg" }.to_owned());

    let deck = pipeline_deck();

    if scaling {
        let ladder = scaling_ladder();
        println!(
            "\n=== Host executor scaling: sequential+planner, {}-rule deck ===",
            deck.rules().len()
        );
        println!(
            "{:<10} {:>7} {:>8} {:>10} {:>10} {:>8} {:>9}",
            "design", "threads", "wall_ms", "#viol", "tasks", "steals", "speedup"
        );
        let mut results: Vec<(String, Vec<ScaleRun>)> = Vec::new();
        for design in load_designs(Some(&designs)) {
            let runs = run_scaling(&design, &deck, &ladder, repeat);
            for r in &runs {
                // Every thread count must agree exactly with threads=1.
                assert_eq!(
                    runs[0].report().violations,
                    r.report().violations,
                    "host_threads={} changed the violation set on {}",
                    r.threads,
                    design.name
                );
                let s = &r.report().stats;
                println!(
                    "{:<10} {:>7} {:>8.1} {:>10} {:>10} {:>8} {:>8.2}x",
                    design.name,
                    r.threads,
                    r.wall_ms,
                    r.report().violations.len(),
                    s.host_tasks,
                    s.host_steals,
                    runs[0].wall_ms / r.wall_ms,
                );
            }
            results.push((design.name.clone(), runs));
        }
        if json {
            let path = "BENCH_host.json";
            write_scaling_json(path, &results).expect("write BENCH_host.json");
            println!("\nwrote {path}");
        }
        return;
    }
    let configs = [
        (Mode::Sequential, false),
        (Mode::Sequential, true),
        (Mode::Parallel, false),
        (Mode::Parallel, true),
    ];

    println!(
        "\n=== Execution planner: {}-rule deck, planner off vs on ===",
        deck.rules().len()
    );
    println!(
        "{:<10} {:<12} {:>8} {:>10} {:>7} {:>7} {:>7} {:>7} {:>12} {:>7}",
        "design",
        "config",
        "wall_ms",
        "#viol",
        "scn+",
        "scn=",
        "rows",
        "elide",
        "bytes_up",
        "speedup"
    );

    let mut results: Vec<(String, Vec<RunResult>)> = Vec::new();
    for design in load_designs(Some(&designs)) {
        let runs = run_configs(&design, &deck, &configs, repeat, host_threads);
        let mut baseline: std::collections::HashMap<&'static str, f64> = Default::default();
        for r in &runs {
            // All four configurations must agree exactly.
            assert_eq!(
                runs[0].report().violations,
                r.report().violations,
                "planner changed the violation set on {}",
                design.name
            );
            let speedup = if r.planner {
                baseline.get(r.mode).map(|b| b / r.wall_ms)
            } else {
                baseline.insert(r.mode, r.wall_ms);
                None
            };
            let s = &r.report().stats;
            println!(
                "{:<10} {:<12} {:>8.1} {:>10} {:>7} {:>7} {:>7} {:>7} {:>12} {:>7}",
                design.name,
                format!(
                    "{}{}",
                    if r.mode == "sequential" { "seq" } else { "par" },
                    if r.planner { "+plan" } else { "" }
                ),
                r.wall_ms,
                r.report().violations.len(),
                s.scenes_built,
                s.scenes_reused,
                s.rows,
                s.uploads_elided,
                s.bytes_uploaded,
                speedup
                    .map(|s| format!("{s:.2}x"))
                    .unwrap_or_else(|| "-".to_owned()),
            );
        }
        results.push((design.name.clone(), runs));
    }

    if json {
        let path = "BENCH_pipeline.json";
        write_json(path, &results).expect("write BENCH_pipeline.json");
        println!("\nwrote {path}");
    }
}
