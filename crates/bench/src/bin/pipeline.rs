//! Benchmarks the cross-rule execution planner on a multi-rule deck:
//! both engine modes, planner on versus off (the per-rule-loop
//! baseline), per design. With `--json`, writes the machine-readable
//! `BENCH_pipeline.json` so the perf trajectory is tracked across PRs.
//!
//! `--scaling` instead sweeps the host executor's thread count
//! (1/2/4/max, deduplicated) over the sequential planned engine and
//! writes `BENCH_host.json` — the host-parallelism scaling table.
//!
//! `--gate <baseline.json>` re-measures the aes parallel configurations
//! against a committed `BENCH_pipeline.json` and exits nonzero on a
//! kernel-wait regression (>25% + 10ms grace), 2-thread host scaling
//! below 0.95x, or a peak-RSS regression beyond 1.5x the committed
//! per-design high-water mark (+64 MiB grace) — the CI perf/memory
//! gate.
//!
//! ```text
//! cargo run -p odrc-bench --release --bin pipeline -- \
//!     [--designs aes,jpeg] [--repeat N] [--host-threads N] [--json]
//! cargo run -p odrc-bench --release --bin pipeline -- \
//!     --scaling [--designs uart,aes] [--repeat N] [--json]
//! cargo run -p odrc-bench --release --bin pipeline -- \
//!     --gate BENCH_pipeline.json
//! ```

use std::time::Instant;

use odrc::{CheckReport, Engine, EngineOptions, Mode, RuleDeck};
use odrc_bench::{load_designs, pipeline_deck, BenchDesign};

struct RunResult {
    mode: &'static str,
    planner: bool,
    wall_ms: f64,
    report: Option<CheckReport>,
}

impl RunResult {
    fn report(&self) -> &CheckReport {
        self.report.as_ref().expect("configuration was run")
    }
}

fn engine(mode: Mode, planner: bool, host_threads: Option<usize>) -> Engine {
    let base = match mode {
        Mode::Sequential => Engine::sequential(),
        Mode::Parallel => Engine::parallel(),
    };
    base.with_options(EngineOptions {
        planner,
        host_threads,
        ..EngineOptions::default()
    })
}

/// Runs every configuration `repeat` times in round-robin order —
/// interleaving cancels drift (thermal, allocator growth) that would
/// otherwise systematically penalize later configurations — and keeps
/// each configuration's minimum wall time, the noise-robust statistic
/// for a CPU-bound simulated device.
///
/// The report (stats, phase profile) is kept from the *same* repeat
/// that produced the minimum wall time. Keeping the last repeat's
/// report instead used to let cumulative phase times (kernel-wait
/// summed across concurrent waiters) drift out of agreement with the
/// recorded wall — the table would show phase totals exceeding wall_ms
/// taken from a different, faster run.
fn run_configs(
    design: &BenchDesign,
    deck: &RuleDeck,
    configs: &[(Mode, bool)],
    repeat: usize,
    host_threads: Option<usize>,
) -> Vec<RunResult> {
    let mut results: Vec<RunResult> = configs
        .iter()
        .map(|&(mode, planner)| RunResult {
            mode: match mode {
                Mode::Sequential => "sequential",
                Mode::Parallel => "parallel",
            },
            planner,
            wall_ms: f64::INFINITY,
            report: None,
        })
        .collect();
    for _ in 0..repeat.max(1) {
        for (slot, &(mode, planner)) in results.iter_mut().zip(configs) {
            let e = engine(mode, planner, host_threads);
            let start = Instant::now();
            let r = e.check(&design.layout, deck);
            let wall_ms = start.elapsed().as_secs_f64() * 1e3;
            if wall_ms < slot.wall_ms {
                slot.wall_ms = wall_ms;
                slot.report = Some(r);
            }
        }
    }
    results
}

/// One host-thread-count measurement in the `--scaling` sweep.
struct ScaleRun {
    threads: usize,
    wall_ms: f64,
    report: Option<CheckReport>,
}

impl ScaleRun {
    fn report(&self) -> &CheckReport {
        self.report.as_ref().expect("configuration was run")
    }
}

/// The `--scaling` thread ladder: 1, 2, 4, and every core, deduplicated
/// (on small hosts the rungs collapse; the table is recorded anyway so
/// the scaling trajectory is comparable across machines).
fn scaling_ladder() -> Vec<usize> {
    let max = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut rungs = vec![1, 2, 4, max];
    rungs.sort_unstable();
    rungs.dedup();
    rungs
}

/// Sweeps the sequential planned engine over the thread ladder,
/// interleaved min-of-N like [`run_configs`].
fn run_scaling(
    design: &BenchDesign,
    deck: &RuleDeck,
    ladder: &[usize],
    repeat: usize,
) -> Vec<ScaleRun> {
    let mut results: Vec<ScaleRun> = ladder
        .iter()
        .map(|&threads| ScaleRun {
            threads,
            wall_ms: f64::INFINITY,
            report: None,
        })
        .collect();
    for _ in 0..repeat.max(1) {
        for slot in results.iter_mut() {
            let e = engine(Mode::Sequential, true, Some(slot.threads));
            let start = Instant::now();
            let r = e.check(&design.layout, deck);
            let wall_ms = start.elapsed().as_secs_f64() * 1e3;
            if wall_ms < slot.wall_ms {
                slot.wall_ms = wall_ms;
                slot.report = Some(r);
            }
        }
    }
    results
}

fn write_scaling_json(path: &str, results: &[(String, Vec<ScaleRun>)]) -> std::io::Result<()> {
    use std::io::Write;
    let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
    writeln!(f, "{{")?;
    writeln!(f, "  \"bench\": \"host-scaling\",")?;
    writeln!(f, "  \"mode\": \"sequential+planner\",")?;
    writeln!(f, "  \"designs\": [")?;
    for (di, (name, runs)) in results.iter().enumerate() {
        writeln!(f, "    {{")?;
        writeln!(f, "      \"name\": \"{name}\",")?;
        writeln!(f, "      \"runs\": [")?;
        let base = runs.first().map(|r| r.wall_ms).unwrap_or(f64::NAN);
        for (ri, r) in runs.iter().enumerate() {
            let s = &r.report().stats;
            writeln!(f, "        {{")?;
            writeln!(f, "          \"host_threads\": {},", r.threads)?;
            writeln!(f, "          \"wall_ms\": {:.3},", r.wall_ms)?;
            writeln!(
                f,
                "          \"violations\": {},",
                r.report().violations.len()
            )?;
            writeln!(f, "          \"host_tasks\": {},", s.host_tasks)?;
            writeln!(f, "          \"host_steals\": {},", s.host_steals)?;
            writeln!(f, "          \"speedup_vs_1\": {:.3}", base / r.wall_ms)?;
            writeln!(
                f,
                "        }}{}",
                if ri + 1 < runs.len() { "," } else { "" }
            )?;
        }
        writeln!(f, "      ]")?;
        writeln!(f, "    }}{}", if di + 1 < results.len() { "," } else { "" })?;
    }
    writeln!(f, "  ]")?;
    writeln!(f, "}}")?;
    Ok(())
}

fn write_json(
    path: &str,
    results: &[(String, Option<u64>, Vec<RunResult>)],
) -> std::io::Result<()> {
    use std::io::Write;
    let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
    writeln!(f, "{{")?;
    writeln!(f, "  \"bench\": \"pipeline\",")?;
    writeln!(f, "  \"designs\": [")?;
    for (di, (name, peak_rss, runs)) in results.iter().enumerate() {
        writeln!(f, "    {{")?;
        writeln!(f, "      \"name\": \"{name}\",")?;
        match peak_rss {
            Some(bytes) => writeln!(f, "      \"peak_rss_bytes\": {bytes},")?,
            None => writeln!(f, "      \"peak_rss_bytes\": null,")?,
        }
        writeln!(f, "      \"runs\": [")?;
        for (ri, r) in runs.iter().enumerate() {
            let s = &r.report().stats;
            writeln!(f, "        {{")?;
            writeln!(f, "          \"mode\": \"{}\",", r.mode)?;
            writeln!(f, "          \"planner\": {},", r.planner)?;
            writeln!(f, "          \"wall_ms\": {:.3},", r.wall_ms)?;
            writeln!(
                f,
                "          \"violations\": {},",
                r.report().violations.len()
            )?;
            writeln!(f, "          \"checks_computed\": {},", s.checks_computed)?;
            writeln!(f, "          \"checks_reused\": {},", s.checks_reused)?;
            writeln!(f, "          \"rows\": {},", s.rows)?;
            writeln!(f, "          \"scenes_built\": {},", s.scenes_built)?;
            writeln!(f, "          \"scenes_reused\": {},", s.scenes_reused)?;
            writeln!(f, "          \"uploads_elided\": {},", s.uploads_elided)?;
            writeln!(f, "          \"bytes_uploaded\": {},", s.bytes_uploaded)?;
            writeln!(f, "          \"launches_fused\": {},", s.launches_fused)?;
            writeln!(f, "          \"graph_replays\": {},", s.graph_replays)?;
            writeln!(f, "          \"worker_wakeups\": {},", s.worker_wakeups)?;
            writeln!(f, "          \"degraded\": {},", s.degraded())?;
            writeln!(f, "          \"phases_ms\": {{")?;
            let phases = r.report().profile.phases();
            for (pi, (phase, d)) in phases.iter().enumerate() {
                writeln!(
                    f,
                    "            \"{}\": {:.3}{}",
                    phase,
                    d.as_secs_f64() * 1e3,
                    if pi + 1 < phases.len() { "," } else { "" }
                )?;
            }
            writeln!(f, "          }}")?;
            writeln!(
                f,
                "        }}{}",
                if ri + 1 < runs.len() { "," } else { "" }
            )?;
        }
        writeln!(f, "      ]")?;
        writeln!(f, "    }}{}", if di + 1 < results.len() { "," } else { "" })?;
    }
    writeln!(f, "  ]")?;
    writeln!(f, "}}")?;
    Ok(())
}

/// A baseline measurement scraped from a committed `BENCH_pipeline.json`:
/// one engine configuration of one design, with its kernel-wait phase.
struct BaselineRun {
    design: String,
    mode: String,
    planner: bool,
    kernel_wait_ms: Option<f64>,
}

/// Scrapes `(design, mode, planner, kernel-wait)` tuples out of a
/// committed `BENCH_pipeline.json`. The file is written by this binary
/// with one key per line, so a line-oriented scan is exact — no JSON
/// dependency needed (the workspace dependency list is fixed).
fn scan_baseline(path: &str) -> (Vec<BaselineRun>, std::collections::HashMap<String, u64>) {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("gate baseline '{path}' unreadable: {e}"));
    let field = |line: &str, key: &str| -> Option<String> {
        let rest = line.trim().strip_prefix(&format!("\"{key}\": "))?;
        Some(rest.trim_end_matches(',').trim_matches('"').to_owned())
    };
    let mut out: Vec<BaselineRun> = Vec::new();
    let mut peaks: std::collections::HashMap<String, u64> = Default::default();
    let mut design = String::new();
    for line in text.lines() {
        if let Some(v) = field(line, "name") {
            design = v;
        } else if let Some(v) = field(line, "peak_rss_bytes") {
            if let Ok(bytes) = v.parse() {
                peaks.insert(design.clone(), bytes);
            }
        } else if let Some(v) = field(line, "mode") {
            out.push(BaselineRun {
                design: design.clone(),
                mode: v,
                planner: false,
                kernel_wait_ms: None,
            });
        } else if let Some(v) = field(line, "planner") {
            if let Some(last) = out.last_mut() {
                last.planner = v == "true";
            }
        } else if let Some(v) = field(line, "kernel-wait") {
            if let Some(last) = out.last_mut() {
                last.kernel_wait_ms = v.parse().ok();
            }
        }
    }
    (out, peaks)
}

/// Pulls a named phase (milliseconds) out of a run's profile.
fn phase_ms(report: &CheckReport, phase: &str) -> Option<f64> {
    report
        .profile
        .phases()
        .iter()
        .find(|(p, _)| p == phase)
        .map(|(_, d)| d.as_secs_f64() * 1e3)
}

/// The CI perf gate (`--gate <baseline.json>`): re-measures the aes
/// parallel configurations and fails (exit 1) if kernel-wait regressed
/// more than 25% past the committed baseline, or if running the
/// sequential planned engine with two host threads costs more than 5%
/// over one thread (adaptive granularity must keep small hosts at
/// parity). A 10ms absolute grace keeps sub-noise baselines from
/// tripping the ratio.
fn run_gate(baseline_path: &str, deck: &RuleDeck, repeat: usize) -> bool {
    let (baseline, baseline_peaks) = scan_baseline(baseline_path);
    let design = load_designs(Some("aes"))
        .into_iter()
        .next()
        .expect("aes design exists");
    let mut ok = true;

    println!("=== Perf gate vs {baseline_path} ===");
    let configs = [(Mode::Parallel, false), (Mode::Parallel, true)];
    odrc_infra::reset_peak_rss();
    let runs = run_configs(&design, deck, &configs, repeat, None);
    let fresh_peak = odrc_infra::peak_rss_bytes();
    for r in &runs {
        let base = baseline
            .iter()
            .find(|b| b.design == "aes" && b.mode == "parallel" && b.planner == r.planner)
            .and_then(|b| b.kernel_wait_ms);
        let fresh = phase_ms(r.report(), "kernel-wait").unwrap_or(0.0);
        let label = format!("aes parallel{}", if r.planner { "+plan" } else { "" });
        match base {
            Some(base) => {
                let limit = base * 1.25 + 10.0;
                let pass = fresh <= limit;
                ok &= pass;
                println!(
                    "{}: kernel-wait {:.1}ms vs baseline {:.1}ms (limit {:.1}ms) .. {}",
                    label,
                    fresh,
                    base,
                    limit,
                    if pass { "ok" } else { "REGRESSED" }
                );
            }
            None => {
                ok = false;
                println!("{label}: baseline has no kernel-wait entry .. FAIL");
            }
        }
    }

    // Memory gate: the checking phase's high-water mark (HWM reset just
    // before the runs) must stay within 1.5x of the committed aes peak,
    // with a 64 MiB absolute grace so allocator jitter on small designs
    // cannot trip the ratio. Missing data (old baseline, or a platform
    // without procfs) skips the comparison rather than failing.
    match (baseline_peaks.get("aes"), fresh_peak) {
        (Some(&base), Some(fresh)) => {
            let limit = base + base / 2 + (64 << 20);
            let pass = fresh <= limit;
            ok &= pass;
            println!(
                "aes peak-RSS {:.1} MiB vs baseline {:.1} MiB (limit {:.1} MiB) .. {}",
                fresh as f64 / (1 << 20) as f64,
                base as f64 / (1 << 20) as f64,
                limit as f64 / (1 << 20) as f64,
                if pass { "ok" } else { "REGRESSED" }
            );
        }
        (None, _) => println!("aes peak-RSS: baseline has no entry .. skipped (regenerate)"),
        (_, None) => println!("aes peak-RSS: platform exposes no HWM .. skipped"),
    }

    let scale = run_scaling(&design, deck, &[1, 2], repeat);
    let ratio = scale[0].wall_ms / scale[1].wall_ms;
    let pass = ratio >= 0.95;
    ok &= pass;
    println!(
        "aes seq+plan host scaling 1t {:.1}ms / 2t {:.1}ms = {:.2}x .. {}",
        scale[0].wall_ms,
        scale[1].wall_ms,
        ratio,
        if pass { "ok" } else { "BELOW 0.95x" }
    );

    println!("perf gate: {}", if ok { "PASS" } else { "FAIL" });
    ok
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut designs: Option<String> = None;
    let mut repeat = 1usize;
    let mut json = false;
    let mut scaling = false;
    let mut gate: Option<String> = None;
    let mut host_threads: Option<usize> = None;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--designs" if i + 1 < args.len() => {
                designs = Some(args[i + 1].clone());
                i += 2;
            }
            "--gate" if i + 1 < args.len() => {
                gate = Some(args[i + 1].clone());
                i += 2;
            }
            "--repeat" if i + 1 < args.len() => {
                repeat = args[i + 1].parse().unwrap_or(1).max(1);
                i += 2;
            }
            "--host-threads" if i + 1 < args.len() => {
                host_threads = Some(args[i + 1].parse().unwrap_or(1).max(1));
                i += 2;
            }
            "--scaling" => {
                scaling = true;
                i += 1;
            }
            "--json" => {
                json = true;
                i += 1;
            }
            other => {
                eprintln!("ignoring unknown argument '{other}'");
                i += 1;
            }
        }
    }
    // The scaling sweep defaults to the small/medium pair so the table
    // stays cheap enough to regenerate every PR.
    let designs =
        designs.unwrap_or_else(|| if scaling { "uart,aes" } else { "aes,jpeg" }.to_owned());

    let deck = pipeline_deck();

    if let Some(baseline) = gate {
        let ok = run_gate(&baseline, &deck, repeat.max(3));
        std::process::exit(if ok { 0 } else { 1 });
    }

    if scaling {
        let ladder = scaling_ladder();
        println!(
            "\n=== Host executor scaling: sequential+planner, {}-rule deck ===",
            deck.rules().len()
        );
        println!(
            "{:<10} {:>7} {:>8} {:>10} {:>10} {:>8} {:>9}",
            "design", "threads", "wall_ms", "#viol", "tasks", "steals", "speedup"
        );
        let mut results: Vec<(String, Vec<ScaleRun>)> = Vec::new();
        for design in load_designs(Some(&designs)) {
            let runs = run_scaling(&design, &deck, &ladder, repeat);
            for r in &runs {
                // Every thread count must agree exactly with threads=1.
                assert_eq!(
                    runs[0].report().violations,
                    r.report().violations,
                    "host_threads={} changed the violation set on {}",
                    r.threads,
                    design.name
                );
                let s = &r.report().stats;
                println!(
                    "{:<10} {:>7} {:>8.1} {:>10} {:>10} {:>8} {:>8.2}x",
                    design.name,
                    r.threads,
                    r.wall_ms,
                    r.report().violations.len(),
                    s.host_tasks,
                    s.host_steals,
                    runs[0].wall_ms / r.wall_ms,
                );
            }
            results.push((design.name.clone(), runs));
        }
        if json {
            let path = "BENCH_host.json";
            write_scaling_json(path, &results).expect("write BENCH_host.json");
            println!("\nwrote {path}");
        }
        return;
    }
    let configs = [
        (Mode::Sequential, false),
        (Mode::Sequential, true),
        (Mode::Parallel, false),
        (Mode::Parallel, true),
    ];

    println!(
        "\n=== Execution planner: {}-rule deck, planner off vs on ===",
        deck.rules().len()
    );
    println!(
        "{:<10} {:<12} {:>8} {:>10} {:>7} {:>7} {:>7} {:>7} {:>12} {:>7}",
        "design",
        "config",
        "wall_ms",
        "#viol",
        "scn+",
        "scn=",
        "rows",
        "elide",
        "bytes_up",
        "speedup"
    );

    let mut results: Vec<(String, Option<u64>, Vec<RunResult>)> = Vec::new();
    for design in load_designs(Some(&designs)) {
        // Per-design checking-phase high-water mark: the HWM is reset
        // (where the platform allows) before the configurations run, so
        // the recorded peak covers this design's checks, not whatever
        // the process touched earlier.
        odrc_infra::reset_peak_rss();
        let runs = run_configs(&design, &deck, &configs, repeat, host_threads);
        let peak_rss = odrc_infra::peak_rss_bytes();
        let mut baseline: std::collections::HashMap<&'static str, f64> = Default::default();
        for r in &runs {
            // All four configurations must agree exactly.
            assert_eq!(
                runs[0].report().violations,
                r.report().violations,
                "planner changed the violation set on {}",
                design.name
            );
            let speedup = if r.planner {
                baseline.get(r.mode).map(|b| b / r.wall_ms)
            } else {
                baseline.insert(r.mode, r.wall_ms);
                None
            };
            let s = &r.report().stats;
            println!(
                "{:<10} {:<12} {:>8.1} {:>10} {:>7} {:>7} {:>7} {:>7} {:>12} {:>7}",
                design.name,
                format!(
                    "{}{}",
                    if r.mode == "sequential" { "seq" } else { "par" },
                    if r.planner { "+plan" } else { "" }
                ),
                r.wall_ms,
                r.report().violations.len(),
                s.scenes_built,
                s.scenes_reused,
                s.rows,
                s.uploads_elided,
                s.bytes_uploaded,
                speedup
                    .map(|s| format!("{s:.2}x"))
                    .unwrap_or_else(|| "-".to_owned()),
            );
        }
        if let Some(bytes) = peak_rss {
            println!(
                "{:<10} peak-RSS {:.1} MiB",
                design.name,
                bytes as f64 / (1 << 20) as f64
            );
        }
        results.push((design.name.clone(), peak_rss, runs));
    }

    if json {
        let path = "BENCH_pipeline.json";
        write_json(path, &results).expect("write BENCH_pipeline.json");
        println!("\nwrote {path}");
    }
}
