//! Regenerates **Table II**: runtime comparisons for inter-polygon
//! design rule checks — same-layer spacing (M1.S.1, M2.S.1, M3.S.1) and
//! inter-layer enclosure (V1.M1.EN.1, V2.M2.EN.1, V2.M3.EN.1) — across
//! the six benchmark designs.
//!
//! Expected shape (paper §VI): inter-polygon checks carry the heavy
//! workload, so the parallel mode pulls ahead of the sequential mode
//! and X-Check, and all of them beat the flat/deep baselines; the
//! M3-heavy jpeg design is the hardest spacing case for the
//! unpartitioned checkers.

use odrc_bench::{enclosure_rules, load_designs, parse_args, print_table, space_rules, Contender};

fn main() {
    let (filter, repeat) = parse_args();
    let designs = load_designs(filter.as_deref());
    print_table(
        "Table II (left): spacing checks (seconds)",
        &designs,
        &space_rules(),
        &Contender::ALL,
        repeat,
    );
    print_table(
        "Table II (right): enclosure checks (seconds)",
        &designs,
        &enclosure_rules(),
        &Contender::ALL,
        repeat,
    );
}
