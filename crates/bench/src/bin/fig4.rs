//! Regenerates **Fig. 4**: the runtime breakdown of OpenDRC's
//! sequential space checks.
//!
//! Expected shape (paper §VI): the adaptive layout partition consumes
//! only around 15% of overall runtime; the sweepline with its interval
//! tree takes around 35%; the remaining 40-50% goes to edge-to-edge
//! space checks.

use odrc::{Engine, RuleDeck};
use odrc_bench::{load_designs, parse_args, space_rules};

fn main() {
    let (filter, repeat) = parse_args();
    let designs = load_designs(filter.as_deref());
    println!("\n=== Fig. 4: sequential space-check runtime breakdown ===");
    println!(
        "{:<10} {:<10} {:>10} {:>12} {:>12} {:>10}",
        "design", "rule", "partition", "sweepline", "edge-check", "other"
    );
    for d in &designs {
        for r in &space_rules() {
            let mut shares = [0.0f64; 4];
            for _ in 0..repeat.max(1) {
                let report = Engine::sequential().check(&d.layout, &r.deck);
                let total = report.profile.total().as_secs_f64().max(1e-12);
                let pct = |name: &str| {
                    report
                        .profile
                        .phase(name)
                        .map(|t| t.as_secs_f64() / total)
                        .unwrap_or(0.0)
                };
                let partition = pct("partition");
                let sweepline = pct("sweepline");
                let edge = pct("edge-check");
                shares[0] += partition;
                shares[1] += sweepline;
                shares[2] += edge;
                shares[3] += 1.0 - partition - sweepline - edge;
            }
            let n = repeat.max(1) as f64;
            println!(
                "{:<10} {:<10} {:>9.1}% {:>11.1}% {:>11.1}% {:>9.1}%",
                d.name,
                r.name,
                100.0 * shares[0] / n,
                100.0 * shares[1] / n,
                100.0 * shares[2] / n,
                100.0 * shares[3] / n,
            );
        }
    }

    // Also verify once that the deck composition doesn't change shares.
    let combined: RuleDeck = space_rules()
        .into_iter()
        .flat_map(|r| r.deck.rules().to_vec())
        .collect();
    if let Some(d) = designs.first() {
        let report = Engine::sequential().check(&d.layout, &combined);
        println!("\ncombined spacing deck on {}:\n{}", d.name, report.profile);

        // Host-executor utilization: re-run the same deck with the
        // host fan-out enabled and print per-phase busy/idle shares
        // per worker (the `host[...]` profiler lines).
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .max(2);
        let fanned = Engine::sequential()
            .with_options(odrc::EngineOptions {
                host_threads: Some(threads),
                ..odrc::EngineOptions::default()
            })
            .check(&d.layout, &combined);
        println!(
            "host executor on {} ({} threads): {} task(s), {} steal(s)",
            d.name, threads, fanned.stats.host_tasks, fanned.stats.host_steals
        );
        for u in fanned.profile.host_util() {
            let busy: Vec<String> = u
                .busy
                .iter()
                .map(|b| format!("{:.1}ms", b.as_secs_f64() * 1e3))
                .collect();
            println!(
                "  host[{}]: {:.0}% busy over {} worker(s) ({}), {:.1}ms wall",
                u.phase,
                100.0 * u.utilization(),
                u.busy.len(),
                busy.join(", "),
                u.wall.as_secs_f64() * 1e3,
            );
        }

        // The paper leaves the parallel-mode breakdown to future work
        // ("runtime profiling and visualization are slightly
        // complicated" under asynchronous operations); the simulated
        // device makes it straightforward, so print it too.
        let par = Engine::parallel().check(&d.layout, &combined);
        println!(
            "parallel mode on {} (async phases):\n{}",
            d.name, par.profile
        );
        let device = odrc_xpu::Device::default();
        let r = Engine::parallel_on(device.clone()).check(&d.layout, &combined);
        println!(
            "device work: {} kernel launches, {} SPMD threads, {} bytes H2D, {} violations",
            device.stats().kernels_launched(),
            device.stats().threads_executed(),
            device.stats().bytes_h2d(),
            r.violations.len(),
        );
    }
}
