//! Ablation studies for the design choices the paper (and DESIGN.md)
//! call out:
//!
//! (a) pigeonhole vs sort-based interval merging (§IV-B argues the
//!     `Θ(k + N)` array wins when `k ≫ N`),
//! (b) hierarchical check-result reuse on/off (§IV-C),
//! (c) adaptive row partition on/off (§IV-B),
//! (d) brute-force vs sweepline parallel executor threshold (§IV-E),
//! (e) interval-tree sweepline vs quadratic overlap enumeration
//!     (§IV-D).

use std::time::Instant;

use odrc::{Engine, EngineOptions};
use odrc_bench::{load_designs, no_partition, no_pruning, parse_args, space_rules};
use odrc_geometry::Rect;
use odrc_infra::merge::{merge_pigeonhole, merge_sorted};
use odrc_infra::sweep::{brute_force_overlap_pairs, sweep_overlap_pairs};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn time<R>(f: impl FnOnce() -> R) -> (f64, R) {
    let start = Instant::now();
    let r = f();
    (start.elapsed().as_secs_f64(), r)
}

fn main() {
    let (filter, _repeat) = parse_args();

    // (a) Interval merging: k intervals over a domain of N unique
    // coordinates, k >> N as in row partitioning.
    println!("\n=== Ablation (a): interval merging, k intervals over N-coordinate domain ===");
    println!(
        "{:>10} {:>8} {:>14} {:>14}",
        "k", "N", "pigeonhole(s)", "sorted(s)"
    );
    let mut rng = StdRng::seed_from_u64(7);
    for &(k, n) in &[
        (10_000usize, 64usize),
        (100_000, 64),
        (1_000_000, 64),
        (1_000_000, 4096),
    ] {
        let intervals: Vec<(usize, usize)> = (0..k)
            .map(|_| {
                let a = rng.gen_range(0..n);
                let b = rng.gen_range(a..n);
                (a, b)
            })
            .collect();
        let (tp, mp) = time(|| merge_pigeonhole(n, intervals.iter().copied()));
        let (ts, ms) = time(|| merge_sorted(intervals.clone()));
        assert_eq!(mp, ms, "merge variants disagree");
        println!("{k:>10} {n:>8} {tp:>14.4} {ts:>14.4}");
    }

    // (e) Overlap reporting: sweepline vs quadratic.
    println!("\n=== Ablation (e): MBR overlap reporting ===");
    println!(
        "{:>10} {:>14} {:>14} {:>10}",
        "rects", "sweepline(s)", "quadratic(s)", "pairs"
    );
    for &n in &[500usize, 2000, 8000] {
        let rects: Vec<Rect> = (0..n)
            .map(|_| {
                let x = rng.gen_range(-10_000..10_000);
                let y = rng.gen_range(-10_000..10_000);
                Rect::from_coords(x, y, x + rng.gen_range(1..200), y + rng.gen_range(1..200))
            })
            .collect();
        let (t1, p1) = time(|| sweep_overlap_pairs(&rects));
        let (t2, p2) = time(|| brute_force_overlap_pairs(&rects));
        assert_eq!(p1, p2);
        println!("{n:>10} {t1:>14.4} {t2:>14.4} {:>10}", p1.len());
    }

    // (g) Window-query structures: linear scan vs quadtree vs R-tree.
    {
        use odrc_infra::{QuadTree, RTree};
        println!("\n=== Ablation (g): window queries, 20k rects x 200 windows ===");
        let mut rng2 = StdRng::seed_from_u64(9);
        let rects: Vec<Rect> = (0..20_000)
            .map(|_| {
                let x = rng2.gen_range(-100_000..100_000);
                let y = rng2.gen_range(-100_000..100_000);
                Rect::from_coords(x, y, x + rng2.gen_range(1..500), y + rng2.gen_range(1..500))
            })
            .collect();
        let windows: Vec<Rect> = (0..200)
            .map(|_| {
                let x = rng2.gen_range(-100_000..100_000);
                let y = rng2.gen_range(-100_000..100_000);
                Rect::from_coords(x, y, x + 2000, y + 2000)
            })
            .collect();
        let (t_rb, rtree) = time(|| RTree::bulk_load(&rects));
        let (t_qb, quad) = time(|| QuadTree::build(&rects));
        let (t_r, hits_r) = time(|| windows.iter().map(|&w| rtree.query(w).len()).sum::<usize>());
        let (t_q, hits_q) = time(|| windows.iter().map(|&w| quad.query(w).len()).sum::<usize>());
        let (t_l, hits_l) = time(|| {
            windows
                .iter()
                .map(|&w| rects.iter().filter(|r| r.overlaps(w)).count())
                .sum::<usize>()
        });
        assert_eq!(hits_r, hits_l);
        assert_eq!(hits_q, hits_l);
        println!("{:>12} {:>12} {:>12}", "structure", "build(s)", "query(s)");
        println!("{:>12} {:>12} {:>12.4}", "linear", "-", t_l);
        println!("{:>12} {:>12.4} {:>12.4}", "rtree", t_rb, t_r);
        println!("{:>12} {:>12.4} {:>12.4}", "quadtree", t_qb, t_q);
    }

    // (f) Baseline strength: the as-drawn flat checker vs the
    // merged-region variant (closer to real KLayout's region engine).
    // The gap shows how much region machinery the paper's KLayout
    // numbers include that our stronger baseline does not.
    {
        use odrc_baselines::{Checker, FlatChecker};
        println!("\n=== Ablation (f): flat baseline, as-drawn vs merged regions ===");
        println!(
            "{:<10} {:<10} {:>12} {:>12}",
            "design", "rule", "as-drawn(s)", "merged(s)"
        );
        let designs = odrc_bench::load_designs(Some("uart,ibex"));
        for d in &designs {
            for r in &space_rules() {
                let (t_plain, a) = time(|| FlatChecker::new().check(&d.layout, &r.deck));
                let (t_merged, b) = time(|| FlatChecker::with_merge().check(&d.layout, &r.deck));
                assert_eq!(
                    a.violations, b.violations,
                    "disjoint layouts: merge must not change results"
                );
                println!(
                    "{:<10} {:<10} {t_plain:>12.4} {t_merged:>12.4}",
                    d.name, r.name
                );
            }
        }
    }

    // (h) Pair-discovery structure inside the sequential engine.
    {
        println!("\n=== Ablation (h): sequential pair discovery, sweepline vs R-tree ===");
        println!(
            "{:<10} {:<10} {:>14} {:>12}",
            "design", "rule", "sweepline(s)", "rtree(s)"
        );
        let designs = odrc_bench::load_designs(Some("ibex,aes"));
        for d in &designs {
            for r in &space_rules() {
                let (t_sw, a) = time(|| Engine::sequential().check(&d.layout, &r.deck));
                let (t_rt, b) = time(|| {
                    Engine::sequential()
                        .with_options(EngineOptions {
                            pair_index: odrc::PairIndex::RTree,
                            ..EngineOptions::default()
                        })
                        .check(&d.layout, &r.deck)
                });
                assert_eq!(a.violations, b.violations);
                println!("{:<10} {:<10} {t_sw:>14.4} {t_rt:>12.4}", d.name, r.name);
            }
        }
    }

    // (b)-(d): engine ablations on the benchmark designs.
    let designs = load_designs(filter.as_deref());
    println!("\n=== Ablations (b)-(d): engine options on sequential/parallel space checks ===");
    println!(
        "{:<10} {:<10} {:>10} {:>12} {:>12} {:>11} {:>11}",
        "design", "rule", "seq(s)", "no-prune(s)", "no-part(s)", "par-sw(s)", "par-bf(s)"
    );
    for d in &designs {
        for r in &space_rules() {
            let (t_base, base) = time(|| Engine::sequential().check(&d.layout, &r.deck));
            let (t_noprune, a) = time(|| {
                Engine::sequential()
                    .with_options(no_pruning())
                    .check(&d.layout, &r.deck)
            });
            let (t_nopart, b) = time(|| {
                Engine::sequential()
                    .with_options(no_partition())
                    .check(&d.layout, &r.deck)
            });
            let (t_sw, c) = time(|| {
                Engine::parallel()
                    .with_options(EngineOptions {
                        sweep_threshold: 0,
                        ..EngineOptions::default()
                    })
                    .check(&d.layout, &r.deck)
            });
            let (t_bf, e) = time(|| {
                Engine::parallel()
                    .with_options(EngineOptions {
                        sweep_threshold: usize::MAX,
                        ..EngineOptions::default()
                    })
                    .check(&d.layout, &r.deck)
            });
            for other in [&a, &b, &c, &e] {
                assert_eq!(
                    base.violations, other.violations,
                    "ablation changed results"
                );
            }
            println!(
                "{:<10} {:<10} {:>10.4} {:>12.4} {:>12.4} {:>11.4} {:>11.4}",
                d.name, r.name, t_base, t_noprune, t_nopart, t_sw, t_bf
            );
        }
    }
}
