//! Benchmark harness regenerating the OpenDRC paper's evaluation
//! (§VI): Table I (intra-polygon checks), Table II (inter-polygon
//! checks), Fig. 4 (sequential runtime breakdown), and the ablation
//! studies DESIGN.md calls out.
//!
//! Run the binaries in release mode:
//!
//! ```text
//! cargo run -p odrc-bench --release --bin table1
//! cargo run -p odrc-bench --release --bin table2
//! cargo run -p odrc-bench --release --bin fig4
//! cargo run -p odrc-bench --release --bin ablation
//! ```
//!
//! Each binary accepts `--designs a,b,c` to restrict the design set and
//! `--repeat N` to average over `N` timed runs (default 1 after one
//! warm-up for the smallest design only, to bound total runtime).

use std::time::{Duration, Instant};

use odrc::{rule, Engine, EngineOptions, RuleDeck};
use odrc_baselines::{Checker, DeepChecker, FlatChecker, TilingChecker, XCheck};
use odrc_db::Layout;
use odrc_layoutgen::{generate_layout, tech, DesignSpec};
use odrc_xpu::Device;

/// A benchmark design: name plus imported layout.
pub struct BenchDesign {
    /// Design name (aes, ethmac, ibex, jpeg, sha3, uart).
    pub name: String,
    /// The generated layout.
    pub layout: Layout,
}

/// Generates the paper's six designs, optionally filtered to a
/// comma-separated subset.
pub fn load_designs(filter: Option<&str>) -> Vec<BenchDesign> {
    DesignSpec::all_paper()
        .into_iter()
        .filter(|s| match filter {
            Some(f) => f.split(',').any(|n| n.trim() == s.name),
            None => true,
        })
        .map(|spec| BenchDesign {
            name: spec.name.clone(),
            layout: generate_layout(&spec),
        })
        .collect()
}

/// Parses `--designs` / `--repeat` from `std::env::args`.
pub fn parse_args() -> (Option<String>, usize) {
    let args: Vec<String> = std::env::args().collect();
    let mut designs = None;
    let mut repeat = 1usize;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--designs" if i + 1 < args.len() => {
                designs = Some(args[i + 1].clone());
                i += 2;
            }
            "--repeat" if i + 1 < args.len() => {
                repeat = args[i + 1].parse().unwrap_or(1).max(1);
                i += 2;
            }
            other => {
                eprintln!("ignoring unknown argument '{other}'");
                i += 1;
            }
        }
    }
    (designs, repeat)
}

/// A named single-rule deck: the tables time one rule at a time, as the
/// paper does.
pub struct NamedRule {
    /// Paper-style rule name (e.g. `"M2.S.1"`).
    pub name: String,
    /// A deck holding just this rule.
    pub deck: RuleDeck,
}

fn named(name: &str, r: odrc::Rule) -> NamedRule {
    NamedRule {
        name: name.to_owned(),
        deck: RuleDeck::new(vec![r.named(name)]),
    }
}

/// Table I rules: intra-polygon width and area checks.
pub fn intra_rules() -> Vec<NamedRule> {
    vec![
        named(
            "M1.W.1",
            rule().layer(tech::M1).width().greater_than(tech::M1_WIDTH),
        ),
        named(
            "M2.W.1",
            rule().layer(tech::M2).width().greater_than(tech::M2_WIDTH),
        ),
        named(
            "M3.W.1",
            rule().layer(tech::M3).width().greater_than(tech::M3_WIDTH),
        ),
        named(
            "M1.A.1",
            rule().layer(tech::M1).area().greater_than(tech::M1_AREA),
        ),
    ]
}

/// Table II spacing rules.
pub fn space_rules() -> Vec<NamedRule> {
    vec![
        named(
            "M1.S.1",
            rule().layer(tech::M1).space().greater_than(tech::M1_SPACE),
        ),
        named(
            "M2.S.1",
            rule().layer(tech::M2).space().greater_than(tech::M2_SPACE),
        ),
        named(
            "M3.S.1",
            rule().layer(tech::M3).space().greater_than(tech::M3_SPACE),
        ),
    ]
}

/// Table II enclosure rules.
pub fn enclosure_rules() -> Vec<NamedRule> {
    vec![
        named(
            "V1.M1.EN.1",
            rule()
                .layer(tech::V1)
                .enclosed_by(tech::M1)
                .greater_than(tech::V1_M1_ENCLOSURE),
        ),
        named(
            "V2.M2.EN.1",
            rule()
                .layer(tech::V2)
                .enclosed_by(tech::M2)
                .greater_than(tech::V2_M2_ENCLOSURE),
        ),
        named(
            "V2.M3.EN.1",
            rule()
                .layer(tech::V2)
                .enclosed_by(tech::M3)
                .greater_than(tech::V2_M3_ENCLOSURE),
        ),
    ]
}

/// The checkers compared in the tables, in column order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Contender {
    /// KLayout flat mode.
    KFlat,
    /// KLayout deep (hierarchy) mode.
    KDeep,
    /// KLayout tiling mode (multi-threaded).
    KTile,
    /// X-Check (GPU, flat).
    XCheck,
    /// OpenDRC sequential mode.
    Seq,
    /// OpenDRC parallel mode.
    Par,
}

impl Contender {
    /// All contenders in the tables' column order.
    pub const ALL: [Contender; 6] = [
        Contender::KFlat,
        Contender::KDeep,
        Contender::KTile,
        Contender::XCheck,
        Contender::Seq,
        Contender::Par,
    ];

    /// Column header.
    pub fn label(self) -> &'static str {
        match self {
            Contender::KFlat => "KL-flat",
            Contender::KDeep => "KL-deep",
            Contender::KTile => "KL-tile",
            Contender::XCheck => "X-Check",
            Contender::Seq => "ODRC-seq",
            Contender::Par => "ODRC-par",
        }
    }
}

/// Outcome of one timed run.
#[derive(Debug, Clone, Copy)]
pub enum Cell {
    /// Runtime and violation count.
    Time(Duration, usize),
    /// The checker does not support the rule (X-Check × area).
    Unsupported,
}

impl Cell {
    /// Render for the table.
    pub fn render(self) -> String {
        match self {
            Cell::Time(d, _) => format!("{:8.3}", d.as_secs_f64()),
            Cell::Unsupported => format!("{:>8}", "-"),
        }
    }
}

/// Runs one contender on one deck, `repeat` times, returning the mean.
pub fn run_timed(c: Contender, layout: &Layout, deck: &RuleDeck, repeat: usize) -> Cell {
    let mut total = Duration::ZERO;
    let mut violations = 0usize;
    for _ in 0..repeat.max(1) {
        let start = Instant::now();
        match c {
            Contender::KFlat => {
                let r = FlatChecker::new().check(layout, deck);
                violations = r.violations.len();
            }
            Contender::KDeep => {
                let r = DeepChecker::new().check(layout, deck);
                violations = r.violations.len();
            }
            Contender::KTile => {
                let r = TilingChecker::default().check(layout, deck);
                violations = r.violations.len();
            }
            Contender::XCheck => {
                let r = XCheck::new(Device::default()).check(layout, deck);
                if !r.skipped.is_empty() {
                    return Cell::Unsupported;
                }
                violations = r.violations.len();
            }
            Contender::Seq => {
                let r = Engine::sequential().check(layout, deck);
                violations = r.violations.len();
            }
            Contender::Par => {
                let r = Engine::parallel().check(layout, deck);
                violations = r.violations.len();
            }
        }
        total += start.elapsed();
    }
    Cell::Time(total / repeat.max(1) as u32, violations)
}

/// Geometric mean of positive durations, in seconds.
pub fn geomean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = xs.iter().map(|x| x.max(1e-9).ln()).sum();
    (log_sum / xs.len() as f64).exp()
}

/// Prints a paper-style table: one row per (design, rule), one column
/// per contender, then a normalized geometric-mean row ("the runtime is
/// the geometric mean of the column ... normalized against the parallel
/// mode of OpenDRC").
pub fn print_table(
    title: &str,
    designs: &[BenchDesign],
    rules: &[NamedRule],
    contenders: &[Contender],
    repeat: usize,
) {
    println!("\n=== {title} ===");
    print!("{:<10} {:<12}", "design", "rule");
    for c in contenders {
        print!(" {:>9}", c.label());
    }
    println!(" {:>8}", "#viol");

    let mut per_contender: Vec<Vec<f64>> = vec![Vec::new(); contenders.len()];
    for d in designs {
        for r in &rules_iter(rules) {
            print!("{:<10} {:<12}", d.name, r.name);
            let mut viol = None;
            for (ci, &c) in contenders.iter().enumerate() {
                let cell = run_timed(c, &d.layout, &r.deck, repeat);
                print!(" {:>9}", cell.render());
                if let Cell::Time(t, v) = cell {
                    per_contender[ci].push(t.as_secs_f64());
                    match viol {
                        None => viol = Some(v),
                        Some(prev) => assert_eq!(
                            prev, v,
                            "checkers disagree on {} {} ({prev} vs {v})",
                            d.name, r.name
                        ),
                    }
                }
            }
            println!(" {:>8}", viol.unwrap_or(0));
        }
    }

    // Normalized geometric means.
    let base = per_contender
        .last()
        .map(|xs| geomean(xs))
        .filter(|&g| g > 0.0)
        .unwrap_or(1.0);
    print!("{:<10} {:<12}", "geomean", "(norm)");
    for xs in &per_contender {
        if xs.is_empty() {
            print!(" {:>9}", "-");
        } else {
            print!(" {:>8.1}x", geomean(xs) / base);
        }
    }
    println!();
}

fn rules_iter(rules: &[NamedRule]) -> Vec<&NamedRule> {
    rules.iter().collect()
}

/// The execution-planner benchmark deck: every layer carries several
/// rules so the planner's scene memo and device-resident buffer cache
/// have sharing to exploit — width + area + unconditional and
/// conditional spacing on the metals (the two M1 spacing rules share
/// one partitioned row set), plus the via enclosures (whose outer
/// scenes are the metal scenes the spacing rules already built).
pub fn pipeline_deck() -> RuleDeck {
    RuleDeck::new(vec![
        rule()
            .layer(tech::M1)
            .width()
            .greater_than(tech::M1_WIDTH)
            .named("M1.W.1"),
        rule()
            .layer(tech::M1)
            .area()
            .greater_than(tech::M1_AREA)
            .named("M1.A.1"),
        rule()
            .layer(tech::M1)
            .space()
            .greater_than(tech::M1_SPACE)
            .named("M1.S.1"),
        rule()
            .layer(tech::M1)
            .space()
            .when_projection_at_least(tech::M1_WIDTH)
            .greater_than(tech::M1_SPACE)
            .named("M1.S.2"),
        rule()
            .layer(tech::M2)
            .width()
            .greater_than(tech::M2_WIDTH)
            .named("M2.W.1"),
        rule()
            .layer(tech::M2)
            .space()
            .greater_than(tech::M2_SPACE)
            .named("M2.S.1"),
        rule()
            .layer(tech::M3)
            .width()
            .greater_than(tech::M3_WIDTH)
            .named("M3.W.1"),
        rule()
            .layer(tech::M3)
            .space()
            .greater_than(tech::M3_SPACE)
            .named("M3.S.1"),
        rule()
            .layer(tech::V1)
            .enclosed_by(tech::M1)
            .greater_than(tech::V1_M1_ENCLOSURE)
            .named("V1.M1.EN.1"),
        rule()
            .layer(tech::V2)
            .enclosed_by(tech::M2)
            .greater_than(tech::V2_M2_ENCLOSURE)
            .named("V2.M2.EN.1"),
    ])
}

/// Engine options with pruning disabled (ablation).
pub fn no_pruning() -> EngineOptions {
    EngineOptions {
        pruning: false,
        ..EngineOptions::default()
    }
}

/// Engine options with the partition disabled (ablation).
pub fn no_partition() -> EngineOptions {
    EngineOptions {
        partition: false,
        ..EngineOptions::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_basics() {
        assert!((geomean(&[1.0, 100.0]) - 10.0).abs() < 1e-9);
        assert_eq!(geomean(&[]), 0.0);
        assert!((geomean(&[5.0]) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn rule_sets_cover_paper() {
        assert_eq!(intra_rules().len(), 4);
        assert_eq!(space_rules().len(), 3);
        assert_eq!(enclosure_rules().len(), 3);
    }

    #[test]
    fn contender_labels_unique() {
        let labels: std::collections::HashSet<_> =
            Contender::ALL.iter().map(|c| c.label()).collect();
        assert_eq!(labels.len(), Contender::ALL.len());
    }

    #[test]
    fn run_timed_smoke() {
        let designs = load_designs(Some("uart"));
        assert_eq!(designs.len(), 1);
        let r = &intra_rules()[0];
        for c in [Contender::Seq, Contender::KTile] {
            match run_timed(c, &designs[0].layout, &r.deck, 1) {
                Cell::Time(t, _) => assert!(t > Duration::ZERO),
                Cell::Unsupported => panic!("unexpected unsupported"),
            }
        }
        // X-Check on an area rule is unsupported.
        let area = &intra_rules()[3];
        assert!(matches!(
            run_timed(Contender::XCheck, &designs[0].layout, &area.deck, 1),
            Cell::Unsupported
        ));
    }
}
