//! Criterion benches for Table I's intra-polygon checks on the two
//! smallest designs (uart, ibex), comparing every contender.
//!
//! The `table1` binary produces the full paper-format table over all
//! six designs; these benches give statistically robust numbers on the
//! small designs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use odrc::{Engine, RuleDeck};
use odrc_baselines::{Checker, DeepChecker, FlatChecker, TilingChecker, XCheck};
use odrc_bench::{intra_rules, load_designs};
use odrc_xpu::Device;
use std::time::Duration;

fn bench_intra(c: &mut Criterion) {
    let designs = load_designs(Some("uart,ibex"));
    let rules = intra_rules();
    let mut group = c.benchmark_group("intra");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));

    for d in &designs {
        for r in &rules {
            let deck: &RuleDeck = &r.deck;
            let id = |who: &str| BenchmarkId::new(who, format!("{}-{}", d.name, r.name));
            group.bench_with_input(id("odrc-seq"), deck, |b, deck| {
                b.iter(|| Engine::sequential().check(&d.layout, deck));
            });
            group.bench_with_input(id("odrc-par"), deck, |b, deck| {
                b.iter(|| Engine::parallel_on(Device::new(2)).check(&d.layout, deck));
            });
            group.bench_with_input(id("klayout-flat"), deck, |b, deck| {
                b.iter(|| FlatChecker::new().check(&d.layout, deck));
            });
            group.bench_with_input(id("klayout-deep"), deck, |b, deck| {
                b.iter(|| DeepChecker::new().check(&d.layout, deck));
            });
            group.bench_with_input(id("klayout-tile"), deck, |b, deck| {
                b.iter(|| TilingChecker::default().check(&d.layout, deck));
            });
            if !r.name.contains(".A.") {
                group.bench_with_input(id("x-check"), deck, |b, deck| {
                    b.iter(|| XCheck::new(Device::new(2)).check(&d.layout, deck));
                });
            }
        }
    }
    group.finish();
}

criterion_group!(benches, bench_intra);
criterion_main!(benches);
