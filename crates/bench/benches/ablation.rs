//! Criterion benches for the ablations: interval merging variants,
//! overlap reporting variants, and engine options.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use odrc::{Engine, EngineOptions};
use odrc_bench::{load_designs, no_partition, no_pruning, space_rules};
use odrc_geometry::Rect;
use odrc_infra::merge::{merge_pigeonhole, merge_sorted};
use odrc_infra::sweep::{brute_force_overlap_pairs, sweep_overlap_pairs};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;

fn bench_merge(c: &mut Criterion) {
    let mut group = c.benchmark_group("merge");
    group.sample_size(20);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    let mut rng = StdRng::seed_from_u64(3);
    for &(k, n) in &[(50_000usize, 64usize), (50_000, 4096)] {
        let intervals: Vec<(usize, usize)> = (0..k)
            .map(|_| {
                let a = rng.gen_range(0..n);
                (a, rng.gen_range(a..n))
            })
            .collect();
        group.bench_with_input(
            BenchmarkId::new("pigeonhole", format!("k{k}-n{n}")),
            &intervals,
            |b, iv| b.iter(|| merge_pigeonhole(n, iv.iter().copied())),
        );
        group.bench_with_input(
            BenchmarkId::new("sorted", format!("k{k}-n{n}")),
            &intervals,
            |b, iv| b.iter(|| merge_sorted(iv.clone())),
        );
    }
    group.finish();
}

fn bench_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("overlap");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    let mut rng = StdRng::seed_from_u64(4);
    for &n in &[500usize, 2000] {
        let rects: Vec<Rect> = (0..n)
            .map(|_| {
                let x = rng.gen_range(-10_000..10_000);
                let y = rng.gen_range(-10_000..10_000);
                Rect::from_coords(x, y, x + rng.gen_range(1..200), y + rng.gen_range(1..200))
            })
            .collect();
        group.bench_with_input(BenchmarkId::new("sweepline", n), &rects, |b, r| {
            b.iter(|| sweep_overlap_pairs(r))
        });
        group.bench_with_input(BenchmarkId::new("quadratic", n), &rects, |b, r| {
            b.iter(|| brute_force_overlap_pairs(r))
        });
    }
    group.finish();
}

fn bench_spatial_indices(c: &mut Criterion) {
    use odrc_infra::{QuadTree, RTree};
    let mut group = c.benchmark_group("spatial-index");
    group.sample_size(20);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    let mut rng = StdRng::seed_from_u64(5);
    let n = 20_000usize;
    let rects: Vec<Rect> = (0..n)
        .map(|_| {
            let x = rng.gen_range(-100_000..100_000);
            let y = rng.gen_range(-100_000..100_000);
            Rect::from_coords(x, y, x + rng.gen_range(1..500), y + rng.gen_range(1..500))
        })
        .collect();
    let windows: Vec<Rect> = (0..200)
        .map(|_| {
            let x = rng.gen_range(-100_000..100_000);
            let y = rng.gen_range(-100_000..100_000);
            Rect::from_coords(x, y, x + 2000, y + 2000)
        })
        .collect();
    group.bench_function("rtree-build", |b| b.iter(|| RTree::bulk_load(&rects)));
    group.bench_function("quadtree-build", |b| b.iter(|| QuadTree::build(&rects)));
    let rtree = RTree::bulk_load(&rects);
    let quad = QuadTree::build(&rects);
    group.bench_function("rtree-200-queries", |b| {
        b.iter(|| windows.iter().map(|&w| rtree.query(w).len()).sum::<usize>())
    });
    group.bench_function("quadtree-200-queries", |b| {
        b.iter(|| windows.iter().map(|&w| quad.query(w).len()).sum::<usize>())
    });
    group.bench_function("linear-200-queries", |b| {
        b.iter(|| {
            windows
                .iter()
                .map(|&w| rects.iter().filter(|r| r.overlaps(w)).count())
                .sum::<usize>()
        })
    });
    group.finish();
}

fn bench_region_ops(c: &mut Criterion) {
    use odrc_infra::Region;
    let mut group = c.benchmark_group("region");
    group.sample_size(20);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    let mut rng = StdRng::seed_from_u64(6);
    let make = |rng: &mut StdRng, n: usize| -> Vec<Rect> {
        (0..n)
            .map(|_| {
                let x = rng.gen_range(-5_000..5_000);
                let y = rng.gen_range(-5_000..5_000);
                Rect::from_coords(x, y, x + rng.gen_range(1..300), y + rng.gen_range(1..300))
            })
            .collect()
    };
    let ra = make(&mut rng, 2000);
    let rb = make(&mut rng, 2000);
    group.bench_function("from-2000-rects", |b| {
        b.iter(|| Region::from_rects(ra.iter().copied()))
    });
    let a = Region::from_rects(ra.iter().copied());
    let b_reg = Region::from_rects(rb.iter().copied());
    group.bench_function("union", |b| b.iter(|| a.union(&b_reg)));
    group.bench_function("intersection", |b| b.iter(|| a.intersection(&b_reg)));
    group.finish();
}

fn bench_engine_options(c: &mut Criterion) {
    let designs = load_designs(Some("uart"));
    let d = &designs[0];
    let rule = &space_rules()[0]; // M1.S.1: the hierarchical one
    let mut group = c.benchmark_group("engine-options");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    group.bench_function("seq-baseline", |b| {
        b.iter(|| Engine::sequential().check(&d.layout, &rule.deck))
    });
    group.bench_function("seq-no-pruning", |b| {
        b.iter(|| {
            Engine::sequential()
                .with_options(no_pruning())
                .check(&d.layout, &rule.deck)
        })
    });
    group.bench_function("seq-no-partition", |b| {
        b.iter(|| {
            Engine::sequential()
                .with_options(no_partition())
                .check(&d.layout, &rule.deck)
        })
    });
    group.bench_function("par-sweep-executor", |b| {
        b.iter(|| {
            Engine::parallel()
                .with_options(EngineOptions {
                    sweep_threshold: 0,
                    ..EngineOptions::default()
                })
                .check(&d.layout, &rule.deck)
        })
    });
    group.bench_function("par-brute-executor", |b| {
        b.iter(|| {
            Engine::parallel()
                .with_options(EngineOptions {
                    sweep_threshold: usize::MAX,
                    ..EngineOptions::default()
                })
                .check(&d.layout, &rule.deck)
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_merge,
    bench_sweep,
    bench_spatial_indices,
    bench_region_ops,
    bench_engine_options
);
criterion_main!(benches);
