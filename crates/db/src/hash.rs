//! Structural content hashes for check-result reuse across processes.
//!
//! The in-memory §IV-C memo keys cached per-cell verdicts by [`CellId`],
//! which is only meaningful within one loaded layout. To persist results
//! across edits and across processes, cells are rekeyed by *content*: a
//! cell's subtree hash covers its own geometry plus the subtree hashes
//! and placement transforms of its children. An edit therefore changes
//! exactly the hashes of the edited cell and its ancestor chain — every
//! other cell keeps its key and its cached results stay valid.
//!
//! The hash is 64-bit FNV-1a over a fixed little-endian encoding, so it
//! is stable across processes and platforms (unlike
//! `std::collections::hash_map::DefaultHasher`, which is randomly
//! seeded per process).

use crate::{CellId, Layout};

/// Streaming 64-bit FNV-1a.
#[derive(Clone, Copy)]
pub(crate) struct Fnv(u64);

impl Fnv {
    pub(crate) fn new() -> Self {
        Fnv(0xcbf29ce484222325)
    }

    pub(crate) fn bytes(&mut self, bytes: &[u8]) -> &mut Self {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x100000001b3);
        }
        self
    }

    pub(crate) fn u64(&mut self, v: u64) -> &mut Self {
        self.bytes(&v.to_le_bytes())
    }

    pub(crate) fn i32(&mut self, v: i32) -> &mut Self {
        self.bytes(&v.to_le_bytes())
    }

    pub(crate) fn finish(&self) -> u64 {
        self.0
    }
}

impl Layout {
    /// The content hash of one cell's own geometry (not its children):
    /// layers, datatypes, vertices, and object names, in definition
    /// order. Cell names are deliberately excluded so identical
    /// geometry hashes identically regardless of naming.
    pub fn local_content_hash(&self, cell: CellId) -> u64 {
        let mut h = Fnv::new();
        let c = self.cell(cell);
        h.u64(c.polygons().len() as u64);
        for p in c.polygons() {
            h.i32(i32::from(p.layer)).i32(i32::from(p.datatype));
            h.u64(p.polygon.vertices().len() as u64);
            for v in p.polygon.vertices() {
                h.i32(v.x).i32(v.y);
            }
            match &p.name {
                Some(n) => {
                    h.u64(n.len() as u64 + 1).bytes(n.as_bytes());
                }
                None => {
                    h.u64(0);
                }
            }
        }
        h.finish()
    }

    /// Subtree content hashes for every cell, indexed by
    /// [`CellId::index`]: own geometry plus each child's subtree hash
    /// and placement transform, in reference order.
    pub fn subtree_hashes(&self) -> Vec<u64> {
        let order = crate::build::topo_order(self.cells()).expect("layout DAG is acyclic");
        let mut hashes = vec![0u64; self.cell_count()];
        for ci in order {
            let id = CellId(ci as u32);
            let mut h = Fnv::new();
            h.u64(self.local_content_hash(id));
            let c = self.cell(id);
            h.u64(c.refs().len() as u64);
            for r in c.refs() {
                h.u64(hashes[r.cell.index()]);
                let t = &r.transform;
                h.i32(i32::from(t.mirror_x()))
                    .i32(i32::from(t.rotation().quarter_turns()))
                    .i32(t.mag())
                    .i32(t.translate().x)
                    .i32(t.translate().y);
            }
            hashes[ci] = h.finish();
        }
        hashes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use odrc_gdsii::{Element, Library, Structure};
    use odrc_geometry::Point;

    fn square_lib(unit_layer: i16) -> Library {
        let mut lib = Library::new("t");
        let mut cell = Structure::new("UNIT");
        cell.elements.push(Element::boundary(
            unit_layer,
            vec![
                Point::new(0, 0),
                Point::new(0, 10),
                Point::new(10, 10),
                Point::new(10, 0),
            ],
        ));
        lib.structures.push(cell);
        let mut top = Structure::new("TOP");
        top.elements.push(Element::sref("UNIT", Point::new(0, 0)));
        top.elements.push(Element::sref("UNIT", Point::new(50, 20)));
        lib.structures.push(top);
        lib
    }

    #[test]
    fn hashes_are_deterministic_and_content_sensitive() {
        let a = Layout::from_library(&square_lib(1)).unwrap();
        let b = Layout::from_library(&square_lib(1)).unwrap();
        assert_eq!(a.subtree_hashes(), b.subtree_hashes());

        let c = Layout::from_library(&square_lib(2)).unwrap();
        let (ha, hc) = (a.subtree_hashes(), c.subtree_hashes());
        let unit = a.cell_by_name("UNIT").unwrap().index();
        let top = a.top().index();
        // Changing the leaf changes the leaf AND its ancestor.
        assert_ne!(ha[unit], hc[unit]);
        assert_ne!(ha[top], hc[top]);
    }

    #[test]
    fn cell_rename_does_not_change_hash() {
        let a = Layout::from_library(&square_lib(1)).unwrap();
        let mut lib = square_lib(1);
        lib.structures[0].name = "RENAMED".into();
        if let Element::Ref(r) = &mut lib.structures[1].elements[0] {
            r.sname = "RENAMED".into();
        }
        if let Element::Ref(r) = &mut lib.structures[1].elements[1] {
            r.sname = "RENAMED".into();
        }
        let b = Layout::from_library(&lib).unwrap();
        assert_eq!(a.subtree_hashes(), b.subtree_hashes());
    }

    #[test]
    fn transform_changes_parent_hash_only() {
        let a = Layout::from_library(&square_lib(1)).unwrap();
        let mut lib = square_lib(1);
        if let Element::Ref(r) = &mut lib.structures[1].elements[1] {
            r.origin = Point::new(51, 20);
        }
        let b = Layout::from_library(&lib).unwrap();
        let unit = a.cell_by_name("UNIT").unwrap().index();
        let top = a.top().index();
        let (ha, hb) = (a.subtree_hashes(), b.subtree_hashes());
        assert_eq!(ha[unit], hb[unit]);
        assert_ne!(ha[top], hb[top]);
    }
}
