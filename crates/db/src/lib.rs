//! Hierarchical layout database for OpenDRC.
//!
//! OpenDRC "does not flatten the layout, but preserves the layout
//! hierarchy instead" (§IV-A of the paper). This crate turns a parsed
//! GDSII [`Library`] into a [`Layout`]: a DAG of [`Cell`]s whose
//! references store pointers (cell ids) to shared definitions, augmented
//! with per-layer minimum bounding rectangles ("layer-wise bounding
//! volume hierarchy") so that layer range queries prune whole subtrees.
//!
//! The crate also builds the space-for-speed secondary indices described
//! in the paper: per-layer hierarchy membership (which cells contain a
//! layer anywhere below them) and element-level inverted indices (the
//! full list of leaf polygons per layer).
//!
//! [`Library`]: odrc_gdsii::Library
//!
//! # Examples
//!
//! ```
//! use odrc_gdsii::{Element, Library, Structure};
//! use odrc_geometry::Point;
//! use odrc_db::Layout;
//!
//! let mut lib = Library::new("demo");
//! let mut cell = Structure::new("UNIT");
//! cell.elements.push(Element::boundary(
//!     1,
//!     vec![Point::new(0, 0), Point::new(0, 10), Point::new(10, 10), Point::new(10, 0)],
//! ));
//! lib.structures.push(cell);
//! let mut top = Structure::new("TOP");
//! top.elements.push(Element::sref("UNIT", Point::new(0, 0)));
//! top.elements.push(Element::sref("UNIT", Point::new(100, 0)));
//! lib.structures.push(top);
//!
//! let layout = Layout::from_library(&lib)?;
//! assert_eq!(layout.cell(layout.top()).name(), "TOP");
//! assert_eq!(layout.flatten_layer(1).len(), 2);
//! # Ok::<(), odrc_db::DbError>(())
//! ```

mod build;
mod edit;
mod export;
mod hash;
mod query;

pub use build::{DbError, LayoutBuilder};
pub use edit::EditError;

use std::collections::BTreeMap;

use odrc_geometry::{Polygon, Rect, Transform};

/// Identifier of a cell within its [`Layout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CellId(pub(crate) u32);

impl CellId {
    /// The raw index (cells are stored densely in definition order).
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds an id from a raw index. The id is only meaningful for a
    /// layout with at least `index + 1` cells; the edit API validates
    /// ids before use.
    #[inline]
    pub fn from_index(index: usize) -> CellId {
        CellId(index as u32)
    }
}

/// Layer number (GDSII layer).
pub type Layer = i16;

/// A polygon placed on a layer inside a cell definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LayerPolygon {
    /// The layer the polygon lives on.
    pub layer: Layer,
    /// GDSII datatype (carried through for completeness).
    pub datatype: i16,
    /// The geometry, in cell-local coordinates.
    pub polygon: Polygon,
    /// Object name (GDSII property 1), inspected by `ensures`-style
    /// user predicates.
    pub name: Option<String>,
}

/// A placement of another cell inside a cell definition
/// (an `SREF`, or one instance of an expanded `AREF`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CellRef {
    /// The referenced cell.
    pub cell: CellId,
    /// Placement transform, in the parent's coordinates.
    pub transform: Transform,
}

/// A cell (GDSII structure): leaf geometry plus references.
#[derive(Debug, Clone)]
pub struct Cell {
    name: String,
    polygons: Vec<LayerPolygon>,
    refs: Vec<CellRef>,
    /// Per-layer MBR of the whole subtree, in cell-local coordinates.
    layer_mbr: BTreeMap<Layer, Rect>,
    /// MBR over all layers, `None` for an empty cell.
    mbr: Option<Rect>,
}

impl Cell {
    /// Cell name.
    #[inline]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Leaf polygons defined directly in this cell.
    #[inline]
    pub fn polygons(&self) -> &[LayerPolygon] {
        &self.polygons
    }

    /// Leaf polygons of this cell on one layer.
    pub fn polygons_on(&self, layer: Layer) -> impl Iterator<Item = &LayerPolygon> {
        self.polygons.iter().filter(move |p| p.layer == layer)
    }

    /// Child references.
    #[inline]
    pub fn refs(&self) -> &[CellRef] {
        &self.refs
    }

    /// Returns `true` if the cell has no child references.
    #[inline]
    pub fn is_leaf(&self) -> bool {
        self.refs.is_empty()
    }

    /// Subtree MBR for one layer (cell-local coordinates), or `None` if
    /// the layer is absent below this cell. This is the MBR that the
    /// augmented hierarchy tree uses to prune layer range queries
    /// (§IV-A).
    #[inline]
    pub fn layer_mbr(&self, layer: Layer) -> Option<Rect> {
        self.layer_mbr.get(&layer).copied()
    }

    /// Subtree MBR over all layers.
    #[inline]
    pub fn mbr(&self) -> Option<Rect> {
        self.mbr
    }

    /// Layers present anywhere in this cell's subtree.
    pub fn layers(&self) -> impl Iterator<Item = Layer> + '_ {
        self.layer_mbr.keys().copied()
    }
}

/// A leaf polygon instantiated into top-level coordinates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlatPolygon {
    /// The cell the polygon was defined in.
    pub cell: CellId,
    /// Index into that cell's polygon list.
    pub index: usize,
    /// The geometry in top-level coordinates.
    pub polygon: Polygon,
}

/// A direct placement under the top cell, the unit of the adaptive
/// row-based partition (§IV-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Placement {
    /// The placed cell.
    pub cell: CellId,
    /// Its transform into top-level coordinates.
    pub transform: Transform,
}

/// Per-layer polygon counts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LayerStats {
    /// The layer number.
    pub layer: Layer,
    /// Polygons in cell definitions (each counted once).
    pub defined_polygons: usize,
    /// Polygons after hierarchy expansion.
    pub instantiated_polygons: usize,
}

/// Summary statistics of a layout, as printed by the CLI.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LayoutStats {
    /// Number of cell definitions.
    pub cells: usize,
    /// Direct placements under the top cell.
    pub top_placements: usize,
    /// Per-layer counts, ascending by layer.
    pub per_layer: Vec<LayerStats>,
}

impl std::fmt::Display for LayoutStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "{} cells, {} top placements",
            self.cells, self.top_placements
        )?;
        for l in &self.per_layer {
            writeln!(
                f,
                "  layer {:>5}: {:>8} defined, {:>10} instantiated",
                l.layer, l.defined_polygons, l.instantiated_polygons
            )?;
        }
        Ok(())
    }
}

/// The hierarchical layout database.
///
/// Constructed from a GDSII library via [`Layout::from_library`]; see
/// the [crate-level example](crate).
#[derive(Debug, Clone)]
pub struct Layout {
    cells: Vec<Cell>,
    top: CellId,
    /// Per-layer element-level inverted index: every leaf polygon of the
    /// layer as `(cell, polygon index)`.
    inverted: BTreeMap<Layer, Vec<(CellId, usize)>>,
    /// Per-layer hierarchy membership: cells whose subtree contains the
    /// layer (the "duplicated" per-layer hierarchy trees of §IV-A).
    layer_cells: BTreeMap<Layer, Vec<CellId>>,
}

impl Layout {
    /// The root cell of the hierarchy.
    #[inline]
    pub fn top(&self) -> CellId {
        self.top
    }

    /// Looks up a cell by id.
    ///
    /// # Panics
    ///
    /// Panics if the id belongs to a different layout.
    #[inline]
    pub fn cell(&self, id: CellId) -> &Cell {
        &self.cells[id.index()]
    }

    /// All cells, in definition order.
    #[inline]
    pub fn cells(&self) -> &[Cell] {
        &self.cells
    }

    /// Number of cells.
    #[inline]
    pub fn cell_count(&self) -> usize {
        self.cells.len()
    }

    /// All cell ids, in definition order.
    pub fn cell_ids(&self) -> impl Iterator<Item = CellId> + '_ {
        (0..self.cells.len()).map(|i| CellId(i as u32))
    }

    /// Finds a cell by name.
    pub fn cell_by_name(&self, name: &str) -> Option<CellId> {
        self.cells
            .iter()
            .position(|c| c.name == name)
            .map(|i| CellId(i as u32))
    }

    /// Layers present anywhere in the layout, ascending.
    pub fn layers(&self) -> Vec<Layer> {
        self.inverted.keys().copied().collect()
    }

    /// The element-level inverted index for a layer: every leaf polygon
    /// as `(cell, polygon index)` (§IV-A "inverted indices").
    pub fn layer_polygons(&self, layer: Layer) -> &[(CellId, usize)] {
        self.inverted.get(&layer).map(Vec::as_slice).unwrap_or(&[])
    }

    /// The cells whose subtree contains `layer` — the membership of the
    /// per-layer duplicated hierarchy tree (§IV-A).
    pub fn cells_with_layer(&self, layer: Layer) -> &[CellId] {
        self.layer_cells
            .get(&layer)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Summary statistics of the layout.
    pub fn stats(&self) -> LayoutStats {
        let mut per_layer = Vec::new();
        for layer in self.layers() {
            per_layer.push(LayerStats {
                layer,
                defined_polygons: self.layer_polygons(layer).len(),
                instantiated_polygons: self.instance_count(layer),
            });
        }
        LayoutStats {
            cells: self.cell_count(),
            top_placements: self.cell(self.top).refs().len(),
            per_layer,
        }
    }

    /// Direct placements under the top cell (the partition unit).
    pub fn top_placements(&self) -> Vec<Placement> {
        self.cell(self.top)
            .refs()
            .iter()
            .map(|r| Placement {
                cell: r.cell,
                transform: r.transform,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use odrc_gdsii::{Element, Library, Structure};
    use odrc_geometry::Point;

    fn unit_square_lib() -> Library {
        let mut lib = Library::new("t");
        let mut cell = Structure::new("UNIT");
        cell.elements.push(Element::boundary(
            1,
            vec![
                Point::new(0, 0),
                Point::new(0, 10),
                Point::new(10, 10),
                Point::new(10, 0),
            ],
        ));
        lib.structures.push(cell);
        let mut top = Structure::new("TOP");
        top.elements.push(Element::sref("UNIT", Point::new(0, 0)));
        top.elements.push(Element::sref("UNIT", Point::new(50, 20)));
        lib.structures.push(top);
        lib
    }

    #[test]
    fn cell_accessors() {
        let layout = Layout::from_library(&unit_square_lib()).unwrap();
        let top = layout.cell(layout.top());
        assert_eq!(top.name(), "TOP");
        assert_eq!(top.refs().len(), 2);
        assert!(!top.is_leaf());
        let unit = layout.cell(layout.cell_by_name("UNIT").unwrap());
        assert!(unit.is_leaf());
        assert_eq!(unit.polygons().len(), 1);
        assert_eq!(unit.polygons_on(1).count(), 1);
        assert_eq!(unit.polygons_on(2).count(), 0);
        assert_eq!(unit.layers().collect::<Vec<_>>(), vec![1]);
    }

    #[test]
    fn layer_mbr_aggregates_subtree() {
        let layout = Layout::from_library(&unit_square_lib()).unwrap();
        let top = layout.cell(layout.top());
        assert_eq!(top.layer_mbr(1), Some(Rect::from_coords(0, 0, 60, 30)));
        assert_eq!(top.layer_mbr(2), None);
        assert_eq!(top.mbr(), Some(Rect::from_coords(0, 0, 60, 30)));
    }

    #[test]
    fn inverted_index_lists_leaves() {
        let layout = Layout::from_library(&unit_square_lib()).unwrap();
        let unit = layout.cell_by_name("UNIT").unwrap();
        assert_eq!(layout.layer_polygons(1), &[(unit, 0)]);
        assert!(layout.layer_polygons(9).is_empty());
        assert_eq!(layout.layers(), vec![1]);
    }

    #[test]
    fn layer_cells_membership() {
        let layout = Layout::from_library(&unit_square_lib()).unwrap();
        let unit = layout.cell_by_name("UNIT").unwrap();
        let cells = layout.cells_with_layer(1);
        assert!(cells.contains(&unit));
        assert!(cells.contains(&layout.top()));
        assert!(layout.cells_with_layer(5).is_empty());
    }

    #[test]
    fn stats_summarize_layout() {
        let layout = Layout::from_library(&unit_square_lib()).unwrap();
        let stats = layout.stats();
        assert_eq!(stats.cells, 2);
        assert_eq!(stats.top_placements, 2);
        assert_eq!(stats.per_layer.len(), 1);
        assert_eq!(stats.per_layer[0].layer, 1);
        assert_eq!(stats.per_layer[0].defined_polygons, 1);
        assert_eq!(stats.per_layer[0].instantiated_polygons, 2);
        let text = stats.to_string();
        assert!(text.contains("2 cells"));
        assert!(text.contains("layer     1"));
    }

    #[test]
    fn top_placements_enumerated() {
        let layout = Layout::from_library(&unit_square_lib()).unwrap();
        let placements = layout.top_placements();
        assert_eq!(placements.len(), 2);
        assert_eq!(placements[1].transform.translate(), Point::new(50, 20));
    }
}
