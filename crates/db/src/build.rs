//! Conversion from a GDSII library into the layout database.

use std::collections::{BTreeMap, HashMap};
use std::fmt;

use odrc_gdsii::{Element, Library, PathElement, Structure, TransformError};
#[cfg(test)]
use odrc_geometry::Point;
use odrc_geometry::{Polygon, PolygonError, Rect, Transform};

use crate::{Cell, CellId, CellRef, Layer, LayerPolygon, Layout};

/// Error importing a GDSII library into the database.
#[derive(Debug)]
pub enum DbError {
    /// The library defines no structures.
    EmptyLibrary,
    /// Two structures share a name.
    DuplicateStructure {
        /// The duplicated name.
        name: String,
    },
    /// A reference names a structure that does not exist.
    UnknownStructure {
        /// The referencing structure.
        referrer: String,
        /// The missing name.
        name: String,
    },
    /// The reference graph contains a cycle (infinite hierarchy).
    CircularReference {
        /// A structure on the cycle.
        name: String,
    },
    /// A boundary's vertices are not a valid rectilinear polygon.
    InvalidPolygon {
        /// The containing structure.
        cell: String,
        /// Element index within the structure.
        index: usize,
        /// The underlying validation failure.
        source: PolygonError,
    },
    /// A reference uses an angle or magnification the engine cannot
    /// represent exactly.
    UnsupportedTransform {
        /// The containing structure.
        cell: String,
        /// The underlying failure.
        source: TransformError,
    },
    /// A path uses round end caps or a non-positive width.
    UnsupportedPath {
        /// The containing structure.
        cell: String,
        /// Element index within the structure.
        index: usize,
    },
    /// The library has no top structure (everything is referenced).
    NoTopStructure,
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::EmptyLibrary => write!(f, "library defines no structures"),
            DbError::DuplicateStructure { name } => {
                write!(f, "structure '{name}' is defined more than once")
            }
            DbError::UnknownStructure { referrer, name } => {
                write!(
                    f,
                    "structure '{referrer}' references unknown structure '{name}'"
                )
            }
            DbError::CircularReference { name } => {
                write!(f, "structure '{name}' participates in a reference cycle")
            }
            DbError::InvalidPolygon {
                cell,
                index,
                source,
            } => write!(f, "invalid polygon in '{cell}' element {index}: {source}"),
            DbError::UnsupportedTransform { cell, source } => {
                write!(f, "unsupported transform in '{cell}': {source}")
            }
            DbError::UnsupportedPath { cell, index } => {
                write!(f, "unsupported path in '{cell}' element {index}")
            }
            DbError::NoTopStructure => write!(f, "library has no unreferenced top structure"),
        }
    }
}

impl std::error::Error for DbError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DbError::InvalidPolygon { source, .. } => Some(source),
            DbError::UnsupportedTransform { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl Layout {
    /// Imports a GDSII library.
    ///
    /// The hierarchy is preserved — references become [`CellRef`]s
    /// holding cell ids, not copies (§IV-A). Array references are
    /// expanded into their individual instance transforms. Paths are
    /// converted to per-segment rectangle polygons. Text elements carry
    /// no mask geometry and are skipped. When the library has several
    /// top-level structures, the first in stream order becomes the root.
    ///
    /// After loading, per-layer subtree MBRs and the layer indices are
    /// computed bottom-up.
    ///
    /// # Errors
    ///
    /// Returns [`DbError`] for structural problems: duplicate or missing
    /// structure names, reference cycles, invalid polygons, transforms
    /// the integer engine cannot represent (non-quarter-turn rotations,
    /// fractional magnification), or unsupported path styles.
    pub fn from_library(lib: &Library) -> Result<Layout, DbError> {
        if lib.structures.is_empty() {
            return Err(DbError::EmptyLibrary);
        }
        let mut builder = LayoutBuilder::new();
        for s in &lib.structures {
            builder.add_structure(s)?;
        }
        builder.finish()
    }

    /// Imports a GDSII library with an explicitly chosen top structure
    /// instead of the largest-unreferenced-subtree heuristic.
    ///
    /// Used when rebuilding an edited layout, where the design root is
    /// known and must not drift as edits change subtree sizes.
    ///
    /// # Errors
    ///
    /// Same as [`Layout::from_library`], plus
    /// [`DbError::NoTopStructure`] if `top` names no structure.
    pub fn from_library_with_top(lib: &Library, top: &str) -> Result<Layout, DbError> {
        let mut layout = Layout::from_library(lib)?;
        let id = layout.cell_by_name(top).ok_or(DbError::NoTopStructure)?;
        layout.top = id;
        Ok(layout)
    }
}

/// Incremental [`Layout`] construction for streaming import.
///
/// Unlike [`Layout::from_library`], which needs the whole
/// [`Library`] in memory, the builder accepts one [`Structure`] at a
/// time — each is converted to a [`Cell`] immediately and can be
/// dropped by the caller — so the peak footprint of an out-of-core
/// load is one structure plus the growing layout, never the full
/// element model. References are recorded by name and resolved in
/// [`LayoutBuilder::finish`], so forward references work in any feed
/// order.
///
/// # Examples
///
/// ```
/// use odrc_db::{Layout, LayoutBuilder};
/// use odrc_gdsii::{Element, Structure};
/// use odrc_geometry::Point;
///
/// let mut b = LayoutBuilder::new();
/// let mut s = Structure::new("TOP");
/// s.elements.push(Element::boundary(
///     1,
///     vec![
///         Point::new(0, 0),
///         Point::new(0, 4),
///         Point::new(4, 4),
///         Point::new(4, 0),
///     ],
/// ));
/// b.add_structure(&s)?;
/// drop(s); // the structure is no longer needed
/// let layout = b.finish()?;
/// assert_eq!(layout.cell(layout.top()).name(), "TOP");
/// # Ok::<(), odrc_db::DbError>(())
/// ```
#[derive(Default)]
pub struct LayoutBuilder {
    ids: HashMap<String, CellId>,
    cells: Vec<Cell>,
    /// Per-cell references awaiting name resolution, in element order.
    pending: Vec<Vec<(String, Vec<Transform>)>>,
}

impl LayoutBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        LayoutBuilder::default()
    }

    /// Converts one structure into a cell.
    ///
    /// # Errors
    ///
    /// Returns [`DbError`] for a duplicate structure name, an invalid
    /// polygon, an unsupported transform, or an unsupported path —
    /// the same element-level validations as [`Layout::from_library`].
    pub fn add_structure(&mut self, s: &Structure) -> Result<(), DbError> {
        if self.ids.contains_key(&s.name) {
            return Err(DbError::DuplicateStructure {
                name: s.name.clone(),
            });
        }
        let mut polygons = Vec::new();
        let mut pending: Vec<(String, Vec<Transform>)> = Vec::new();
        for (ei, e) in s.elements.iter().enumerate() {
            match e {
                Element::Boundary(b) => {
                    let polygon = Polygon::new(b.points.clone()).map_err(|source| {
                        DbError::InvalidPolygon {
                            cell: s.name.clone(),
                            index: ei,
                            source,
                        }
                    })?;
                    let name = b
                        .properties
                        .iter()
                        .find(|(attr, _)| *attr == 1)
                        .map(|(_, v)| v.clone());
                    polygons.push(LayerPolygon {
                        layer: b.layer,
                        datatype: b.datatype,
                        polygon,
                        name,
                    });
                }
                Element::Path(p) => {
                    for polygon in path_to_polygons(p).ok_or(DbError::UnsupportedPath {
                        cell: s.name.clone(),
                        index: ei,
                    })? {
                        polygons.push(LayerPolygon {
                            layer: p.layer,
                            datatype: p.datatype,
                            polygon,
                            name: None,
                        });
                    }
                }
                Element::Text(_) => {}
                Element::Ref(r) => {
                    let transforms = r.instance_transforms().map_err(|source| {
                        DbError::UnsupportedTransform {
                            cell: s.name.clone(),
                            source,
                        }
                    })?;
                    // Magnification breaks the isometry invariant that
                    // hierarchical check-result reuse (§IV-C) depends
                    // on: a cell's cached verdicts are only valid for
                    // distance- and area-preserving placements.
                    // Standard-cell layouts never magnify; reject
                    // rather than silently mis-check.
                    if let Some(t) = transforms.iter().find(|t| !t.is_isometry()) {
                        return Err(DbError::UnsupportedTransform {
                            cell: s.name.clone(),
                            source: odrc_gdsii::TransformError::UnsupportedMag {
                                mag: f64::from(t.mag()),
                            },
                        });
                    }
                    pending.push((r.sname.clone(), transforms));
                }
            }
        }
        self.ids
            .insert(s.name.clone(), CellId(self.cells.len() as u32));
        self.pending.push(pending);
        self.cells.push(Cell {
            name: s.name.clone(),
            polygons,
            refs: Vec::new(),
            layer_mbr: BTreeMap::new(),
            mbr: None,
        });
        Ok(())
    }

    /// Resolves references and finishes the layout: topological order,
    /// bottom-up subtree MBRs, top-cell selection, and layer indices.
    ///
    /// # Errors
    ///
    /// Returns [`DbError`] when no structure was added, a reference
    /// names an unknown structure, the reference graph has a cycle, or
    /// no structure is unreferenced.
    pub fn finish(self) -> Result<Layout, DbError> {
        let LayoutBuilder {
            ids,
            mut cells,
            pending,
        } = self;
        if cells.is_empty() {
            return Err(DbError::EmptyLibrary);
        }
        for (ci, refs_by_name) in pending.into_iter().enumerate() {
            let mut refs = Vec::new();
            for (name, transforms) in refs_by_name {
                let cell = *ids.get(&name).ok_or_else(|| DbError::UnknownStructure {
                    referrer: cells[ci].name.clone(),
                    name,
                })?;
                refs.extend(
                    transforms
                        .into_iter()
                        .map(|transform| CellRef { cell, transform }),
                );
            }
            cells[ci].refs = refs;
        }
        finish_cells(cells)
    }
}

/// Shared tail of layout construction over fully-resolved cells.
fn finish_cells(mut cells: Vec<Cell>) -> Result<Layout, DbError> {
    // Topological order (children before parents) + cycle check.
    let order = topo_order(&cells)?;

    // Bottom-up layer MBRs.
    for &ci in &order {
        let mut layer_mbr: BTreeMap<Layer, Rect> = BTreeMap::new();
        for p in &cells[ci].polygons {
            let mbr = p.polygon.mbr();
            layer_mbr
                .entry(p.layer)
                .and_modify(|r| *r = r.hull(mbr))
                .or_insert(mbr);
        }
        // Children are already computed thanks to topological order.
        let child_boxes: Vec<(Layer, Rect)> = cells[ci]
            .refs
            .iter()
            .flat_map(|r| {
                let child = &cells[r.cell.index()];
                child
                    .layer_mbr
                    .iter()
                    .map(|(&l, &m)| (l, r.transform.apply_rect(m)))
                    .collect::<Vec<_>>()
            })
            .collect();
        for (l, m) in child_boxes {
            layer_mbr
                .entry(l)
                .and_modify(|r| *r = r.hull(m))
                .or_insert(m);
        }
        let mbr = layer_mbr.values().copied().reduce(|a, b| a.hull(b));
        cells[ci].layer_mbr = layer_mbr;
        cells[ci].mbr = mbr;
    }

    // Pick the top: among unreferenced structures, the one with the
    // largest expanded subtree (libraries often carry unused spare
    // cells which must not shadow the real design root); ties go to
    // stream order.
    let mut referenced = vec![false; cells.len()];
    for c in &cells {
        for r in &c.refs {
            referenced[r.cell.index()] = true;
        }
    }
    let mut subtree_size = vec![0usize; cells.len()];
    for &ci in &order {
        // Children precede parents in `order`.
        subtree_size[ci] = cells[ci].polygons.len()
            + cells[ci]
                .refs
                .iter()
                .map(|r| subtree_size[r.cell.index()])
                .sum::<usize>();
    }
    let top = (0..cells.len())
        .filter(|&i| !referenced[i])
        .max_by(|&a, &b| {
            subtree_size[a].cmp(&subtree_size[b]).then(b.cmp(&a)) // prefer earlier stream order on ties
        })
        .map(|i| CellId(i as u32))
        .ok_or(DbError::NoTopStructure)?;

    // Layer indices.
    let mut inverted: BTreeMap<Layer, Vec<(CellId, usize)>> = BTreeMap::new();
    for (ci, c) in cells.iter().enumerate() {
        for (pi, p) in c.polygons.iter().enumerate() {
            inverted
                .entry(p.layer)
                .or_default()
                .push((CellId(ci as u32), pi));
        }
    }
    let mut layer_cells: BTreeMap<Layer, Vec<CellId>> = BTreeMap::new();
    for (ci, c) in cells.iter().enumerate() {
        for &l in c.layer_mbr.keys() {
            layer_cells.entry(l).or_default().push(CellId(ci as u32));
        }
    }

    Ok(Layout {
        cells,
        top,
        inverted,
        layer_cells,
    })
}

/// Children-before-parents order over the reference DAG.
pub(crate) fn topo_order(cells: &[Cell]) -> Result<Vec<usize>, DbError> {
    #[derive(Clone, Copy, PartialEq)]
    enum Mark {
        White,
        Gray,
        Black,
    }
    let mut marks = vec![Mark::White; cells.len()];
    let mut order = Vec::with_capacity(cells.len());

    // Iterative DFS with an explicit stack to survive deep hierarchies.
    for start in 0..cells.len() {
        if marks[start] != Mark::White {
            continue;
        }
        let mut stack: Vec<(usize, usize)> = vec![(start, 0)];
        marks[start] = Mark::Gray;
        while let Some(&mut (node, ref mut next)) = stack.last_mut() {
            let refs = &cells[node].refs;
            if *next < refs.len() {
                let child = refs[*next].cell.index();
                *next += 1;
                match marks[child] {
                    Mark::White => {
                        marks[child] = Mark::Gray;
                        stack.push((child, 0));
                    }
                    Mark::Gray => {
                        return Err(DbError::CircularReference {
                            name: cells[child].name.clone(),
                        });
                    }
                    Mark::Black => {}
                }
            } else {
                marks[node] = Mark::Black;
                order.push(node);
                stack.pop();
            }
        }
    }
    Ok(order)
}

/// Expands an axis-aligned path into per-segment rectangles.
///
/// Returns `None` for unsupported paths: round caps (`pathtype == 1`),
/// non-positive width, odd width (which would not center exactly on the
/// integer grid), or diagonal segments.
fn path_to_polygons(p: &PathElement) -> Option<Vec<Polygon>> {
    if p.path_type == 1 || p.width <= 0 || p.width % 2 != 0 {
        return None;
    }
    let half = p.width / 2;
    let extend = if p.path_type == 2 { half } else { 0 };
    let mut out = Vec::with_capacity(p.points.len().saturating_sub(1));
    for w in p.points.windows(2) {
        let (a, b) = (w[0], w[1]);
        if a.x != b.x && a.y != b.y {
            return None; // diagonal segment
        }
        if a == b {
            return None; // degenerate segment
        }
        let rect = if a.x == b.x {
            // Vertical segment.
            let (lo, hi) = if a.y < b.y { (a.y, b.y) } else { (b.y, a.y) };
            Rect::from_coords(a.x - half, lo - extend, a.x + half, hi + extend)
        } else {
            let (lo, hi) = if a.x < b.x { (a.x, b.x) } else { (b.x, a.x) };
            Rect::from_coords(lo - extend, a.y - half, hi + extend, a.y + half)
        };
        out.push(Polygon::rect(rect));
    }
    if out.is_empty() {
        return None;
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use odrc_gdsii::{BoundaryElement, Element, Library, RefElement, Structure};

    fn p(x: i32, y: i32) -> Point {
        Point::new(x, y)
    }

    fn square(layer: i16) -> Element {
        Element::boundary(layer, vec![p(0, 0), p(0, 10), p(10, 10), p(10, 0)])
    }

    #[test]
    fn empty_library_rejected() {
        assert!(matches!(
            Layout::from_library(&Library::new("x")),
            Err(DbError::EmptyLibrary)
        ));
    }

    #[test]
    fn duplicate_structure_rejected() {
        let mut lib = Library::new("x");
        lib.structures.push(Structure::new("A"));
        lib.structures.push(Structure::new("A"));
        assert!(matches!(
            Layout::from_library(&lib),
            Err(DbError::DuplicateStructure { .. })
        ));
    }

    #[test]
    fn unknown_reference_rejected() {
        let mut lib = Library::new("x");
        let mut s = Structure::new("A");
        s.elements.push(Element::sref("MISSING", p(0, 0)));
        lib.structures.push(s);
        match Layout::from_library(&lib) {
            Err(DbError::UnknownStructure { referrer, name }) => {
                assert_eq!(referrer, "A");
                assert_eq!(name, "MISSING");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn reference_cycle_rejected() {
        let mut lib = Library::new("x");
        let mut a = Structure::new("A");
        a.elements.push(Element::sref("B", p(0, 0)));
        let mut b = Structure::new("B");
        b.elements.push(Element::sref("A", p(0, 0)));
        lib.structures.push(a);
        lib.structures.push(b);
        assert!(matches!(
            Layout::from_library(&lib),
            Err(DbError::CircularReference { .. })
        ));
    }

    #[test]
    fn self_reference_rejected() {
        let mut lib = Library::new("x");
        let mut a = Structure::new("A");
        a.elements.push(Element::sref("A", p(0, 0)));
        lib.structures.push(a);
        assert!(matches!(
            Layout::from_library(&lib),
            Err(DbError::CircularReference { .. })
        ));
    }

    #[test]
    fn invalid_polygon_reported_with_location() {
        let mut lib = Library::new("x");
        let mut s = Structure::new("BAD");
        s.elements.push(Element::boundary(
            1,
            vec![p(0, 0), p(5, 5), p(5, 0), p(0, 5)],
        ));
        lib.structures.push(s);
        match Layout::from_library(&lib) {
            Err(DbError::InvalidPolygon { cell, index, .. }) => {
                assert_eq!(cell, "BAD");
                assert_eq!(index, 0);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn unsupported_angle_reported() {
        let mut lib = Library::new("x");
        lib.structures.push(Structure::new("LEAF"));
        let mut top = Structure::new("TOP");
        let mut r = RefElement::sref("LEAF", p(0, 0));
        r.angle_deg = 30.0;
        top.elements.push(Element::Ref(r));
        lib.structures.push(top);
        assert!(matches!(
            Layout::from_library(&lib),
            Err(DbError::UnsupportedTransform { .. })
        ));
    }

    #[test]
    fn magnified_reference_rejected() {
        // mag != 1 would invalidate hierarchical check-result reuse.
        let mut lib = Library::new("x");
        let mut leaf = Structure::new("LEAF");
        leaf.elements.push(square(1));
        lib.structures.push(leaf);
        let mut top = Structure::new("TOP");
        let mut r = RefElement::sref("LEAF", p(0, 0));
        r.mag = 2.0;
        top.elements.push(Element::Ref(r));
        lib.structures.push(top);
        assert!(matches!(
            Layout::from_library(&lib),
            Err(DbError::UnsupportedTransform { .. })
        ));
    }

    #[test]
    fn aref_expansion_creates_refs() {
        let mut lib = Library::new("x");
        let mut leaf = Structure::new("LEAF");
        leaf.elements.push(square(3));
        lib.structures.push(leaf);
        let mut top = Structure::new("TOP");
        let mut r = RefElement::sref("LEAF", p(0, 0));
        r.array = Some(odrc_gdsii::model::ArrayParams {
            cols: 5,
            rows: 2,
            col_step: p(20, 0),
            row_step: p(0, 30),
        });
        top.elements.push(Element::Ref(r));
        lib.structures.push(top);
        let layout = Layout::from_library(&lib).unwrap();
        assert_eq!(layout.cell(layout.top()).refs().len(), 10);
        // MBR covers the whole array: x up to 4*20+10, y up to 30+10.
        assert_eq!(
            layout.cell(layout.top()).layer_mbr(3),
            Some(Rect::from_coords(0, 0, 90, 40))
        );
    }

    #[test]
    fn path_converted_to_rectangles() {
        let mut lib = Library::new("x");
        let mut s = Structure::new("WIRE");
        s.elements.push(Element::Path(PathElement {
            layer: 7,
            datatype: 0,
            path_type: 0,
            width: 4,
            points: vec![p(0, 0), p(20, 0), p(20, 30)],
            properties: vec![],
        }));
        lib.structures.push(s);
        let layout = Layout::from_library(&lib).unwrap();
        let cell = layout.cell(layout.top());
        assert_eq!(cell.polygons().len(), 2);
        assert_eq!(
            cell.polygons()[0].polygon.mbr(),
            Rect::from_coords(0, -2, 20, 2)
        );
        assert_eq!(
            cell.polygons()[1].polygon.mbr(),
            Rect::from_coords(18, 0, 22, 30)
        );
    }

    #[test]
    fn extended_caps_grow_segments() {
        let mut lib = Library::new("x");
        let mut s = Structure::new("WIRE");
        s.elements.push(Element::Path(PathElement {
            layer: 7,
            datatype: 0,
            path_type: 2,
            width: 4,
            points: vec![p(0, 0), p(20, 0)],
            properties: vec![],
        }));
        lib.structures.push(s);
        let layout = Layout::from_library(&lib).unwrap();
        assert_eq!(
            layout.cell(layout.top()).polygons()[0].polygon.mbr(),
            Rect::from_coords(-2, -2, 22, 2)
        );
    }

    #[test]
    fn round_caps_rejected() {
        let mut lib = Library::new("x");
        let mut s = Structure::new("WIRE");
        s.elements.push(Element::Path(PathElement {
            layer: 7,
            datatype: 0,
            path_type: 1,
            width: 4,
            points: vec![p(0, 0), p(20, 0)],
            properties: vec![],
        }));
        lib.structures.push(s);
        assert!(matches!(
            Layout::from_library(&lib),
            Err(DbError::UnsupportedPath { .. })
        ));
    }

    #[test]
    fn property_one_becomes_name() {
        let mut lib = Library::new("x");
        let mut s = Structure::new("S");
        s.elements.push(Element::Boundary(BoundaryElement {
            layer: 1,
            datatype: 0,
            points: vec![p(0, 0), p(0, 4), p(4, 4), p(4, 0)],
            properties: vec![(2, "other".into()), (1, "net42".into())],
        }));
        lib.structures.push(s);
        let layout = Layout::from_library(&lib).unwrap();
        assert_eq!(
            layout.cell(layout.top()).polygons()[0].name.as_deref(),
            Some("net42")
        );
    }

    #[test]
    fn deep_hierarchy_mbrs_compose() {
        // TOP -> MID (rotated 90, at (100, 0)) -> LEAF (at (10, 20)).
        let mut lib = Library::new("x");
        let mut leaf = Structure::new("LEAF");
        leaf.elements.push(square(1));
        lib.structures.push(leaf);
        let mut mid = Structure::new("MID");
        mid.elements.push(Element::sref("LEAF", p(10, 20)));
        lib.structures.push(mid);
        let mut top = Structure::new("TOP");
        let mut r = RefElement::sref("MID", p(100, 0));
        r.angle_deg = 90.0;
        top.elements.push(Element::Ref(r));
        lib.structures.push(top);

        let layout = Layout::from_library(&lib).unwrap();
        // LEAF local MBR [0,0,10,10]; in MID: [10,20,20,30]; R90 about
        // origin then +(100,0): [(-30,10),(-20,20)] + (100,0) = [70,10,80,20].
        assert_eq!(
            layout.cell(layout.top()).layer_mbr(1),
            Some(Rect::from_coords(70, 10, 80, 20))
        );
    }

    #[test]
    fn first_unreferenced_structure_is_top() {
        let mut lib = Library::new("x");
        let mut a = Structure::new("A");
        a.elements.push(square(1));
        lib.structures.push(a); // unreferenced, first in order
        let mut b = Structure::new("B");
        b.elements.push(square(1));
        lib.structures.push(b); // unreferenced too
        let layout = Layout::from_library(&lib).unwrap();
        assert_eq!(layout.cell(layout.top()).name(), "A");
    }
}
