//! Export of a [`Layout`] back into a GDSII [`Library`].
//!
//! The inverse of [`Layout::from_library`], up to the lossy steps of
//! the import (paths become boundary rectangles, arrays are expanded
//! into individual `SREF`s, text elements are dropped). Re-importing
//! the exported library reproduces the same cells, geometry, and
//! indices, which is what the edit-layer consistency checks rely on.

use odrc_gdsii::{BoundaryElement, Element, Library, RefElement, Structure};

use crate::Layout;

impl Layout {
    /// Serializes the layout into a GDSII library named `name`.
    ///
    /// Structures are emitted in cell-id order, so a round trip through
    /// [`Layout::from_library`] assigns every cell the same id.
    pub fn to_library(&self, name: &str) -> Library {
        let mut lib = Library::new(name);
        for cell in &self.cells {
            let mut s = Structure::new(cell.name());
            for p in cell.polygons() {
                let mut properties = Vec::new();
                if let Some(n) = &p.name {
                    properties.push((1i16, n.clone()));
                }
                s.elements.push(Element::Boundary(BoundaryElement {
                    layer: p.layer,
                    datatype: p.datatype,
                    points: p.polygon.vertices().to_vec(),
                    properties,
                }));
            }
            for r in cell.refs() {
                let t = &r.transform;
                let mut el = RefElement::sref(self.cell(r.cell).name(), t.translate());
                el.mirror_x = t.mirror_x();
                el.angle_deg = f64::from(t.rotation().quarter_turns()) * 90.0;
                el.mag = f64::from(t.mag());
                s.elements.push(Element::Ref(el));
            }
            lib.structures.push(s);
        }
        lib
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use odrc_geometry::Point;

    #[test]
    fn roundtrip_preserves_cells_and_indices() {
        let mut lib = Library::new("t");
        let mut unit = Structure::new("UNIT");
        unit.elements.push(Element::boundary(
            1,
            vec![
                Point::new(0, 0),
                Point::new(0, 10),
                Point::new(10, 10),
                Point::new(10, 0),
            ],
        ));
        lib.structures.push(unit);
        let mut top = Structure::new("TOP");
        let mut r = RefElement::sref("UNIT", Point::new(50, 20));
        r.angle_deg = 90.0;
        r.mirror_x = true;
        top.elements.push(Element::Ref(r));
        top.elements.push(Element::sref("UNIT", Point::new(0, 0)));
        lib.structures.push(top);

        let layout = Layout::from_library(&lib).unwrap();
        let exported = layout.to_library("t");
        let again = Layout::from_library(&exported).unwrap();

        assert_eq!(layout.cell_count(), again.cell_count());
        assert_eq!(layout.top(), again.top());
        for (a, b) in layout.cells().iter().zip(again.cells()) {
            assert_eq!(a.name(), b.name());
            assert_eq!(a.polygons(), b.polygons());
            assert_eq!(a.refs(), b.refs());
            assert_eq!(a.mbr(), b.mbr());
        }
        assert_eq!(layout.layers(), again.layers());
        for layer in layout.layers() {
            assert_eq!(layout.layer_polygons(layer), again.layer_polygons(layer));
            assert_eq!(
                layout.cells_with_layer(layer),
                again.cells_with_layer(layer)
            );
        }
    }
}
