//! Hierarchical queries over the layout database.
//!
//! The layer range query of §IV-A descends the hierarchy tree from the
//! root and "prunes the whole subtree rooted at an element if its MBR
//! for the interested layer is empty" (or disjoint from the query
//! window), reducing the complexity from `O(n)` to `O(min(n, kh))`.

use odrc_geometry::{Polygon, Rect, Transform};

use crate::{CellId, FlatPolygon, Layer, Layout};

impl Layout {
    /// Visits every leaf polygon of `layer` whose MBR intersects
    /// `window`, instantiated into top-level coordinates.
    ///
    /// Subtrees whose layer MBR is absent or disjoint from the window
    /// are pruned without being visited.
    pub fn layer_query<F>(&self, layer: Layer, window: Rect, mut visit: F)
    where
        F: FnMut(FlatPolygon),
    {
        self.layer_query_in(self.top(), Transform::IDENTITY, layer, window, &mut visit);
    }

    fn layer_query_in<F>(
        &self,
        cell: CellId,
        transform: Transform,
        layer: Layer,
        window: Rect,
        visit: &mut F,
    ) where
        F: FnMut(FlatPolygon),
    {
        let c = self.cell(cell);
        // Prune on the subtree's layer MBR.
        match c.layer_mbr(layer) {
            None => return,
            Some(mbr) => {
                if !transform.apply_rect(mbr).overlaps(window) {
                    return;
                }
            }
        }
        for (pi, p) in c.polygons.iter().enumerate() {
            if p.layer != layer {
                continue;
            }
            let mbr = transform.apply_rect(p.polygon.mbr());
            if mbr.overlaps(window) {
                visit(FlatPolygon {
                    cell,
                    index: pi,
                    polygon: transform.apply_polygon(&p.polygon),
                });
            }
        }
        for r in &c.refs {
            self.layer_query_in(r.cell, r.transform.then(&transform), layer, window, visit);
        }
    }

    /// Instantiates every polygon of `layer` into top-level coordinates
    /// (a full flatten of one layer).
    pub fn flatten_layer(&self, layer: Layer) -> Vec<FlatPolygon> {
        let mut out = Vec::new();
        self.collect_layer_polygons(self.top(), Transform::IDENTITY, layer, &mut out);
        out
    }

    /// Collects the polygons of `layer` under `cell`, transformed by
    /// `base`, appending to `out`. This is the flattening primitive the
    /// engine's check executors use to pack edges for a subtree.
    pub fn collect_layer_polygons(
        &self,
        cell: CellId,
        base: Transform,
        layer: Layer,
        out: &mut Vec<FlatPolygon>,
    ) {
        let c = self.cell(cell);
        if c.layer_mbr(layer).is_none() {
            return; // layer-wise pruning
        }
        for (pi, p) in c.polygons.iter().enumerate() {
            if p.layer == layer {
                out.push(FlatPolygon {
                    cell,
                    index: pi,
                    polygon: base.apply_polygon(&p.polygon),
                });
            }
        }
        for r in &c.refs {
            self.collect_layer_polygons(r.cell, r.transform.then(&base), layer, out);
        }
    }

    /// Collects just the *geometry* of `layer` under `cell` (no
    /// provenance), for baseline checkers that flatten everything.
    pub fn flatten_layer_polygons(&self, layer: Layer) -> Vec<Polygon> {
        self.flatten_layer(layer)
            .into_iter()
            .map(|f| f.polygon)
            .collect()
    }

    /// Total number of instantiated polygons on a layer (with the
    /// hierarchy expanded), without materializing them.
    pub fn instance_count(&self, layer: Layer) -> usize {
        fn rec(layout: &Layout, cell: CellId, layer: Layer) -> usize {
            let c = layout.cell(cell);
            if c.layer_mbr(layer).is_none() {
                return 0;
            }
            let own = c.polygons_on(layer).count();
            own + c
                .refs()
                .iter()
                .map(|r| rec(layout, r.cell, layer))
                .sum::<usize>()
        }
        rec(self, self.top(), layer)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use odrc_gdsii::{Element, Library, RefElement, Structure};
    use odrc_geometry::Point;

    fn p(x: i32, y: i32) -> Point {
        Point::new(x, y)
    }

    /// TOP places UNIT (one layer-1 square and one layer-2 square) at
    /// four spots; UNIT nests a SUB holding the layer-2 square.
    fn layout() -> Layout {
        let mut lib = Library::new("t");
        let mut sub = Structure::new("SUB");
        sub.elements.push(Element::boundary(
            2,
            vec![p(0, 0), p(0, 4), p(4, 4), p(4, 0)],
        ));
        lib.structures.push(sub);
        let mut unit = Structure::new("UNIT");
        unit.elements.push(Element::boundary(
            1,
            vec![p(0, 0), p(0, 10), p(10, 10), p(10, 0)],
        ));
        unit.elements.push(Element::sref("SUB", p(2, 2)));
        lib.structures.push(unit);
        let mut top = Structure::new("TOP");
        for (i, origin) in [p(0, 0), p(100, 0), p(0, 100), p(100, 100)]
            .into_iter()
            .enumerate()
        {
            let mut r = RefElement::sref("UNIT", origin);
            if i == 3 {
                r.angle_deg = 180.0;
            }
            top.elements.push(Element::Ref(r));
        }
        lib.structures.push(top);
        Layout::from_library(&lib).unwrap()
    }

    #[test]
    fn flatten_counts_all_instances() {
        let l = layout();
        assert_eq!(l.flatten_layer(1).len(), 4);
        assert_eq!(l.flatten_layer(2).len(), 4);
        assert_eq!(l.flatten_layer(3).len(), 0);
        assert_eq!(l.instance_count(1), 4);
        assert_eq!(l.instance_count(2), 4);
        assert_eq!(l.instance_count(9), 0);
    }

    #[test]
    fn flatten_applies_nested_transforms() {
        let l = layout();
        let polys = l.flatten_layer(2);
        let mbrs: Vec<Rect> = polys.iter().map(|f| f.polygon.mbr()).collect();
        // Instance at (0,0): SUB at (2,2) size 4.
        assert!(mbrs.contains(&Rect::from_coords(2, 2, 6, 6)));
        // Rotated-180 instance at (100,100): SUB occupies [-6,-2]^2 + (100,100).
        assert!(mbrs.contains(&Rect::from_coords(94, 94, 98, 98)));
    }

    #[test]
    fn window_query_prunes() {
        let l = layout();
        let mut hits = Vec::new();
        l.layer_query(1, Rect::from_coords(-5, -5, 20, 20), |f| hits.push(f));
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].polygon.mbr(), Rect::from_coords(0, 0, 10, 10));

        let mut hits = Vec::new();
        l.layer_query(1, Rect::from_coords(50, 50, 60, 60), |f| hits.push(f));
        assert!(hits.is_empty());

        // Window covering everything returns all instances.
        let mut hits = Vec::new();
        l.layer_query(1, Rect::from_coords(-1000, -1000, 1000, 1000), |f| {
            hits.push(f)
        });
        assert_eq!(hits.len(), 4);
    }

    #[test]
    fn query_on_absent_layer_is_empty() {
        let l = layout();
        let mut hits = Vec::new();
        l.layer_query(42, Rect::from_coords(-1000, -1000, 1000, 1000), |f| {
            hits.push(f)
        });
        assert!(hits.is_empty());
    }

    #[test]
    fn flat_polygons_carry_provenance() {
        let l = layout();
        let unit = l.cell_by_name("UNIT").unwrap();
        let polys = l.flatten_layer(1);
        assert!(polys.iter().all(|f| f.cell == unit && f.index == 0));
    }

    #[test]
    fn query_window_touching_mbr_counts() {
        let l = layout();
        let mut hits = Vec::new();
        // Window touching the (0,0) square's right edge at x=10.
        l.layer_query(1, Rect::from_coords(10, 0, 20, 5), |f| hits.push(f));
        assert_eq!(hits.len(), 1);
    }
}
