//! In-place layout edits that keep the derived structures consistent.
//!
//! Supports the incremental checking workflow: instead of re-importing
//! a whole GDSII stream after every fix, callers mutate the loaded
//! [`Layout`] through these operations and the per-layer MBR hierarchy
//! (§IV-A), the element-level inverted indices, and the per-layer
//! hierarchy membership are all repaired in place. Cost is proportional
//! to the edited cell plus its ancestor chain, not to the layout.
//!
//! Every operation leaves the layout indistinguishable from a fresh
//! [`Layout::from_library`] of the same content;
//! [`Layout::consistency_errors`] checks exactly that and is shared by
//! the unit tests here and the incremental engine's property tests.

use std::collections::BTreeSet;
use std::fmt;

use odrc_geometry::{Rect, Transform};

use crate::build::topo_order;
use crate::{CellId, CellRef, Layer, LayerPolygon, Layout};

/// Error applying an edit operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EditError {
    /// A cell id does not belong to this layout.
    InvalidCell {
        /// The offending id's index.
        index: usize,
    },
    /// A polygon or reference index is out of bounds.
    InvalidIndex {
        /// The offending index.
        index: usize,
        /// Number of entries actually present.
        len: usize,
    },
    /// The edit would make the reference graph cyclic.
    WouldCycle {
        /// Name of the cell whose subtree would contain itself.
        name: String,
    },
    /// The placement transform is not an isometry (`mag != 1`), which
    /// would invalidate hierarchical check-result reuse (§IV-C).
    NonIsometry,
}

impl fmt::Display for EditError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EditError::InvalidCell { index } => write!(f, "cell id {index} is out of range"),
            EditError::InvalidIndex { index, len } => {
                write!(f, "index {index} out of bounds (len {len})")
            }
            EditError::WouldCycle { name } => {
                write!(f, "edit would create a reference cycle through '{name}'")
            }
            EditError::NonIsometry => write!(f, "placement transform is not an isometry"),
        }
    }
}

impl std::error::Error for EditError {}

impl Layout {
    fn check_cell(&self, id: CellId) -> Result<(), EditError> {
        if id.index() < self.cells.len() {
            Ok(())
        } else {
            Err(EditError::InvalidCell { index: id.index() })
        }
    }

    /// Whether `target` is reachable from `from` through references.
    fn reaches(&self, from: CellId, target: CellId) -> bool {
        if from == target {
            return true;
        }
        let mut seen = vec![false; self.cells.len()];
        let mut stack = vec![from.index()];
        seen[from.index()] = true;
        while let Some(ci) = stack.pop() {
            for r in &self.cells[ci].refs {
                let child = r.cell.index();
                if child == target.index() {
                    return true;
                }
                if !seen[child] {
                    seen[child] = true;
                    stack.push(child);
                }
            }
        }
        false
    }

    /// Appends a reference to `child` inside `parent`; returns its
    /// index in the parent's reference list.
    ///
    /// # Errors
    ///
    /// Rejects unknown ids, non-isometric transforms, and edits that
    /// would close a reference cycle.
    pub fn add_ref(
        &mut self,
        parent: CellId,
        child: CellId,
        transform: Transform,
    ) -> Result<usize, EditError> {
        self.check_cell(parent)?;
        self.check_cell(child)?;
        if !transform.is_isometry() {
            return Err(EditError::NonIsometry);
        }
        if self.reaches(child, parent) {
            return Err(EditError::WouldCycle {
                name: self.cells[parent.index()].name.clone(),
            });
        }
        self.cells[parent.index()].refs.push(CellRef {
            cell: child,
            transform,
        });
        self.refresh_mbrs_from(parent);
        Ok(self.cells[parent.index()].refs.len() - 1)
    }

    /// Removes and returns the `index`-th reference of `parent`.
    /// Later references shift down, as in [`Vec::remove`].
    ///
    /// # Errors
    ///
    /// Rejects unknown ids and out-of-range indices.
    pub fn remove_ref(&mut self, parent: CellId, index: usize) -> Result<CellRef, EditError> {
        self.check_cell(parent)?;
        let refs = &mut self.cells[parent.index()].refs;
        if index >= refs.len() {
            return Err(EditError::InvalidIndex {
                index,
                len: refs.len(),
            });
        }
        let removed = refs.remove(index);
        self.refresh_mbrs_from(parent);
        Ok(removed)
    }

    /// Re-places the `index`-th reference of `parent`; returns the
    /// previous transform.
    ///
    /// # Errors
    ///
    /// Rejects unknown ids, out-of-range indices, and non-isometric
    /// transforms.
    pub fn move_ref(
        &mut self,
        parent: CellId,
        index: usize,
        transform: Transform,
    ) -> Result<Transform, EditError> {
        self.check_cell(parent)?;
        if !transform.is_isometry() {
            return Err(EditError::NonIsometry);
        }
        let refs = &mut self.cells[parent.index()].refs;
        if index >= refs.len() {
            return Err(EditError::InvalidIndex {
                index,
                len: refs.len(),
            });
        }
        let old = std::mem::replace(&mut refs[index].transform, transform);
        self.refresh_mbrs_from(parent);
        Ok(old)
    }

    /// Appends a leaf polygon to `cell`; returns its index in the
    /// cell's polygon list.
    ///
    /// # Errors
    ///
    /// Rejects unknown ids.
    pub fn add_polygon(&mut self, cell: CellId, polygon: LayerPolygon) -> Result<usize, EditError> {
        self.check_cell(cell)?;
        let layer = polygon.layer;
        self.cells[cell.index()].polygons.push(polygon);
        self.refresh_inverted_for(cell, [layer].into_iter().collect());
        self.refresh_mbrs_from(cell);
        Ok(self.cells[cell.index()].polygons.len() - 1)
    }

    /// Removes and returns the `index`-th leaf polygon of `cell`.
    /// Later polygons shift down, as in [`Vec::remove`].
    ///
    /// # Errors
    ///
    /// Rejects unknown ids and out-of-range indices.
    pub fn remove_polygon(
        &mut self,
        cell: CellId,
        index: usize,
    ) -> Result<LayerPolygon, EditError> {
        self.check_cell(cell)?;
        let polys = &mut self.cells[cell.index()].polygons;
        if index >= polys.len() {
            return Err(EditError::InvalidIndex {
                index,
                len: polys.len(),
            });
        }
        let removed = polys.remove(index);
        // Indices after `index` shifted, so every layer the cell still
        // holds needs its inverted entries rebuilt, plus the removed one.
        let mut layers: BTreeSet<Layer> = self.cells[cell.index()]
            .polygons
            .iter()
            .map(|p| p.layer)
            .collect();
        layers.insert(removed.layer);
        self.refresh_inverted_for(cell, layers);
        self.refresh_mbrs_from(cell);
        Ok(removed)
    }

    /// Replaces the `index`-th leaf polygon of `cell`; returns the
    /// previous polygon.
    ///
    /// # Errors
    ///
    /// Rejects unknown ids and out-of-range indices.
    pub fn replace_polygon(
        &mut self,
        cell: CellId,
        index: usize,
        polygon: LayerPolygon,
    ) -> Result<LayerPolygon, EditError> {
        self.check_cell(cell)?;
        let polys = &mut self.cells[cell.index()].polygons;
        if index >= polys.len() {
            return Err(EditError::InvalidIndex {
                index,
                len: polys.len(),
            });
        }
        let new_layer = polygon.layer;
        let old = std::mem::replace(&mut polys[index], polygon);
        self.refresh_inverted_for(cell, [old.layer, new_layer].into_iter().collect());
        self.refresh_mbrs_from(cell);
        Ok(old)
    }

    /// Replaces the whole definition (geometry and references) of
    /// `cell`; returns the previous definition.
    ///
    /// # Errors
    ///
    /// Rejects unknown ids (including inside `refs`), non-isometric
    /// transforms, and definitions that would close a reference cycle.
    pub fn swap_cell_definition(
        &mut self,
        cell: CellId,
        polygons: Vec<LayerPolygon>,
        refs: Vec<CellRef>,
    ) -> Result<(Vec<LayerPolygon>, Vec<CellRef>), EditError> {
        self.check_cell(cell)?;
        for r in &refs {
            self.check_cell(r.cell)?;
            if !r.transform.is_isometry() {
                return Err(EditError::NonIsometry);
            }
            if self.reaches(r.cell, cell) {
                return Err(EditError::WouldCycle {
                    name: self.cells[cell.index()].name.clone(),
                });
            }
        }
        let mut layers: BTreeSet<Layer> = polygons.iter().map(|p| p.layer).collect();
        let c = &mut self.cells[cell.index()];
        layers.extend(c.polygons.iter().map(|p| p.layer));
        let old_polys = std::mem::replace(&mut c.polygons, polygons);
        let old_refs = std::mem::replace(&mut c.refs, refs);
        self.refresh_inverted_for(cell, layers);
        self.refresh_mbrs_from(cell);
        Ok((old_polys, old_refs))
    }

    /// Rebuilds the inverted-index entries of `cell` for `layers`,
    /// preserving the global `(cell, index)` ordering a fresh build
    /// produces.
    fn refresh_inverted_for(&mut self, cell: CellId, layers: BTreeSet<Layer>) {
        for layer in layers {
            let entries: Vec<(CellId, usize)> = self.cells[cell.index()]
                .polygons
                .iter()
                .enumerate()
                .filter(|(_, p)| p.layer == layer)
                .map(|(pi, _)| (cell, pi))
                .collect();
            let vec = self.inverted.entry(layer).or_default();
            vec.retain(|&(c, _)| c != cell);
            let pos = vec.partition_point(|&(c, _)| c < cell);
            vec.splice(pos..pos, entries);
            if vec.is_empty() {
                self.inverted.remove(&layer);
            }
        }
    }

    /// Recomputes per-layer MBRs for `start` and every ancestor
    /// (children before parents), and syncs the per-layer hierarchy
    /// membership for cells whose layer set changed.
    fn refresh_mbrs_from(&mut self, start: CellId) {
        // Reverse reachability: which cells place `start` (transitively).
        let n = self.cells.len();
        let mut parents: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (ci, c) in self.cells.iter().enumerate() {
            for r in &c.refs {
                parents[r.cell.index()].push(ci);
            }
        }
        let mut affected = vec![false; n];
        let mut queue = vec![start.index()];
        affected[start.index()] = true;
        while let Some(ci) = queue.pop() {
            for &p in &parents[ci] {
                if !affected[p] {
                    affected[p] = true;
                    queue.push(p);
                }
            }
        }

        let order = topo_order(&self.cells).expect("edited layout DAG stays acyclic");
        for ci in order.into_iter().filter(|&ci| affected[ci]) {
            let mut layer_mbr: std::collections::BTreeMap<Layer, Rect> =
                std::collections::BTreeMap::new();
            for p in &self.cells[ci].polygons {
                let mbr = p.polygon.mbr();
                layer_mbr
                    .entry(p.layer)
                    .and_modify(|r| *r = r.hull(mbr))
                    .or_insert(mbr);
            }
            let child_boxes: Vec<(Layer, Rect)> = self.cells[ci]
                .refs
                .iter()
                .flat_map(|r| {
                    let child = &self.cells[r.cell.index()];
                    child
                        .layer_mbr
                        .iter()
                        .map(|(&l, &m)| (l, r.transform.apply_rect(m)))
                        .collect::<Vec<_>>()
                })
                .collect();
            for (l, m) in child_boxes {
                layer_mbr
                    .entry(l)
                    .and_modify(|r| *r = r.hull(m))
                    .or_insert(m);
            }
            let mbr = layer_mbr.values().copied().reduce(|a, b| a.hull(b));

            // Sync per-layer hierarchy membership on layer-set changes.
            let id = CellId(ci as u32);
            let old: BTreeSet<Layer> = self.cells[ci].layer_mbr.keys().copied().collect();
            let new: BTreeSet<Layer> = layer_mbr.keys().copied().collect();
            for &gone in old.difference(&new) {
                if let Some(v) = self.layer_cells.get_mut(&gone) {
                    v.retain(|&c| c != id);
                    if v.is_empty() {
                        self.layer_cells.remove(&gone);
                    }
                }
            }
            for &added in new.difference(&old) {
                let v = self.layer_cells.entry(added).or_default();
                let pos = v.partition_point(|&c| c < id);
                v.insert(pos, id);
            }

            self.cells[ci].layer_mbr = layer_mbr;
            self.cells[ci].mbr = mbr;
        }
    }

    /// Compares every derived structure against a from-scratch rebuild
    /// (export to GDSII, re-import, same top) and describes any
    /// mismatch. Empty means the layout is exactly what
    /// [`Layout::from_library`] would have produced.
    ///
    /// Shared by the `db` mutation tests and the incremental engine's
    /// property tests.
    pub fn consistency_errors(&self) -> Vec<String> {
        let lib = self.to_library("consistency-check");
        let top_name = self.cell(self.top).name().to_owned();
        let fresh = match Layout::from_library_with_top(&lib, &top_name) {
            Ok(l) => l,
            Err(e) => return vec![format!("rebuild failed: {e}")],
        };
        let mut errors = Vec::new();
        if self.cells.len() != fresh.cells.len() {
            errors.push(format!(
                "cell count {} != rebuilt {}",
                self.cells.len(),
                fresh.cells.len()
            ));
            return errors;
        }
        if self.top != fresh.top {
            errors.push(format!("top {:?} != rebuilt {:?}", self.top, fresh.top));
        }
        for (i, (a, b)) in self.cells.iter().zip(&fresh.cells).enumerate() {
            if a.name != b.name {
                errors.push(format!("cell {i}: name '{}' != '{}'", a.name, b.name));
            }
            if a.polygons != b.polygons {
                errors.push(format!("cell {i} ('{}'): polygons differ", a.name));
            }
            if a.refs != b.refs {
                errors.push(format!("cell {i} ('{}'): refs differ", a.name));
            }
            if a.layer_mbr != b.layer_mbr {
                errors.push(format!(
                    "cell {i} ('{}'): layer MBRs {:?} != rebuilt {:?}",
                    a.name, a.layer_mbr, b.layer_mbr
                ));
            }
            if a.mbr != b.mbr {
                errors.push(format!(
                    "cell {i} ('{}'): mbr {:?} != rebuilt {:?}",
                    a.name, a.mbr, b.mbr
                ));
            }
        }
        if self.inverted != fresh.inverted {
            errors.push(format!(
                "inverted index differs: {:?} != rebuilt {:?}",
                self.inverted, fresh.inverted
            ));
        }
        if self.layer_cells != fresh.layer_cells {
            errors.push(format!(
                "layer membership differs: {:?} != rebuilt {:?}",
                self.layer_cells, fresh.layer_cells
            ));
        }
        errors
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use odrc_gdsii::{Element, Library, Structure};
    use odrc_geometry::{Point, Polygon};

    fn rect_poly(x0: i32, y0: i32, x1: i32, y1: i32) -> Polygon {
        Polygon::rect(Rect::from_coords(x0, y0, x1, y1))
    }

    fn lp(layer: Layer, x0: i32, y0: i32, x1: i32, y1: i32) -> LayerPolygon {
        LayerPolygon {
            layer,
            datatype: 0,
            polygon: rect_poly(x0, y0, x1, y1),
            name: None,
        }
    }

    /// TOP places UNIT twice; UNIT holds one layer-1 square.
    fn base_layout() -> Layout {
        let mut lib = Library::new("t");
        let mut cell = Structure::new("UNIT");
        cell.elements.push(Element::boundary(
            1,
            vec![
                Point::new(0, 0),
                Point::new(0, 10),
                Point::new(10, 10),
                Point::new(10, 0),
            ],
        ));
        lib.structures.push(cell);
        let mut top = Structure::new("TOP");
        top.elements.push(Element::sref("UNIT", Point::new(0, 0)));
        top.elements.push(Element::sref("UNIT", Point::new(50, 20)));
        lib.structures.push(top);
        Layout::from_library(&lib).unwrap()
    }

    fn assert_consistent(layout: &Layout) {
        let errors = layout.consistency_errors();
        assert!(errors.is_empty(), "{}", errors.join("\n"));
    }

    #[test]
    fn add_and_remove_ref_keep_indices() {
        let mut layout = base_layout();
        let unit = layout.cell_by_name("UNIT").unwrap();
        let top = layout.top();
        let idx = layout
            .add_ref(top, unit, Transform::translation(Point::new(200, 0)))
            .unwrap();
        assert_eq!(idx, 2);
        assert_eq!(
            layout.cell(top).layer_mbr(1),
            Some(Rect::from_coords(0, 0, 210, 30))
        );
        assert_consistent(&layout);

        let removed = layout.remove_ref(top, idx).unwrap();
        assert_eq!(removed.transform.translate(), Point::new(200, 0));
        assert_eq!(
            layout.cell(top).layer_mbr(1),
            Some(Rect::from_coords(0, 0, 60, 30))
        );
        assert_consistent(&layout);

        // Removing the remaining refs drops the layer entirely.
        layout.remove_ref(top, 1).unwrap();
        layout.remove_ref(top, 0).unwrap();
        assert_eq!(layout.cell(top).layer_mbr(1), None);
        assert!(!layout.cells_with_layer(1).contains(&top));
        assert_consistent(&layout);
    }

    #[test]
    fn move_ref_updates_ancestor_mbrs() {
        let mut layout = base_layout();
        let top = layout.top();
        let old = layout
            .move_ref(top, 1, Transform::translation(Point::new(500, 500)))
            .unwrap();
        assert_eq!(old.translate(), Point::new(50, 20));
        assert_eq!(
            layout.cell(top).layer_mbr(1),
            Some(Rect::from_coords(0, 0, 510, 510))
        );
        assert_consistent(&layout);
    }

    #[test]
    fn polygon_edits_keep_inverted_index() {
        let mut layout = base_layout();
        let unit = layout.cell_by_name("UNIT").unwrap();
        layout.add_polygon(unit, lp(2, 0, 0, 4, 4)).unwrap();
        layout.add_polygon(unit, lp(1, 20, 0, 24, 4)).unwrap();
        assert_eq!(layout.layer_polygons(1), &[(unit, 0), (unit, 2)]);
        assert_eq!(layout.layer_polygons(2), &[(unit, 1)]);
        assert_consistent(&layout);

        // Removing polygon 0 shifts the others' indices down.
        let removed = layout.remove_polygon(unit, 0).unwrap();
        assert_eq!(removed.layer, 1);
        assert_eq!(layout.layer_polygons(1), &[(unit, 1)]);
        assert_eq!(layout.layer_polygons(2), &[(unit, 0)]);
        assert_consistent(&layout);

        // Replacing can move a polygon across layers.
        layout.replace_polygon(unit, 0, lp(3, 0, 0, 4, 4)).unwrap();
        assert!(layout.layer_polygons(2).is_empty());
        assert_eq!(layout.layer_polygons(3), &[(unit, 0)]);
        assert_consistent(&layout);
    }

    #[test]
    fn swap_cell_definition_rewrites_cell() {
        let mut layout = base_layout();
        let unit = layout.cell_by_name("UNIT").unwrap();
        let (old_polys, old_refs) = layout
            .swap_cell_definition(unit, vec![lp(7, 0, 0, 8, 8), lp(1, 0, 0, 2, 2)], vec![])
            .unwrap();
        assert_eq!(old_polys.len(), 1);
        assert!(old_refs.is_empty());
        assert_eq!(layout.layer_polygons(7), &[(unit, 0)]);
        assert_eq!(
            layout.cell(layout.top()).layer_mbr(7),
            Some(Rect::from_coords(0, 0, 58, 28))
        );
        assert_consistent(&layout);
    }

    #[test]
    fn cycle_rejected() {
        let mut layout = base_layout();
        let unit = layout.cell_by_name("UNIT").unwrap();
        let top = layout.top();
        assert!(matches!(
            layout.add_ref(unit, top, Transform::default()),
            Err(EditError::WouldCycle { .. })
        ));
        assert!(matches!(
            layout.add_ref(unit, unit, Transform::default()),
            Err(EditError::WouldCycle { .. })
        ));
        assert_consistent(&layout);
    }

    #[test]
    fn bad_indices_rejected() {
        let mut layout = base_layout();
        let top = layout.top();
        assert!(matches!(
            layout.remove_ref(top, 99),
            Err(EditError::InvalidIndex { len: 2, .. })
        ));
        assert!(matches!(
            layout.remove_polygon(top, 0),
            Err(EditError::InvalidIndex { len: 0, .. })
        ));
        assert!(matches!(
            layout.add_ref(CellId(99), top, Transform::default()),
            Err(EditError::InvalidCell { index: 99 })
        ));
    }
}
