//! Mutation invariants: after every edit operation the per-layer MBR
//! hierarchy, inverted indices, and layer membership must equal those
//! of a freshly built `Layout::from_library` on the same content
//! (checked via the shared `consistency_errors` helper).

use odrc_db::{CellId, CellRef, LayerPolygon, Layout};
use odrc_gdsii::{Element, Library, Structure};
use odrc_geometry::{Point, Polygon, Rect, Rotation, Transform};
use proptest::prelude::*;

/// A randomized edit op over a small hierarchical layout. Targets are
/// raw numbers reduced modulo the live cell/entry counts at apply time,
/// so every generated op is applicable.
#[derive(Debug, Clone)]
enum Op {
    AddRef {
        parent: usize,
        child: usize,
        dx: i32,
        dy: i32,
        rot: i32,
        mirror: bool,
    },
    RemoveRef {
        parent: usize,
        index: usize,
    },
    MoveRef {
        parent: usize,
        index: usize,
        dx: i32,
        dy: i32,
    },
    AddPolygon {
        cell: usize,
        layer: u8,
        x: i32,
        y: i32,
        w: i32,
        h: i32,
    },
    RemovePolygon {
        cell: usize,
        index: usize,
    },
    ReplacePolygon {
        cell: usize,
        index: usize,
        layer: u8,
        x: i32,
        y: i32,
        w: i32,
        h: i32,
    },
    SwapDefinition {
        cell: usize,
        layer: u8,
        x: i32,
        y: i32,
        w: i32,
        h: i32,
        keep_refs: bool,
    },
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (
            0usize..8,
            0usize..8,
            -200i32..200,
            -200i32..200,
            0i32..4,
            proptest::bool::ANY
        )
            .prop_map(|(parent, child, dx, dy, rot, mirror)| Op::AddRef {
                parent,
                child,
                dx,
                dy,
                rot,
                mirror
            }),
        (0usize..8, 0usize..8).prop_map(|(parent, index)| Op::RemoveRef { parent, index }),
        (0usize..8, 0usize..8, -200i32..200, -200i32..200).prop_map(|(parent, index, dx, dy)| {
            Op::MoveRef {
                parent,
                index,
                dx,
                dy,
            }
        }),
        (
            0usize..8,
            1u8..4,
            -100i32..100,
            -100i32..100,
            1i32..40,
            1i32..40
        )
            .prop_map(|(cell, layer, x, y, w, h)| Op::AddPolygon {
                cell,
                layer,
                x,
                y,
                w,
                h
            }),
        (0usize..8, 0usize..8).prop_map(|(cell, index)| Op::RemovePolygon { cell, index }),
        (
            0usize..8,
            0usize..8,
            1u8..4,
            -100i32..100,
            -100i32..100,
            1i32..40,
            1i32..40
        )
            .prop_map(|(cell, index, layer, x, y, w, h)| Op::ReplacePolygon {
                cell,
                index,
                layer,
                x,
                y,
                w,
                h
            }),
        (
            0usize..8,
            1u8..4,
            -100i32..100,
            -100i32..100,
            1i32..40,
            1i32..40,
            proptest::bool::ANY
        )
            .prop_map(|(cell, layer, x, y, w, h, keep_refs)| Op::SwapDefinition {
                cell,
                layer,
                x,
                y,
                w,
                h,
                keep_refs
            }),
    ]
}

fn rect_poly(layer: u8, x: i32, y: i32, w: i32, h: i32) -> LayerPolygon {
    LayerPolygon {
        layer: i16::from(layer),
        datatype: 0,
        polygon: Polygon::rect(Rect::from_coords(x, y, x + w, y + h)),
        name: None,
    }
}

/// Three-level base design: TOP -> {MID, LEAF...}, MID -> LEAF.
fn base_layout() -> Layout {
    let mut lib = Library::new("mutation");
    let mut leaf = Structure::new("LEAF");
    leaf.elements.push(Element::boundary(
        1,
        vec![
            Point::new(0, 0),
            Point::new(0, 10),
            Point::new(10, 10),
            Point::new(10, 0),
        ],
    ));
    lib.structures.push(leaf);
    let mut mid = Structure::new("MID");
    mid.elements.push(Element::sref("LEAF", Point::new(5, 5)));
    mid.elements.push(Element::boundary(
        2,
        vec![
            Point::new(0, 0),
            Point::new(0, 30),
            Point::new(30, 30),
            Point::new(30, 0),
        ],
    ));
    lib.structures.push(mid);
    let mut top = Structure::new("TOP");
    top.elements.push(Element::sref("MID", Point::new(0, 0)));
    top.elements.push(Element::sref("LEAF", Point::new(100, 0)));
    lib.structures.push(top);
    Layout::from_library(&lib).unwrap()
}

/// Applies an op, mapping raw targets onto live entries. Returns
/// whether the layout was actually mutated.
fn apply_op(layout: &mut Layout, op: &Op) -> bool {
    let ncells = layout.cell_count();
    let cell_at = |i: usize| CellId::from_index(i % ncells);
    match *op {
        Op::AddRef {
            parent,
            child,
            dx,
            dy,
            rot,
            mirror,
        } => {
            let t = Transform::new(
                mirror,
                Rotation::from_quarter_turns(rot),
                1,
                Point::new(dx, dy),
            );
            // Cycles are a rejected input, not a mutation.
            layout.add_ref(cell_at(parent), cell_at(child), t).is_ok()
        }
        Op::RemoveRef { parent, index } => {
            let p = cell_at(parent);
            let n = layout.cell(p).refs().len();
            n > 0 && layout.remove_ref(p, index % n).is_ok()
        }
        Op::MoveRef {
            parent,
            index,
            dx,
            dy,
        } => {
            let p = cell_at(parent);
            let n = layout.cell(p).refs().len();
            n > 0
                && layout
                    .move_ref(p, index % n, Transform::translation(Point::new(dx, dy)))
                    .is_ok()
        }
        Op::AddPolygon {
            cell,
            layer,
            x,
            y,
            w,
            h,
        } => layout
            .add_polygon(cell_at(cell), rect_poly(layer, x, y, w, h))
            .is_ok(),
        Op::RemovePolygon { cell, index } => {
            let c = cell_at(cell);
            let n = layout.cell(c).polygons().len();
            n > 0 && layout.remove_polygon(c, index % n).is_ok()
        }
        Op::ReplacePolygon {
            cell,
            index,
            layer,
            x,
            y,
            w,
            h,
        } => {
            let c = cell_at(cell);
            let n = layout.cell(c).polygons().len();
            n > 0
                && layout
                    .replace_polygon(c, index % n, rect_poly(layer, x, y, w, h))
                    .is_ok()
        }
        Op::SwapDefinition {
            cell,
            layer,
            x,
            y,
            w,
            h,
            keep_refs,
        } => {
            let c = cell_at(cell);
            let refs: Vec<CellRef> = if keep_refs {
                layout.cell(c).refs().to_vec()
            } else {
                Vec::new()
            };
            layout
                .swap_cell_definition(c, vec![rect_poly(layer, x, y, w, h)], refs)
                .is_ok()
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]
    #[test]
    fn every_edit_matches_fresh_rebuild(
        ops in proptest::collection::vec(arb_op(), 1..12),
    ) {
        let mut layout = base_layout();
        for op in &ops {
            apply_op(&mut layout, op);
            let errors = layout.consistency_errors();
            prop_assert!(
                errors.is_empty(),
                "after {:?}:\n{}",
                op,
                errors.join("\n")
            );
        }
    }
}

#[test]
fn base_layout_is_consistent() {
    let layout = base_layout();
    assert!(layout.consistency_errors().is_empty());
}
