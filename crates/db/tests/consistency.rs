//! Cross-query consistency of the layout database.

use odrc_db::Layout;
use odrc_gdsii::{Element, Library, RefElement, Structure};
use odrc_geometry::{Point, Rect};
use proptest::prelude::*;

fn rect_el(layer: i16, x: i32, y: i32, w: i32, h: i32) -> Element {
    Element::boundary(
        layer,
        vec![
            Point::new(x, y),
            Point::new(x, y + h),
            Point::new(x + w, y + h),
            Point::new(x + w, y),
        ],
    )
}

fn arb_library() -> impl Strategy<Value = Library> {
    let rects =
        proptest::collection::vec((1i16..4, -60i32..60, -60i32..60, 1i32..40, 1i32..40), 0..6);
    (
        rects.clone(),
        rects,
        proptest::collection::vec(
            (proptest::bool::ANY, -200i32..200, -200i32..200, 0i32..4),
            0..5,
        ),
    )
        .prop_map(|(ra, rb, places)| {
            let mut lib = Library::new("consistency");
            let mut a = Structure::new("A");
            for (l, x, y, w, h) in ra {
                a.elements.push(rect_el(l, x, y, w, h));
            }
            let mut b = Structure::new("B");
            for (l, x, y, w, h) in rb {
                b.elements.push(rect_el(l, x, y, w, h));
            }
            b.elements.push(Element::sref("A", Point::new(150, 150)));
            lib.structures.push(a);
            lib.structures.push(b);
            let mut top = Structure::new("TOP");
            for (which_b, x, y, rot) in places {
                let mut r = RefElement::sref(if which_b { "B" } else { "A" }, Point::new(x, y));
                r.angle_deg = f64::from(rot) * 90.0;
                top.elements.push(Element::Ref(r));
            }
            top.elements.push(rect_el(1, 0, 0, 10, 10));
            lib.structures.push(top);
            lib
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn instance_count_matches_flatten(lib in arb_library()) {
        let layout = Layout::from_library(&lib).expect("valid library");
        for layer in layout.layers() {
            prop_assert_eq!(
                layout.instance_count(layer),
                layout.flatten_layer(layer).len(),
                "layer {}", layer
            );
        }
    }

    #[test]
    fn window_query_matches_flatten_filter(lib in arb_library()) {
        let layout = Layout::from_library(&lib).expect("valid library");
        let window = Rect::from_coords(-100, -100, 120, 120);
        for layer in layout.layers() {
            let mut queried = Vec::new();
            layout.layer_query(layer, window, |f| queried.push(f.polygon));
            let mut filtered: Vec<_> = layout
                .flatten_layer(layer)
                .into_iter()
                .map(|f| f.polygon)
                .filter(|p| p.mbr().overlaps(window))
                .collect();
            queried.sort_by_key(|p| p.mbr());
            filtered.sort_by_key(|p| p.mbr());
            prop_assert_eq!(queried, filtered, "layer {}", layer);
        }
    }

    #[test]
    fn layer_mbr_bounds_all_instances(lib in arb_library()) {
        let layout = Layout::from_library(&lib).expect("valid library");
        let top = layout.cell(layout.top());
        for layer in layout.layers() {
            let flat = layout.flatten_layer(layer);
            let hull = flat
                .iter()
                .map(|f| f.polygon.mbr())
                .reduce(|a, b| a.hull(b));
            prop_assert_eq!(top.layer_mbr(layer), hull, "layer {}", layer);
        }
    }

    #[test]
    fn gdsii_roundtrip_preserves_layout_queries(lib in arb_library()) {
        let bytes = odrc_gdsii::write(&lib).expect("serialize");
        let back = odrc_gdsii::read(&bytes).expect("parse");
        let l1 = Layout::from_library(&lib).expect("valid");
        let l2 = Layout::from_library(&back).expect("valid");
        prop_assert_eq!(l1.layers(), l2.layers());
        for layer in l1.layers() {
            prop_assert_eq!(l1.flatten_layer(layer), l2.flatten_layer(layer));
        }
    }
}
