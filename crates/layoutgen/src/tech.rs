//! The ASAP7-like technology used by the synthetic benchmarks.
//!
//! Layer numbers, design-rule values, and placement geometry are chosen
//! to mirror the structure of the ASAP7 BEOL stack the paper checks
//! (layers M1, M2, M3, V1, V2; §VI) at a 1 dbu = 1 nm scale. The M1
//! width value of 18 matches the example rule of the paper's Listing 1
//! (`db.layer(19).width().greater_than(18)`).

use odrc_db::Layer;

/// First metal layer (vertical in-cell bars, pins).
pub const M1: Layer = 19;
/// Second metal layer (horizontal routing).
pub const M2: Layer = 20;
/// Third metal layer (vertical routing).
pub const M3: Layer = 21;
/// Via layer between M1 and M2.
pub const V1: Layer = 30;
/// Via layer between M2 and M3.
pub const V2: Layer = 31;

/// Placement site width in dbu.
pub const SITE_WIDTH: i32 = 54;
/// Standard-cell row height in dbu.
pub const ROW_HEIGHT: i32 = 270;
/// Vertical inset of in-cell geometry from the row boundary, which is
/// what keeps abutting placement rows independent for the adaptive row
/// partition (their per-layer MBRs do not touch).
pub const CELL_INSET: i32 = 30;

/// Minimum M1 width.
pub const M1_WIDTH: i64 = 18;
/// Minimum M1 spacing.
pub const M1_SPACE: i64 = 18;
/// Minimum M1 polygon area (dbu²).
pub const M1_AREA: i64 = 1400;
/// Minimum M2 width.
pub const M2_WIDTH: i64 = 20;
/// Minimum M2 spacing.
pub const M2_SPACE: i64 = 20;
/// Minimum M2 polygon area (dbu²).
pub const M2_AREA: i64 = 1800;
/// Minimum M3 width.
pub const M3_WIDTH: i64 = 24;
/// Minimum M3 spacing.
pub const M3_SPACE: i64 = 24;
/// Minimum M3 polygon area (dbu²).
pub const M3_AREA: i64 = 2400;
/// V1 via edge length.
pub const V1_SIZE: i32 = 10;
/// Required enclosure of V1 by M1.
pub const V1_M1_ENCLOSURE: i64 = 4;
/// Required enclosure of V1 by M2.
pub const V1_M2_ENCLOSURE: i64 = 5;
/// V2 via edge length.
pub const V2_SIZE: i32 = 10;
/// Required enclosure of V2 by M2.
pub const V2_M2_ENCLOSURE: i64 = 5;
/// Required enclosure of V2 by M3.
pub const V2_M3_ENCLOSURE: i64 = 7;

/// M1 bar width drawn inside cells (comfortably above [`M1_WIDTH`]).
pub const M1_BAR_WIDTH: i32 = 18;
/// M2 wire width drawn by the router.
pub const M2_WIRE_WIDTH: i32 = 20;
/// M2 routing track pitch (width + spacing with margin).
pub const M2_PITCH: i32 = 48;
/// M3 wire width drawn by the router.
pub const M3_WIRE_WIDTH: i32 = 24;
/// M3 routing track pitch.
pub const M3_PITCH: i32 = 64;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layer_numbers_distinct() {
        let layers = [M1, M2, M3, V1, V2];
        for i in 0..layers.len() {
            for j in i + 1..layers.len() {
                assert_ne!(layers[i], layers[j]);
            }
        }
    }

    #[test]
    fn drawn_geometry_meets_rules() {
        // Clean generated geometry must satisfy the rule deck.
        assert!(i64::from(M1_BAR_WIDTH) >= M1_WIDTH);
        assert!(i64::from(M2_WIRE_WIDTH) >= M2_WIDTH);
        assert!(i64::from(M3_WIRE_WIDTH) >= M3_WIDTH);
        assert!(i64::from(M2_PITCH - M2_WIRE_WIDTH) >= M2_SPACE);
        assert!(i64::from(M3_PITCH - M3_WIRE_WIDTH) >= M3_SPACE);
        // Vias centered in their landing metal meet the enclosures.
        assert!(i64::from((M1_BAR_WIDTH - V1_SIZE) / 2) >= V1_M1_ENCLOSURE);
        assert!(i64::from((M2_WIRE_WIDTH - V1_SIZE) / 2) >= V1_M2_ENCLOSURE);
        assert!(i64::from((M2_WIRE_WIDTH - V2_SIZE) / 2) >= V2_M2_ENCLOSURE);
        assert!(i64::from((M3_WIRE_WIDTH - V2_SIZE) / 2) >= V2_M3_ENCLOSURE);
        // In-cell inset keeps abutting rows independent beyond any rule.
        assert!(i64::from(2 * CELL_INSET) > M1_SPACE);
    }
}
