//! Generates a benchmark layout as a GDSII file.
//!
//! ```text
//! odrc-genlayout <design|tiny:SEED> <out.gds> [--violation-rate F] [--scale N]
//! ```
//!
//! `design` is one of the paper's six (aes, ethmac, ibex, jpeg, sha3,
//! uart), or `tiny:<seed>` for a small test design. `--scale N`
//! multiplies the placement rows and vertical wires by N — e.g.
//! `jpeg --scale 20` emits a multi-million-polygon chip for
//! out-of-core runs. Scaled chips are meant to be generated on
//! demand, not stored.

use std::process::ExitCode;

use odrc_layoutgen::{generate, DesignSpec};

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.len() < 2 {
        eprintln!(
            "usage: odrc-genlayout <design|tiny:SEED> <out.gds> [--violation-rate F] [--scale N]"
        );
        return ExitCode::from(2);
    }
    let mut spec = if let Some(seed) = argv[0].strip_prefix("tiny:") {
        let Ok(seed) = seed.parse() else {
            eprintln!("invalid seed '{seed}'");
            return ExitCode::from(2);
        };
        DesignSpec::tiny(seed)
    } else {
        match DesignSpec::paper(&argv[0]) {
            Some(s) => s,
            None => {
                eprintln!(
                    "unknown design '{}'; expected aes, ethmac, ibex, jpeg, sha3, uart, or tiny:SEED",
                    argv[0]
                );
                return ExitCode::from(2);
            }
        }
    };
    if let Some(pos) = argv.iter().position(|a| a == "--violation-rate") {
        match argv.get(pos + 1).and_then(|v| v.parse().ok()) {
            Some(rate) => spec.violation_rate = rate,
            None => {
                eprintln!("--violation-rate needs a number");
                return ExitCode::from(2);
            }
        }
    }

    if let Some(pos) = argv.iter().position(|a| a == "--scale") {
        match argv.get(pos + 1).and_then(|v| v.parse().ok()) {
            Some(factor) if factor >= 1 => spec = spec.scaled(factor),
            _ => {
                eprintln!("--scale needs an integer factor >= 1");
                return ExitCode::from(2);
            }
        }
    }

    let design = generate(&spec);
    if let Err(e) = odrc_gdsii::write_file(&design.library, &argv[1]) {
        eprintln!("error writing {}: {e}", argv[1]);
        return ExitCode::FAILURE;
    }
    eprintln!(
        "wrote {} ({} structures, injected: {} width, {} space, {} area, {} enclosure)",
        argv[1],
        design.library.structures.len(),
        design.stats.width,
        design.stats.space,
        design.stats.area,
        design.stats.enclosure,
    );
    ExitCode::SUCCESS
}
