//! The benchmark layout generator.
//!
//! Emulates the structure of an OpenROAD-placed, ASAP7-style design
//! (§VI of the paper): standard cells in abutting rows (odd rows
//! flipped), horizontal M2 routing on tracks within each row, vertical
//! M3 routing spanning the die, and V1/V2 vias landing on pins and wire
//! crossings. A configurable fraction of deliberate rule violations is
//! injected so checkers have non-trivial output to agree on.

use odrc_db::Layout;
use odrc_gdsii::model::ArrayParams;
use odrc_gdsii::{BoundaryElement, Element, Library, RefElement, Structure};
use odrc_geometry::{Point, Rect};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::cells::{self, CellKind};
use crate::tech;

/// Parameters of one synthetic design.
#[derive(Debug, Clone, PartialEq)]
pub struct DesignSpec {
    /// Design name (also the GDSII library and top-structure name).
    pub name: String,
    /// Number of placement rows.
    pub rows: usize,
    /// Row width in placement sites.
    pub sites_per_row: i32,
    /// Horizontal M2 wires per row.
    pub m2_wires_per_row: usize,
    /// Vertical M3 wires across the die.
    pub m3_wires: usize,
    /// Fraction of objects receiving a deliberate rule violation.
    pub violation_rate: f64,
    /// RNG seed (generation is fully deterministic).
    pub seed: u64,
}

impl DesignSpec {
    /// The six benchmark designs of the paper's evaluation, scaled to
    /// laptop-size while keeping their relative character (uart tiny,
    /// ethmac largest, jpeg M3-heavy).
    pub fn paper(name: &str) -> Option<DesignSpec> {
        let (rows, sites, m2, m3) = match name {
            "uart" => (16, 300, 20, 12),
            "ibex" => (32, 600, 30, 24),
            "sha3" => (64, 1000, 40, 40),
            "aes" => (72, 1200, 45, 48),
            "jpeg" => (80, 1400, 50, 400),
            "ethmac" => (112, 1600, 60, 64),
            _ => return None,
        };
        Some(DesignSpec {
            name: name.to_owned(),
            rows,
            sites_per_row: sites,
            m2_wires_per_row: m2,
            m3_wires: m3,
            violation_rate: 0.02,
            seed: 0xD5C0_0000
                ^ name
                    .bytes()
                    .fold(0u64, |a, b| a.wrapping_mul(31) + u64::from(b)),
        })
    }

    /// All six paper designs, in the tables' order.
    pub fn all_paper() -> Vec<DesignSpec> {
        ["aes", "ethmac", "ibex", "jpeg", "sha3", "uart"]
            .iter()
            .map(|n| DesignSpec::paper(n).expect("known design"))
            .collect()
    }

    /// Scales the design by an integer factor: `factor`× the placement
    /// rows and vertical M3 wires, holding row width constant, so
    /// polygon count grows roughly linearly. `paper("jpeg").scaled(20)`
    /// is a multi-million-polygon chip — the out-of-core workload.
    /// Generation stays fully deterministic: the seed is untouched and
    /// the scaled name records the factor.
    #[must_use]
    pub fn scaled(mut self, factor: usize) -> DesignSpec {
        let factor = factor.max(1);
        self.rows *= factor;
        self.m3_wires *= factor;
        if factor > 1 {
            self.name = format!("{}x{factor}", self.name);
        }
        self
    }

    /// A tiny design for unit and integration tests.
    pub fn tiny(seed: u64) -> DesignSpec {
        DesignSpec {
            name: format!("tiny{seed}"),
            rows: 4,
            sites_per_row: 60,
            m2_wires_per_row: 4,
            m3_wires: 4,
            violation_rate: 0.1,
            seed,
        }
    }
}

/// Counts of violations injected by the generator, by rule family.
/// Checkers must find *at least* these (random geometry can interact to
/// produce more).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InjectionStats {
    /// Narrow M1 bars (via bad cell instances) and narrow M2 wires.
    pub width: usize,
    /// Too-close M2 or M3 wire pairs.
    pub space: usize,
    /// Under-size M1 islands (via bad cell instances).
    pub area: usize,
    /// Off-center vias breaking an enclosure rule.
    pub enclosure: usize,
}

/// A generated design: the GDSII library plus injection accounting.
#[derive(Debug, Clone)]
pub struct Generated {
    /// The GDSII library (top structure named after the design).
    pub library: Library,
    /// Injected violation counts.
    pub stats: InjectionStats,
}

/// Generates a design.
///
/// The output is a real GDSII hierarchy: cell definitions referenced by
/// `SREF` (odd rows mirrored about x, exercising transforms) plus one
/// `AREF` row of filler cells, with routing drawn as top-level
/// boundaries.
///
/// # Examples
///
/// ```
/// use odrc_layoutgen::{generate, DesignSpec};
///
/// let design = generate(&DesignSpec::tiny(7));
/// assert!(design.library.structures.len() > 2);
/// let bytes = odrc_gdsii::write(&design.library)?;
/// assert_eq!(odrc_gdsii::read(&bytes)?, design.library);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn generate(spec: &DesignSpec) -> Generated {
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let kinds = cells::library();
    let mut lib = Library::new(spec.name.clone());
    for kind in &kinds {
        lib.structures.push(kind.structure.clone());
    }
    let mut top = Structure::new(spec.name.to_uppercase());
    let mut stats = InjectionStats::default();

    let die_w = spec.sites_per_row * tech::SITE_WIDTH;
    let die_h = spec.rows as i32 * tech::ROW_HEIGHT;

    // --- Placement -------------------------------------------------
    // placements[row] = (kind index, origin x) for via landing.
    let mut placements: Vec<Vec<(usize, i32)>> = vec![Vec::new(); spec.rows];
    for (row, row_placements) in placements.iter_mut().enumerate() {
        let row_y = row as i32 * tech::ROW_HEIGHT;
        let mirrored = row % 2 == 1;
        let mut site = 0i32;
        while site < spec.sites_per_row {
            // Pick a cell kind; rarely one of the bad variants.
            let kind_idx = if rng.gen_bool(spec.violation_rate / 4.0) {
                cells::CLEAN_KINDS // INVBADW carries one bad bar
            } else if rng.gen_bool(spec.violation_rate / 4.0) {
                cells::CLEAN_KINDS + 1 // FILLTINY carries one tiny island
            } else {
                rng.gen_range(0..cells::CLEAN_KINDS)
            };
            let kind = &kinds[kind_idx];
            if site + kind.sites > spec.sites_per_row {
                break;
            }
            // Account injections only for cells that are really placed.
            stats.width += kind.bad_width_polygons;
            stats.area += kind.bad_area_polygons;
            let x = site * tech::SITE_WIDTH;
            let mut r = RefElement::sref(kind.name.clone(), Point::new(x, row_y));
            if mirrored {
                // Flip about x, then shift so the cell occupies the row.
                r.mirror_x = true;
                r.origin = Point::new(x, row_y + tech::ROW_HEIGHT);
            }
            top.elements.push(Element::Ref(r));
            row_placements.push((kind_idx, x));
            site += kind.sites;
            // Occasional placement gap.
            if rng.gen_bool(0.2) {
                site += rng.gen_range(1..3);
            }
        }
    }

    // One AREF strip of filler cells above the top row, exercising
    // array references.
    let fill_cols = (spec.sites_per_row / 4).max(1) as u16;
    top.elements.push(Element::Ref(RefElement {
        sname: "FILL1".to_owned(),
        origin: Point::new(0, die_h),
        mirror_x: false,
        angle_deg: 0.0,
        mag: 1.0,
        array: Some(ArrayParams {
            cols: fill_cols,
            rows: 1,
            col_step: Point::new(4 * tech::SITE_WIDTH, 0),
            row_step: Point::new(0, tech::ROW_HEIGHT),
        }),
    }));

    // --- M2 routing (horizontal, within each row band) --------------
    let mut net = 0usize;
    // wires[row] = (track index, x0, x1, y_center)
    let mut m2_wires: Vec<Vec<(i32, i32, i32)>> = vec![Vec::new(); spec.rows];
    let tracks = 4i32;
    for (row, row_wires) in m2_wires.iter_mut().enumerate() {
        let row_y = row as i32 * tech::ROW_HEIGHT;
        let mut made = 0usize;
        'tracks: for t in 0..tracks {
            let y_c = row_y + 60 + t * tech::M2_PITCH;
            let mut cursor = 40 + rng.gen_range(0..200);
            while cursor < die_w - 400 {
                if made >= spec.m2_wires_per_row {
                    break 'tracks;
                }
                let len = rng.gen_range(300i32..1500).min(die_w - 40 - cursor);
                let (x0, x1) = (cursor, cursor + len);
                let half = tech::M2_WIRE_WIDTH / 2;
                // Occasionally inject a violation instead of a clean wire.
                let kind = rng.gen_range(0..100);
                if (kind as f64) < spec.violation_rate * 100.0 / 2.0 && t == tracks - 1 {
                    // Spacing violation: a parallel stub 10 dbu above.
                    let stub_y = y_c + tech::M2_WIRE_WIDTH + 10;
                    push_named_rect(
                        &mut top,
                        tech::M2,
                        Rect::from_coords(x0, y_c - half, x1, y_c + half),
                        &format!("net{net}"),
                    );
                    push_named_rect(
                        &mut top,
                        tech::M2,
                        Rect::from_coords(x0 + 50, stub_y - half, x0 + 450, stub_y + half),
                        &format!("net{net}x"),
                    );
                    stats.space += 1;
                } else if (kind as f64) < spec.violation_rate * 100.0 {
                    // Width violation: a 12-wide wire (12 < 20).
                    push_named_rect(
                        &mut top,
                        tech::M2,
                        Rect::from_coords(x0, y_c - 6, x1, y_c + 6),
                        &format!("net{net}"),
                    );
                    stats.width += 1;
                } else {
                    push_named_rect(
                        &mut top,
                        tech::M2,
                        Rect::from_coords(x0, y_c - half, x1, y_c + half),
                        &format!("net{net}"),
                    );
                }
                row_wires.push((x0, x1, y_c));
                net += 1;
                made += 1;
                cursor = x1 + rng.gen_range(60..400);
            }
        }
    }

    // --- V1 vias (M1 pin <-> M2 wire) --------------------------------
    for row in 0..spec.rows {
        for &(x0, x1, y_c) in &m2_wires[row] {
            // Land on up to two pins under the wire span.
            let mut landed = 0;
            for &(kind_idx, cell_x) in &placements[row] {
                if landed >= 2 {
                    break;
                }
                let kind: &CellKind = &kinds[kind_idx];
                for &pin in &kind.pin_xs {
                    let px = cell_x + pin;
                    if px - 40 < x0 || px + 40 > x1 {
                        continue;
                    }
                    let half = tech::V1_SIZE / 2;
                    let (cx, cy, inject) = if rng.gen_bool(spec.violation_rate) {
                        // Enclosure violation: shift off the wire center.
                        (px, y_c + 8, true)
                    } else {
                        (px, y_c, false)
                    };
                    push_rect(
                        &mut top,
                        tech::V1,
                        Rect::from_coords(cx - half, cy - half, cx + half, cy + half),
                    );
                    if inject {
                        stats.enclosure += 1;
                    }
                    landed += 1;
                    break;
                }
            }
        }
    }

    // --- M3 routing (vertical, spanning the die) ---------------------
    // (x center, y0, y1) of each main bus wire, for via legality.
    let mut m3_wires_placed: Vec<(i32, i32, i32)> = Vec::new();
    let max_tracks = ((die_w - 200) / tech::M3_PITCH).max(1);
    for k in 0..spec.m3_wires {
        let track = (k as i32) % max_tracks;
        let x_c = 100 + track * tech::M3_PITCH;
        let half = tech::M3_WIRE_WIDTH / 2;
        let (y0, y1) = (
            rng.gen_range(0..die_h / 4),
            rng.gen_range(3 * die_h / 4..die_h),
        );
        if rng.gen_bool(spec.violation_rate / 2.0) && track + 1 < max_tracks {
            // Spacing violation: a stub 12 dbu to the right.
            let stub_x = x_c + tech::M3_WIRE_WIDTH + 12;
            push_named_rect(
                &mut top,
                tech::M3,
                Rect::from_coords(x_c - half, y0, x_c + half, y1),
                &format!("bus{k}"),
            );
            push_named_rect(
                &mut top,
                tech::M3,
                Rect::from_coords(stub_x - half, y0 + 100, stub_x + half, y0 + 700),
                &format!("bus{k}x"),
            );
            stats.space += 1;
        } else {
            push_named_rect(
                &mut top,
                tech::M3,
                Rect::from_coords(x_c - half, y0, x_c + half, y1),
                &format!("bus{k}"),
            );
        }
        m3_wires_placed.push((x_c, y0, y1));
    }

    // --- V2 vias (M2 wire <-> M3 wire crossings) ----------------------
    for row_wires in &m2_wires {
        for &(x0, x1, y_c) in row_wires {
            for &(x_c, m3_y0, m3_y1) in &m3_wires_placed {
                if x_c - 40 < x0 || x_c + 40 > x1 {
                    continue;
                }
                // The via must land where the M3 wire actually runs,
                // with room for the enclosure margin.
                if y_c - 20 < m3_y0 || y_c + 20 > m3_y1 {
                    continue;
                }
                if !rng.gen_bool(0.3) {
                    continue;
                }
                let half = tech::V2_SIZE / 2;
                let (cx, inject) = if rng.gen_bool(spec.violation_rate) {
                    (x_c + 11, true) // pokes out of the M3 wire
                } else {
                    (x_c, false)
                };
                push_rect(
                    &mut top,
                    tech::V2,
                    Rect::from_coords(cx - half, y_c - half, cx + half, y_c + half),
                );
                if inject {
                    stats.enclosure += 1;
                }
                break;
            }
        }
    }

    // Drop cell definitions the design never references, so the top
    // structure is unambiguous.
    let referenced: std::collections::HashSet<&str> = top
        .elements
        .iter()
        .filter_map(|e| match e {
            Element::Ref(r) => Some(r.sname.as_str()),
            _ => None,
        })
        .collect();
    lib.structures
        .retain(|s| referenced.contains(s.name.as_str()));
    lib.structures.push(top);
    Generated {
        library: lib,
        stats,
    }
}

/// Generates a design and imports it into the layout database.
///
/// # Panics
///
/// Panics if the generated library fails to import — generation is
/// deterministic and always produces a valid hierarchy, so a failure
/// here is a bug in the generator.
pub fn generate_layout(spec: &DesignSpec) -> Layout {
    let generated = generate(spec);
    Layout::from_library(&generated.library).expect("generated library is valid")
}

fn push_rect(top: &mut Structure, layer: odrc_db::Layer, r: Rect) {
    top.elements
        .push(Element::boundary(layer, r.corners().to_vec()));
}

fn push_named_rect(top: &mut Structure, layer: odrc_db::Layer, r: Rect, name: &str) {
    top.elements.push(Element::Boundary(BoundaryElement {
        layer,
        datatype: 0,
        points: r.corners().to_vec(),
        properties: vec![(1, name.to_owned())],
    }));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let spec = DesignSpec::tiny(11);
        let a = generate(&spec);
        let b = generate(&spec);
        assert_eq!(a.library, b.library);
        assert_eq!(a.stats, b.stats);
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(&DesignSpec::tiny(1));
        let b = generate(&DesignSpec::tiny(2));
        assert_ne!(a.library, b.library);
    }

    #[test]
    fn roundtrips_through_gdsii() {
        let design = generate(&DesignSpec::tiny(3));
        let bytes = odrc_gdsii::write(&design.library).unwrap();
        let back = odrc_gdsii::read(&bytes).unwrap();
        assert_eq!(back, design.library);
    }

    #[test]
    fn imports_into_layout() {
        let layout = generate_layout(&DesignSpec::tiny(4));
        let layers = layout.layers();
        for l in [tech::M1, tech::M2, tech::M3, tech::V1, tech::V2] {
            assert!(layers.contains(&l), "layer {l} missing");
        }
        // Hierarchy: placements exist under top.
        assert!(!layout.top_placements().is_empty());
        // M1 lives only inside cells, never at top level.
        let top = layout.cell(layout.top());
        assert!(top.polygons_on(tech::M1).next().is_none());
        assert!(top.polygons_on(tech::M2).next().is_some());
    }

    #[test]
    fn paper_designs_scale_ordering() {
        let uart = DesignSpec::paper("uart").unwrap();
        let ethmac = DesignSpec::paper("ethmac").unwrap();
        let jpeg = DesignSpec::paper("jpeg").unwrap();
        assert!(uart.rows < ethmac.rows);
        assert!(
            jpeg.m3_wires > ethmac.m3_wires,
            "jpeg is the M3-heavy design"
        );
        assert!(DesignSpec::paper("unknown").is_none());
        assert_eq!(DesignSpec::all_paper().len(), 6);
    }

    #[test]
    fn violations_injected_when_requested() {
        let mut spec = DesignSpec::tiny(5);
        spec.violation_rate = 0.3;
        let design = generate(&spec);
        let s = design.stats;
        assert!(s.width + s.space + s.area + s.enclosure > 0);
    }

    #[test]
    fn clean_design_has_no_injections() {
        let mut spec = DesignSpec::tiny(6);
        spec.violation_rate = 0.0;
        let design = generate(&spec);
        assert_eq!(design.stats, InjectionStats::default());
    }

    #[test]
    fn rows_are_m1_independent() {
        // The in-cell inset must keep M1 extents of adjacent rows apart.
        let layout = generate_layout(&DesignSpec::tiny(8));
        let polys = layout.flatten_layer(tech::M1);
        let row_of = |y: i32| y / tech::ROW_HEIGHT;
        for f in &polys {
            let mbr = f.polygon.mbr();
            assert_eq!(
                row_of(mbr.lo().y),
                row_of(mbr.hi().y),
                "M1 polygon crosses a row boundary: {mbr}"
            );
        }
    }
}
