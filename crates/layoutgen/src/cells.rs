//! The synthetic standard-cell library.
//!
//! Cells follow the shape of an ASAP7-style library: a fixed row height,
//! widths in whole placement sites, and M1 geometry (vertical bars with
//! occasional L-extensions) inset from the row boundary. Pin positions
//! (bar centers) are exported so the router can land V1 vias on them.

use odrc_gdsii::{Element, Structure};
use odrc_geometry::{Point, Rect};

use crate::tech;

/// A cell template: its structure definition plus placement metadata.
#[derive(Debug, Clone)]
pub struct CellKind {
    /// Structure name.
    pub name: String,
    /// Width in placement sites.
    pub sites: i32,
    /// X-coordinates of pin centers (cell-local), for via landing.
    pub pin_xs: Vec<i32>,
    /// The GDSII structure.
    pub structure: Structure,
    /// Number of M1 polygons that violate the width rule (for test
    /// accounting; non-zero only for the deliberately bad variants).
    pub bad_width_polygons: usize,
    /// Number of M1 polygons that violate the area rule.
    pub bad_area_polygons: usize,
}

fn rect_points(r: Rect) -> Vec<Point> {
    r.corners().to_vec()
}

/// Builds one cell: `sites` M1 bars, with an L-foot on bars selected by
/// `l_mask` (bit per site).
fn build_cell(name: &str, sites: i32, l_mask: u32) -> CellKind {
    let mut structure = Structure::new(name);
    let mut pin_xs = Vec::new();
    let y_lo = tech::CELL_INSET;
    let y_hi = tech::ROW_HEIGHT - tech::CELL_INSET;
    let half_bar = tech::M1_BAR_WIDTH / 2;
    for s in 0..sites {
        let xc = s * tech::SITE_WIDTH + tech::SITE_WIDTH / 2;
        pin_xs.push(xc);
        if l_mask & (1 << s) != 0 {
            // L-shaped bar: vertical bar plus a foot extending right.
            // Foot length 18 keeps >= 18 spacing to the next bar.
            let foot = 18;
            structure.elements.push(Element::boundary(
                tech::M1,
                vec![
                    Point::new(xc - half_bar, y_lo),
                    Point::new(xc - half_bar, y_hi),
                    Point::new(xc + half_bar, y_hi),
                    Point::new(xc + half_bar, y_lo + tech::M1_BAR_WIDTH),
                    Point::new(xc + half_bar + foot, y_lo + tech::M1_BAR_WIDTH),
                    Point::new(xc + half_bar + foot, y_lo),
                ],
            ));
        } else if s % 2 == 1 {
            // Split bar: two segments with an 18-dbu gap, like the
            // interrupted diffusion contacts of a real cell. The split
            // points keep every M2 routing track (60/108/156/204 within
            // the row) fully via-landable on both segments.
            structure.elements.push(Element::boundary(
                tech::M1,
                rect_points(Rect::from_coords(
                    xc - half_bar,
                    y_lo,
                    xc + half_bar,
                    y_lo + 96,
                )),
            ));
            structure.elements.push(Element::boundary(
                tech::M1,
                rect_points(Rect::from_coords(
                    xc - half_bar,
                    y_lo + 114,
                    xc + half_bar,
                    y_hi,
                )),
            ));
        } else {
            structure.elements.push(Element::boundary(
                tech::M1,
                rect_points(Rect::from_coords(xc - half_bar, y_lo, xc + half_bar, y_hi)),
            ));
        }
    }
    CellKind {
        name: name.to_owned(),
        sites,
        pin_xs,
        structure,
        bad_width_polygons: 0,
        bad_area_polygons: 0,
    }
}

/// A cell with one deliberately narrow M1 bar (width-rule violation).
fn build_bad_width_cell() -> CellKind {
    let mut kind = build_cell("INVBADW", 2, 0);
    let xc = 2 * tech::SITE_WIDTH + tech::SITE_WIDTH / 2;
    // A 12-wide bar: 12 < M1_WIDTH (18).
    kind.structure.elements.push(Element::boundary(
        tech::M1,
        rect_points(Rect::from_coords(
            xc - 6,
            tech::CELL_INSET,
            xc + 6,
            tech::ROW_HEIGHT - tech::CELL_INSET,
        )),
    ));
    kind.name = "INVBADW".to_owned();
    kind.sites = 3;
    kind.bad_width_polygons = 1;
    kind
}

/// A cell with one tiny M1 island (area-rule violation: 20x20 = 400 <
/// the 1400 minimum, while its width 20 passes the width rule).
fn build_bad_area_cell() -> CellKind {
    let mut kind = build_cell("FILLTINY", 1, 0);
    let xc = tech::SITE_WIDTH + tech::SITE_WIDTH / 2;
    kind.structure.elements.push(Element::boundary(
        tech::M1,
        rect_points(Rect::from_coords(xc - 10, 120, xc + 10, 140)),
    ));
    kind.name = "FILLTINY".to_owned();
    kind.sites = 2;
    kind.bad_area_polygons = 1;
    kind
}

/// Builds the full cell library.
///
/// The first [`CLEAN_KINDS`] entries are rule-clean; the last two are
/// the deliberate width/area violators used for violation injection.
pub fn library() -> Vec<CellKind> {
    vec![
        build_cell("FILL1", 1, 0),
        build_cell("INVX1", 2, 0b01),
        build_cell("BUFX2", 3, 0b010),
        build_cell("NAND2", 4, 0b0101),
        build_cell("NOR2", 4, 0b1010),
        build_cell("AOI21", 5, 0b00100),
        build_cell("DFFX1", 8, 0b0100_0010),
        build_bad_width_cell(),
        build_bad_area_cell(),
    ]
}

/// Number of rule-clean cell kinds at the front of [`library`].
pub const CLEAN_KINDS: usize = 7;

#[cfg(test)]
mod tests {
    use super::*;
    use odrc_gdsii::Element;

    #[test]
    fn library_shape() {
        let lib = library();
        assert_eq!(lib.len(), CLEAN_KINDS + 2);
        for kind in &lib {
            assert!(kind.sites >= 1);
            assert_eq!(
                kind.pin_xs.len() as i32,
                i32::min(kind.sites, kind.pin_xs.len() as i32)
            );
            assert!(!kind.structure.elements.is_empty());
        }
    }

    #[test]
    fn clean_cells_meet_spacing_and_width() {
        for kind in library().iter().take(CLEAN_KINDS) {
            let mut bars: Vec<Rect> = Vec::new();
            for e in &kind.structure.elements {
                let Element::Boundary(b) = e else { continue };
                let poly = odrc_geometry::Polygon::new(b.points.clone()).unwrap();
                bars.push(poly.mbr());
            }
            // Pairwise gaps respect the M1 spacing rule.
            for i in 0..bars.len() {
                for j in i + 1..bars.len() {
                    assert!(
                        bars[i].gap(bars[j]) >= tech::M1_SPACE,
                        "{}: bars {i} and {j} too close",
                        kind.name
                    );
                }
            }
            // Geometry stays inside the inset band.
            for b in &bars {
                assert!(b.lo().y >= tech::CELL_INSET);
                assert!(b.hi().y <= tech::ROW_HEIGHT - tech::CELL_INSET);
            }
        }
    }

    #[test]
    fn bad_cells_flagged() {
        let lib = library();
        let badw = lib.iter().find(|k| k.name == "INVBADW").unwrap();
        assert_eq!(badw.bad_width_polygons, 1);
        let bada = lib.iter().find(|k| k.name == "FILLTINY").unwrap();
        assert_eq!(bada.bad_area_polygons, 1);
    }

    #[test]
    fn pins_are_on_bars() {
        for kind in library().iter().take(CLEAN_KINDS) {
            for &x in &kind.pin_xs {
                let covered = kind.structure.elements.iter().any(|e| {
                    let Element::Boundary(b) = e else {
                        return false;
                    };
                    let poly = odrc_geometry::Polygon::new(b.points.clone()).unwrap();
                    let mbr = poly.mbr();
                    mbr.lo().x <= x && x <= mbr.hi().x
                });
                assert!(covered, "{}: pin at {x} not on any bar", kind.name);
            }
        }
    }

    #[test]
    fn split_bars_keep_via_tracks_landable() {
        // M2 tracks sit at 60/108/156/204 within the row; a via of size
        // V1_SIZE with M1 enclosure must fit on some segment at every
        // track for every pin column.
        for kind in library().iter().take(CLEAN_KINDS) {
            for &x in &kind.pin_xs {
                for track in [60, 108, 156, 204] {
                    let need_lo = track - tech::V1_SIZE / 2 - tech::V1_M1_ENCLOSURE as i32;
                    let need_hi = track + tech::V1_SIZE / 2 + tech::V1_M1_ENCLOSURE as i32;
                    let landable = kind.structure.elements.iter().any(|e| {
                        let Element::Boundary(b) = e else {
                            return false;
                        };
                        let poly = odrc_geometry::Polygon::new(b.points.clone()).unwrap();
                        let mbr = poly.mbr();
                        mbr.lo().x <= x
                            && x <= mbr.hi().x
                            && mbr.lo().y <= need_lo
                            && need_hi <= mbr.hi().y
                    });
                    assert!(
                        landable,
                        "{}: track {track} at pin {x} not landable",
                        kind.name
                    );
                }
            }
        }
    }
}
