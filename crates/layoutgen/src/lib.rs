//! Synthetic ASAP7-like benchmark layouts for OpenDRC.
//!
//! The paper evaluates on layouts "synthesized from OpenROAD with the
//! ASAP7 process design kit" (§VI). Neither tool is reproducible in a
//! self-contained Rust workspace, so this crate generates layouts with
//! the same *structural* properties the checks depend on (see DESIGN.md
//! §1): a hierarchical standard-cell placement in rows (odd rows
//! mirrored, one `AREF` filler strip), gridded M2/M3 routing, V1/V2
//! vias, realistic per-design size scaling for the six paper designs
//! (aes, ethmac, ibex, jpeg, sha3, uart), and a configurable rate of
//! injected rule violations.
//!
//! # Examples
//!
//! ```
//! use odrc_layoutgen::{generate_layout, tech, DesignSpec};
//!
//! let layout = generate_layout(&DesignSpec::tiny(1));
//! assert!(layout.layers().contains(&tech::M2));
//! ```

pub mod cells;
mod generate;
pub mod tech;

pub use generate::{generate, generate_layout, DesignSpec, Generated, InjectionStats};
