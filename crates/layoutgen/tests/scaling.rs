//! The benchmark designs must preserve the paper's relative character:
//! uart smallest, ethmac largest, jpeg M3-heavy.

use odrc_layoutgen::{generate_layout, tech, DesignSpec};

#[test]
fn design_sizes_follow_paper_ordering() {
    let count = |name: &str| {
        let layout = generate_layout(&DesignSpec::paper(name).expect("known design"));
        layout.instance_count(tech::M1)
    };
    let uart = count("uart");
    let ibex = count("ibex");
    let ethmac = count("ethmac");
    assert!(uart < ibex, "uart {uart} !< ibex {ibex}");
    assert!(ibex < ethmac, "ibex {ibex} !< ethmac {ethmac}");
}

#[test]
fn jpeg_is_m3_heavy() {
    let m3 = |name: &str| {
        let layout = generate_layout(&DesignSpec::paper(name).expect("known design"));
        layout.instance_count(tech::M3)
    };
    let jpeg = m3("jpeg");
    let ethmac = m3("ethmac");
    assert!(
        jpeg > 2 * ethmac,
        "jpeg ({jpeg}) must carry far more M3 than ethmac ({ethmac})"
    );
}

#[test]
fn designs_have_hierarchy_worth_reusing() {
    // Thousands of placements over nine cell kinds: the reuse ratio the
    // paper's §IV-C exploits.
    let layout = generate_layout(&DesignSpec::paper("uart").expect("known design"));
    let stats = layout.stats();
    assert!(
        stats.top_placements > 500,
        "{} placements",
        stats.top_placements
    );
    assert!(stats.cells <= 10, "{} cell kinds", stats.cells);
    let m1 = stats
        .per_layer
        .iter()
        .find(|l| l.layer == tech::M1)
        .expect("M1 present");
    assert!(
        m1.instantiated_polygons > 20 * m1.defined_polygons,
        "expansion ratio {} / {}",
        m1.instantiated_polygons,
        m1.defined_polygons
    );
}
