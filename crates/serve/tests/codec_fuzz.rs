//! Robustness fuzzing of the wire codecs: the JSON parser, the base64
//! codec, and the frame reader sit on the trust boundary — arbitrary
//! bytes from a hostile peer must produce a structured error or a
//! value, never a panic, and every well-formed frame must survive a
//! round trip unchanged.

use std::io::BufReader;

use odrc_serve::json::{self, base64, obj, Value};
use odrc_serve::proto::{read_frame_step, FrameStep};
use odrc_serve::MAX_FRAME_BYTES;
use proptest::prelude::*;

/// An arbitrary JSON value, depth-bounded by construction. The shim
/// has no recursive strategies, so nesting is built explicitly:
/// scalars at the leaves, one layer of arrays/objects per level.
fn scalar(tag: u8, n: i64, raw: &[u8]) -> Value {
    match tag % 5 {
        0 => Value::Null,
        1 => Value::Bool(n % 2 == 0),
        2 => Value::Int(n),
        3 => Value::Float((n as f64) / 16.0),
        // Strings come from raw bytes; lossy conversion keeps the
        // strategy total over byte soup.
        _ => Value::Str(String::from_utf8_lossy(raw).into_owned()),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn json_parse_never_panics_on_byte_soup(
        bytes in proptest::collection::vec(any::<u8>(), 0..512),
    ) {
        let text = String::from_utf8_lossy(&bytes);
        let _ = json::parse(&text);
    }

    #[test]
    fn json_parse_never_panics_on_structured_soup(
        parts in proptest::collection::vec(0u8..16, 0..64),
    ) {
        // Skewed toward JSON punctuation so the parser gets past the
        // first byte and into its nesting and literal states.
        let alphabet = b"{}[]\",:0e.-tfn ";
        let text: String = parts
            .iter()
            .map(|&i| alphabet[i as usize % alphabet.len()] as char)
            .collect();
        let _ = json::parse(&text);
    }

    #[test]
    fn base64_decode_never_panics(
        bytes in proptest::collection::vec(any::<u8>(), 0..256),
    ) {
        let text = String::from_utf8_lossy(&bytes);
        let _ = base64::decode(&text);
    }

    #[test]
    fn base64_round_trips(
        bytes in proptest::collection::vec(any::<u8>(), 0..256),
    ) {
        let encoded = base64::encode(&bytes);
        let decoded = base64::decode(&encoded).expect("own encoding decodes");
        prop_assert_eq!(decoded, bytes);
    }

    #[test]
    fn json_values_round_trip(
        entries in proptest::collection::vec(
            (0u8..5, any::<i64>(), proptest::collection::vec(any::<u8>(), 0..12)),
            0..8,
        ),
        shape in 0u8..3,
    ) {
        // One level of structure over arbitrary scalars.
        let leaves: Vec<Value> = entries
            .iter()
            .map(|(tag, n, raw)| scalar(*tag, *n, raw))
            .collect();
        let value = match shape {
            0 => Value::Array(leaves),
            1 => Value::Object(
                leaves
                    .into_iter()
                    .enumerate()
                    .map(|(i, v)| (format!("k{i}"), v))
                    .collect(),
            ),
            _ => Value::Array(vec![
                Value::Array(leaves.clone()),
                Value::Object(
                    leaves
                        .into_iter()
                        .enumerate()
                        .map(|(i, v)| (format!("k{i}"), v))
                        .collect(),
                ),
            ]),
        };
        let reparsed = json::parse(&value.to_json()).expect("own rendering parses");
        prop_assert_eq!(reparsed, value);
    }

    #[test]
    fn frame_reader_survives_arbitrary_chunking(
        bytes in proptest::collection::vec(any::<u8>(), 0..256),
        cut in 0usize..256,
    ) {
        // Any byte soup, split at an arbitrary point with a timeout in
        // between: the reader must never panic and never lose bytes of
        // a frame that does terminate.
        struct Chunked {
            chunks: Vec<Option<Vec<u8>>>,
        }
        impl std::io::Read for Chunked {
            fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
                match self.chunks.pop() {
                    Some(Some(chunk)) if !chunk.is_empty() => {
                        buf[..chunk.len()].copy_from_slice(&chunk);
                        Ok(chunk.len())
                    }
                    Some(Some(_)) => Ok(0),
                    Some(None) => Err(std::io::Error::from(std::io::ErrorKind::WouldBlock)),
                    None => Ok(0),
                }
            }
        }
        let cut = cut.min(bytes.len());
        let mut reader = BufReader::new(Chunked {
            chunks: vec![
                Some(bytes[cut..].to_vec()),
                None,
                Some(bytes[..cut].to_vec()),
            ],
        });
        let mut partial = Vec::new();
        for _ in 0..600 {
            if let Ok(FrameStep::Eof) = read_frame_step(&mut reader, &mut partial) {
                break;
            }
        }
    }
}

/// Every verb the protocol knows, rendered and reparsed: the frame a
/// client writes is the frame the server dispatches on.
#[test]
fn all_verb_frames_round_trip() {
    let frames = vec![
        obj([("verb", Value::from("hello"))]),
        obj([
            ("verb", Value::from("open")),
            ("gds_b64", Value::from(base64::encode(b"\x00\x06\x00\x02"))),
            ("rules", Value::from("width layer=1 min=2 name=R.1")),
            ("mode", Value::from("sequential")),
            ("shared_cache", Value::Bool(false)),
        ]),
        obj([
            ("verb", Value::from("edit")),
            ("session", Value::Int(3)),
            (
                "ops",
                Value::Array(vec![obj([("op", Value::from("noop"))])]),
            ),
        ]),
        obj([
            ("verb", Value::from("check")),
            ("session", Value::Int(3)),
            ("priority", Value::Int(-2)),
            ("deadline_ms", Value::Int(1500)),
            ("key", Value::from("nightly/top:deck@7")),
        ]),
        obj([("verb", Value::from("cancel")), ("job", Value::Int(9))]),
        obj([("verb", Value::from("stats"))]),
        obj([("verb", Value::from("health"))]),
        obj([("verb", Value::from("ping"))]),
        obj([("verb", Value::from("close")), ("session", Value::Int(3))]),
        obj([("verb", Value::from("shutdown"))]),
    ];
    for frame in frames {
        let reparsed = json::parse(&frame.to_json()).expect("frame parses");
        assert_eq!(reparsed, frame);
    }
}

/// The 64 MiB frame cap holds against an endless unterminated line —
/// the reader reports `TooLarge` instead of growing without bound.
#[test]
fn frame_cap_stops_an_endless_line() {
    struct Endless;
    impl std::io::Read for Endless {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            buf.fill(b'x');
            Ok(buf.len())
        }
    }
    let mut reader = BufReader::new(Endless);
    let mut partial = Vec::new();
    let err = loop {
        match read_frame_step(&mut reader, &mut partial) {
            Ok(_) => continue,
            Err(e) => break e,
        }
    };
    assert!(
        matches!(err, odrc_serve::ServeError::TooLarge { limit } if limit == MAX_FRAME_BYTES),
        "{err}"
    );
    assert!(err.fatal_to_connection());
}
