//! The acceptance anchor for `odrc serve`: concurrent tenants get
//! byte-identical results to a single-shot engine run, the shared
//! cache tier actually serves hits across clients, and a graceful
//! drain loses nothing in flight.

use std::fmt::Write as _;

use odrc::{parse_deck, Engine};
use odrc_db::Layout;
use odrc_layoutgen::{generate, DesignSpec};
use odrc_serve::json::Value;
use odrc_serve::{Client, Server, ServerConfig};

/// The ci.sh BEOL deck (minus the via rule — tiny generated layouts
/// carry layers 19/20/30, uart carries all of them).
const RULES: &str = "width     layer=19 min=18   name=M1.W.1\n\
                     space     layer=20 min=20   name=M2.S.1\n\
                     area      layer=19 min=1400 name=M1.A.1\n\
                     enclosure inner=30 outer=19 min=4 name=V1.M1.EN.1\n\
                     rectilinear\n";

fn uart_bytes() -> Vec<u8> {
    let spec = DesignSpec::paper("uart").expect("uart is a paper design");
    odrc_gdsii::write(&generate(&spec).library).expect("write gds")
}

/// What the one-shot path reports: the CLI `--report` CSV plus the
/// violation count, straight from a solo sequential engine.
fn single_shot_csv(gds: &[u8]) -> (usize, String) {
    let lib = odrc_gdsii::read(gds).expect("read gds");
    let layout = Layout::from_library(&lib).expect("layout");
    let deck = parse_deck(RULES).expect("deck");
    let report = Engine::sequential().check(&layout, &deck);
    let mut csv = String::from("rule,kind,x0,y0,x1,y1,measured\n");
    for v in &report.violations {
        let _ = writeln!(
            csv,
            "{},{},{},{},{},{},{}",
            v.rule,
            v.kind,
            v.location.lo().x,
            v.location.lo().y,
            v.location.hi().x,
            v.location.hi().y,
            v.measured
        );
    }
    (report.violations.len(), csv)
}

#[test]
fn concurrent_clients_match_single_shot_and_share_the_cache() {
    let gds = uart_bytes();
    let (expected_count, expected_csv) = single_shot_csv(&gds);
    assert!(expected_count > 0, "uart carries injected violations");

    let server = Server::bind(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 4,
        host_threads: 4,
        max_queue: 16,
        cache_dir: None,
        device_workers: 1,
        device_budget: None,
        ..ServerConfig::default()
    })
    .expect("bind");
    let addr = server.addr();
    let handle = server.handle();
    let server_thread = std::thread::spawn(move || server.run().expect("server run"));

    // Four clients, truly concurrent: every one opens its own session
    // on the same layout and deck and submits a check. All four jobs
    // multiplex over the shared ThreadGate and scheduler — and every
    // one must report exactly what the solo engine reports.
    let outcomes: Vec<_> = (0..4)
        .map(|i| {
            let gds = gds.clone();
            let expected_csv = expected_csv.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                let session = client
                    .open_bytes(&gds, RULES, "sequential")
                    .expect("open session");
                let outcome = client
                    .check_wait(session, i as i64, None)
                    .expect("check job");
                assert!(outcome.error.is_none(), "client {i}: {:?}", outcome.error);
                assert_eq!(outcome.exit, 1, "client {i} must see the violations");
                assert_eq!(
                    outcome.report_csv(),
                    expected_csv,
                    "client {i}'s report must be byte-identical to the single-shot run"
                );
                // Every rule of the deck reported progress.
                let mut rules: Vec<&str> = outcome
                    .rules
                    .iter()
                    .map(|(name, _)| name.as_str())
                    .collect();
                rules.sort_unstable();
                rules.dedup();
                assert_eq!(rules.len(), 5, "five deck rules streamed progress");
                client.close(session).expect("close");
                (
                    outcome.stat("cache_hits_shared"),
                    outcome.stat("queue_wait_ms"),
                )
            })
        })
        .collect::<Vec<_>>()
        .into_iter()
        .map(|t| t.join().expect("client thread"))
        .collect();
    assert_eq!(outcomes.len(), 4);

    // A fifth client submits the identical layout afterwards: by now
    // at least one job has merged its verdicts into the shared tier,
    // so this job must be served from it — same bytes out, nonzero
    // shared-hit stat.
    let mut fifth = Client::connect(addr).expect("connect fifth");
    let session = fifth
        .open_bytes(&gds, RULES, "sequential")
        .expect("open fifth");
    let outcome = fifth.check_wait(session, 0, None).expect("check fifth");
    assert_eq!(outcome.exit, 1);
    assert_eq!(
        outcome.report_csv(),
        expected_csv,
        "a cache-served job must still be byte-identical"
    );
    assert!(
        outcome.stat("cache_hits_shared") > 0,
        "fifth client must hit the shared cache tier, stats: {}",
        outcome.stats.to_json()
    );

    // The server-wide counters agree.
    let stats = fifth.stats().expect("stats verb");
    assert_eq!(
        stats.get("jobs_admitted").and_then(Value::as_i64),
        Some(5),
        "{}",
        stats.to_json()
    );
    assert!(
        stats
            .get("cache_hits_shared")
            .and_then(Value::as_i64)
            .unwrap_or(0)
            > 0
    );
    assert!(
        stats
            .get("cache_entries")
            .and_then(Value::as_i64)
            .unwrap_or(0)
            > 0
    );

    // Graceful drain: all five jobs completed, nothing lost.
    handle.shutdown();
    let summary = server_thread.join().expect("join server");
    assert_eq!(summary.jobs_completed, 5);
    assert!(summary.cache_hits_shared > 0);
}

#[test]
fn edits_diverge_sessions_and_results_stay_isolated() {
    // Two tenants on the same layout; one deletes a polygon from the
    // top cell. Their results must diverge exactly as two solo runs
    // would — sessions share the cache tier, never state.
    let gds = uart_bytes();
    let server = Server::bind(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        host_threads: 2,
        max_queue: 8,
        cache_dir: None,
        device_workers: 1,
        device_budget: None,
        ..ServerConfig::default()
    })
    .expect("bind");
    let addr = server.addr();
    let handle = server.handle();
    let server_thread = std::thread::spawn(move || server.run().expect("server run"));

    let mut untouched = Client::connect(addr).expect("connect untouched");
    let keep = untouched
        .open_bytes(&gds, RULES, "sequential")
        .expect("open untouched");

    let mut editor = Client::connect(addr).expect("connect editor");
    let edited = editor
        .open_bytes(&gds, RULES, "sequential")
        .expect("open edited");

    // Baseline check on both sessions, then edit only one.
    let before_keep = untouched.check_wait(keep, 0, None).expect("baseline keep");
    let before_edit = editor.check_wait(edited, 0, None).expect("baseline edit");
    assert_eq!(before_keep.report_csv(), before_edit.report_csv());

    // Cell 0's polygon 0 goes away in the edited session. (The
    // generated designs give every cell some geometry, so index 0
    // exists; if generation ever changes, the typed Edit error makes
    // the failure obvious.)
    let op = odrc_serve::json::parse(r#"{"op":"remove_polygon","cell":0,"index":0}"#).unwrap();
    editor.edit(edited, vec![op]).expect("apply edit");

    let after_keep = untouched.check_wait(keep, 0, None).expect("recheck keep");
    let after_edit = editor.check_wait(edited, 0, None).expect("recheck edit");

    assert_eq!(
        after_keep.report_csv(),
        before_keep.report_csv(),
        "the untouched session must be unaffected by the other tenant's edit"
    );
    assert!(
        !after_edit.full_run,
        "the edited session re-checks incrementally, not from scratch"
    );

    // The edited session's report must equal a solo engine run on the
    // equivalently edited layout.
    let lib = odrc_gdsii::read(&gds).expect("read gds");
    let layout = Layout::from_library(&lib).expect("layout");
    let deck = parse_deck(RULES).expect("deck");
    let mut solo = odrc_incremental::Session::new(layout, Engine::sequential(), deck);
    solo.check();
    solo.apply(odrc_incremental::EditOp::RemovePolygon {
        cell: odrc_db::CellId::from_index(0),
        index: 0,
    })
    .expect("solo edit");
    let solo_report = solo.check();
    let mut solo_csv = String::from("rule,kind,x0,y0,x1,y1,measured\n");
    for v in &solo_report.violations {
        let _ = writeln!(
            solo_csv,
            "{},{},{},{},{},{},{}",
            v.rule,
            v.kind,
            v.location.lo().x,
            v.location.lo().y,
            v.location.hi().x,
            v.location.hi().y,
            v.measured
        );
    }
    assert_eq!(
        after_edit.report_csv(),
        solo_csv,
        "served incremental result must match a solo incremental session"
    );

    handle.shutdown();
    server_thread.join().expect("join server");
}
