//! The server-level chaos sweep: a real `odrc serve` process with a
//! seeded fault plan (socket resets, torn journal tails, worker
//! panics, SIGKILL-modelled aborts at journal and rule ordinals) is
//! driven by a real `odrc client` process retrying one idempotency
//! key. Whatever the faults do — including killing the server
//! outright, after which the harness restarts it on the same
//! checkpoint and cache directories — the client must end up with a
//! report byte-identical to the fault-free baseline and the same exit
//! code, and the server must still be serving.

use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use odrc_layoutgen::{generate, DesignSpec};

const RULES: &str = "width layer=19 min=18 name=M1.W.1\n\
                     space layer=20 min=20 name=M2.S.1\n\
                     area layer=19 min=1400 name=M1.A.1\n";

const SEEDS: u64 = 25;
const FAULTS_PER_SEED: usize = 4;

fn odrc_bin() -> &'static str {
    env!("CARGO_BIN_EXE_odrc")
}

/// Kills the server process on drop so a failing assertion never
/// leaks a daemon into the test environment.
struct ServerProc {
    child: Child,
    addr: String,
}

impl ServerProc {
    /// Spawns `odrc serve` on an ephemeral port and waits for its
    /// port file. `chaos_seed` arms the fault plan; `None` runs clean.
    fn spawn(dir: &Path, tag: &str, chaos_seed: Option<u64>) -> ServerProc {
        let port_file = dir.join(format!("port-{tag}"));
        let _ = std::fs::remove_file(&port_file);
        let mut cmd = Command::new(odrc_bin());
        cmd.args(["serve", "--addr", "127.0.0.1:0", "--workers", "2"])
            .args(["--host-threads", "2", "--io-timeout-ms", "2000"])
            .arg("--port-file")
            .arg(&port_file)
            .arg("--checkpoint-dir")
            .arg(dir.join("ckpt"))
            .arg("--cache")
            .arg(dir.join("cache"))
            .stdout(Stdio::null())
            .stderr(Stdio::null());
        if let Some(seed) = chaos_seed {
            cmd.args(["--chaos-seed", &seed.to_string()])
                .args(["--chaos-faults", &FAULTS_PER_SEED.to_string()]);
        }
        let mut child = cmd.spawn().expect("spawn odrc serve");
        let deadline = Instant::now() + Duration::from_secs(30);
        let addr = loop {
            if let Ok(text) = std::fs::read_to_string(&port_file) {
                let text = text.trim().to_string();
                if !text.is_empty() {
                    break text;
                }
            }
            if let Ok(Some(status)) = child.try_wait() {
                panic!("server {tag} exited before binding: {status}");
            }
            assert!(Instant::now() < deadline, "server {tag} never bound");
            std::thread::sleep(Duration::from_millis(20));
        };
        ServerProc { child, addr }
    }

    fn is_alive(&mut self) -> bool {
        matches!(self.child.try_wait(), Ok(None))
    }
}

impl Drop for ServerProc {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

struct Fixture {
    gds: PathBuf,
    rules: PathBuf,
}

fn make_fixture(dir: &Path) -> Fixture {
    let gds = dir.join("tiny.gds");
    let rules = dir.join("deck.rules");
    let bytes = odrc_gdsii::write(&generate(&DesignSpec::tiny(42)).library).expect("write gds");
    std::fs::write(&gds, bytes).expect("write layout");
    std::fs::write(&rules, RULES).expect("write rules");
    Fixture { gds, rules }
}

/// One `odrc client` invocation with internal reconnect/backoff;
/// returns (exit_code, report_bytes_if_written).
fn run_client(fixture: &Fixture, addr: &str, key: &str, report: &Path) -> (i32, Option<Vec<u8>>) {
    let _ = std::fs::remove_file(report);
    let mut child = Command::new(odrc_bin())
        .arg("client")
        .arg(&fixture.gds)
        .arg("--rules")
        .arg(&fixture.rules)
        .args(["--addr", addr, "--key", key])
        .args([
            "--retries",
            "3",
            "--backoff-ms",
            "50",
            "--backoff-cap-ms",
            "250",
        ])
        .arg("--report")
        .arg(report)
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("run odrc client");
    // Watchdog: a client stranded by an unmodelled fault counts as a
    // failed attempt, never as a hung sweep.
    let deadline = Instant::now() + Duration::from_secs(120);
    let code = loop {
        match child.try_wait().expect("poll client") {
            Some(status) => break status.code().unwrap_or(-1),
            None if Instant::now() >= deadline => {
                let _ = child.kill();
                let _ = child.wait();
                break -1;
            }
            None => std::thread::sleep(Duration::from_millis(20)),
        }
    };
    (code, std::fs::read(report).ok())
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("odrc-chaos-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

#[test]
fn seeded_kill_restart_resubmit_sweep_preserves_reports_and_exit_codes() {
    // Fault-free baseline, once: the report and exit code every seed
    // must reproduce exactly.
    let base_dir = temp_dir("baseline");
    let fixture = make_fixture(&base_dir);
    let (baseline_exit, baseline_report) = {
        let server = ServerProc::spawn(&base_dir, "base", None);
        run_client(
            &fixture,
            &server.addr,
            "baseline",
            &base_dir.join("base.csv"),
        )
    };
    let baseline_report = baseline_report.expect("baseline report written");
    assert!(
        (0..=4).contains(&baseline_exit),
        "baseline exit {baseline_exit} out of the CLI range"
    );

    for seed in 1..=SEEDS {
        let dir = temp_dir(&format!("seed-{seed}"));
        let fixture = make_fixture(&dir);
        let key = format!("sweep-{seed}");
        let report = dir.join("report.csv");

        let mut server = ServerProc::spawn(&dir, "chaos", Some(seed));
        let mut result: Option<(i32, Vec<u8>)> = None;
        let mut restarts = 0u32;
        for _attempt in 0..12 {
            let (exit, bytes) = run_client(&fixture, &server.addr, &key, &report);
            if (0..=4).contains(&exit) && exit != 2 {
                if let Some(bytes) = bytes {
                    result = Some((exit, bytes));
                    break;
                }
            }
            if !server.is_alive() {
                // The fault plan killed the process — the crash half
                // of the contract. Restart clean on the same
                // directories; the journal replay is the recovery
                // half.
                server = ServerProc::spawn(&dir, &format!("restart-{restarts}"), None);
                restarts += 1;
            }
        }
        let (exit, bytes) = result.unwrap_or_else(|| {
            panic!("seed {seed}: no successful run in 12 attempts ({restarts} restarts)")
        });
        assert_eq!(
            exit, baseline_exit,
            "seed {seed}: exit code diverged after {restarts} restart(s)"
        );
        assert_eq!(
            bytes, baseline_report,
            "seed {seed}: report bytes diverged after {restarts} restart(s)"
        );

        // The server (original or restarted) must still be serving:
        // the same key replays the journaled result byte-identically.
        assert!(server.is_alive(), "seed {seed}: server gone after success");
        let replay = dir.join("replay.csv");
        let (replay_exit, replay_bytes) = run_client(&fixture, &server.addr, &key, &replay);
        assert_eq!(replay_exit, baseline_exit, "seed {seed}: replay exit");
        assert_eq!(
            replay_bytes.expect("replay report"),
            baseline_report,
            "seed {seed}: replayed report diverged"
        );

        drop(server);
        let _ = std::fs::remove_dir_all(&dir);
    }
    let _ = std::fs::remove_dir_all(&base_dir);
}
