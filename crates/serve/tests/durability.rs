//! Crash-safe serving: idempotency keys, the durable job journal, and
//! restart replay. Every test drives a live in-process server; the
//! "restart" tests bind a second server on the same checkpoint
//! directory, which is exactly what a process restart does.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use odrc_layoutgen::{generate, DesignSpec};
use odrc_serve::json::{self, base64, Value};
use odrc_serve::{
    Client, JobJournal, JobSpec, Server, ServerConfig, ServerFault, ServerFaultPlan, ServerHandle,
};

const RULES: &str = "width layer=19 min=18 name=M1.W.1\n\
                     space layer=20 min=20 name=M2.S.1\n\
                     area layer=19 min=1400 name=M1.A.1\n";

fn tiny_gds(seed: u64) -> Vec<u8> {
    odrc_gdsii::write(&generate(&DesignSpec::tiny(seed)).library).expect("write gds")
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("odrc-durability-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

struct TestServer {
    addr: std::net::SocketAddr,
    handle: ServerHandle,
    join: Option<std::thread::JoinHandle<odrc_serve::DrainSummary>>,
}

impl TestServer {
    fn start(config: ServerConfig) -> TestServer {
        let server = Server::bind(config).expect("bind test server");
        let addr = server.addr();
        let handle = server.handle();
        let join = std::thread::spawn(move || server.run().expect("server run"));
        TestServer {
            addr,
            handle,
            join: Some(join),
        }
    }

    fn durable(checkpoint_dir: &std::path::Path) -> TestServer {
        TestServer::start(ServerConfig {
            workers: 2,
            host_threads: 2,
            max_queue: 8,
            checkpoint_dir: Some(checkpoint_dir.to_path_buf()),
            ..ServerConfig::default()
        })
    }

    fn shutdown(mut self) -> odrc_serve::DrainSummary {
        self.handle.shutdown();
        self.join
            .take()
            .expect("not yet joined")
            .join()
            .expect("join server")
    }
}

impl Drop for TestServer {
    fn drop(&mut self) {
        self.handle.shutdown();
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
    }
}

fn server_stat(client: &mut Client, key: &str) -> i64 {
    let stats = client.stats().expect("stats");
    stats.get(key).and_then(Value::as_i64).unwrap_or(-1)
}

#[test]
fn keyed_resubmit_replays_the_result_without_rerunning() {
    let dir = temp_dir("replay");
    let server = TestServer::durable(&dir);
    let gds = tiny_gds(11);

    let mut client = Client::connect(server.addr).expect("connect");
    let session = client.open_bytes(&gds, RULES, "sequential").expect("open");
    let job = client
        .check_with_key(session, 0, None, Some("nightly-11"))
        .expect("submit");
    let first = client.wait(job).expect("wait").into_result().expect("run");
    assert!(first.exit == 0 || first.exit == 1, "clean terminal run");
    let completed_after_first = server_stat(&mut client, "jobs_completed");

    // Same key, fresh connection: the journaled result comes back
    // byte-identical (CSV report and exit code) and nothing re-runs.
    let mut again = Client::connect(server.addr).expect("reconnect");
    let session = again.open_bytes(&gds, RULES, "sequential").expect("open");
    let job = again
        .check_with_key(session, 0, None, Some("nightly-11"))
        .expect("resubmit");
    let second = again.wait(job).expect("wait").into_result().expect("run");
    assert_eq!(second.report_csv(), first.report_csv(), "byte-identical");
    assert_eq!(second.exit, first.exit);
    assert_eq!(
        server_stat(&mut again, "jobs_completed"),
        completed_after_first,
        "a replayed key must not admit a second run"
    );

    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn raw_resubmit_carries_the_replayed_flag_and_a_fresh_job_id() {
    let dir = temp_dir("flag");
    let server = TestServer::durable(&dir);
    let gds = tiny_gds(12);

    let mut client = Client::connect(server.addr).expect("connect");
    let session = client.open_bytes(&gds, RULES, "sequential").expect("open");
    let job = client
        .check_with_key(session, 0, None, Some("k-flag"))
        .expect("submit");
    let first = client.wait(job).expect("wait").into_result().expect("run");

    // Resubmit over a raw socket so the response envelope is visible.
    let mut stream = TcpStream::connect(server.addr).expect("connect raw");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let open = json::obj([
        ("verb", Value::from("open")),
        ("gds_b64", Value::from(base64::encode(&gds))),
        ("rules", Value::from(RULES)),
    ]);
    stream
        .write_all((open.to_json() + "\n").as_bytes())
        .expect("send open");
    let mut line = String::new();
    reader.read_line(&mut line).expect("open reply");
    let open_reply = json::parse(line.trim_end()).expect("json");
    let raw_session = open_reply.get("session").and_then(Value::as_i64).unwrap();

    let check = json::obj([
        ("verb", Value::from("check")),
        ("session", Value::Int(raw_session)),
        ("key", Value::from("k-flag")),
    ]);
    stream
        .write_all((check.to_json() + "\n").as_bytes())
        .expect("send check");

    // Three frames come back: the queued event, the journaled
    // terminal frame, and the ok-reply with the replayed flag.
    let mut saw_replayed_reply = false;
    let mut terminal: Option<Value> = None;
    for _ in 0..8 {
        let mut line = String::new();
        reader.read_line(&mut line).expect("read frame");
        let frame = json::parse(line.trim_end()).expect("json frame");
        if frame.get("ok").and_then(Value::as_bool) == Some(true)
            && frame.get("replayed").and_then(Value::as_bool) == Some(true)
        {
            saw_replayed_reply = true;
        }
        if frame.get("event").and_then(Value::as_str) == Some("done") {
            terminal = Some(frame);
        }
        if saw_replayed_reply && terminal.is_some() {
            break;
        }
    }
    assert!(saw_replayed_reply, "reply must carry replayed:true");
    let terminal = terminal.expect("terminal frame replayed");
    let replay_job = terminal.get("job").and_then(Value::as_i64).unwrap();
    assert_ne!(
        replay_job as u64, first.job,
        "replayed frames get a fresh job id"
    );
    assert_eq!(
        terminal.get("exit").and_then(Value::as_i64),
        Some(first.exit),
        "journaled exit code survives the replay"
    );

    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn restart_replays_finished_jobs_from_the_journal() {
    let dir = temp_dir("restart-done");
    let gds = tiny_gds(13);

    let first = {
        let server = TestServer::durable(&dir);
        let mut client = Client::connect(server.addr).expect("connect");
        let session = client.open_bytes(&gds, RULES, "sequential").expect("open");
        let job = client
            .check_with_key(session, 0, None, Some("k-restart"))
            .expect("submit");
        let outcome = client.wait(job).expect("wait").into_result().expect("run");
        server.shutdown();
        outcome
    };

    // A new server on the same checkpoint directory — the process
    // restart — must answer the key from the journal without running
    // anything.
    let server = TestServer::durable(&dir);
    let mut client = Client::connect(server.addr).expect("connect");
    let session = client.open_bytes(&gds, RULES, "sequential").expect("open");
    let job = client
        .check_with_key(session, 0, None, Some("k-restart"))
        .expect("resubmit");
    let second = client.wait(job).expect("wait").into_result().expect("run");
    assert_eq!(second.report_csv(), first.report_csv());
    assert_eq!(second.exit, first.exit);
    assert_eq!(
        server_stat(&mut client, "jobs_completed"),
        0,
        "replay must not re-run the job"
    );

    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn restart_re_admits_interrupted_jobs_and_finishes_them_headless() {
    let dir = temp_dir("restart-pending");
    let gds = tiny_gds(14);

    // Model a server killed between admission and completion: the
    // journal holds the admit record (with the layout snapshot) and
    // nothing else — exactly what a crash mid-run leaves behind.
    {
        let (mut journal, replayed) = JobJournal::open_dir(&dir).expect("open journal");
        assert!(replayed.is_empty());
        journal
            .record_admit(
                &JobSpec {
                    key: "k-pending".to_string(),
                    gds: gds.clone(),
                    rules: RULES.to_string(),
                    mode: "sequential".to_string(),
                    priority: 0,
                    deadline_ms: None,
                },
                None,
            )
            .expect("journal admit");
    }

    // Bind replays the journal and re-admits the job headless; it
    // runs to completion with no client attached.
    let server = TestServer::durable(&dir);
    let mut client = Client::connect(server.addr).expect("connect");
    let deadline = Instant::now() + Duration::from_secs(60);
    while server_stat(&mut client, "jobs_completed") < 1 {
        assert!(
            Instant::now() < deadline,
            "re-admitted job must finish on its own"
        );
        std::thread::sleep(Duration::from_millis(50));
    }

    // The resubmitting client now replays the headless run's result,
    // byte-identical to submitting against a fresh server.
    let session = client.open_bytes(&gds, RULES, "sequential").expect("open");
    let job = client
        .check_with_key(session, 0, None, Some("k-pending"))
        .expect("resubmit");
    let replayed = client.wait(job).expect("wait").into_result().expect("run");

    let baseline = {
        let bdir = temp_dir("restart-pending-baseline");
        let bserver = TestServer::durable(&bdir);
        let mut bclient = Client::connect(bserver.addr).expect("connect");
        let session = bclient.open_bytes(&gds, RULES, "sequential").expect("open");
        let outcome = bclient
            .check_wait(session, 0, None)
            .expect("baseline check");
        bserver.shutdown();
        let _ = std::fs::remove_dir_all(&bdir);
        outcome
    };
    assert_eq!(replayed.report_csv(), baseline.report_csv());
    assert_eq!(replayed.exit, baseline.exit);

    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn worker_panic_leaves_the_key_retryable_and_the_retry_converges() {
    let dir = temp_dir("panic-retry");
    let gds = tiny_gds(15);
    // One injected worker panic on the first job start; the plan is
    // one-shot, so the resubmission runs clean.
    let server = TestServer::start(ServerConfig {
        workers: 2,
        host_threads: 2,
        max_queue: 8,
        checkpoint_dir: Some(dir.clone()),
        chaos: Some(ServerFaultPlan::new().with(ServerFault::WorkerPanic { nth: 0 })),
        ..ServerConfig::default()
    });

    let mut client = Client::connect(server.addr).expect("connect");
    let session = client.open_bytes(&gds, RULES, "sequential").expect("open");
    let job = client
        .check_with_key(session, 0, None, Some("k-panic"))
        .expect("submit");
    let crashed = client.wait(job).expect("wait");
    assert!(crashed.error.is_some(), "injected panic reaches the client");
    assert_eq!(crashed.error_code, Some(110));

    // A panic is transient by policy: the journal still holds the
    // admission, the registry no longer pins the key, so the same key
    // re-runs — this time to completion.
    let job = client
        .check_with_key(session, 0, None, Some("k-panic"))
        .expect("resubmit");
    let ok = client.wait(job).expect("wait").into_result().expect("run");
    assert!(ok.error.is_none());
    assert!(ok.exit == 0 || ok.exit == 1);

    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn health_reports_liveness_and_durability() {
    let dir = temp_dir("health");
    let server = TestServer::durable(&dir);
    let mut client = Client::connect(server.addr).expect("connect");
    client.ping().expect("ping round-trips");
    let health = client.health().expect("health");
    assert_eq!(health.get("ok").and_then(Value::as_bool), Some(true));
    assert_eq!(health.get("draining").and_then(Value::as_bool), Some(false));
    assert_eq!(health.get("durable").and_then(Value::as_bool), Some(true));
    assert!(health.get("uptime_ms").and_then(Value::as_i64).is_some());
    assert_eq!(health.get("queue_depth").and_then(Value::as_i64), Some(0));
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
