//! Protocol robustness: a hostile or sloppy client must get typed
//! errors — never a panic — and must not be able to poison the server
//! for other tenants. Each test speaks to a live in-process server
//! over real sockets.

use std::io::{BufRead, BufReader, Write};
use std::net::{Shutdown, TcpStream};
use std::time::{Duration, Instant};

use odrc_layoutgen::{generate, DesignSpec};
use odrc_serve::json::{self, Value};
use odrc_serve::{Client, ClientError, Server, ServerConfig, ServerHandle};

const RULES: &str = "width layer=19 min=18 name=M1.W.1\n\
                     space layer=20 min=20 name=M2.S.1\n\
                     area layer=19 min=1400 name=M1.A.1\n";

fn tiny_gds(seed: u64) -> Vec<u8> {
    odrc_gdsii::write(&generate(&DesignSpec::tiny(seed)).library).expect("write gds")
}

struct TestServer {
    addr: std::net::SocketAddr,
    handle: ServerHandle,
    join: Option<std::thread::JoinHandle<odrc_serve::DrainSummary>>,
}

impl TestServer {
    fn start() -> TestServer {
        let server = Server::bind(ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            host_threads: 2,
            max_queue: 8,
            cache_dir: None,
            device_workers: 1,
            device_budget: None,
            ..ServerConfig::default()
        })
        .expect("bind test server");
        let addr = server.addr();
        let handle = server.handle();
        let join = std::thread::spawn(move || server.run().expect("server run"));
        TestServer {
            addr,
            handle,
            join: Some(join),
        }
    }

    fn shutdown(mut self) -> odrc_serve::DrainSummary {
        self.handle.shutdown();
        self.join
            .take()
            .expect("not yet joined")
            .join()
            .expect("join server")
    }
}

impl Drop for TestServer {
    fn drop(&mut self) {
        self.handle.shutdown();
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
    }
}

fn send_line(stream: &mut TcpStream, line: &str) {
    stream.write_all(line.as_bytes()).expect("send");
    stream.write_all(b"\n").expect("send newline");
}

fn read_response(reader: &mut BufReader<TcpStream>) -> Value {
    let mut line = String::new();
    reader.read_line(&mut line).expect("read response");
    json::parse(line.trim_end()).expect("response is json")
}

fn error_code(v: &Value) -> i64 {
    assert_eq!(v.get("ok").and_then(Value::as_bool), Some(false), "{v:?}");
    v.get("code").and_then(Value::as_i64).expect("error code")
}

#[test]
fn malformed_frames_get_typed_errors_and_the_connection_survives() {
    let server = TestServer::start();
    let mut stream = TcpStream::connect(server.addr).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));

    // Garbage JSON, wrong top-level type, unknown verb, missing
    // fields, dangling ids — every one a typed code, none fatal.
    for (frame, code) in [
        ("this is not json", 100),
        ("[1,2,3]", 100),
        ("{\"verb\":42}", 100),
        ("{\"no_verb\":true}", 100),
        ("{\"verb\":\"frobnicate\"}", 102),
        ("{\"verb\":\"check\"}", 100),
        ("{\"verb\":\"check\",\"session\":9999}", 103),
        ("{\"verb\":\"cancel\",\"job\":9999}", 104),
        ("{\"verb\":\"close\",\"session\":9999}", 103),
        ("{\"verb\":\"edit\",\"session\":9999,\"ops\":[]}", 103),
        ("{\"verb\":\"open\",\"rules\":\"width layer=1 min=2\"}", 100),
        (
            "{\"verb\":\"open\",\"gds_b64\":\"!!!\",\"rules\":\"x\"}",
            107,
        ),
    ] {
        send_line(&mut stream, frame);
        let response = read_response(&mut reader);
        assert_eq!(
            error_code(&response),
            code,
            "frame {frame:?} -> {response:?}"
        );
    }

    // Same connection still answers a well-formed request.
    send_line(&mut stream, "{\"verb\":\"hello\"}");
    let hello = read_response(&mut reader);
    assert_eq!(hello.get("ok").and_then(Value::as_bool), Some(true));

    server.shutdown();
}

#[test]
fn bad_rule_decks_and_bad_layouts_are_typed_errors() {
    let server = TestServer::start();
    let mut stream = TcpStream::connect(server.addr).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));

    // Valid base64 that is not GDSII.
    send_line(
        &mut stream,
        "{\"verb\":\"open\",\"gds_b64\":\"aGVsbG8=\",\"rules\":\"width layer=1 min=2\"}",
    );
    assert_eq!(error_code(&read_response(&mut reader)), 107);

    // Valid GDSII, garbage deck.
    let b64 = json::base64::encode(&tiny_gds(1));
    send_line(
        &mut stream,
        &format!("{{\"verb\":\"open\",\"gds_b64\":\"{b64}\",\"rules\":\"frob quux\"}}"),
    );
    assert_eq!(error_code(&read_response(&mut reader)), 108);

    // Valid GDSII + valid deck + bogus mode.
    send_line(
        &mut stream,
        &format!(
            "{{\"verb\":\"open\",\"gds_b64\":\"{b64}\",\"rules\":\"width layer=19 min=18\",\
             \"mode\":\"quantum\"}}"
        ),
    );
    assert_eq!(error_code(&read_response(&mut reader)), 100);

    server.shutdown();
}

#[test]
fn oversized_frame_is_reported_and_fatal_but_server_lives_on() {
    let server = TestServer::start();
    let mut stream = TcpStream::connect(server.addr).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));

    // Stream > MAX_FRAME_BYTES without a newline. The server reports
    // code 101 and drops the connection; depending on timing our
    // writes may start failing first (the socket is already closed),
    // which is equally acceptable — what matters is the server's
    // health afterwards.
    let chunk = vec![b'a'; 1 << 20];
    let mut sent = 0usize;
    let mut write_failed = false;
    while sent <= odrc_serve::MAX_FRAME_BYTES {
        match stream.write_all(&chunk) {
            Ok(()) => sent += chunk.len(),
            Err(_) => {
                write_failed = true;
                break;
            }
        }
    }
    let mut line = String::new();
    match reader.read_line(&mut line) {
        Ok(n) if n > 0 => {
            let response = json::parse(line.trim_end()).expect("error frame");
            assert_eq!(error_code(&response), 101);
            // And then the connection is gone.
            line.clear();
            assert!(matches!(reader.read_line(&mut line), Ok(0) | Err(_)));
        }
        // The error frame can be lost to the connection reset; the
        // contract that matters is termination, which reaching here
        // proves (read_line returned instead of blocking forever).
        _ => {
            let _ = write_failed;
        }
    }

    // A fresh connection is served normally.
    let client = Client::connect(server.addr);
    assert!(client.is_ok(), "server must survive an oversized frame");

    server.shutdown();
}

#[test]
fn half_closed_socket_mid_frame_is_an_error_not_a_hang() {
    let server = TestServer::start();
    let mut stream = TcpStream::connect(server.addr).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));

    // Send half a frame, then close our write side. The server must
    // answer with a protocol error (EOF inside a frame), then see the
    // clean EOF and hang up — without wedging the accept loop.
    stream.write_all(b"{\"verb\":\"hel").expect("send partial");
    stream.shutdown(Shutdown::Write).expect("half-close");

    let response = read_response(&mut reader);
    assert_eq!(error_code(&response), 100);
    let mut rest = String::new();
    assert!(matches!(reader.read_line(&mut rest), Ok(0) | Err(_)));

    let client = Client::connect(server.addr);
    assert!(client.is_ok(), "server must survive a half-closed peer");

    server.shutdown();
}

#[test]
fn disconnect_mid_job_cancels_it_and_the_scheduler_stays_healthy() {
    let server = TestServer::start();
    let gds = tiny_gds(7);

    // Client A opens a session, submits a job, and vanishes without
    // reading a single event.
    {
        let mut a = Client::connect(server.addr).expect("connect a");
        let session = a.open_bytes(&gds, RULES, "sequential").expect("open");
        let _job = a.check(session, 0, None).expect("submit");
        // Drop without wait(): the TCP teardown is client A's exit.
    }

    // Client B is unaffected: its own job runs to completion, and the
    // orphaned job winds down (live_jobs reaches 0) instead of
    // wedging a worker or the session registry.
    let mut b = Client::connect(server.addr).expect("connect b");
    let session = b.open_bytes(&gds, RULES, "sequential").expect("open b");
    let outcome = b.check_wait(session, 0, None).expect("check b");
    assert!(outcome.error.is_none(), "{:?}", outcome.error);
    assert_eq!(outcome.exit, 1, "tiny layouts carry injected violations");

    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let stats = b.stats().expect("stats");
        if stats.get("live_jobs").and_then(Value::as_i64) == Some(0) {
            assert!(
                stats
                    .get("jobs_admitted")
                    .and_then(Value::as_i64)
                    .unwrap_or(0)
                    >= 2
            );
            break;
        }
        assert!(Instant::now() < deadline, "orphaned job never wound down");
        std::thread::sleep(Duration::from_millis(25));
    }

    server.shutdown();
}

#[test]
fn expired_deadline_reports_exit_4_with_partial_results() {
    let server = TestServer::start();
    let gds = tiny_gds(3);
    let mut client = Client::connect(server.addr).expect("connect");
    let session = client.open_bytes(&gds, RULES, "sequential").expect("open");

    // A zero deadline is already expired when the job runs: the engine
    // winds down at the first rule boundary and the job reports the
    // CLI's interrupted exit code through the normal done event.
    let outcome = client.check_wait(session, 0, Some(0)).expect("check");
    assert_eq!(outcome.exit, 4, "expired deadline must exit 4");
    assert_eq!(outcome.interrupted.as_deref(), Some("deadline exceeded"));

    // The session survives interruption: a follow-up unbounded job
    // completes normally.
    let outcome = client.check_wait(session, 0, None).expect("recheck");
    assert_eq!(outcome.exit, 1);
    assert!(outcome.interrupted.is_none());

    server.shutdown();
}

#[test]
fn draining_server_rejects_new_jobs_but_finishes_old_ones() {
    let server = TestServer::start();
    let gds = tiny_gds(9);
    let mut client = Client::connect(server.addr).expect("connect");
    let session = client.open_bytes(&gds, RULES, "sequential").expect("open");
    let job = client.check(session, 0, None).expect("submit before drain");

    server.handle.shutdown();

    // The in-flight job still delivers its terminal event.
    let outcome = client.wait(job).expect("wait across drain");
    assert!(outcome.error.is_none());
    assert_eq!(outcome.exit, 1);

    // New submissions bounce with the typed rejection. The accept
    // loop flips the drain flag within one poll interval of the
    // trigger, so a submission can race in just ahead of it — such a
    // job still runs to completion (drain is graceful); retry until
    // the flag lands.
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        match client.check(session, 0, None) {
            Err(ClientError::Server { code, .. }) => {
                assert_eq!(code, 105, "rejection must use the Rejected code");
                break;
            }
            Ok(job) => {
                let raced = client.wait(job).expect("raced-in job still completes");
                assert!(raced.error.is_none());
            }
            Err(other) => panic!("expected rejection, got {other:?}"),
        }
        assert!(Instant::now() < deadline, "drain flag never landed");
        std::thread::sleep(Duration::from_millis(25));
    }

    let summary = server.shutdown();
    assert!(summary.jobs_completed >= 1);
}
