//! Deterministic, seeded fault injection for the check server.
//!
//! This is the server-level sibling of the device layer's
//! [`odrc_xpu::FaultPlan`]: a schedule of one-shot faults addressed by
//! deterministic *operation ordinals* (the Nth frame write, the Kth
//! job-journal append, the Nth rule-progress event, the Nth job
//! start), derived from a seed with SplitMix64 so every failure
//! interleaving is replayable bit-for-bit by quoting the seed. The
//! plan is installed via `ServerConfig::chaos` and is **off by
//! default** — a server without a plan pays one mutex-guarded check
//! per instrumented operation only when a plan is armed.
//!
//! Two fault families exist:
//!
//! * **Transient** faults ([`ServerFault::SocketReset`],
//!   [`ServerFault::WorkerPanic`]) break one operation and let the
//!   process live; the server's own error handling (disconnect
//!   cancellation, per-job `catch_unwind`) must absorb them.
//! * **Crash** faults ([`ServerFault::KillAtJournal`],
//!   [`ServerFault::TornJournal`], [`ServerFault::KillAtRule`]) call
//!   [`std::process::abort`] — the in-process model of `kill -9`,
//!   deterministic down to the byte offset of the journal tail. They
//!   only make sense in integration tests that spawn the server as a
//!   child process and restart it afterwards.

use std::sync::Mutex;

/// One injected server fault. Every fault fires at most once: it is
/// consumed by the operation it addresses, so a retried client
/// eventually sees a fault-free server.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServerFault {
    /// Sever the connection at the `nth` response-frame write
    /// (0-based, server-wide): the write fails as if the peer reset
    /// the socket, exercising disconnect-cancellation and client
    /// reconnect.
    SocketReset {
        /// Which frame write to fail.
        nth: u64,
    },
    /// Abort the process (models `kill -9`) *after* writing half of
    /// the `nth` job-journal append's frame — the journal is left with
    /// a torn tail the next open must heal.
    TornJournal {
        /// Which journal append to tear.
        nth: u64,
    },
    /// Abort the process (models `kill -9`) *instead of* the `nth`
    /// job-journal append: the record is lost in full.
    KillAtJournal {
        /// Which journal append to die at.
        nth: u64,
    },
    /// Abort the process (models `kill -9`) inside the `nth`
    /// rule-progress event (0-based, server-wide). Because the engine
    /// fires progress *before* journaling the rule, dying at rule
    /// event `n` leaves exactly `n` rules checkpointed — the resumed
    /// job must report `rules_resumed > 0` for `n >= 1`.
    KillAtRule {
        /// Which rule event to die in.
        nth: u64,
    },
    /// Panic the worker thread at the `nth` job start (0-based),
    /// exercising the scheduler's per-job `catch_unwind` and the
    /// error-event path back to the client.
    WorkerPanic {
        /// Which job start to panic.
        nth: u64,
    },
}

/// SplitMix64 — the same dependency-free generator the device fault
/// plan uses, salted differently so server and device schedules drawn
/// from equal seeds do not correlate.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// Salts the seed so `from_seed(0, ..)` is not the all-zero SplitMix64
/// stream and differs from the device layer's schedule for the seed.
fn seed_state(seed: u64) -> u64 {
    seed ^ 0x0dcc_5eed_fa17_0002
}

/// A deterministic schedule of one-shot server faults.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServerFaultPlan {
    faults: Vec<ServerFault>,
}

impl ServerFaultPlan {
    /// An empty plan (injects nothing).
    pub fn new() -> ServerFaultPlan {
        ServerFaultPlan::default()
    }

    /// Adds one fault to the schedule.
    #[must_use]
    pub fn with(mut self, fault: ServerFault) -> ServerFaultPlan {
        self.faults.push(fault);
        self
    }

    /// Derives a pseudo-random schedule of `n_faults` faults from a
    /// seed. The same `(seed, n_faults)` pair always yields the same
    /// schedule. Ordinals are drawn from small ranges (frame writes in
    /// `0..24`, journal appends in `0..8`, rule events in `0..12`, job
    /// starts in `0..4`) so schedules actually fire on the small
    /// workloads integration tests run; a fault addressing an ordinal
    /// a run never reaches stays dormant.
    pub fn from_seed(seed: u64, n_faults: usize) -> ServerFaultPlan {
        let mut state = seed_state(seed);
        let mut faults = Vec::with_capacity(n_faults);
        for _ in 0..n_faults {
            let fault = match splitmix64(&mut state) % 5 {
                0 => ServerFault::SocketReset {
                    nth: splitmix64(&mut state) % 24,
                },
                1 => ServerFault::TornJournal {
                    nth: splitmix64(&mut state) % 8,
                },
                2 => ServerFault::KillAtJournal {
                    nth: splitmix64(&mut state) % 8,
                },
                3 => ServerFault::KillAtRule {
                    nth: splitmix64(&mut state) % 12,
                },
                _ => ServerFault::WorkerPanic {
                    nth: splitmix64(&mut state) % 4,
                },
            };
            faults.push(fault);
        }
        ServerFaultPlan { faults }
    }

    /// Number of faults pending in the schedule.
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// Whether the schedule holds no faults.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Arms the plan: wraps it in the mutable injector state the
    /// server consults at each instrumented operation.
    pub fn arm(self) -> ChaosState {
        ChaosState {
            inner: Mutex::new(ChaosInner {
                remaining: self.faults,
                counters: [0; 4],
                injected: 0,
            }),
        }
    }
}

/// The four independent ordinal domains instrumented operations are
/// counted in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Domain {
    FrameWrite = 0,
    JournalAppend = 1,
    RuleEvent = 2,
    JobStart = 3,
}

/// What an instrumented journal append must do, as decided by
/// [`ChaosState::on_journal_append`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JournalFate {
    /// No fault: append normally.
    Proceed,
    /// Write half the frame, then abort the process.
    TearAndAbort,
    /// Abort the process before writing anything.
    Abort,
}

/// Armed, mutable injector state shared across server threads.
#[derive(Debug)]
pub struct ChaosState {
    inner: Mutex<ChaosInner>,
}

#[derive(Debug)]
struct ChaosInner {
    remaining: Vec<ServerFault>,
    /// Next ordinal per [`Domain`].
    counters: [u64; 4],
    injected: u64,
}

impl ChaosInner {
    fn next(&mut self, domain: Domain) -> u64 {
        let n = self.counters[domain as usize];
        self.counters[domain as usize] += 1;
        n
    }

    fn take(&mut self, pred: impl Fn(&ServerFault) -> bool) -> bool {
        if let Some(i) = self.remaining.iter().position(pred) {
            self.remaining.remove(i);
            self.injected += 1;
            true
        } else {
            false
        }
    }
}

impl ChaosState {
    /// Consults the plan at a response-frame write; `true` means the
    /// write must fail as a connection reset.
    pub fn on_frame_write(&self) -> bool {
        let mut g = self.inner.lock().unwrap();
        let n = g.next(Domain::FrameWrite);
        g.take(|f| matches!(f, ServerFault::SocketReset { nth } if *nth == n))
    }

    /// Consults the plan at a job-journal append and returns the
    /// append's fate. Crash fates are *returned*, not executed — the
    /// journal owns the half-write so the torn tail lands at a real
    /// frame boundary.
    pub fn on_journal_append(&self) -> JournalFate {
        let mut g = self.inner.lock().unwrap();
        let n = g.next(Domain::JournalAppend);
        if g.take(|f| matches!(f, ServerFault::TornJournal { nth } if *nth == n)) {
            JournalFate::TearAndAbort
        } else if g.take(|f| matches!(f, ServerFault::KillAtJournal { nth } if *nth == n)) {
            JournalFate::Abort
        } else {
            JournalFate::Proceed
        }
    }

    /// Consults the plan at a rule-progress event; `true` means the
    /// process must abort (the integration harness restarts it).
    pub fn on_rule_event(&self) -> bool {
        let mut g = self.inner.lock().unwrap();
        let n = g.next(Domain::RuleEvent);
        g.take(|f| matches!(f, ServerFault::KillAtRule { nth } if *nth == n))
    }

    /// Consults the plan at a job start; `true` means the worker must
    /// panic (absorbed by the scheduler's `catch_unwind`).
    pub fn on_job_start(&self) -> bool {
        let mut g = self.inner.lock().unwrap();
        let n = g.next(Domain::JobStart);
        g.take(|f| matches!(f, ServerFault::WorkerPanic { nth } if *nth == n))
    }

    /// Faults actually delivered so far.
    pub fn injected(&self) -> u64 {
        self.inner.lock().unwrap().injected
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_seed_is_deterministic() {
        for seed in 0..64 {
            assert_eq!(
                ServerFaultPlan::from_seed(seed, 4),
                ServerFaultPlan::from_seed(seed, 4)
            );
        }
        assert_ne!(
            ServerFaultPlan::from_seed(1, 4),
            ServerFaultPlan::from_seed(2, 4)
        );
    }

    #[test]
    fn seeds_cover_every_fault_kind() {
        let mut kinds = [false; 5];
        for seed in 0..64 {
            for f in &ServerFaultPlan::from_seed(seed, 4).faults {
                let i = match f {
                    ServerFault::SocketReset { .. } => 0,
                    ServerFault::TornJournal { .. } => 1,
                    ServerFault::KillAtJournal { .. } => 2,
                    ServerFault::KillAtRule { .. } => 3,
                    ServerFault::WorkerPanic { .. } => 4,
                };
                kinds[i] = true;
            }
        }
        assert_eq!(kinds, [true; 5], "64 seeds must exercise all kinds");
    }

    #[test]
    fn faults_are_one_shot_and_ordinal_addressed() {
        let state = ServerFaultPlan::new()
            .with(ServerFault::SocketReset { nth: 1 })
            .with(ServerFault::WorkerPanic { nth: 0 })
            .arm();
        assert!(!state.on_frame_write(), "ordinal 0 not addressed");
        assert!(state.on_frame_write(), "ordinal 1 fires");
        assert!(!state.on_frame_write(), "fault was consumed");
        assert!(state.on_job_start(), "job-start domain counts separately");
        assert!(!state.on_job_start());
        assert_eq!(state.injected(), 2);
    }

    #[test]
    fn journal_fates_distinguish_tear_and_kill() {
        let state = ServerFaultPlan::new()
            .with(ServerFault::TornJournal { nth: 0 })
            .with(ServerFault::KillAtJournal { nth: 1 })
            .arm();
        assert_eq!(state.on_journal_append(), JournalFate::TearAndAbort);
        assert_eq!(state.on_journal_append(), JournalFate::Abort);
        assert_eq!(state.on_journal_append(), JournalFate::Proceed);
    }

    #[test]
    fn empty_plan_never_fires() {
        let state = ServerFaultPlan::new().arm();
        for _ in 0..32 {
            assert!(!state.on_frame_write());
            assert!(!state.on_rule_event());
            assert!(!state.on_job_start());
            assert_eq!(state.on_journal_append(), JournalFate::Proceed);
        }
        assert_eq!(state.injected(), 0);
    }
}
