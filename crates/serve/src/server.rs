//! The `odrc serve` daemon: TCP accept loop, per-connection protocol
//! handling, edit-session registry, and job execution.
//!
//! One connection = one client = any number of edit sessions. The
//! connection thread parses frames and answers cheap verbs inline;
//! `check` admits a job into the shared [`Scheduler`] and returns
//! immediately — the job's lifecycle then streams back as event
//! frames (`queued`, `running`, per-`rule` progress, `done`/`error`)
//! written through the connection's shared writer, interleaved with
//! later responses.
//!
//! Resource sharing across tenants:
//!
//! * **threads** — one process-wide [`ThreadGate`] sized to
//!   `host_threads - 1` extra permits; every job's engine run and
//!   device dispatch draws from it (`EngineOptions::shared_gate`), so
//!   N concurrent jobs share one machine budget instead of assuming N
//!   machines.
//! * **results** — one [`SharedCacheTier`]; each job checks out a
//!   snapshot and merges back what it computed, so a layout one
//!   client already checked warms every other client's jobs.
//! * **devices** — per *session*, never shared: `Device` knobs
//!   (`set_cancel`, `set_host_gate`) are device-global, so concurrent
//!   jobs on one device would trample each other. Devices are cheap
//!   (no persistent pool), and the session exclusion key guarantees
//!   one job per session at a time.
//!
//! Crash safety: with a `checkpoint_dir`, a `check` submitted with an
//! idempotency `key` is **durable** — the [`JobJournal`] records its
//! admission (layout snapshot included) before the submission is
//! acknowledged, the run checkpoints per-rule into its own
//! [`CheckpointJournal`], and its terminal frame is journaled. A
//! restarted server replays the journal: finished keys answer
//! resubmits with the journaled frame verbatim; unfinished keys are
//! re-admitted as headless jobs that resume at the rule boundary where
//! the kill landed. See `DESIGN.md` §5 for the full crash matrix.
//!
//! Liveness: accepted sockets carry read/write timeouts; an idle
//! connection is pinged and evicted after `ping_max_misses` unanswered
//! heartbeats, idle sessions are evicted past `session_idle_ms` (LRU
//! under the `max_sessions` cap), and a full queue sheds its
//! lowest-priority job — or refuses the newcomer — with a typed
//! `retry_after_ms` error instead of stalling admission.
//!
//! Teardown: a client disconnect cancels that client's live
//! *non-durable* jobs (the engine winds down at the next rule
//! boundary) and closes its sessions; durable jobs keep running so a
//! reconnecting client can attach. A `shutdown` verb or SIGTERM trips
//! the drain token: the accept loop stops, admission rejects,
//! in-flight jobs finish and deliver their results, the cache tier is
//! persisted, and `run` returns.
//!
//! [`ThreadGate`]: odrc_infra::ThreadGate
//! [`CheckpointJournal`]: odrc::CheckpointJournal

use std::collections::HashMap;
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use odrc::{parse_deck, CheckpointJournal, Engine, EngineOptions, ProgressFn, ResultCache, RunKey};
use odrc_db::Layout;
use odrc_incremental::Session;
use odrc_infra::{fnv1a64, CancelReason, CancelToken, ThreadGate};
use odrc_xpu::Device;
use parking_lot::Mutex;

use crate::cache_tier::SharedCacheTier;
use crate::chaos::{ChaosState, ServerFaultPlan};
use crate::journal::{JobJournal, JobSpec, ReplayedJob};
use crate::json::{base64, obj, Value};
use crate::proto::{
    self, job_exit_code, opt_i64, opt_str, read_frame_step, req_i64, req_str, write_frame,
    FrameStep, ServeError,
};
use crate::scheduler::{JobRun, Scheduler, ShedFn};
use crate::wire;

/// Server tuning. `Default` sizes to the host.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks an ephemeral port (see
    /// [`Server::addr`]).
    pub addr: String,
    /// Concurrent job slots (scheduler workers).
    pub workers: usize,
    /// Process-wide host-thread budget shared by all concurrent jobs
    /// — the multi-tenant analogue of the CLI's `--host-threads`.
    pub host_threads: usize,
    /// Waiting jobs the admission queue holds before shedding.
    pub max_queue: usize,
    /// Directory for the shared result-cache sidecar; `None` keeps
    /// the tier in memory only.
    pub cache_dir: Option<PathBuf>,
    /// Device worker threads per parallel-mode session.
    pub device_workers: usize,
    /// Stream-ordered allocator budget per parallel-mode session.
    pub device_budget: Option<usize>,
    /// Directory for the durable job journal and per-job checkpoint
    /// journals. `None` disables durability: keyed submissions still
    /// dedupe in memory, but nothing survives a restart.
    pub checkpoint_dir: Option<PathBuf>,
    /// Socket read/write timeout. Reads that time out drive the
    /// heartbeat; writes that time out count as a dead client. 0
    /// disables both (a stalled reader can then pin its connection
    /// thread — only sensible in tests).
    pub io_timeout_ms: u64,
    /// Consecutive unanswered heartbeats before an idle connection is
    /// evicted.
    pub ping_max_misses: u32,
    /// Idle time after which a session (not touched by open/edit/
    /// check) may be evicted.
    pub session_idle_ms: u64,
    /// Hard cap on concurrently open sessions; opening past it evicts
    /// the least-recently-used idle session, or rejects when every
    /// session is busy.
    pub max_sessions: usize,
    /// Seeded fault-injection schedule (tests only). `None` — the
    /// default — injects nothing.
    pub chaos: Option<ServerFaultPlan>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        let par = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: par.clamp(1, 4),
            host_threads: par,
            max_queue: 64,
            cache_dir: None,
            device_workers: par,
            device_budget: None,
            checkpoint_dir: None,
            io_timeout_ms: 10_000,
            ping_max_misses: 3,
            session_idle_ms: 600_000,
            max_sessions: 256,
            chaos: None,
        }
    }
}

/// One client's edit session as the server stores it.
struct SessionSlot {
    session: Mutex<Session>,
    /// Whether jobs on this session consult the shared cache tier.
    shared_cache: bool,
    /// Rule deck source text, kept for durable job specs.
    rules: String,
    /// Engine mode (`"sequential"` or `"parallel"`), ditto.
    mode: String,
    /// Milliseconds since server start at last use, for LRU eviction.
    last_used: AtomicU64,
}

impl SessionSlot {
    fn touch(&self, shared: &ServerShared) {
        self.last_used.store(shared.now_ms(), Ordering::Relaxed);
    }
}

/// Per-idempotency-key state.
enum KeyState {
    /// The job is queued or running; `waiters` are connections that
    /// resubmitted the key and get the terminal frame when it lands.
    Active {
        job_id: u64,
        waiters: Vec<Arc<Mutex<TcpStream>>>,
    },
    /// The job finished; `frame` is the terminal event (JSON text)
    /// replayed verbatim (with a fresh job id) to resubmits.
    Done { frame: String },
}

struct ServerShared {
    config: ServerConfig,
    scheduler: Scheduler,
    tier: SharedCacheTier,
    gate: Arc<ThreadGate>,
    sessions: Mutex<HashMap<u64, Arc<SessionSlot>>>,
    next_session: AtomicU64,
    drain: CancelToken,
    started: Instant,
    /// Durable job journal (present iff `checkpoint_dir` is set).
    journal: Option<Mutex<JobJournal>>,
    /// In-memory idempotency-key registry, seeded from the journal.
    registry: Mutex<HashMap<String, KeyState>>,
    /// Armed fault-injection state (tests only).
    chaos: Option<ChaosState>,
    /// Dispatch-layer counters summed over every completed job, so the
    /// `stats` verb can report fleet totals (per-job values ride in
    /// each job's own `stats` object).
    dispatch_totals: DispatchTotals,
}

/// Process-cumulative dispatch counters (see [`ServerShared`]).
#[derive(Default)]
struct DispatchTotals {
    launches_fused: AtomicU64,
    graph_replays: AtomicU64,
    worker_wakeups: AtomicU64,
}

impl DispatchTotals {
    fn add(&self, stats: &odrc::EngineStats) {
        self.launches_fused
            .fetch_add(stats.launches_fused, Ordering::Relaxed);
        self.graph_replays
            .fetch_add(stats.graph_replays as u64, Ordering::Relaxed);
        self.worker_wakeups
            .fetch_add(stats.worker_wakeups, Ordering::Relaxed);
    }
}

impl ServerShared {
    fn now_ms(&self) -> u64 {
        self.started.elapsed().as_millis() as u64
    }

    fn chaos(&self) -> Option<&ChaosState> {
        self.chaos.as_ref()
    }
}

/// A bound, not-yet-running server. [`Server::run`] blocks until
/// drained; [`Server::handle`] hands out the remote-shutdown trigger
/// first.
pub struct Server {
    listener: TcpListener,
    addr: SocketAddr,
    shared: Arc<ServerShared>,
}

/// Clonable shutdown trigger for a running [`Server`].
#[derive(Clone)]
pub struct ServerHandle {
    drain: CancelToken,
}

impl ServerHandle {
    /// Starts a graceful drain: stop accepting, finish in-flight
    /// jobs, persist the cache tier, return from [`Server::run`].
    pub fn shutdown(&self) {
        self.drain.cancel(CancelReason::Interrupt);
    }
}

/// What a drained server reports back.
#[derive(Debug)]
pub struct DrainSummary {
    /// Jobs that ran to a terminal state over the server's lifetime.
    pub jobs_completed: u64,
    /// Entries in the shared cache tier at shutdown.
    pub cache_entries: usize,
    /// Shared-tier lookups answered for jobs over the lifetime.
    pub cache_hits_shared: u64,
}

impl Server {
    /// Binds the listener, spins up the scheduler, replays the job
    /// journal (re-admitting every unfinished durable job), and arms
    /// the chaos plan if one is configured. No connections are
    /// accepted until [`Server::run`].
    pub fn bind(config: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let tier = match &config.cache_dir {
            Some(dir) => SharedCacheTier::with_dir(dir),
            None => SharedCacheTier::new(),
        };
        // The multi-tenant sizing handshake: `host_threads` total, one
        // implicit thread per running job, the rest as shared permits.
        let gate = Arc::new(ThreadGate::new(config.host_threads.saturating_sub(1)));
        let (journal, replayed) = match &config.checkpoint_dir {
            Some(dir) => {
                let (journal, replayed) = JobJournal::open_dir(dir)?;
                (Some(Mutex::new(journal)), replayed)
            }
            None => (None, HashMap::new()),
        };
        let chaos = config.chaos.clone().map(ServerFaultPlan::arm);
        let shared = Arc::new(ServerShared {
            scheduler: Scheduler::new(config.workers, config.max_queue),
            tier,
            gate,
            sessions: Mutex::new(HashMap::new()),
            next_session: AtomicU64::new(1),
            // Linked to the signal flag so the daemon drains on
            // SIGINT/SIGTERM once handlers are installed (the bin does
            // that); programmatic ServerHandle::shutdown works always.
            drain: CancelToken::new().linked_to_signals(),
            started: Instant::now(),
            journal,
            registry: Mutex::new(HashMap::new()),
            chaos,
            dispatch_totals: DispatchTotals::default(),
            config,
        });
        // Replay: finished keys answer future resubmits from memory;
        // unfinished keys go straight back into the queue, headless —
        // their owners are gone, but their results get journaled and a
        // resubmitting client replays or attaches.
        for (key, job) in replayed {
            match job {
                ReplayedJob::Done(frame) => {
                    shared.registry.lock().insert(key, KeyState::Done { frame });
                }
                ReplayedJob::Pending(spec) => {
                    // Already journaled; a failed re-admission (queue
                    // full of replays) leaves the admit record pending
                    // for the *next* restart or resubmit.
                    let _ = admit_durable(&shared, spec, None, false);
                }
            }
        }
        Ok(Server {
            listener,
            addr,
            shared,
        })
    }

    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The remote-shutdown trigger.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            drain: self.shared.drain.clone(),
        }
    }

    /// Accepts connections until the drain token trips, then drains
    /// the scheduler, persists the cache tier, and returns.
    pub fn run(self) -> std::io::Result<DrainSummary> {
        let mut conns: Vec<std::thread::JoinHandle<()>> = Vec::new();
        let mut last_sweep = Instant::now();
        while self.shared.drain.cancelled().is_none() {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    let shared = Arc::clone(&self.shared);
                    conns.push(
                        std::thread::Builder::new()
                            .name("odrc-conn".to_string())
                            .spawn(move || handle_connection(stream, &shared))
                            .expect("spawn connection thread"),
                    );
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(25));
                }
                Err(e) => return Err(e),
            }
            conns.retain(|h| !h.is_finished());
            if last_sweep.elapsed() >= Duration::from_secs(1) {
                sweep_idle_sessions(&self.shared);
                last_sweep = Instant::now();
            }
        }
        // Drain: no new admissions, in-flight jobs finish and deliver.
        self.shared.scheduler.drain();
        self.shared.tier.persist()?;
        Ok(DrainSummary {
            jobs_completed: self
                .shared
                .scheduler
                .stats()
                .jobs_completed
                .load(Ordering::Relaxed),
            cache_entries: self.shared.tier.len(),
            cache_hits_shared: self.shared.tier.hits_shared(),
        })
    }
}

/// Evicts sessions idle past `session_idle_ms`. A session whose mutex
/// is held (a job is running on it) is never evicted, no matter how
/// stale its timestamp.
fn sweep_idle_sessions(shared: &ServerShared) {
    let now = shared.now_ms();
    let idle_cap = shared.config.session_idle_ms;
    if idle_cap == 0 {
        return;
    }
    shared.sessions.lock().retain(|_, slot| {
        now.saturating_sub(slot.last_used.load(Ordering::Relaxed)) < idle_cap
            || slot.session.try_lock().is_none()
    });
}

/// Per-connection state the dispatcher tracks.
struct ConnState {
    /// Sessions this connection opened (closed on disconnect).
    sessions: Vec<u64>,
    /// Non-durable jobs this connection submitted, with their cancel
    /// tokens (tripped on disconnect so an orphaned job winds down).
    /// Durable jobs are deliberately absent: they outlive their
    /// submitter by design.
    jobs: Vec<(u64, CancelToken)>,
}

fn handle_connection(stream: TcpStream, shared: &Arc<ServerShared>) {
    // Stalled-reader defense: reads wake up every `io_timeout_ms` to
    // drive heartbeats; writes that block past it count as a dead
    // peer. The timeouts live on the fd, so the writer clone below
    // inherits them.
    if shared.config.io_timeout_ms > 0 {
        let t = Duration::from_millis(shared.config.io_timeout_ms);
        let _ = stream.set_read_timeout(Some(t));
        let _ = stream.set_write_timeout(Some(t));
    }
    let writer: Arc<Mutex<TcpStream>> = match stream.try_clone() {
        Ok(clone) => Arc::new(Mutex::new(clone)),
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    let mut conn = ConnState {
        sessions: Vec::new(),
        jobs: Vec::new(),
    };
    let mut partial: Vec<u8> = Vec::new();
    let mut pings_unanswered: u32 = 0;

    loop {
        let frame = match read_frame_step(&mut reader, &mut partial) {
            Ok(FrameStep::Frame(line)) => {
                pings_unanswered = 0;
                line
            }
            Ok(FrameStep::Eof) => break, // clean disconnect
            Ok(FrameStep::Idle) => {
                // Heartbeat tick: ping an idle client; give up on one
                // that has ignored too many pings (half-open socket,
                // wedged process) instead of pinning this thread.
                if pings_unanswered >= shared.config.ping_max_misses {
                    break;
                }
                pings_unanswered += 1;
                if emit(
                    shared.chaos(),
                    &writer,
                    &obj([("event", Value::from("ping"))]),
                )
                .is_err()
                {
                    break;
                }
                continue;
            }
            Err(e) => {
                let _ = emit(shared.chaos(), &writer, &e.to_frame());
                if e.fatal_to_connection() {
                    break;
                }
                continue;
            }
        };
        match dispatch(&frame, shared, &writer, &mut conn) {
            Ok(Dispatch::Reply(response)) => {
                if emit(shared.chaos(), &writer, &response).is_err() {
                    break;
                }
            }
            Ok(Dispatch::Goodbye(response)) => {
                let _ = emit(shared.chaos(), &writer, &response);
                break;
            }
            Err(e) => {
                let fatal = e.fatal_to_connection();
                if emit(shared.chaos(), &writer, &e.to_frame()).is_err() || fatal {
                    break;
                }
            }
        }
    }

    // Teardown: orphaned non-durable jobs wind down at the next rule
    // boundary; this client's sessions go away once their jobs release
    // them.
    for (_, token) in &conn.jobs {
        token.cancel(CancelReason::Interrupt);
    }
    let mut sessions = shared.sessions.lock();
    for id in &conn.sessions {
        sessions.remove(id);
    }
}

enum Dispatch {
    Reply(Value),
    /// Reply, then close the connection (the `shutdown` ack).
    Goodbye(Value),
}

fn dispatch(
    line: &str,
    shared: &Arc<ServerShared>,
    writer: &Arc<Mutex<TcpStream>>,
    conn: &mut ConnState,
) -> Result<Dispatch, ServeError> {
    let frame = proto::parse_frame(line)?;
    let verb = req_str(&frame, "verb")?;
    match verb {
        "hello" => Ok(Dispatch::Reply(obj([
            ("ok", Value::Bool(true)),
            ("server", Value::from("odrc-serve")),
            ("protocol", Value::Int(1)),
        ]))),
        "open" => open_session(&frame, shared, conn),
        "edit" => edit_session(&frame, shared),
        "check" => submit_check(&frame, shared, writer, conn),
        "cancel" => {
            let job = req_i64(&frame, "job")?;
            let job = u64::try_from(job)
                .map_err(|_| ServeError::Protocol("\"job\" must be non-negative".to_string()))?;
            shared.scheduler.cancel(job)?;
            Ok(Dispatch::Reply(obj([
                ("ok", Value::Bool(true)),
                ("job", Value::from(job)),
            ])))
        }
        "stats" => Ok(Dispatch::Reply(server_stats(shared))),
        "health" => Ok(Dispatch::Reply(health_frame(shared))),
        "ping" => Ok(Dispatch::Reply(obj([
            ("ok", Value::Bool(true)),
            ("pong", Value::Bool(true)),
        ]))),
        "close" => {
            let id = session_id(&frame)?;
            let removed = shared.sessions.lock().remove(&id).is_some();
            if !removed {
                return Err(ServeError::UnknownSession(id));
            }
            conn.sessions.retain(|s| *s != id);
            Ok(Dispatch::Reply(obj([
                ("ok", Value::Bool(true)),
                ("session", Value::from(id)),
            ])))
        }
        "shutdown" => {
            shared.drain.cancel(CancelReason::Interrupt);
            Ok(Dispatch::Goodbye(obj([
                ("ok", Value::Bool(true)),
                ("draining", Value::Bool(true)),
            ])))
        }
        other => Err(ServeError::UnknownVerb(other.to_string())),
    }
}

fn session_id(frame: &Value) -> Result<u64, ServeError> {
    let id = req_i64(frame, "session")?;
    u64::try_from(id)
        .map_err(|_| ServeError::Protocol("\"session\" must be non-negative".to_string()))
}

fn find_session(shared: &ServerShared, id: u64) -> Result<Arc<SessionSlot>, ServeError> {
    let slot = shared
        .sessions
        .lock()
        .get(&id)
        .cloned()
        .ok_or(ServeError::UnknownSession(id))?;
    slot.touch(shared);
    Ok(slot)
}

fn open_session(
    frame: &Value,
    shared: &Arc<ServerShared>,
    conn: &mut ConnState,
) -> Result<Dispatch, ServeError> {
    // Layout: inline base64 GDSII, or a server-side path.
    let library = match (opt_str(frame, "gds_b64")?, opt_str(frame, "path")?) {
        (Some(b64), _) => {
            let bytes = base64::decode(b64).map_err(ServeError::Layout)?;
            odrc_gdsii::read(&bytes).map_err(|e| ServeError::Layout(e.to_string()))?
        }
        (None, Some(path)) => {
            odrc_gdsii::read_file(path).map_err(|e| ServeError::Layout(e.to_string()))?
        }
        (None, None) => {
            return Err(ServeError::Protocol(
                "open needs \"gds_b64\" or \"path\"".to_string(),
            ))
        }
    };
    let layout = Layout::from_library(&library).map_err(|e| ServeError::Layout(e.to_string()))?;
    let rules_text = req_str(frame, "rules")?.to_string();
    let deck = parse_deck(&rules_text).map_err(|e| ServeError::Rules(e.to_string()))?;
    let mode = opt_str(frame, "mode")?.unwrap_or("sequential");
    let shared_cache = match frame.get("shared_cache") {
        None | Some(Value::Null) => true,
        Some(v) => v
            .as_bool()
            .ok_or_else(|| ServeError::Protocol("\"shared_cache\" must be a bool".to_string()))?,
    };

    let engine = build_engine(shared, mode)?;

    let cells = layout.cells().len();
    let slot = Arc::new(SessionSlot {
        session: Mutex::new(Session::new(layout, engine, deck)),
        shared_cache,
        rules: rules_text,
        mode: mode.to_string(),
        last_used: AtomicU64::new(shared.now_ms()),
    });
    let id = {
        let mut sessions = shared.sessions.lock();
        if sessions.len() >= shared.config.max_sessions.max(1) {
            // LRU cap: evict the stalest idle session; if every
            // session is mid-job, refuse rather than grow unboundedly.
            let victim = sessions
                .iter()
                .filter(|(_, s)| s.session.try_lock().is_some())
                .min_by_key(|(_, s)| s.last_used.load(Ordering::Relaxed))
                .map(|(id, _)| *id);
            match victim {
                Some(id) => {
                    sessions.remove(&id);
                }
                None => {
                    return Err(ServeError::Rejected(format!(
                        "session table full ({} busy sessions)",
                        sessions.len()
                    )));
                }
            }
        }
        let id = shared.next_session.fetch_add(1, Ordering::Relaxed);
        sessions.insert(id, slot);
        id
    };
    conn.sessions.push(id);
    Ok(Dispatch::Reply(obj([
        ("ok", Value::Bool(true)),
        ("session", Value::from(id)),
        ("cells", Value::from(cells)),
    ])))
}

/// Builds a job engine wired to the shared gate and thread budget.
fn build_engine(shared: &ServerShared, mode: &str) -> Result<Engine, ServeError> {
    let options = EngineOptions {
        host_threads: Some(shared.config.host_threads),
        shared_gate: Some(Arc::clone(&shared.gate)),
        ..EngineOptions::default()
    };
    match mode {
        "sequential" => Ok(Engine::sequential().with_options(options)),
        "parallel" => {
            // Per-session device: its knobs are device-global, so it
            // must never be shared across concurrently running jobs.
            let device = match shared.config.device_budget {
                Some(bytes) => Device::with_budget(shared.config.device_workers, bytes),
                None => Device::new(shared.config.device_workers),
            };
            Ok(Engine::parallel_on(device).with_options(options))
        }
        other => Err(ServeError::Protocol(format!(
            "mode must be \"sequential\" or \"parallel\", got {other:?}"
        ))),
    }
}

fn edit_session(frame: &Value, shared: &Arc<ServerShared>) -> Result<Dispatch, ServeError> {
    let id = session_id(frame)?;
    let slot = find_session(shared, id)?;
    let ops = frame
        .get("ops")
        .and_then(Value::as_array)
        .ok_or_else(|| ServeError::Protocol("missing \"ops\" array".to_string()))?;
    let parsed = ops
        .iter()
        .map(wire::edit_op_from_json)
        .collect::<Result<Vec<_>, _>>()?;
    let applied = parsed.len();
    // Serialized against any running job on this session by the slot
    // mutex: edits land strictly before or after a check, never mid-run.
    let mut session = slot.session.lock();
    session
        .apply_all(parsed)
        .map_err(|e| ServeError::Edit(e.to_string()))?;
    Ok(Dispatch::Reply(obj([
        ("ok", Value::Bool(true)),
        ("session", Value::from(id)),
        ("applied", Value::from(applied)),
    ])))
}

fn submit_check(
    frame: &Value,
    shared: &Arc<ServerShared>,
    writer: &Arc<Mutex<TcpStream>>,
    conn: &mut ConnState,
) -> Result<Dispatch, ServeError> {
    let id = session_id(frame)?;
    let slot = find_session(shared, id)?;
    let priority = opt_i64(frame, "priority")?.unwrap_or(0);
    let deadline_ms = match opt_i64(frame, "deadline_ms")? {
        Some(ms) if ms < 0 => {
            return Err(ServeError::Protocol(
                "\"deadline_ms\" must be non-negative".to_string(),
            ))
        }
        other => other,
    };
    if let Some(key) = opt_str(frame, "key")? {
        return submit_check_durable(shared, &slot, writer, key, priority, deadline_ms);
    }

    // The deadline clock starts at admission: a job stuck behind a
    // full queue burns its budget waiting, exactly like the CLI's
    // wall-clock `--deadline`.
    let token = match deadline_ms {
        Some(ms) => CancelToken::with_deadline(Duration::from_millis(ms as u64)),
        None => CancelToken::new(),
    };

    let job_writer = Arc::clone(writer);
    let job_shared = Arc::clone(shared);
    let job_token = token.clone();
    // Shed notice: the victim's submitter learns its queued job was
    // dropped for higher-priority work, with the backoff hint.
    let shed_job = Arc::new(AtomicU64::new(0));
    let on_shed: ShedFn = {
        let shed_shared = Arc::clone(shared);
        let shed_writer = Arc::clone(writer);
        let shed_job = Arc::clone(&shed_job);
        Box::new(move |retry_ms| {
            let _ = emit(
                shed_shared.chaos(),
                &shed_writer,
                &shed_event(shed_job.load(Ordering::Relaxed), retry_ms),
            );
        })
    };
    let job_id = shared.scheduler.submit_with_shed(
        Some(id),
        priority,
        token.clone(),
        Some(on_shed),
        move |run| {
            execute_job(&job_shared, &slot, &job_writer, &job_token, run);
        },
    )?;
    shed_job.store(job_id, Ordering::Relaxed);
    conn.jobs.push((job_id, token));
    let _ = emit(
        shared.chaos(),
        writer,
        &obj([
            ("event", Value::from("queued")),
            ("job", Value::from(job_id)),
        ]),
    );
    Ok(Dispatch::Reply(obj([
        ("ok", Value::Bool(true)),
        ("job", Value::from(job_id)),
    ])))
}

/// The terminal event a shed job's owner receives.
fn shed_event(job_id: u64, retry_ms: i64) -> Value {
    obj([
        ("event", Value::from("error")),
        ("job", Value::from(job_id)),
        (
            "error",
            Value::from(format!(
                "job shed: server overloaded; retry after {retry_ms} ms"
            )),
        ),
        ("code", Value::Int(111)),
        ("retry_after_ms", Value::Int(retry_ms)),
        ("exit", Value::Int(2)),
    ])
}

/// A `check` carrying an idempotency key: replay a finished result,
/// attach to the running job, or journal-then-admit a fresh one.
fn submit_check_durable(
    shared: &Arc<ServerShared>,
    slot: &Arc<SessionSlot>,
    writer: &Arc<Mutex<TcpStream>>,
    key: &str,
    priority: i64,
    deadline_ms: Option<i64>,
) -> Result<Dispatch, ServeError> {
    if key.is_empty() || key.len() > 256 {
        return Err(ServeError::Protocol(
            "\"key\" must be 1..=256 characters".to_string(),
        ));
    }
    // Fast paths under the registry lock: replay or attach.
    {
        let mut registry = shared.registry.lock();
        match registry.get_mut(key) {
            Some(KeyState::Done { frame }) => {
                // Replay with a fresh job id — the journaled id may
                // collide with ids handed out since the restart.
                let job_id = shared.scheduler.reserve_job_id();
                let replayed = patch_job_id(frame, job_id);
                drop(registry);
                let _ = emit(
                    shared.chaos(),
                    writer,
                    &obj([
                        ("event", Value::from("queued")),
                        ("job", Value::from(job_id)),
                    ]),
                );
                let _ = emit(shared.chaos(), writer, &replayed);
                return Ok(Dispatch::Reply(obj([
                    ("ok", Value::Bool(true)),
                    ("job", Value::from(job_id)),
                    ("replayed", Value::Bool(true)),
                ])));
            }
            Some(KeyState::Active { job_id, waiters }) => {
                let job_id = *job_id;
                waiters.push(Arc::clone(writer));
                drop(registry);
                let _ = emit(
                    shared.chaos(),
                    writer,
                    &obj([
                        ("event", Value::from("queued")),
                        ("job", Value::from(job_id)),
                    ]),
                );
                return Ok(Dispatch::Reply(obj([
                    ("ok", Value::Bool(true)),
                    ("job", Value::from(job_id)),
                    ("attached", Value::Bool(true)),
                ])));
            }
            None => {}
        }
    }

    // Fresh durable submission: snapshot the session into a
    // self-contained spec (the job must be re-runnable on a restarted
    // server with no sessions), journal it, then admit.
    let spec = {
        let session = slot.session.lock();
        let gds = odrc_gdsii::write(&session.layout().to_library("odrc"))
            .map_err(|e| ServeError::Layout(e.to_string()))?;
        JobSpec {
            key: key.to_string(),
            gds,
            rules: slot.rules.clone(),
            mode: slot.mode.clone(),
            priority,
            deadline_ms,
        }
    };
    let job_id = admit_durable(shared, spec, Some(Arc::clone(writer)), true)?;
    let _ = emit(
        shared.chaos(),
        writer,
        &obj([
            ("event", Value::from("queued")),
            ("job", Value::from(job_id)),
        ]),
    );
    Ok(Dispatch::Reply(obj([
        ("ok", Value::Bool(true)),
        ("job", Value::from(job_id)),
    ])))
}

/// Rewrites the `job` field of a journaled terminal frame.
fn patch_job_id(frame_text: &str, job_id: u64) -> Value {
    let mut value = crate::json::parse(frame_text).unwrap_or(Value::Null);
    if let Value::Object(pairs) = &mut value {
        match pairs.iter_mut().find(|(k, _)| k == "job") {
            Some(pair) => pair.1 = Value::from(job_id),
            None => pairs.push(("job".to_string(), Value::from(job_id))),
        }
    }
    value
}

/// Journals (optionally) and admits a durable job. `owner` is the
/// submitting connection's writer, absent for restart replays.
fn admit_durable(
    shared: &Arc<ServerShared>,
    spec: JobSpec,
    owner: Option<Arc<Mutex<TcpStream>>>,
    journal_admit: bool,
) -> Result<u64, ServeError> {
    if journal_admit {
        if let Some(journal) = &shared.journal {
            journal.lock().record_admit(&spec, shared.chaos())?;
        }
    }
    let key = spec.key.clone();
    shared.registry.lock().insert(
        key.clone(),
        KeyState::Active {
            job_id: 0,
            waiters: Vec::new(),
        },
    );
    // Durable jobs restart their deadline clock on re-admission: the
    // budget bounds *a* run, and a crashed run was not the client's
    // doing.
    let token = match spec.deadline_ms {
        Some(ms) => CancelToken::with_deadline(Duration::from_millis(ms as u64)),
        None => CancelToken::new(),
    };
    // Keyed jobs never touch a session, so their exclusion domain is
    // the key itself, offset into the upper half so it cannot collide
    // with session ids.
    let exclusion = fnv1a64(key.as_bytes()) | (1 << 63);
    let priority = spec.priority;

    let shed_job = Arc::new(AtomicU64::new(0));
    let on_shed: ShedFn = {
        let shed_shared = Arc::clone(shared);
        let shed_key = key.clone();
        let shed_owner = owner.clone();
        let shed_job = Arc::clone(&shed_job);
        Box::new(move |retry_ms| {
            // The key goes back to vacant: a retry re-journals and
            // re-admits (the stale admit record is deduped on replay).
            let waiters = match shed_shared.registry.lock().remove(&shed_key) {
                Some(KeyState::Active { waiters, .. }) => waiters,
                _ => Vec::new(),
            };
            let event = shed_event(shed_job.load(Ordering::Relaxed), retry_ms);
            if let Some(w) = &shed_owner {
                let _ = emit(shed_shared.chaos(), w, &event);
            }
            for w in &waiters {
                let _ = emit(shed_shared.chaos(), w, &event);
            }
        })
    };

    let job_shared = Arc::clone(shared);
    let job_token = token.clone();
    let submitted = shared.scheduler.submit_with_shed(
        Some(exclusion),
        priority,
        token.clone(),
        Some(on_shed),
        move |run| {
            execute_durable(&job_shared, &spec, owner.as_ref(), &job_token, run);
        },
    );
    let job_id = match submitted {
        Ok(id) => id,
        Err(e) => {
            shared.registry.lock().remove(&key);
            return Err(e);
        }
    };
    shed_job.store(job_id, Ordering::Relaxed);
    if let Some(KeyState::Active { job_id: id, .. }) = shared.registry.lock().get_mut(&key) {
        // The job may already have finished (entry replaced/removed);
        // only a still-active placeholder needs the real id.
        if *id == 0 {
            *id = job_id;
        }
    }
    Ok(job_id)
}

/// Runs one *durable* job from its self-contained spec: parses the
/// journaled layout and deck, wires the per-key [`CheckpointJournal`]
/// so a killed run resumes at the rule boundary, and applies the
/// terminal policy — journal the result for completed (or
/// deadline-expired) runs; put the key back to pending for
/// interrupted ones so a resubmit re-runs from the checkpoint.
fn execute_durable(
    shared: &Arc<ServerShared>,
    spec: &JobSpec,
    owner: Option<&Arc<Mutex<TcpStream>>>,
    token: &CancelToken,
    run: &JobRun,
) {
    let job_id = run.job_id;
    if let Some(journal) = &shared.journal {
        let _ = journal.lock().record_start(&spec.key, shared.chaos());
    }
    if let Some(w) = owner {
        // Plain emit, never emit_or_cancel: a durable job computes on
        // for the journal even when its submitter is gone.
        let _ = emit(
            shared.chaos(),
            w,
            &obj([
                ("event", Value::from("running")),
                ("job", Value::from(job_id)),
            ]),
        );
    }

    let body = std::panic::AssertUnwindSafe(|| -> Result<(Value, Option<CancelReason>), String> {
        if let Some(chaos) = shared.chaos() {
            if chaos.on_job_start() {
                panic!("chaos: worker panic at job start");
            }
        }
        let library = odrc_gdsii::read(&spec.gds).map_err(|e| e.to_string())?;
        let layout = Layout::from_library(&library).map_err(|e| e.to_string())?;
        let deck = parse_deck(&spec.rules).map_err(|e| e.to_string())?;
        let mut engine = build_engine(shared, &spec.mode).map_err(|e| e.to_string())?;
        engine.set_cancel(Some(token.clone()));
        let progress_shared = Arc::clone(shared);
        let progress_owner = owner.cloned();
        let progress: ProgressFn = Arc::new(move |rule: &str, status| {
            if let Some(chaos) = progress_shared.chaos() {
                if chaos.on_rule_event() {
                    // The in-process model of `kill -9` at this exact
                    // rule boundary; the harness restarts the server.
                    std::process::abort();
                }
            }
            if let Some(w) = &progress_owner {
                let _ = emit(
                    progress_shared.chaos(),
                    w,
                    &obj([
                        ("event", Value::from("rule")),
                        ("job", Value::from(job_id)),
                        ("rule", Value::from(rule)),
                        ("status", Value::from(status.to_string())),
                    ]),
                );
            }
        });
        engine.set_progress(Some(progress));

        // Per-key checkpoint journal: the resume half of kill/resume.
        let ckpt_dir = shared.config.checkpoint_dir.as_ref().map(|dir| {
            dir.join("jobs")
                .join(format!("{:016x}", fnv1a64(spec.key.as_bytes())))
        });
        let mut ckpt = match &ckpt_dir {
            Some(dir) => CheckpointJournal::open_dir(dir, RunKey::compute(&layout, &deck))
                .map_err(|e| format!("checkpoint journal: {e}"))
                .map(Some)?,
            None => None,
        };

        let mut cache = shared.tier.checkout();
        let hits_before = cache.hits();
        let report = engine.check_resumable(&layout, &deck, Some(&mut cache), ckpt.as_mut());
        let cache_hits_shared = shared.tier.merge_back(&cache, hits_before);
        shared.dispatch_totals.add(&report.stats);

        let mut stats = match wire::stats_to_json(&report.stats) {
            Value::Object(pairs) => pairs,
            _ => unreachable!("stats_to_json returns an object"),
        };
        stats.push((
            "cache_hits_shared".to_string(),
            Value::from(cache_hits_shared),
        ));
        stats.push(("queue_wait_ms".to_string(), Value::from(run.queue_wait_ms)));

        let interrupted = report.interrupted;
        let done = obj([
            ("event", Value::from("done")),
            ("job", Value::from(job_id)),
            ("key", Value::from(spec.key.as_str())),
            (
                "exit",
                Value::Int(job_exit_code(
                    interrupted.is_some(),
                    report.violations.len(),
                    report.stats.degraded(),
                )),
            ),
            // A durable job always runs the whole deck against its
            // journaled snapshot (never an incremental recheck).
            ("full_run", Value::Bool(true)),
            (
                "interrupted",
                match interrupted {
                    Some(reason) => Value::from(reason.to_string()),
                    None => Value::Null,
                },
            ),
            ("violations", wire::violations_to_json(&report.violations)),
            ("stats", Value::Object(stats)),
        ]);
        if interrupted.is_none() {
            // The run is complete; its checkpoint directory is dead
            // weight (the journaled result now answers resubmits).
            if let Some(dir) = &ckpt_dir {
                drop(ckpt.take());
                let _ = std::fs::remove_dir_all(dir);
            }
        }
        Ok((done, interrupted))
    });

    let (frame, durable) = match std::panic::catch_unwind(body) {
        // Terminal policy: a completed run — and a deadline-expired
        // one, whose partial result is the deterministic outcome of
        // the client's own budget — is journaled and replayable. An
        // *interrupt* (cancel verb) leaves the key pending so the next
        // submission re-runs from the checkpoint.
        Ok(Ok((frame, interrupted))) => {
            let durable = !matches!(interrupted, Some(CancelReason::Interrupt));
            (frame, durable)
        }
        // A hard error (unreadable journaled layout, bad deck) is
        // deterministic: journal it so resubmits replay the error
        // instead of re-failing.
        Ok(Err(message)) => (
            obj([
                ("event", Value::from("error")),
                ("job", Value::from(job_id)),
                ("key", Value::from(spec.key.as_str())),
                ("error", Value::from(message)),
                ("code", Value::Int(110)),
                ("exit", Value::Int(2)),
            ]),
            true,
        ),
        // A panic is presumed transient (chaos injection, resource
        // exhaustion): the key goes back to pending and a resubmit —
        // or the next restart — tries again.
        Err(panic) => (
            obj([
                ("event", Value::from("error")),
                ("job", Value::from(job_id)),
                ("key", Value::from(spec.key.as_str())),
                (
                    "error",
                    Value::from(format!("job panicked: {}", panic_message(&panic))),
                ),
                ("code", Value::Int(110)),
                ("exit", Value::Int(2)),
            ]),
            false,
        ),
    };

    if durable {
        if let Some(journal) = &shared.journal {
            let _ = journal
                .lock()
                .record_done(&spec.key, &frame.to_json(), shared.chaos());
        }
    }
    // Swap the registry entry and collect everyone waiting on the key.
    let waiters = {
        let mut registry = shared.registry.lock();
        let previous = if durable {
            registry.insert(
                spec.key.clone(),
                KeyState::Done {
                    frame: frame.to_json(),
                },
            )
        } else {
            registry.remove(&spec.key)
        };
        match previous {
            Some(KeyState::Active { waiters, .. }) => waiters,
            _ => Vec::new(),
        }
    };
    if let Some(w) = owner {
        let _ = emit(shared.chaos(), w, &frame);
    }
    for w in &waiters {
        let _ = emit(shared.chaos(), w, &frame);
    }
}

/// Runs one admitted session-bound check job on a scheduler worker:
/// wires the job's cancel token and progress stream into the session's
/// engine, checks the shared cache tier in and out, and emits the
/// terminal event.
fn execute_job(
    shared: &Arc<ServerShared>,
    slot: &Arc<SessionSlot>,
    writer: &Arc<Mutex<TcpStream>>,
    token: &CancelToken,
    run: &JobRun,
) {
    let job_id = run.job_id;
    emit_or_cancel(
        shared,
        writer,
        token,
        &obj([
            ("event", Value::from("running")),
            ("job", Value::from(job_id)),
        ]),
    );

    let body = std::panic::AssertUnwindSafe(|| -> Value {
        if let Some(chaos) = shared.chaos() {
            if chaos.on_job_start() {
                panic!("chaos: worker panic at job start");
            }
        }
        let mut session = slot.session.lock();

        // Per-job engine plumbing. The progress callback streams rule
        // completions; a write failure (client gone) trips the job's
        // own token so the engine winds down instead of checking for
        // a dead socket.
        let progress_shared = Arc::clone(shared);
        let progress_writer = Arc::clone(writer);
        let progress_token = token.clone();
        let progress: ProgressFn = Arc::new(move |rule: &str, status| {
            if let Some(chaos) = progress_shared.chaos() {
                if chaos.on_rule_event() {
                    std::process::abort();
                }
            }
            emit_or_cancel(
                &progress_shared,
                &progress_writer,
                &progress_token,
                &obj([
                    ("event", Value::from("rule")),
                    ("job", Value::from(job_id)),
                    ("rule", Value::from(rule)),
                    ("status", Value::from(status.to_string())),
                ]),
            );
        });
        session.engine_mut().set_cancel(Some(token.clone()));
        session.engine_mut().set_progress(Some(progress));

        // Shared-tier checkout: the job runs on a private snapshot.
        let hits_before = if slot.shared_cache {
            let snapshot = shared.tier.checkout();
            let hits = snapshot.hits();
            let _previous = session.swap_cache(snapshot);
            Some(hits)
        } else {
            None
        };

        let report = session.check();

        session.engine_mut().set_cancel(None);
        session.engine_mut().set_progress(None);

        // Merge what this job learned back into the tier; the session
        // keeps the enriched snapshot (a superset of what it had).
        let cache_hits_shared = match hits_before {
            Some(before) => {
                let enriched = session.swap_cache(ResultCache::new());
                let job_hits = shared.tier.merge_back(&enriched, before);
                let _empty = session.swap_cache(enriched);
                job_hits
            }
            None => 0,
        };
        shared.dispatch_totals.add(&report.stats);

        let mut stats = match wire::stats_to_json(&report.stats) {
            Value::Object(pairs) => pairs,
            _ => unreachable!("stats_to_json returns an object"),
        };
        stats.push((
            "cache_hits_shared".to_string(),
            Value::from(cache_hits_shared),
        ));
        stats.push(("queue_wait_ms".to_string(), Value::from(run.queue_wait_ms)));

        obj([
            ("event", Value::from("done")),
            ("job", Value::from(job_id)),
            (
                "exit",
                Value::Int(job_exit_code(
                    report.interrupted.is_some(),
                    report.violations.len(),
                    report.stats.degraded(),
                )),
            ),
            ("full_run", Value::Bool(report.full_run)),
            (
                "interrupted",
                match report.interrupted {
                    Some(reason) => Value::from(reason.to_string()),
                    None => Value::Null,
                },
            ),
            ("violations", wire::violations_to_json(&report.violations)),
            ("stats", Value::Object(stats)),
        ])
    });

    match std::panic::catch_unwind(body) {
        Ok(done) => {
            let _ = emit(shared.chaos(), writer, &done);
        }
        Err(panic) => {
            // The job died; the session slot may hold partial engine
            // plumbing but its mutex is unlocked (guard dropped during
            // unwind) and the next job re-wires everything anyway.
            let message = panic_message(&panic);
            let _ = emit(
                shared.chaos(),
                writer,
                &obj([
                    ("event", Value::from("error")),
                    ("job", Value::from(job_id)),
                    ("error", Value::from(format!("job panicked: {message}"))),
                    ("code", Value::Int(110)),
                    ("exit", Value::Int(2)),
                ]),
            );
        }
    }
}

fn panic_message(panic: &Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "unknown panic".to_string()
    }
}

/// The `health` probe: cheap, side-effect-free, load-balancer-shaped.
fn health_frame(shared: &ServerShared) -> Value {
    let draining = shared.drain.cancelled().is_some() || shared.scheduler.is_draining();
    obj([
        ("ok", Value::Bool(true)),
        ("uptime_ms", Value::from(shared.now_ms())),
        ("queue_depth", Value::from(shared.scheduler.queue_depth())),
        ("workers_busy", Value::from(shared.scheduler.workers_busy())),
        ("workers", Value::from(shared.config.workers)),
        ("draining", Value::Bool(draining)),
        ("sessions", Value::from(shared.sessions.lock().len())),
        ("live_jobs", Value::from(shared.scheduler.live_jobs())),
        (
            "durable",
            Value::Bool(shared.config.checkpoint_dir.is_some()),
        ),
    ])
}

fn server_stats(shared: &ServerShared) -> Value {
    let sched = shared.scheduler.stats();
    obj([
        ("ok", Value::Bool(true)),
        (
            "jobs_admitted",
            Value::from(sched.jobs_admitted.load(Ordering::Relaxed)),
        ),
        (
            "jobs_rejected",
            Value::from(sched.jobs_rejected.load(Ordering::Relaxed)),
        ),
        (
            "jobs_completed",
            Value::from(sched.jobs_completed.load(Ordering::Relaxed)),
        ),
        (
            "jobs_cancelled",
            Value::from(sched.jobs_cancelled.load(Ordering::Relaxed)),
        ),
        (
            "jobs_panicked",
            Value::from(sched.jobs_panicked.load(Ordering::Relaxed)),
        ),
        (
            "jobs_shed",
            Value::from(sched.jobs_shed.load(Ordering::Relaxed)),
        ),
        ("live_jobs", Value::from(shared.scheduler.live_jobs())),
        ("queue_depth", Value::from(shared.scheduler.queue_depth())),
        ("workers_busy", Value::from(shared.scheduler.workers_busy())),
        ("uptime_ms", Value::from(shared.now_ms())),
        ("cache_hits_shared", Value::from(shared.tier.hits_shared())),
        ("cache_entries", Value::from(shared.tier.len())),
        (
            "cache_entries_merged",
            Value::from(shared.tier.entries_merged()),
        ),
        ("sessions", Value::from(shared.sessions.lock().len())),
        ("host_threads", Value::from(shared.config.host_threads)),
        ("gate_available", Value::from(shared.gate.available())),
        (
            "launches_fused",
            Value::from(
                shared
                    .dispatch_totals
                    .launches_fused
                    .load(Ordering::Relaxed),
            ),
        ),
        (
            "graph_replays",
            Value::from(shared.dispatch_totals.graph_replays.load(Ordering::Relaxed)),
        ),
        (
            "worker_wakeups",
            Value::from(
                shared
                    .dispatch_totals
                    .worker_wakeups
                    .load(Ordering::Relaxed),
            ),
        ),
    ])
}

fn emit(
    chaos: Option<&ChaosState>,
    writer: &Arc<Mutex<TcpStream>>,
    frame: &Value,
) -> std::io::Result<()> {
    if let Some(chaos) = chaos {
        if chaos.on_frame_write() {
            // A real reset severs the transport, not just this write:
            // the peer must observe the failure (and reconnect/retry),
            // and the connection's read loop must wind down — leaving
            // the socket open would model a fault no real network
            // produces and strand a client waiting on a dead stream.
            let _ = writer.lock().shutdown(std::net::Shutdown::Both);
            return Err(std::io::Error::new(
                std::io::ErrorKind::ConnectionReset,
                "chaos: injected socket reset",
            ));
        }
    }
    let mut stream = writer.lock();
    write_frame(&mut *stream, frame)
}

/// Emits an event; on a dead socket, trips the job token so the run
/// winds down instead of computing for nobody.
fn emit_or_cancel(
    shared: &ServerShared,
    writer: &Arc<Mutex<TcpStream>>,
    token: &CancelToken,
    frame: &Value,
) {
    if emit(shared.chaos(), writer, frame).is_err() {
        token.cancel(CancelReason::Interrupt);
    }
}
