//! The `odrc serve` daemon: TCP accept loop, per-connection protocol
//! handling, edit-session registry, and job execution.
//!
//! One connection = one client = any number of edit sessions. The
//! connection thread parses frames and answers cheap verbs inline;
//! `check` admits a job into the shared [`Scheduler`] and returns
//! immediately — the job's lifecycle then streams back as event
//! frames (`queued`, `running`, per-`rule` progress, `done`/`error`)
//! written through the connection's shared writer, interleaved with
//! later responses.
//!
//! Resource sharing across tenants:
//!
//! * **threads** — one process-wide [`ThreadGate`] sized to
//!   `host_threads - 1` extra permits; every job's engine run and
//!   device dispatch draws from it (`EngineOptions::shared_gate`), so
//!   N concurrent jobs share one machine budget instead of assuming N
//!   machines.
//! * **results** — one [`SharedCacheTier`]; each job checks out a
//!   snapshot and merges back what it computed, so a layout one
//!   client already checked warms every other client's jobs.
//! * **devices** — per *session*, never shared: `Device` knobs
//!   (`set_cancel`, `set_host_gate`) are device-global, so concurrent
//!   jobs on one device would trample each other. Devices are cheap
//!   (no persistent pool), and the session exclusion key guarantees
//!   one job per session at a time.
//!
//! Teardown: a client disconnect cancels that client's live jobs (the
//! engine winds down at the next rule boundary) and closes its
//! sessions. A `shutdown` verb or SIGTERM trips the drain token: the
//! accept loop stops, admission rejects, in-flight jobs finish and
//! deliver their results, the cache tier is persisted, and `run`
//! returns.
//!
//! [`ThreadGate`]: odrc_infra::ThreadGate

use std::collections::HashMap;
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use odrc::{parse_deck, Engine, EngineOptions, ProgressFn, ResultCache};
use odrc_db::Layout;
use odrc_incremental::Session;
use odrc_infra::{CancelReason, CancelToken, ThreadGate};
use odrc_xpu::Device;
use parking_lot::Mutex;

use crate::cache_tier::SharedCacheTier;
use crate::json::{base64, obj, Value};
use crate::proto::{
    self, job_exit_code, opt_i64, opt_str, read_frame, req_i64, req_str, write_frame, ServeError,
};
use crate::scheduler::{JobRun, Scheduler};
use crate::wire;

/// Server tuning. `Default` sizes to the host.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks an ephemeral port (see
    /// [`Server::addr`]).
    pub addr: String,
    /// Concurrent job slots (scheduler workers).
    pub workers: usize,
    /// Process-wide host-thread budget shared by all concurrent jobs
    /// — the multi-tenant analogue of the CLI's `--host-threads`.
    pub host_threads: usize,
    /// Waiting jobs the admission queue holds before rejecting.
    pub max_queue: usize,
    /// Directory for the shared result-cache sidecar; `None` keeps
    /// the tier in memory only.
    pub cache_dir: Option<PathBuf>,
    /// Device worker threads per parallel-mode session.
    pub device_workers: usize,
    /// Stream-ordered allocator budget per parallel-mode session.
    pub device_budget: Option<usize>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        let par = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: par.clamp(1, 4),
            host_threads: par,
            max_queue: 64,
            cache_dir: None,
            device_workers: par,
            device_budget: None,
        }
    }
}

/// One client's edit session as the server stores it.
struct SessionSlot {
    session: Mutex<Session>,
    /// Whether jobs on this session consult the shared cache tier.
    shared_cache: bool,
}

struct ServerShared {
    config: ServerConfig,
    scheduler: Scheduler,
    tier: SharedCacheTier,
    gate: Arc<ThreadGate>,
    sessions: Mutex<HashMap<u64, Arc<SessionSlot>>>,
    next_session: AtomicU64,
    drain: CancelToken,
}

/// A bound, not-yet-running server. [`Server::run`] blocks until
/// drained; [`Server::handle`] hands out the remote-shutdown trigger
/// first.
pub struct Server {
    listener: TcpListener,
    addr: SocketAddr,
    shared: Arc<ServerShared>,
}

/// Clonable shutdown trigger for a running [`Server`].
#[derive(Clone)]
pub struct ServerHandle {
    drain: CancelToken,
}

impl ServerHandle {
    /// Starts a graceful drain: stop accepting, finish in-flight
    /// jobs, persist the cache tier, return from [`Server::run`].
    pub fn shutdown(&self) {
        self.drain.cancel(CancelReason::Interrupt);
    }
}

/// What a drained server reports back.
#[derive(Debug)]
pub struct DrainSummary {
    /// Jobs that ran to a terminal state over the server's lifetime.
    pub jobs_completed: u64,
    /// Entries in the shared cache tier at shutdown.
    pub cache_entries: usize,
    /// Shared-tier lookups answered for jobs over the lifetime.
    pub cache_hits_shared: u64,
}

impl Server {
    /// Binds the listener and spins up the scheduler; no connections
    /// are accepted until [`Server::run`].
    pub fn bind(config: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let tier = match &config.cache_dir {
            Some(dir) => SharedCacheTier::with_dir(dir),
            None => SharedCacheTier::new(),
        };
        // The multi-tenant sizing handshake: `host_threads` total, one
        // implicit thread per running job, the rest as shared permits.
        let gate = Arc::new(ThreadGate::new(config.host_threads.saturating_sub(1)));
        let shared = Arc::new(ServerShared {
            scheduler: Scheduler::new(config.workers, config.max_queue),
            tier,
            gate,
            sessions: Mutex::new(HashMap::new()),
            next_session: AtomicU64::new(1),
            // Linked to the signal flag so the daemon drains on
            // SIGINT/SIGTERM once handlers are installed (the bin does
            // that); programmatic ServerHandle::shutdown works always.
            drain: CancelToken::new().linked_to_signals(),
            config,
        });
        Ok(Server {
            listener,
            addr,
            shared,
        })
    }

    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The remote-shutdown trigger.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            drain: self.shared.drain.clone(),
        }
    }

    /// Accepts connections until the drain token trips, then drains
    /// the scheduler, persists the cache tier, and returns.
    pub fn run(self) -> std::io::Result<DrainSummary> {
        let mut conns: Vec<std::thread::JoinHandle<()>> = Vec::new();
        while self.shared.drain.cancelled().is_none() {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    let shared = Arc::clone(&self.shared);
                    conns.push(
                        std::thread::Builder::new()
                            .name("odrc-conn".to_string())
                            .spawn(move || handle_connection(stream, &shared))
                            .expect("spawn connection thread"),
                    );
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(25));
                }
                Err(e) => return Err(e),
            }
            conns.retain(|h| !h.is_finished());
        }
        // Drain: no new admissions, in-flight jobs finish and deliver.
        self.shared.scheduler.drain();
        self.shared.tier.persist()?;
        Ok(DrainSummary {
            jobs_completed: self
                .shared
                .scheduler
                .stats()
                .jobs_completed
                .load(Ordering::Relaxed),
            cache_entries: self.shared.tier.len(),
            cache_hits_shared: self.shared.tier.hits_shared(),
        })
    }
}

/// Per-connection state the dispatcher tracks.
struct ConnState {
    /// Sessions this connection opened (closed on disconnect).
    sessions: Vec<u64>,
    /// Jobs this connection submitted, with their cancel tokens
    /// (tripped on disconnect so an orphaned job winds down).
    jobs: Vec<(u64, CancelToken)>,
}

fn handle_connection(stream: TcpStream, shared: &Arc<ServerShared>) {
    let writer: Arc<Mutex<TcpStream>> = match stream.try_clone() {
        Ok(clone) => Arc::new(Mutex::new(clone)),
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    let mut conn = ConnState {
        sessions: Vec::new(),
        jobs: Vec::new(),
    };

    loop {
        let frame = match read_frame(&mut reader) {
            Ok(Some(line)) => line,
            Ok(None) => break, // clean disconnect
            Err(e) => {
                let _ = emit(&writer, &e.to_frame());
                if e.fatal_to_connection() {
                    break;
                }
                continue;
            }
        };
        match dispatch(&frame, shared, &writer, &mut conn) {
            Ok(Dispatch::Reply(response)) => {
                if emit(&writer, &response).is_err() {
                    break;
                }
            }
            Ok(Dispatch::Goodbye(response)) => {
                let _ = emit(&writer, &response);
                break;
            }
            Err(e) => {
                let fatal = e.fatal_to_connection();
                if emit(&writer, &e.to_frame()).is_err() || fatal {
                    break;
                }
            }
        }
    }

    // Teardown: orphaned jobs wind down at the next rule boundary;
    // this client's sessions go away once their jobs release them.
    for (_, token) in &conn.jobs {
        token.cancel(CancelReason::Interrupt);
    }
    let mut sessions = shared.sessions.lock();
    for id in &conn.sessions {
        sessions.remove(id);
    }
}

enum Dispatch {
    Reply(Value),
    /// Reply, then close the connection (the `shutdown` ack).
    Goodbye(Value),
}

fn dispatch(
    line: &str,
    shared: &Arc<ServerShared>,
    writer: &Arc<Mutex<TcpStream>>,
    conn: &mut ConnState,
) -> Result<Dispatch, ServeError> {
    let frame = proto::parse_frame(line)?;
    let verb = req_str(&frame, "verb")?;
    match verb {
        "hello" => Ok(Dispatch::Reply(obj([
            ("ok", Value::Bool(true)),
            ("server", Value::from("odrc-serve")),
            ("protocol", Value::Int(1)),
        ]))),
        "open" => open_session(&frame, shared, conn),
        "edit" => edit_session(&frame, shared),
        "check" => submit_check(&frame, shared, writer, conn),
        "cancel" => {
            let job = req_i64(&frame, "job")?;
            let job = u64::try_from(job)
                .map_err(|_| ServeError::Protocol("\"job\" must be non-negative".to_string()))?;
            shared.scheduler.cancel(job)?;
            Ok(Dispatch::Reply(obj([
                ("ok", Value::Bool(true)),
                ("job", Value::from(job)),
            ])))
        }
        "stats" => Ok(Dispatch::Reply(server_stats(shared))),
        "close" => {
            let id = session_id(&frame)?;
            let removed = shared.sessions.lock().remove(&id).is_some();
            if !removed {
                return Err(ServeError::UnknownSession(id));
            }
            conn.sessions.retain(|s| *s != id);
            Ok(Dispatch::Reply(obj([
                ("ok", Value::Bool(true)),
                ("session", Value::from(id)),
            ])))
        }
        "shutdown" => {
            shared.drain.cancel(CancelReason::Interrupt);
            Ok(Dispatch::Goodbye(obj([
                ("ok", Value::Bool(true)),
                ("draining", Value::Bool(true)),
            ])))
        }
        other => Err(ServeError::UnknownVerb(other.to_string())),
    }
}

fn session_id(frame: &Value) -> Result<u64, ServeError> {
    let id = req_i64(frame, "session")?;
    u64::try_from(id)
        .map_err(|_| ServeError::Protocol("\"session\" must be non-negative".to_string()))
}

fn find_session(shared: &ServerShared, id: u64) -> Result<Arc<SessionSlot>, ServeError> {
    shared
        .sessions
        .lock()
        .get(&id)
        .cloned()
        .ok_or(ServeError::UnknownSession(id))
}

fn open_session(
    frame: &Value,
    shared: &Arc<ServerShared>,
    conn: &mut ConnState,
) -> Result<Dispatch, ServeError> {
    // Layout: inline base64 GDSII, or a server-side path.
    let library = match (opt_str(frame, "gds_b64")?, opt_str(frame, "path")?) {
        (Some(b64), _) => {
            let bytes = base64::decode(b64).map_err(ServeError::Layout)?;
            odrc_gdsii::read(&bytes).map_err(|e| ServeError::Layout(e.to_string()))?
        }
        (None, Some(path)) => {
            odrc_gdsii::read_file(path).map_err(|e| ServeError::Layout(e.to_string()))?
        }
        (None, None) => {
            return Err(ServeError::Protocol(
                "open needs \"gds_b64\" or \"path\"".to_string(),
            ))
        }
    };
    let layout = Layout::from_library(&library).map_err(|e| ServeError::Layout(e.to_string()))?;
    let deck =
        parse_deck(req_str(frame, "rules")?).map_err(|e| ServeError::Rules(e.to_string()))?;
    let mode = opt_str(frame, "mode")?.unwrap_or("sequential");
    let shared_cache = match frame.get("shared_cache") {
        None | Some(Value::Null) => true,
        Some(v) => v
            .as_bool()
            .ok_or_else(|| ServeError::Protocol("\"shared_cache\" must be a bool".to_string()))?,
    };

    let options = EngineOptions {
        host_threads: Some(shared.config.host_threads),
        shared_gate: Some(Arc::clone(&shared.gate)),
        ..EngineOptions::default()
    };
    let engine = match mode {
        "sequential" => Engine::sequential().with_options(options),
        "parallel" => {
            // Per-session device: its knobs are device-global, so it
            // must never be shared across concurrently running jobs.
            let device = match shared.config.device_budget {
                Some(bytes) => Device::with_budget(shared.config.device_workers, bytes),
                None => Device::new(shared.config.device_workers),
            };
            Engine::parallel_on(device).with_options(options)
        }
        other => {
            return Err(ServeError::Protocol(format!(
                "mode must be \"sequential\" or \"parallel\", got {other:?}"
            )))
        }
    };

    let cells = layout.cells().len();
    let id = shared.next_session.fetch_add(1, Ordering::Relaxed);
    let slot = Arc::new(SessionSlot {
        session: Mutex::new(Session::new(layout, engine, deck)),
        shared_cache,
    });
    shared.sessions.lock().insert(id, slot);
    conn.sessions.push(id);
    Ok(Dispatch::Reply(obj([
        ("ok", Value::Bool(true)),
        ("session", Value::from(id)),
        ("cells", Value::from(cells)),
    ])))
}

fn edit_session(frame: &Value, shared: &Arc<ServerShared>) -> Result<Dispatch, ServeError> {
    let id = session_id(frame)?;
    let slot = find_session(shared, id)?;
    let ops = frame
        .get("ops")
        .and_then(Value::as_array)
        .ok_or_else(|| ServeError::Protocol("missing \"ops\" array".to_string()))?;
    let parsed = ops
        .iter()
        .map(wire::edit_op_from_json)
        .collect::<Result<Vec<_>, _>>()?;
    let applied = parsed.len();
    // Serialized against any running job on this session by the slot
    // mutex: edits land strictly before or after a check, never mid-run.
    let mut session = slot.session.lock();
    session
        .apply_all(parsed)
        .map_err(|e| ServeError::Edit(e.to_string()))?;
    Ok(Dispatch::Reply(obj([
        ("ok", Value::Bool(true)),
        ("session", Value::from(id)),
        ("applied", Value::from(applied)),
    ])))
}

fn submit_check(
    frame: &Value,
    shared: &Arc<ServerShared>,
    writer: &Arc<Mutex<TcpStream>>,
    conn: &mut ConnState,
) -> Result<Dispatch, ServeError> {
    let id = session_id(frame)?;
    let slot = find_session(shared, id)?;
    let priority = opt_i64(frame, "priority")?.unwrap_or(0);
    // The deadline clock starts at admission: a job stuck behind a
    // full queue burns its budget waiting, exactly like the CLI's
    // wall-clock `--deadline`.
    let token = match opt_i64(frame, "deadline_ms")? {
        Some(ms) if ms >= 0 => CancelToken::with_deadline(Duration::from_millis(ms as u64)),
        Some(_) => {
            return Err(ServeError::Protocol(
                "\"deadline_ms\" must be non-negative".to_string(),
            ))
        }
        None => CancelToken::new(),
    };

    let job_writer = Arc::clone(writer);
    let job_shared = Arc::clone(shared);
    let job_token = token.clone();
    let job_id = shared
        .scheduler
        .submit(Some(id), priority, token.clone(), move |run| {
            execute_job(&job_shared, &slot, &job_writer, &job_token, run);
        })?;
    conn.jobs.push((job_id, token));
    let _ = emit(
        writer,
        &obj([
            ("event", Value::from("queued")),
            ("job", Value::from(job_id)),
        ]),
    );
    Ok(Dispatch::Reply(obj([
        ("ok", Value::Bool(true)),
        ("job", Value::from(job_id)),
    ])))
}

/// Runs one admitted check job on a scheduler worker: wires the job's
/// cancel token and progress stream into the session's engine, checks
/// the shared cache tier in and out, and emits the terminal event.
fn execute_job(
    shared: &Arc<ServerShared>,
    slot: &Arc<SessionSlot>,
    writer: &Arc<Mutex<TcpStream>>,
    token: &CancelToken,
    run: &JobRun,
) {
    let job_id = run.job_id;
    emit_or_cancel(
        writer,
        token,
        &obj([
            ("event", Value::from("running")),
            ("job", Value::from(job_id)),
        ]),
    );

    let body = std::panic::AssertUnwindSafe(|| -> Value {
        let mut session = slot.session.lock();

        // Per-job engine plumbing. The progress callback streams rule
        // completions; a write failure (client gone) trips the job's
        // own token so the engine winds down instead of checking for
        // a dead socket.
        let progress_writer = Arc::clone(writer);
        let progress_token = token.clone();
        let progress: ProgressFn = Arc::new(move |rule: &str, status| {
            emit_or_cancel(
                &progress_writer,
                &progress_token,
                &obj([
                    ("event", Value::from("rule")),
                    ("job", Value::from(job_id)),
                    ("rule", Value::from(rule)),
                    ("status", Value::from(status.to_string())),
                ]),
            );
        });
        session.engine_mut().set_cancel(Some(token.clone()));
        session.engine_mut().set_progress(Some(progress));

        // Shared-tier checkout: the job runs on a private snapshot.
        let hits_before = if slot.shared_cache {
            let snapshot = shared.tier.checkout();
            let hits = snapshot.hits();
            let _previous = session.swap_cache(snapshot);
            Some(hits)
        } else {
            None
        };

        let report = session.check();

        session.engine_mut().set_cancel(None);
        session.engine_mut().set_progress(None);

        // Merge what this job learned back into the tier; the session
        // keeps the enriched snapshot (a superset of what it had).
        let cache_hits_shared = match hits_before {
            Some(before) => {
                let enriched = session.swap_cache(ResultCache::new());
                let job_hits = shared.tier.merge_back(&enriched, before);
                let _empty = session.swap_cache(enriched);
                job_hits
            }
            None => 0,
        };

        let mut stats = match wire::stats_to_json(&report.stats) {
            Value::Object(pairs) => pairs,
            _ => unreachable!("stats_to_json returns an object"),
        };
        stats.push((
            "cache_hits_shared".to_string(),
            Value::from(cache_hits_shared),
        ));
        stats.push(("queue_wait_ms".to_string(), Value::from(run.queue_wait_ms)));

        obj([
            ("event", Value::from("done")),
            ("job", Value::from(job_id)),
            (
                "exit",
                Value::Int(job_exit_code(
                    report.interrupted.is_some(),
                    report.violations.len(),
                    report.stats.degraded(),
                )),
            ),
            ("full_run", Value::Bool(report.full_run)),
            (
                "interrupted",
                match report.interrupted {
                    Some(reason) => Value::from(reason.to_string()),
                    None => Value::Null,
                },
            ),
            ("violations", wire::violations_to_json(&report.violations)),
            ("stats", Value::Object(stats)),
        ])
    });

    match std::panic::catch_unwind(body) {
        Ok(done) => {
            let _ = emit(writer, &done);
        }
        Err(panic) => {
            // The job died; the session slot may hold partial engine
            // plumbing but its mutex is unlocked (guard dropped during
            // unwind) and the next job re-wires everything anyway.
            let message = panic_message(&panic);
            let _ = emit(
                writer,
                &obj([
                    ("event", Value::from("error")),
                    ("job", Value::from(job_id)),
                    ("error", Value::from(format!("job panicked: {message}"))),
                    ("code", Value::Int(110)),
                    ("exit", Value::Int(2)),
                ]),
            );
        }
    }
}

fn panic_message(panic: &Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "unknown panic".to_string()
    }
}

fn server_stats(shared: &ServerShared) -> Value {
    let sched = shared.scheduler.stats();
    obj([
        ("ok", Value::Bool(true)),
        (
            "jobs_admitted",
            Value::from(sched.jobs_admitted.load(Ordering::Relaxed)),
        ),
        (
            "jobs_rejected",
            Value::from(sched.jobs_rejected.load(Ordering::Relaxed)),
        ),
        (
            "jobs_completed",
            Value::from(sched.jobs_completed.load(Ordering::Relaxed)),
        ),
        (
            "jobs_cancelled",
            Value::from(sched.jobs_cancelled.load(Ordering::Relaxed)),
        ),
        (
            "jobs_panicked",
            Value::from(sched.jobs_panicked.load(Ordering::Relaxed)),
        ),
        ("live_jobs", Value::from(shared.scheduler.live_jobs())),
        ("cache_hits_shared", Value::from(shared.tier.hits_shared())),
        ("cache_entries", Value::from(shared.tier.len())),
        (
            "cache_entries_merged",
            Value::from(shared.tier.entries_merged()),
        ),
        ("sessions", Value::from(shared.sessions.lock().len())),
        ("host_threads", Value::from(shared.config.host_threads)),
        ("gate_available", Value::from(shared.gate.available())),
    ])
}

fn emit(writer: &Arc<Mutex<TcpStream>>, frame: &Value) -> std::io::Result<()> {
    let mut stream = writer.lock();
    write_frame(&mut *stream, frame)
}

/// Emits an event; on a dead socket, trips the job token so the run
/// winds down instead of computing for nobody.
fn emit_or_cancel(writer: &Arc<Mutex<TcpStream>>, token: &CancelToken, frame: &Value) {
    if emit(writer, frame).is_err() {
        token.cancel(CancelReason::Interrupt);
    }
}
