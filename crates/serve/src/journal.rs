//! Durable job journal: the server's crash-safe memory of admitted,
//! running, and completed jobs.
//!
//! Every `check` submitted with a client-supplied **idempotency key**
//! is recorded in an append-only [`RecordLog`] (the same checksummed
//! framing as the engine's checkpoint journal) *before* it is
//! acknowledged. Three record kinds, JSON payloads:
//!
//! * `admit` — the full job spec (layout GDS bytes base64'd, rules
//!   text, mode, priority, optional deadline), keyed by the
//!   idempotency key. Written at admission.
//! * `start` — the key, written when a worker picks the job up.
//!   Purely diagnostic today (a pending job is re-admitted on replay
//!   whether or not it started), but it pins down *where* a crash
//!   landed when a human reads the journal.
//! * `done` — the key plus the terminal result frame the owner was
//!   sent. Written only for results worth replaying verbatim (see
//!   the terminal policy in `server.rs`): a completed or
//!   deadline-expired job, never one interrupted by cancel/disconnect/
//!   drain — those stay pending and resume on restart.
//!
//! On open the journal replays the log, reduces it to per-key state
//! (`done` wins over `admit`), and **compacts** the file: finished
//! keys keep only their `done` record (capped at
//! [`MAX_DONE_RETAINED`], oldest evicted first), pending keys keep
//! their `admit`. The server re-admits every pending spec as a
//! headless job — each wired to its per-key `CheckpointJournal`, so a
//! job killed mid-rule resumes at the rule boundary, not from scratch.
//!
//! Chaos: when a [`ChaosState`](crate::chaos::ChaosState) is armed,
//! every append first consults [`ChaosState::on_journal_append`] and
//! honors crash fates — aborting the process outright, or writing
//! exactly half the frame first so the next open must heal a torn
//! tail. The abort happens *here*, at the journal's own frame
//! boundary, which is what makes the torn-tail byte offset
//! deterministic per seed.
//!
//! [`ChaosState::on_journal_append`]: crate::chaos::ChaosState::on_journal_append

use std::collections::HashMap;
use std::io;
use std::path::Path;

use odrc_infra::RecordLog;

use crate::chaos::{ChaosState, JournalFate};
use crate::json::{self, base64, obj, Value};

/// File name of the job journal inside the checkpoint directory.
pub const JOB_JOURNAL_FILE: &str = "odrc-jobs.bin";

/// Format tag for the job journal's record log.
const MAGIC: &[u8; 8] = b"ODRCJOB1";

/// How many finished jobs' terminal frames survive compaction. Bounds
/// the journal (and the idempotency window) without a clock: the
/// oldest `done` records are evicted first, after which a resubmit of
/// that key re-runs the check — correct, just not cached.
pub const MAX_DONE_RETAINED: usize = 256;

/// Everything needed to re-run a journaled job from scratch: the
/// layout snapshot (GDS bytes), the rules text, and the scheduling
/// knobs the original submission carried.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobSpec {
    /// Client-supplied idempotency key.
    pub key: String,
    /// The session layout at submission time, exported as GDSII.
    pub gds: Vec<u8>,
    /// Rule deck source text.
    pub rules: String,
    /// Check mode (`"flat"` or `"hier"`).
    pub mode: String,
    /// Scheduling priority.
    pub priority: i64,
    /// Wall-clock deadline in milliseconds, if the submission had one.
    pub deadline_ms: Option<i64>,
}

impl JobSpec {
    fn to_admit_payload(&self) -> Vec<u8> {
        let mut pairs = vec![
            ("rec", Value::Str("admit".into())),
            ("key", Value::Str(self.key.clone())),
            ("gds_b64", Value::Str(base64::encode(&self.gds))),
            ("rules", Value::Str(self.rules.clone())),
            ("mode", Value::Str(self.mode.clone())),
            ("priority", Value::Int(self.priority)),
        ];
        if let Some(d) = self.deadline_ms {
            pairs.push(("deadline_ms", Value::Int(d)));
        }
        obj(pairs).to_json().into_bytes()
    }

    fn from_admit(v: &Value) -> Option<JobSpec> {
        Some(JobSpec {
            key: v.get("key")?.as_str()?.to_string(),
            gds: base64::decode(v.get("gds_b64")?.as_str()?).ok()?,
            rules: v.get("rules")?.as_str()?.to_string(),
            mode: v.get("mode")?.as_str()?.to_string(),
            priority: v.get("priority")?.as_i64()?,
            deadline_ms: v.get("deadline_ms").and_then(Value::as_i64),
        })
    }
}

/// Reduced per-key state after replaying the log.
#[derive(Debug)]
pub enum ReplayedJob {
    /// Admitted (whether or not started) but never finished: the spec
    /// to re-admit.
    Pending(JobSpec),
    /// Finished: the terminal frame (JSON text) the owner was sent.
    Done(String),
}

/// The durable job journal. All appends are synchronous and fsynced —
/// a job is only acknowledged after its `admit` record is on disk.
#[derive(Debug)]
pub struct JobJournal {
    log: RecordLog,
    /// Insertion-ordered keys of retained `done` records, oldest
    /// first, for [`MAX_DONE_RETAINED`] eviction.
    done_order: Vec<String>,
}

impl JobJournal {
    /// Opens (or creates) the journal in `dir`, replays it, compacts
    /// the file, and returns the handle plus the reduced per-key
    /// state.
    pub fn open_dir(dir: &Path) -> io::Result<(JobJournal, HashMap<String, ReplayedJob>)> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(JOB_JOURNAL_FILE);
        let (mut log, records) = RecordLog::open(&path, MAGIC)?;

        let mut jobs: HashMap<String, ReplayedJob> = HashMap::new();
        let mut order: Vec<String> = Vec::new(); // first-seen key order
        for rec in &records {
            let Ok(text) = std::str::from_utf8(rec) else {
                continue; // undecodable record: skip, never veto
            };
            let Ok(v) = json::parse(text) else { continue };
            let (Some(kind), Some(key)) = (
                v.get("rec").and_then(Value::as_str),
                v.get("key").and_then(Value::as_str),
            ) else {
                continue;
            };
            match kind {
                "admit" => {
                    if let Some(spec) = JobSpec::from_admit(&v) {
                        if !jobs.contains_key(key) {
                            order.push(key.to_string());
                        }
                        // A re-admit of a done key does not resurrect
                        // it; the done record stays authoritative.
                        jobs.entry(key.to_string())
                            .or_insert(ReplayedJob::Pending(spec));
                    }
                }
                "start" => {} // diagnostic only
                "done" => {
                    if let Some(result) = v.get("result") {
                        if !jobs.contains_key(key) {
                            order.push(key.to_string());
                        }
                        jobs.insert(key.to_string(), ReplayedJob::Done(result.to_json()));
                    }
                }
                _ => {}
            }
        }

        // Evict the oldest done records past the retention cap.
        let mut done_order: Vec<String> = order
            .iter()
            .filter(|k| matches!(jobs.get(*k), Some(ReplayedJob::Done(_))))
            .cloned()
            .collect();
        while done_order.len() > MAX_DONE_RETAINED {
            let evicted = done_order.remove(0);
            jobs.remove(&evicted);
        }

        // Compact: pending keys keep their admit record, done keys
        // keep only the done record.
        let mut payloads: Vec<Vec<u8>> = Vec::new();
        for key in &order {
            match jobs.get(key) {
                Some(ReplayedJob::Pending(spec)) => payloads.push(spec.to_admit_payload()),
                Some(ReplayedJob::Done(frame)) => payloads.push(done_payload(key, frame)),
                None => {} // evicted
            }
        }
        log.rewrite(MAGIC, payloads.iter().map(Vec::as_slice))?;

        Ok((JobJournal { log, done_order }, jobs))
    }

    /// Path of the journal file.
    pub fn path(&self) -> &Path {
        self.log.path()
    }

    /// Records a job's admission. Must succeed before the submission
    /// is acknowledged to the client.
    pub fn record_admit(&mut self, spec: &JobSpec, chaos: Option<&ChaosState>) -> io::Result<()> {
        self.append(&spec.to_admit_payload(), chaos)
    }

    /// Records that a worker picked the job up.
    pub fn record_start(&mut self, key: &str, chaos: Option<&ChaosState>) -> io::Result<()> {
        let payload = obj([
            ("rec", Value::Str("start".into())),
            ("key", Value::Str(key.to_string())),
        ])
        .to_json()
        .into_bytes();
        self.append(&payload, chaos)
    }

    /// Records a job's terminal result frame (JSON text). Evicts the
    /// oldest retained result past [`MAX_DONE_RETAINED`] by compacting
    /// in place.
    pub fn record_done(
        &mut self,
        key: &str,
        result_frame: &str,
        chaos: Option<&ChaosState>,
    ) -> io::Result<()> {
        self.append(&done_payload(key, result_frame), chaos)?;
        self.done_order.push(key.to_string());
        Ok(())
    }

    fn append(&mut self, payload: &[u8], chaos: Option<&ChaosState>) -> io::Result<()> {
        if let Some(chaos) = chaos {
            match chaos.on_journal_append() {
                JournalFate::Proceed => {}
                JournalFate::TearAndAbort => {
                    let frame = RecordLog::frame(payload);
                    let _ = self.log.append_raw(&frame[..frame.len() / 2]);
                    std::process::abort();
                }
                JournalFate::Abort => std::process::abort(),
            }
        }
        self.log.append(payload)
    }
}

fn done_payload(key: &str, result_frame: &str) -> Vec<u8> {
    // The stored result is the parsed Value re-serialized, so replay
    // emits exactly what compaction will reproduce after a restart.
    let result = json::parse(result_frame).unwrap_or(Value::Null);
    obj([
        ("rec", Value::Str("done".into())),
        ("key", Value::Str(key.to_string())),
        ("result", result),
    ])
    .to_json()
    .into_bytes()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tempdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("odrc-jobjnl-{}-{}", tag, std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn spec(key: &str) -> JobSpec {
        JobSpec {
            key: key.to_string(),
            gds: vec![0, 1, 2, 0xff, 0x80],
            rules: "width layer=1 min=10 name=W".to_string(),
            mode: "flat".to_string(),
            priority: 3,
            deadline_ms: Some(5000),
        }
    }

    #[test]
    fn pending_job_survives_restart() {
        let dir = tempdir("pending");
        {
            let (mut j, jobs) = JobJournal::open_dir(&dir).expect("open");
            assert!(jobs.is_empty());
            j.record_admit(&spec("job-a"), None).expect("admit");
            j.record_start("job-a", None).expect("start");
        }
        let (_, jobs) = JobJournal::open_dir(&dir).expect("reopen");
        match jobs.get("job-a") {
            Some(ReplayedJob::Pending(s)) => assert_eq!(*s, spec("job-a")),
            other => panic!("expected pending job, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn done_job_replays_its_result_frame() {
        let dir = tempdir("done");
        let frame = r#"{"event":"done","job":7,"exit":0,"violations":0}"#;
        {
            let (mut j, _) = JobJournal::open_dir(&dir).expect("open");
            j.record_admit(&spec("job-a"), None).expect("admit");
            j.record_done("job-a", frame, None).expect("done");
        }
        let (_, jobs) = JobJournal::open_dir(&dir).expect("reopen");
        match jobs.get("job-a") {
            Some(ReplayedJob::Done(text)) => {
                let v = json::parse(text).expect("stored frame parses");
                assert_eq!(v.get("event").and_then(Value::as_str), Some("done"));
                assert_eq!(v.get("exit").and_then(Value::as_i64), Some(0));
            }
            other => panic!("expected done job, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn compaction_drops_superseded_records() {
        let dir = tempdir("compact");
        {
            let (mut j, _) = JobJournal::open_dir(&dir).expect("open");
            j.record_admit(&spec("a"), None).expect("admit");
            j.record_start("a", None).expect("start");
            j.record_done("a", r#"{"event":"done","exit":0}"#, None)
                .expect("done");
            j.record_admit(&spec("b"), None).expect("admit b");
        }
        let before = std::fs::metadata(dir.join(JOB_JOURNAL_FILE)).unwrap().len();
        let (j, jobs) = JobJournal::open_dir(&dir).expect("reopen compacts");
        assert_eq!(jobs.len(), 2);
        let after = std::fs::metadata(j.path()).unwrap().len();
        assert!(
            after < before,
            "compaction must shrink the log ({after} >= {before})"
        );
        // The compacted file still replays identically.
        drop(j);
        let (_, jobs) = JobJournal::open_dir(&dir).expect("re-reopen");
        assert!(matches!(jobs.get("a"), Some(ReplayedJob::Done(_))));
        assert!(matches!(jobs.get("b"), Some(ReplayedJob::Pending(_))));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_heals_and_keeps_prefix() {
        let dir = tempdir("torn");
        {
            let (mut j, _) = JobJournal::open_dir(&dir).expect("open");
            j.record_admit(&spec("keep"), None).expect("admit");
            j.record_admit(&spec("lose"), None).expect("admit");
        }
        let path = dir.join(JOB_JOURNAL_FILE);
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 7]).unwrap();
        let (_, jobs) = JobJournal::open_dir(&dir).expect("lenient open");
        assert_eq!(jobs.len(), 1);
        assert!(matches!(jobs.get("keep"), Some(ReplayedJob::Pending(_))));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn done_retention_evicts_oldest_first() {
        let dir = tempdir("retention");
        {
            let (mut j, _) = JobJournal::open_dir(&dir).expect("open");
            for i in 0..(MAX_DONE_RETAINED + 3) {
                let key = format!("k{i}");
                j.record_admit(&spec(&key), None).expect("admit");
                j.record_done(&key, r#"{"event":"done","exit":0}"#, None)
                    .expect("done");
            }
        }
        let (_, jobs) = JobJournal::open_dir(&dir).expect("reopen");
        assert_eq!(jobs.len(), MAX_DONE_RETAINED);
        assert!(!jobs.contains_key("k0"), "oldest evicted");
        assert!(!jobs.contains_key("k2"), "three oldest evicted");
        assert!(jobs.contains_key("k3"));
        assert!(jobs.contains_key(&format!("k{}", MAX_DONE_RETAINED + 2)));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn admit_after_done_does_not_resurrect() {
        let dir = tempdir("resurrect");
        {
            let (mut j, _) = JobJournal::open_dir(&dir).expect("open");
            j.record_admit(&spec("a"), None).expect("admit");
            j.record_done("a", r#"{"event":"done","exit":0}"#, None)
                .expect("done");
            j.record_admit(&spec("a"), None).expect("re-admit");
        }
        let (_, jobs) = JobJournal::open_dir(&dir).expect("reopen");
        assert!(
            matches!(jobs.get("a"), Some(ReplayedJob::Done(_))),
            "done record stays authoritative over a later admit"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
