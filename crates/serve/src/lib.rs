//! `odrc-serve`: a multi-tenant DRC check service.
//!
//! The one-shot CLI pays the full cost of every run: parse the
//! layout, build scenes, check every cell. A layout under active edit
//! is checked hundreds of times a day, by several engineers, against
//! the same deck — almost all of that work is repeated. This crate
//! keeps the engine warm behind a socket:
//!
//! * [`server`] — the `odrc serve` daemon. Clients hold **edit
//!   sessions** (a layout plus an [`odrc_incremental::Session`]) and
//!   submit check jobs; a bounded [`scheduler`] multiplexes the jobs
//!   over one process-wide host-thread budget, and a
//!   [`cache_tier::SharedCacheTier`] lets any client reuse cell
//!   verdicts any other client already computed.
//! * [`client`] — the synchronous client library behind `odrc client`.
//! * [`proto`] / [`json`] / [`wire`] — the newline-JSON protocol:
//!   hand-rolled (the build is offline, no serde), typed errors with
//!   stable codes, engine types in and out of wire JSON.
//!
//! The design constraint threaded through all of it: a job's result
//! must be **byte-identical** to what the one-shot CLI prints for the
//! same layout and deck — same violations, same CSV report, same exit
//! code — no matter how many tenants share the process.

pub mod cache_tier;
pub mod chaos;
pub mod client;
pub mod journal;
pub mod json;
pub mod proto;
pub mod scheduler;
pub mod server;
pub mod wire;

pub use cache_tier::SharedCacheTier;
pub use chaos::{ChaosState, ServerFault, ServerFaultPlan};
pub use client::{Client, ClientError, JobOutcome, RetryPolicy};
pub use journal::{JobJournal, JobSpec, ReplayedJob};
pub use proto::{job_exit_code, ServeError, MAX_FRAME_BYTES};
pub use scheduler::Scheduler;
pub use server::{DrainSummary, Server, ServerConfig, ServerHandle};
pub use wire::WireViolation;
