//! Synchronous client for the serve protocol.
//!
//! A [`Client`] owns one connection. Requests are strictly
//! request/response; the complication is that a running job's event
//! frames (`queued`, `running`, `rule`, `done`, `error`) arrive on the
//! same stream and may interleave with later responses. The client
//! demultiplexes by the `event` key: anything with it is buffered for
//! [`Client::wait`], anything without it answers the in-flight
//! request.
//!
//! The blocking [`Client::check_wait`] round trip is what `odrc
//! client check` uses; callers that want to overlap jobs submit with
//! [`Client::check`] on several clients and [`Client::wait`]
//! afterwards.

use std::io::BufReader;
use std::net::{TcpStream, ToSocketAddrs};

use crate::json::{base64, obj, Value};
use crate::proto::{parse_frame, read_frame, write_frame, ServeError};
use crate::wire::WireViolation;

/// What can go wrong on the client side of the wire.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure (connect, read, write).
    Io(std::io::Error),
    /// The server sent something the protocol does not allow — or
    /// closed the connection mid-conversation.
    Protocol(String),
    /// The server answered with `{"ok":false,...}`; `code` is the
    /// stable [`ServeError`] wire code.
    Server { code: i64, message: String },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "i/o error: {e}"),
            ClientError::Protocol(m) => write!(f, "protocol error: {m}"),
            ClientError::Server { code, message } => {
                write!(f, "server error {code}: {message}")
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> ClientError {
        ClientError::Io(e)
    }
}

impl From<ServeError> for ClientError {
    fn from(e: ServeError) -> ClientError {
        match e {
            ServeError::Io(io) => ClientError::Io(io),
            other => ClientError::Protocol(other.to_string()),
        }
    }
}

/// A finished job as the client sees it: the `done`/`error` event
/// unpacked into primitives, plus the rule-progress trail.
#[derive(Debug)]
pub struct JobOutcome {
    pub job: u64,
    /// The CLI-parity exit code (0 clean, 1 violations, 2 hard error,
    /// 3 degraded-clean, 4 interrupted).
    pub exit: i64,
    pub violations: Vec<WireViolation>,
    /// Whether the engine ran the full deck (vs. an incremental delta).
    pub full_run: bool,
    /// Why the run stopped early, if it did (`"interrupt"` or
    /// `"deadline"`).
    pub interrupted: Option<String>,
    /// The `done` event's stats object (engine counters plus
    /// `cache_hits_shared` and `queue_wait_ms`), kept as JSON for
    /// pass-through into `--stats-json`.
    pub stats: Value,
    /// `(rule, status)` pairs in completion order.
    pub rules: Vec<(String, String)>,
    /// The server's message when the terminal event was `error`.
    pub error: Option<String>,
}

impl JobOutcome {
    /// A named counter out of the stats object (0 when absent).
    pub fn stat(&self, key: &str) -> i64 {
        self.stats.get(key).and_then(Value::as_i64).unwrap_or(0)
    }

    /// Renders the CLI `--report` CSV (header plus one row per
    /// violation) — byte-identical to a one-shot run on the same
    /// layout and deck.
    pub fn report_csv(&self) -> String {
        let mut out = String::from("rule,kind,x0,y0,x1,y1,measured\n");
        for v in &self.violations {
            out.push_str(&v.to_csv_row());
            out.push('\n');
        }
        out
    }
}

/// One protocol connection. Not thread-safe by design — open one
/// client per thread; the server multiplexes.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    /// Event frames that arrived while a response was awaited.
    pending: Vec<Value>,
}

impl Client {
    /// Connects and validates the `hello` handshake.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, ClientError> {
        let stream = TcpStream::connect(addr)?;
        let writer = stream.try_clone()?;
        let mut client = Client {
            reader: BufReader::new(stream),
            writer,
            pending: Vec::new(),
        };
        let hello = client.request(obj([("verb", Value::from("hello"))]))?;
        match hello.get("protocol").and_then(Value::as_i64) {
            Some(1) => Ok(client),
            other => Err(ClientError::Protocol(format!(
                "unsupported server protocol {other:?}"
            ))),
        }
    }

    /// Opens an edit session from in-memory GDSII bytes. Returns the
    /// session id.
    pub fn open_bytes(&mut self, gds: &[u8], rules: &str, mode: &str) -> Result<u64, ClientError> {
        self.open_frame(obj([
            ("verb", Value::from("open")),
            ("gds_b64", Value::from(base64::encode(gds))),
            ("rules", Value::from(rules)),
            ("mode", Value::from(mode)),
        ]))
    }

    /// Opens an edit session from a server-side layout path.
    pub fn open_path(&mut self, path: &str, rules: &str, mode: &str) -> Result<u64, ClientError> {
        self.open_frame(obj([
            ("verb", Value::from("open")),
            ("path", Value::from(path)),
            ("rules", Value::from(rules)),
            ("mode", Value::from(mode)),
        ]))
    }

    fn open_frame(&mut self, frame: Value) -> Result<u64, ClientError> {
        let response = self.request(frame)?;
        field_u64(&response, "session")
    }

    /// Streams edit ops (already in wire JSON — see
    /// [`crate::wire::edit_op_to_json`]) into a session. Returns how
    /// many were applied.
    pub fn edit(&mut self, session: u64, ops: Vec<Value>) -> Result<u64, ClientError> {
        let response = self.request(obj([
            ("verb", Value::from("edit")),
            ("session", Value::from(session)),
            ("ops", Value::Array(ops)),
        ]))?;
        field_u64(&response, "applied")
    }

    /// Submits a check job; returns the job id immediately. Follow
    /// with [`Client::wait`].
    pub fn check(
        &mut self,
        session: u64,
        priority: i64,
        deadline_ms: Option<u64>,
    ) -> Result<u64, ClientError> {
        let response = self.request(obj([
            ("verb", Value::from("check")),
            ("session", Value::from(session)),
            ("priority", Value::Int(priority)),
            (
                "deadline_ms",
                match deadline_ms {
                    Some(ms) => Value::from(ms),
                    None => Value::Null,
                },
            ),
        ]))?;
        field_u64(&response, "job")
    }

    /// Blocks until job `job` reaches its terminal event, collecting
    /// the rule-progress trail along the way.
    pub fn wait(&mut self, job: u64) -> Result<JobOutcome, ClientError> {
        let mut rules = Vec::new();
        loop {
            let event = self.next_event(job)?;
            match event.get("event").and_then(Value::as_str) {
                Some("queued") | Some("running") => {}
                Some("rule") => {
                    if let (Some(rule), Some(status)) = (
                        event.get("rule").and_then(Value::as_str),
                        event.get("status").and_then(Value::as_str),
                    ) {
                        rules.push((rule.to_string(), status.to_string()));
                    }
                }
                Some("done") => {
                    let violations = event
                        .get("violations")
                        .and_then(Value::as_array)
                        .unwrap_or(&[])
                        .iter()
                        .map(WireViolation::from_json)
                        .collect::<Result<Vec<_>, _>>()?;
                    return Ok(JobOutcome {
                        job,
                        exit: event.get("exit").and_then(Value::as_i64).unwrap_or(2),
                        violations,
                        full_run: event
                            .get("full_run")
                            .and_then(Value::as_bool)
                            .unwrap_or(true),
                        interrupted: event
                            .get("interrupted")
                            .and_then(Value::as_str)
                            .map(str::to_string),
                        stats: event.get("stats").cloned().unwrap_or(Value::Null),
                        rules,
                        error: None,
                    });
                }
                Some("error") => {
                    return Ok(JobOutcome {
                        job,
                        exit: event.get("exit").and_then(Value::as_i64).unwrap_or(2),
                        violations: Vec::new(),
                        full_run: true,
                        interrupted: None,
                        stats: Value::Null,
                        rules,
                        error: Some(
                            event
                                .get("error")
                                .and_then(Value::as_str)
                                .unwrap_or("unknown server error")
                                .to_string(),
                        ),
                    });
                }
                other => {
                    return Err(ClientError::Protocol(format!(
                        "unexpected event {other:?} for job {job}"
                    )))
                }
            }
        }
    }

    /// Submit-and-block convenience.
    pub fn check_wait(
        &mut self,
        session: u64,
        priority: i64,
        deadline_ms: Option<u64>,
    ) -> Result<JobOutcome, ClientError> {
        let job = self.check(session, priority, deadline_ms)?;
        self.wait(job)
    }

    /// Asks the server to cancel a job. The job still winds down to a
    /// terminal event (exit 4), which [`Client::wait`] observes.
    pub fn cancel(&mut self, job: u64) -> Result<(), ClientError> {
        self.request(obj([
            ("verb", Value::from("cancel")),
            ("job", Value::from(job)),
        ]))?;
        Ok(())
    }

    /// Fetches the server-wide counters (`jobs_admitted`,
    /// `jobs_rejected`, `cache_hits_shared`, ...).
    pub fn stats(&mut self) -> Result<Value, ClientError> {
        self.request(obj([("verb", Value::from("stats"))]))
    }

    /// Closes an edit session.
    pub fn close(&mut self, session: u64) -> Result<(), ClientError> {
        self.request(obj([
            ("verb", Value::from("close")),
            ("session", Value::from(session)),
        ]))?;
        Ok(())
    }

    /// Asks the server to drain and exit.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        self.request(obj([("verb", Value::from("shutdown"))]))?;
        Ok(())
    }

    /// One request/response round trip; event frames that arrive first
    /// are buffered for [`Client::wait`].
    fn request(&mut self, frame: Value) -> Result<Value, ClientError> {
        write_frame(&mut self.writer, &frame)?;
        loop {
            let response = self.read_value()?;
            if response.get("event").is_some() {
                self.pending.push(response);
                continue;
            }
            return check_ok(response);
        }
    }

    /// The next event for `job`: drains the buffer first, then the
    /// socket. Events for *other* jobs stay buffered.
    fn next_event(&mut self, job: u64) -> Result<Value, ClientError> {
        loop {
            if let Some(at) = self
                .pending
                .iter()
                .position(|e| e.get("job").and_then(Value::as_i64) == Some(job as i64))
            {
                return Ok(self.pending.remove(at));
            }
            let frame = self.read_value()?;
            if frame.get("event").is_some() {
                self.pending.push(frame);
            } else {
                return Err(ClientError::Protocol(
                    "response frame with no request in flight".to_string(),
                ));
            }
        }
    }

    fn read_value(&mut self) -> Result<Value, ClientError> {
        let line = read_frame(&mut self.reader)?
            .ok_or_else(|| ClientError::Protocol("server closed the connection".to_string()))?;
        Ok(parse_frame(&line)?)
    }
}

fn check_ok(response: Value) -> Result<Value, ClientError> {
    match response.get("ok").and_then(Value::as_bool) {
        Some(true) => Ok(response),
        Some(false) => Err(ClientError::Server {
            code: response.get("code").and_then(Value::as_i64).unwrap_or(-1),
            message: response
                .get("error")
                .and_then(Value::as_str)
                .unwrap_or("unknown error")
                .to_string(),
        }),
        None => Err(ClientError::Protocol(
            "response frame without \"ok\"".to_string(),
        )),
    }
}

fn field_u64(response: &Value, key: &str) -> Result<u64, ClientError> {
    response
        .get(key)
        .and_then(Value::as_i64)
        .and_then(|n| u64::try_from(n).ok())
        .ok_or_else(|| ClientError::Protocol(format!("response missing {key:?}")))
}
