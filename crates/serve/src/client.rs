//! Synchronous client for the serve protocol.
//!
//! A [`Client`] owns one connection. Requests are strictly
//! request/response; the complication is that a running job's event
//! frames (`queued`, `running`, `rule`, `done`, `error`) arrive on the
//! same stream and may interleave with later responses. The client
//! demultiplexes by the `event` key: anything with it is buffered for
//! [`Client::wait`], anything without it answers the in-flight
//! request.
//!
//! The blocking [`Client::check_wait`] round trip is what `odrc
//! client check` uses; callers that want to overlap jobs submit with
//! [`Client::check`] on several clients and [`Client::wait`]
//! afterwards.

use std::io::BufReader;
use std::net::{TcpStream, ToSocketAddrs};

use crate::json::{base64, obj, Value};
use crate::proto::{parse_frame, read_frame, write_frame, ServeError};
use crate::wire::WireViolation;

/// What can go wrong on the client side of the wire.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure (connect, read, write).
    Io(std::io::Error),
    /// The server sent something the protocol does not allow — or
    /// closed the connection mid-conversation.
    Protocol(String),
    /// The server answered with `{"ok":false,...}`; `code` is the
    /// stable [`ServeError`] wire code. Overload errors (code 111)
    /// carry the server's backoff hint in `retry_after_ms`.
    Server {
        code: i64,
        message: String,
        retry_after_ms: Option<i64>,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "i/o error: {e}"),
            ClientError::Protocol(m) => write!(f, "protocol error: {m}"),
            ClientError::Server { code, message, .. } => {
                write!(f, "server error {code}: {message}")
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> ClientError {
        ClientError::Io(e)
    }
}

impl From<ServeError> for ClientError {
    fn from(e: ServeError) -> ClientError {
        match e {
            ServeError::Io(io) => ClientError::Io(io),
            other => ClientError::Protocol(other.to_string()),
        }
    }
}

/// A finished job as the client sees it: the `done`/`error` event
/// unpacked into primitives, plus the rule-progress trail.
#[derive(Debug)]
pub struct JobOutcome {
    pub job: u64,
    /// The CLI-parity exit code (0 clean, 1 violations, 2 hard error,
    /// 3 degraded-clean, 4 interrupted).
    pub exit: i64,
    pub violations: Vec<WireViolation>,
    /// Whether the engine ran the full deck (vs. an incremental delta).
    pub full_run: bool,
    /// Why the run stopped early, if it did (`"interrupt"` or
    /// `"deadline"`).
    pub interrupted: Option<String>,
    /// The `done` event's stats object (engine counters plus
    /// `cache_hits_shared` and `queue_wait_ms`), kept as JSON for
    /// pass-through into `--stats-json`.
    pub stats: Value,
    /// `(rule, status)` pairs in completion order.
    pub rules: Vec<(String, String)>,
    /// The server's message when the terminal event was `error`.
    pub error: Option<String>,
    /// The error event's stable code (e.g. 110 internal, 111 shed)
    /// and backoff hint, for callers that retry on job-level errors.
    pub error_code: Option<i64>,
    pub retry_after_ms: Option<i64>,
}

impl JobOutcome {
    /// Re-expresses a job-level `error` event as a [`ClientError`],
    /// so terminal errors can flow through [`RetryPolicy::run`] — a
    /// shed job (code 111) then retries with the server's hint.
    pub fn into_result(self) -> Result<JobOutcome, ClientError> {
        match &self.error {
            Some(message) => Err(ClientError::Server {
                code: self.error_code.unwrap_or(110),
                message: message.clone(),
                retry_after_ms: self.retry_after_ms,
            }),
            None => Ok(self),
        }
    }
}

impl JobOutcome {
    /// A named counter out of the stats object (0 when absent).
    pub fn stat(&self, key: &str) -> i64 {
        self.stats.get(key).and_then(Value::as_i64).unwrap_or(0)
    }

    /// Renders the CLI `--report` CSV (header plus one row per
    /// violation) — byte-identical to a one-shot run on the same
    /// layout and deck.
    pub fn report_csv(&self) -> String {
        let mut out = String::from("rule,kind,x0,y0,x1,y1,measured\n");
        for v in &self.violations {
            out.push_str(&v.to_csv_row());
            out.push('\n');
        }
        out
    }
}

/// One protocol connection. Not thread-safe by design — open one
/// client per thread; the server multiplexes.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    /// Event frames that arrived while a response was awaited.
    pending: Vec<Value>,
    /// Heartbeats answered but not yet acknowledged: each server
    /// `ping` event is answered with a `ping` request, whose
    /// `{"ok":true,"pong":true}` response arrives *later* in the
    /// stream and must be skipped, not mistaken for the answer to a
    /// real request.
    pongs_owed: usize,
}

impl Client {
    /// Connects and validates the `hello` handshake.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, ClientError> {
        let stream = TcpStream::connect(addr)?;
        let writer = stream.try_clone()?;
        let mut client = Client {
            reader: BufReader::new(stream),
            writer,
            pending: Vec::new(),
            pongs_owed: 0,
        };
        let hello = client.request(obj([("verb", Value::from("hello"))]))?;
        match hello.get("protocol").and_then(Value::as_i64) {
            Some(1) => Ok(client),
            other => Err(ClientError::Protocol(format!(
                "unsupported server protocol {other:?}"
            ))),
        }
    }

    /// Opens an edit session from in-memory GDSII bytes. Returns the
    /// session id.
    pub fn open_bytes(&mut self, gds: &[u8], rules: &str, mode: &str) -> Result<u64, ClientError> {
        self.open_frame(obj([
            ("verb", Value::from("open")),
            ("gds_b64", Value::from(base64::encode(gds))),
            ("rules", Value::from(rules)),
            ("mode", Value::from(mode)),
        ]))
    }

    /// Opens an edit session from a server-side layout path.
    pub fn open_path(&mut self, path: &str, rules: &str, mode: &str) -> Result<u64, ClientError> {
        self.open_frame(obj([
            ("verb", Value::from("open")),
            ("path", Value::from(path)),
            ("rules", Value::from(rules)),
            ("mode", Value::from(mode)),
        ]))
    }

    fn open_frame(&mut self, frame: Value) -> Result<u64, ClientError> {
        let response = self.request(frame)?;
        field_u64(&response, "session")
    }

    /// Streams edit ops (already in wire JSON — see
    /// [`crate::wire::edit_op_to_json`]) into a session. Returns how
    /// many were applied.
    pub fn edit(&mut self, session: u64, ops: Vec<Value>) -> Result<u64, ClientError> {
        let response = self.request(obj([
            ("verb", Value::from("edit")),
            ("session", Value::from(session)),
            ("ops", Value::Array(ops)),
        ]))?;
        field_u64(&response, "applied")
    }

    /// Submits a check job; returns the job id immediately. Follow
    /// with [`Client::wait`].
    pub fn check(
        &mut self,
        session: u64,
        priority: i64,
        deadline_ms: Option<u64>,
    ) -> Result<u64, ClientError> {
        self.check_with_key(session, priority, deadline_ms, None)
    }

    /// [`Client::check`] with an optional idempotency key. A keyed
    /// submission is journaled server-side before it is acknowledged:
    /// resubmitting the same key replays the journaled result or
    /// attaches to the already-running job, and a restarted server
    /// resumes the job from its checkpoint. Keys make blind retries
    /// safe — the check never runs twice.
    pub fn check_with_key(
        &mut self,
        session: u64,
        priority: i64,
        deadline_ms: Option<u64>,
        key: Option<&str>,
    ) -> Result<u64, ClientError> {
        let mut pairs = vec![
            ("verb", Value::from("check")),
            ("session", Value::from(session)),
            ("priority", Value::Int(priority)),
            (
                "deadline_ms",
                match deadline_ms {
                    Some(ms) => Value::from(ms),
                    None => Value::Null,
                },
            ),
        ];
        if let Some(key) = key {
            pairs.push(("key", Value::from(key)));
        }
        let response = self.request(obj(pairs))?;
        field_u64(&response, "job")
    }

    /// Blocks until job `job` reaches its terminal event, collecting
    /// the rule-progress trail along the way.
    pub fn wait(&mut self, job: u64) -> Result<JobOutcome, ClientError> {
        let mut rules = Vec::new();
        loop {
            let event = self.next_event(job)?;
            match event.get("event").and_then(Value::as_str) {
                Some("queued") | Some("running") => {}
                Some("rule") => {
                    if let (Some(rule), Some(status)) = (
                        event.get("rule").and_then(Value::as_str),
                        event.get("status").and_then(Value::as_str),
                    ) {
                        rules.push((rule.to_string(), status.to_string()));
                    }
                }
                Some("done") => {
                    let violations = event
                        .get("violations")
                        .and_then(Value::as_array)
                        .unwrap_or(&[])
                        .iter()
                        .map(WireViolation::from_json)
                        .collect::<Result<Vec<_>, _>>()?;
                    return Ok(JobOutcome {
                        job,
                        exit: event.get("exit").and_then(Value::as_i64).unwrap_or(2),
                        violations,
                        full_run: event
                            .get("full_run")
                            .and_then(Value::as_bool)
                            .unwrap_or(true),
                        interrupted: event
                            .get("interrupted")
                            .and_then(Value::as_str)
                            .map(str::to_string),
                        stats: event.get("stats").cloned().unwrap_or(Value::Null),
                        rules,
                        error: None,
                        error_code: None,
                        retry_after_ms: None,
                    });
                }
                Some("error") => {
                    return Ok(JobOutcome {
                        job,
                        exit: event.get("exit").and_then(Value::as_i64).unwrap_or(2),
                        violations: Vec::new(),
                        full_run: true,
                        interrupted: None,
                        stats: Value::Null,
                        rules,
                        error: Some(
                            event
                                .get("error")
                                .and_then(Value::as_str)
                                .unwrap_or("unknown server error")
                                .to_string(),
                        ),
                        error_code: event.get("code").and_then(Value::as_i64),
                        retry_after_ms: event.get("retry_after_ms").and_then(Value::as_i64),
                    });
                }
                other => {
                    return Err(ClientError::Protocol(format!(
                        "unexpected event {other:?} for job {job}"
                    )))
                }
            }
        }
    }

    /// Submit-and-block convenience.
    pub fn check_wait(
        &mut self,
        session: u64,
        priority: i64,
        deadline_ms: Option<u64>,
    ) -> Result<JobOutcome, ClientError> {
        let job = self.check(session, priority, deadline_ms)?;
        self.wait(job)
    }

    /// Asks the server to cancel a job. The job still winds down to a
    /// terminal event (exit 4), which [`Client::wait`] observes.
    pub fn cancel(&mut self, job: u64) -> Result<(), ClientError> {
        self.request(obj([
            ("verb", Value::from("cancel")),
            ("job", Value::from(job)),
        ]))?;
        Ok(())
    }

    /// Fetches the server-wide counters (`jobs_admitted`,
    /// `jobs_rejected`, `cache_hits_shared`, ...).
    pub fn stats(&mut self) -> Result<Value, ClientError> {
        self.request(obj([("verb", Value::from("stats"))]))
    }

    /// Fetches the liveness probe (`uptime_ms`, `queue_depth`,
    /// `workers_busy`, `draining`) — the load-balancer `health` verb.
    pub fn health(&mut self) -> Result<Value, ClientError> {
        self.request(obj([("verb", Value::from("health"))]))
    }

    /// Round-trips a heartbeat to check the connection is alive.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        self.request(obj([("verb", Value::from("ping"))]))?;
        Ok(())
    }

    /// Closes an edit session.
    pub fn close(&mut self, session: u64) -> Result<(), ClientError> {
        self.request(obj([
            ("verb", Value::from("close")),
            ("session", Value::from(session)),
        ]))?;
        Ok(())
    }

    /// Asks the server to drain and exit.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        self.request(obj([("verb", Value::from("shutdown"))]))?;
        Ok(())
    }

    /// One request/response round trip; event frames that arrive first
    /// are buffered for [`Client::wait`], heartbeats are answered
    /// inline.
    fn request(&mut self, frame: Value) -> Result<Value, ClientError> {
        write_frame(&mut self.writer, &frame)?;
        loop {
            let response = self.read_value()?;
            if self.absorb_ping(&response)? {
                continue;
            }
            if response.get("event").is_some() {
                self.pending.push(response);
                continue;
            }
            if self.skip_pong(&response) {
                continue;
            }
            return check_ok(response);
        }
    }

    /// The next event for `job`: drains the buffer first, then the
    /// socket. Events for *other* jobs stay buffered; heartbeats are
    /// answered inline.
    fn next_event(&mut self, job: u64) -> Result<Value, ClientError> {
        loop {
            if let Some(at) = self
                .pending
                .iter()
                .position(|e| e.get("job").and_then(Value::as_i64) == Some(job as i64))
            {
                return Ok(self.pending.remove(at));
            }
            let frame = self.read_value()?;
            if self.absorb_ping(&frame)? {
                continue;
            }
            if frame.get("event").is_some() {
                self.pending.push(frame);
            } else if !self.skip_pong(&frame) {
                return Err(ClientError::Protocol(
                    "response frame with no request in flight".to_string(),
                ));
            }
        }
    }

    /// Answers a server heartbeat (`{"event":"ping"}`) with a `ping`
    /// request, noting that its pong response must later be skipped.
    /// Returns whether the frame was a heartbeat.
    fn absorb_ping(&mut self, frame: &Value) -> Result<bool, ClientError> {
        if frame.get("event").and_then(Value::as_str) != Some("ping") {
            return Ok(false);
        }
        write_frame(&mut self.writer, &obj([("verb", Value::from("ping"))]))?;
        self.pongs_owed += 1;
        Ok(true)
    }

    /// Swallows the response to an earlier heartbeat answer. Returns
    /// whether the frame was such a pong.
    fn skip_pong(&mut self, frame: &Value) -> bool {
        if self.pongs_owed > 0 && frame.get("pong").and_then(Value::as_bool) == Some(true) {
            self.pongs_owed -= 1;
            true
        } else {
            false
        }
    }

    fn read_value(&mut self) -> Result<Value, ClientError> {
        let line = read_frame(&mut self.reader)?
            .ok_or_else(|| ClientError::Protocol("server closed the connection".to_string()))?;
        Ok(parse_frame(&line)?)
    }
}

/// Reconnect-and-resubmit policy: capped exponential backoff, honoring
/// the server's `retry_after_ms` hint when one is present.
///
/// What counts as retryable is deliberately narrow: socket failures,
/// a torn protocol stream (the server died mid-frame), and the typed
/// transient server errors — draining (105), server i/o (109),
/// internal job failure (110), overloaded (111). Everything else
/// (bad layout, bad deck, unknown session) will fail identically on
/// every attempt and is surfaced immediately.
///
/// Blind retries are safe only when the submission carries an
/// idempotency key ([`Client::check_with_key`]); the policy does not
/// enforce that, the caller must.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts (first try included). 0 behaves as 1.
    pub attempts: u32,
    /// Delay before the first retry, doubling each attempt.
    pub base_ms: u64,
    /// Ceiling on any single delay.
    pub cap_ms: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            attempts: 5,
            base_ms: 200,
            cap_ms: 5000,
        }
    }
}

impl RetryPolicy {
    /// Whether an error is worth retrying at all.
    pub fn retryable(err: &ClientError) -> bool {
        match err {
            ClientError::Io(_) | ClientError::Protocol(_) => true,
            ClientError::Server { code, .. } => matches!(code, 105 | 109 | 110 | 111),
        }
    }

    /// The server's backoff hint carried by an error, if any.
    pub fn hint(err: &ClientError) -> Option<i64> {
        match err {
            ClientError::Server { retry_after_ms, .. } => *retry_after_ms,
            _ => None,
        }
    }

    /// Delay before retry number `attempt` (0-based), folding in the
    /// server's hint: the client never comes back *sooner* than the
    /// server asked, and never later than the cap.
    pub fn delay_ms(&self, attempt: u32, server_hint_ms: Option<i64>) -> u64 {
        let exp = self
            .base_ms
            .saturating_mul(1u64 << attempt.min(20))
            .min(self.cap_ms);
        match server_hint_ms {
            Some(h) if h > 0 => exp.max(h as u64).min(self.cap_ms),
            _ => exp,
        }
    }

    /// Drives `f` until it succeeds, the error stops being retryable,
    /// or the attempts run out. `f` receives the 0-based attempt
    /// number and must redo the whole unit of work (connect, open,
    /// resubmit) — with an idempotency key that redo is free on the
    /// server.
    pub fn run<T>(
        &self,
        mut f: impl FnMut(u32) -> Result<T, ClientError>,
    ) -> Result<T, ClientError> {
        let attempts = self.attempts.max(1);
        let mut attempt = 0;
        loop {
            match f(attempt) {
                Ok(v) => return Ok(v),
                Err(e) if attempt + 1 < attempts && RetryPolicy::retryable(&e) => {
                    let delay = self.delay_ms(attempt, RetryPolicy::hint(&e));
                    std::thread::sleep(std::time::Duration::from_millis(delay));
                    attempt += 1;
                }
                Err(e) => return Err(e),
            }
        }
    }
}

fn check_ok(response: Value) -> Result<Value, ClientError> {
    match response.get("ok").and_then(Value::as_bool) {
        Some(true) => Ok(response),
        Some(false) => Err(ClientError::Server {
            code: response.get("code").and_then(Value::as_i64).unwrap_or(-1),
            message: response
                .get("error")
                .and_then(Value::as_str)
                .unwrap_or("unknown error")
                .to_string(),
            retry_after_ms: response.get("retry_after_ms").and_then(Value::as_i64),
        }),
        None => Err(ClientError::Protocol(
            "response frame without \"ok\"".to_string(),
        )),
    }
}

fn field_u64(response: &Value, key: &str) -> Result<u64, ClientError> {
    response
        .get(key)
        .and_then(Value::as_i64)
        .and_then(|n| u64::try_from(n).ok())
        .ok_or_else(|| ClientError::Protocol(format!("response missing {key:?}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn server_err(code: i64, hint: Option<i64>) -> ClientError {
        ClientError::Server {
            code,
            message: "x".to_string(),
            retry_after_ms: hint,
        }
    }

    #[test]
    fn retryable_is_narrow() {
        assert!(RetryPolicy::retryable(&ClientError::Io(
            std::io::Error::from(std::io::ErrorKind::ConnectionReset)
        )));
        assert!(RetryPolicy::retryable(&ClientError::Protocol(
            "torn".into()
        )));
        for code in [105, 109, 110, 111] {
            assert!(RetryPolicy::retryable(&server_err(code, None)), "{code}");
        }
        for code in [100, 102, 103, 104, 106, 107, 108] {
            assert!(!RetryPolicy::retryable(&server_err(code, None)), "{code}");
        }
    }

    #[test]
    fn backoff_doubles_caps_and_honors_hints() {
        let p = RetryPolicy::default();
        assert_eq!(p.delay_ms(0, None), 200);
        assert_eq!(p.delay_ms(1, None), 400);
        assert_eq!(p.delay_ms(2, None), 800);
        assert_eq!(p.delay_ms(10, None), 5000, "capped");
        assert_eq!(p.delay_ms(0, Some(900)), 900, "hint raises the floor");
        assert_eq!(
            p.delay_ms(4, Some(900)),
            3200,
            "backoff beyond the hint wins"
        );
        assert_eq!(p.delay_ms(0, Some(60_000)), 5000, "hint is capped too");
        let huge = RetryPolicy {
            attempts: 99,
            base_ms: u64::MAX / 2,
            cap_ms: u64::MAX,
        };
        assert_eq!(huge.delay_ms(63, None), u64::MAX, "no overflow");
    }

    #[test]
    fn run_retries_then_surfaces_terminal_errors() {
        let p = RetryPolicy {
            attempts: 3,
            base_ms: 0,
            cap_ms: 0,
        };
        let mut seen = Vec::new();
        let out: Result<u32, _> = p.run(|attempt| {
            seen.push(attempt);
            if attempt < 2 {
                Err(server_err(111, Some(0)))
            } else {
                Ok(attempt)
            }
        });
        assert_eq!(out.unwrap(), 2);
        assert_eq!(seen, vec![0, 1, 2]);

        // Non-retryable: one attempt only.
        let mut calls = 0;
        let out: Result<(), _> = p.run(|_| {
            calls += 1;
            Err(server_err(107, None))
        });
        assert!(matches!(out, Err(ClientError::Server { code: 107, .. })));
        assert_eq!(calls, 1);

        // Retryable but attempts exhausted.
        let mut calls = 0;
        let out: Result<(), _> = p.run(|_| {
            calls += 1;
            Err(server_err(111, Some(0)))
        });
        assert!(matches!(out, Err(ClientError::Server { code: 111, .. })));
        assert_eq!(calls, 3);
    }
}
