//! The `odrc` command-line checker.
//!
//! ```text
//! odrc <layout.gds> --rules <deck.rules> [--parallel] [--max-print N]
//!      [--cache <dir>] [--stats-json <file>] [--report out.csv]
//!      [--markers out.gds] [--device-budget BYTES] [--fault-seed N]
//!      [--host-threads N] [--deadline SECS] [--checkpoint-dir <dir>]
//!      [--resume <dir>] [--watchdog-ms N] [--no-fusion] [--no-launch-graph]
//! odrc diff <old.gds> <new.gds> --rules <deck.rules> [--parallel]
//!      [--cache <dir>] [--max-print N] [--host-threads N]
//! odrc serve [--addr HOST:PORT] [--workers N] [--host-threads N]
//!      [--max-queue N] [--cache <dir>] [--device-budget BYTES]
//!      [--port-file <path>]
//! odrc client <layout.gds> --rules <deck.rules> --addr HOST:PORT
//!      [--parallel] [--priority N] [--deadline-ms N] [--edits ops.jsonl]
//!      [--report out.csv] [--stats-json out.json] [--max-print N]
//!      [--shutdown]
//! ```
//!
//! The default mode reads a GDSII layout and a plain-text rule deck
//! (see [`odrc::parse_deck`] for the format), runs the checks, prints
//! the violations and the phase breakdown, and exits non-zero when
//! violations were found. `--cache <dir>` keeps the per-cell result
//! memo in `<dir>/odrc-cache.bin` across runs, so a warm invocation
//! skips every cell whose content did not change.
//!
//! `odrc diff` checks `old.gds`, delta-checks `new.gds` against it,
//! and prints the violations the edit added and removed. It exits 0
//! when the edit added no violations, non-zero otherwise.
//!
//! `odrc serve` runs the multi-tenant check daemon (see
//! [`odrc_serve::server`]): clients open edit sessions, stream edits,
//! and submit concurrent check jobs that share one host-thread budget
//! and one result-cache tier. `odrc client` is the matching
//! command-line front end; its exit code follows the same 0–4 table
//! below, taken verbatim from the job's `done` event, so scripts
//! cannot tell the two front ends apart. SIGTERM drains the daemon
//! gracefully: running jobs finish and deliver, then the shared cache
//! tier is persisted.
//!
//! # Run lifecycle
//!
//! A check can be stopped cooperatively — SIGINT/SIGTERM (Ctrl-C), or
//! a `--deadline SECS` wall-clock budget. The engine stops issuing new
//! rules at the next rule boundary, drains in-flight device work, and
//! exits cleanly with code 4: `--stats-json` is still written
//! (atomically), the per-rule completion status is reported, and —
//! with `--checkpoint-dir <dir>` — every rule that *did* finish is
//! already journaled in `<dir>/odrc-journal.bin`. A follow-up
//! `odrc --resume <dir>` restores those rules without re-checking them
//! and runs only what is missing; the final violation set is
//! byte-identical to an uninterrupted run. `--watchdog-ms N` (parallel
//! mode) arms a per-operation stream watchdog so a genuinely wedged
//! device op surfaces as a stream timeout and flows through the normal
//! retry/fallback machinery instead of hanging the run.
//!
//! # Exit codes
//!
//! | code | meaning |
//! |------|---------|
//! | 0    | clean: no violations, no degradation |
//! | 1    | violations found (the check itself completed) |
//! | 2    | hard error: bad usage, unreadable layout/deck, I/O failure |
//! | 3    | degraded but complete: no violations, but some device work |
//! |      | was retried or recomputed on the host (see `--fault-seed`) |
//! | 4    | interrupted: signal or deadline stopped the run before all |
//! |      | rules finished (checkpoint saved if `--checkpoint-dir`)    |
//!
//! Violations take precedence over degradation: a degraded run that
//! found violations exits 1 (the summary still reports the retries).
//! Interruption takes precedence over both — a partial result is not a
//! verdict.
//!
//! # Fault injection
//!
//! `--fault-seed N` (parallel mode) installs a deterministic fault
//! schedule derived from seed `N` on the simulated device — injected
//! OOMs, kernel panics, transfer failures, and stream stalls — to
//! exercise the retry/fallback machinery reproducibly. `--device-budget
//! BYTES` bounds the stream-ordered allocator, making genuine OOM
//! degradation observable on real layouts.

use std::path::Path;
use std::process::ExitCode;
use std::time::Duration;

use odrc::{
    parse_deck, CheckReport, CheckpointJournal, Engine, ResultCache, RuleDeck, RunKey, CACHE_FILE,
};
use odrc_db::Layout;
use odrc_infra::{install_signal_handlers, CancelToken};
use odrc_xpu::{Device, FaultPlan};

/// Faults drawn from `--fault-seed` (kept fixed so a seed alone
/// reproduces the schedule).
const FAULTS_PER_SEED: usize = 8;

struct Args {
    layout: String,
    old_layout: Option<String>,
    rules: String,
    parallel: bool,
    max_print: usize,
    report: Option<String>,
    markers: Option<String>,
    cache: Option<String>,
    stats_json: Option<String>,
    fault_seed: Option<u64>,
    device_budget: Option<usize>,
    host_threads: Option<usize>,
    deadline_secs: Option<f64>,
    checkpoint_dir: Option<String>,
    resume: bool,
    watchdog_ms: Option<u64>,
    no_fusion: bool,
    no_launch_graph: bool,
    memory_budget: Option<u64>,
    shard_rows: Option<usize>,
    out_of_core: bool,
    shard_workers: Option<usize>,
    /// Hidden: this process is shard worker `w` of `n` (spawned by the
    /// parent's `--shard-workers`).
    worker_slice: Option<(usize, usize)>,
    /// Hidden chaos switch: abort after the Nth shard is journaled.
    chaos_kill_at_shard: Option<u64>,
}

/// What a completed run reports back to `main` for the exit code.
struct Outcome {
    violations: usize,
    degraded: bool,
    interrupted: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: odrc <layout.gds> --rules <deck.rules> [--parallel] [--max-print N] \
         [--cache dir] [--stats-json out.json] [--report out.csv] [--markers out.gds] \
         [--device-budget BYTES] [--fault-seed N] [--host-threads N] [--deadline SECS] \
         [--checkpoint-dir dir] [--resume dir] [--watchdog-ms N] \
         [--no-fusion] [--no-launch-graph] \
         [--out-of-core] [--memory-budget BYTES] [--shard-rows N] [--shard-workers N]\n\
         \u{20}      odrc diff <old.gds> <new.gds> --rules <deck.rules> [--parallel] \
         [--cache dir] [--max-print N] [--host-threads N]\n\
         \u{20}      odrc serve [--addr HOST:PORT] [--workers N] [--host-threads N] \
         [--max-queue N] [--cache dir] [--device-budget BYTES] [--port-file path]\n\
         \u{20}      odrc client <layout.gds> --rules <deck.rules> --addr HOST:PORT \
         [--parallel] [--priority N] [--deadline-ms N] [--edits ops.jsonl] \
         [--report out.csv] [--stats-json out.json] [--max-print N] [--shutdown]\n\
         exit codes: 0 clean, 1 violations found, 2 hard error, 3 degraded but clean, \
         4 interrupted (signal or deadline; checkpoint saved if --checkpoint-dir)"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut positional: Vec<String> = Vec::new();
    let mut rules = None;
    let mut parallel = false;
    let mut max_print = 20usize;
    let mut report = None;
    let mut markers = None;
    let mut cache = None;
    let mut stats_json = None;
    let mut fault_seed = None;
    let mut device_budget = None;
    let mut host_threads = None;
    let mut deadline_secs = None;
    let mut checkpoint_dir = None;
    let mut resume = false;
    let mut watchdog_ms = None;
    let mut no_fusion = false;
    let mut no_launch_graph = false;
    let mut memory_budget = None;
    let mut shard_rows = None;
    let mut out_of_core = false;
    let mut shard_workers = None;
    let mut worker_slice = None;
    let mut chaos_kill_at_shard = None;
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let diff_mode = argv.first().is_some_and(|a| a == "diff");
    let mut i = usize::from(diff_mode);
    while i < argv.len() {
        match argv[i].as_str() {
            "--rules" => {
                if i + 1 >= argv.len() {
                    usage();
                }
                rules = Some(argv[i + 1].clone());
                i += 2;
            }
            "--parallel" => {
                parallel = true;
                i += 1;
            }
            "--report" => {
                if i + 1 >= argv.len() {
                    usage();
                }
                report = Some(argv[i + 1].clone());
                i += 2;
            }
            "--markers" => {
                if i + 1 >= argv.len() {
                    usage();
                }
                markers = Some(argv[i + 1].clone());
                i += 2;
            }
            "--cache" => {
                if i + 1 >= argv.len() {
                    usage();
                }
                cache = Some(argv[i + 1].clone());
                i += 2;
            }
            "--stats-json" => {
                if i + 1 >= argv.len() {
                    usage();
                }
                stats_json = Some(argv[i + 1].clone());
                i += 2;
            }
            "--max-print" => {
                if i + 1 >= argv.len() {
                    usage();
                }
                max_print = argv[i + 1].parse().unwrap_or_else(|_| usage());
                i += 2;
            }
            "--no-fusion" => {
                no_fusion = true;
                i += 1;
            }
            "--no-launch-graph" => {
                no_launch_graph = true;
                i += 1;
            }
            "--fault-seed" => {
                if i + 1 >= argv.len() {
                    usage();
                }
                fault_seed = Some(argv[i + 1].parse().unwrap_or_else(|_| usage()));
                i += 2;
            }
            "--device-budget" => {
                if i + 1 >= argv.len() {
                    usage();
                }
                device_budget = Some(argv[i + 1].parse().unwrap_or_else(|_| usage()));
                i += 2;
            }
            "--host-threads" => {
                if i + 1 >= argv.len() {
                    usage();
                }
                let n: usize = argv[i + 1].parse().unwrap_or_else(|_| usage());
                if n == 0 {
                    usage();
                }
                host_threads = Some(n);
                i += 2;
            }
            "--deadline" => {
                if i + 1 >= argv.len() {
                    usage();
                }
                let secs: f64 = argv[i + 1].parse().unwrap_or_else(|_| usage());
                if !secs.is_finite() || secs < 0.0 {
                    usage();
                }
                deadline_secs = Some(secs);
                i += 2;
            }
            "--checkpoint-dir" => {
                if i + 1 >= argv.len() {
                    usage();
                }
                checkpoint_dir = Some(argv[i + 1].clone());
                i += 2;
            }
            "--resume" => {
                if i + 1 >= argv.len() {
                    usage();
                }
                checkpoint_dir = Some(argv[i + 1].clone());
                resume = true;
                i += 2;
            }
            "--watchdog-ms" => {
                if i + 1 >= argv.len() {
                    usage();
                }
                let ms: u64 = argv[i + 1].parse().unwrap_or_else(|_| usage());
                if ms == 0 {
                    usage();
                }
                watchdog_ms = Some(ms);
                i += 2;
            }
            "--memory-budget" => {
                if i + 1 >= argv.len() {
                    usage();
                }
                memory_budget = Some(argv[i + 1].parse().unwrap_or_else(|_| usage()));
                i += 2;
            }
            "--shard-rows" => {
                if i + 1 >= argv.len() {
                    usage();
                }
                let n: usize = argv[i + 1].parse().unwrap_or_else(|_| usage());
                if n == 0 {
                    usage();
                }
                shard_rows = Some(n);
                i += 2;
            }
            "--out-of-core" => {
                out_of_core = true;
                i += 1;
            }
            "--shard-workers" => {
                if i + 1 >= argv.len() {
                    usage();
                }
                let n: usize = argv[i + 1].parse().unwrap_or_else(|_| usage());
                if n == 0 {
                    usage();
                }
                shard_workers = Some(n);
                i += 2;
            }
            // Hidden: set by the parent on spawned shard workers.
            "--worker-slice" => {
                if i + 1 >= argv.len() {
                    usage();
                }
                let (w, n) = argv[i + 1].split_once('/').unwrap_or_else(|| usage());
                let w: usize = w.parse().unwrap_or_else(|_| usage());
                let n: usize = n.parse().unwrap_or_else(|_| usage());
                if n == 0 || w >= n {
                    usage();
                }
                worker_slice = Some((w, n));
                i += 2;
            }
            // Hidden chaos switch (testing): abort after the Nth shard.
            "--chaos-kill-at-shard" => {
                if i + 1 >= argv.len() {
                    usage();
                }
                chaos_kill_at_shard = Some(argv[i + 1].parse().unwrap_or_else(|_| usage()));
                i += 2;
            }
            "--help" | "-h" => usage(),
            other if !other.starts_with('-') => {
                positional.push(other.to_owned());
                i += 1;
            }
            _ => usage(),
        }
    }
    let Some(rules) = rules else { usage() };
    let (layout, old_layout) = match (diff_mode, positional.len()) {
        (false, 1) => (positional.pop().unwrap(), None),
        (true, 2) => {
            let new = positional.pop().unwrap();
            (new, positional.pop())
        }
        _ => usage(),
    };
    Args {
        layout,
        old_layout,
        rules,
        parallel,
        max_print,
        report,
        markers,
        cache,
        stats_json,
        fault_seed,
        device_budget,
        host_threads,
        deadline_secs,
        checkpoint_dir,
        resume,
        watchdog_ms,
        no_fusion,
        no_launch_graph,
        memory_budget,
        shard_rows,
        out_of_core,
        shard_workers,
        worker_slice,
        chaos_kill_at_shard,
    }
}

/// Writes the violations as CSV: rule, kind, x0, y0, x1, y1, measured.
fn write_report(path: &str, violations: &[odrc::Violation]) -> std::io::Result<()> {
    use std::io::Write;
    let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
    writeln!(f, "rule,kind,x0,y0,x1,y1,measured")?;
    for v in violations {
        writeln!(
            f,
            "{},{},{},{},{},{},{}",
            v.rule,
            v.kind,
            v.location.lo().x,
            v.location.lo().y,
            v.location.hi().x,
            v.location.hi().y,
            v.measured
        )?;
    }
    Ok(())
}

/// Writes the run summary as JSON (hand-rolled — the image has no
/// serde; phase names come from our own profiler, so they never need
/// escaping beyond what `escape_json` covers). The file is written
/// atomically (temp + rename), so an interrupted run — the case where
/// the stats matter most — never leaves a torn JSON behind.
fn write_stats_json(path: &str, report: &CheckReport) -> std::io::Result<()> {
    use std::fmt::Write;
    let mut f = String::new();
    let w = &mut f;
    let _ = writeln!(w, "{{");
    let _ = writeln!(w, "  \"violations\": {},", report.violations.len());
    let _ = writeln!(
        w,
        "  \"checks_computed\": {},",
        report.stats.checks_computed
    );
    let _ = writeln!(w, "  \"checks_reused\": {},", report.stats.checks_reused);
    let _ = writeln!(
        w,
        "  \"candidate_pairs\": {},",
        report.stats.candidate_pairs
    );
    let _ = writeln!(w, "  \"rows\": {},", report.stats.rows);
    let _ = writeln!(w, "  \"device_retries\": {},", report.stats.device_retries);
    let _ = writeln!(
        w,
        "  \"device_fallbacks\": {},",
        report.stats.device_fallbacks
    );
    let _ = writeln!(w, "  \"degraded\": {},", report.stats.degraded());
    let _ = writeln!(w, "  \"scenes_built\": {},", report.stats.scenes_built);
    let _ = writeln!(w, "  \"scenes_reused\": {},", report.stats.scenes_reused);
    let _ = writeln!(w, "  \"host_tasks\": {},", report.stats.host_tasks);
    let _ = writeln!(w, "  \"host_steals\": {},", report.stats.host_steals);
    let _ = writeln!(w, "  \"uploads_elided\": {},", report.stats.uploads_elided);
    let _ = writeln!(w, "  \"bytes_uploaded\": {},", report.stats.bytes_uploaded);
    let _ = writeln!(w, "  \"launches_fused\": {},", report.stats.launches_fused);
    let _ = writeln!(w, "  \"graph_replays\": {},", report.stats.graph_replays);
    let _ = writeln!(w, "  \"worker_wakeups\": {},", report.stats.worker_wakeups);
    let _ = writeln!(w, "  \"shards_checked\": {},", report.stats.shards_checked);
    let _ = writeln!(w, "  \"shards_built\": {},", report.stats.shards_built);
    let _ = writeln!(w, "  \"shards_evicted\": {},", report.stats.shards_evicted);
    let _ = writeln!(w, "  \"shards_resumed\": {},", report.stats.shards_resumed);
    let _ = writeln!(
        w,
        "  \"shards_degraded\": {},",
        report.stats.shards_degraded
    );
    let _ = match odrc_infra::peak_rss_bytes() {
        Some(bytes) => writeln!(w, "  \"peak_rss_bytes\": {bytes},"),
        None => writeln!(w, "  \"peak_rss_bytes\": null,"),
    };
    let _ = match &report.interrupted {
        Some(reason) => writeln!(
            w,
            "  \"interrupted\": \"{}\",",
            escape_json(&reason.to_string())
        ),
        None => writeln!(w, "  \"interrupted\": null,"),
    };
    let _ = writeln!(
        w,
        "  \"rules_completed\": {},",
        report.stats.rules_completed
    );
    let _ = writeln!(w, "  \"rules_resumed\": {},", report.stats.rules_resumed);
    let _ = writeln!(
        w,
        "  \"rules_interrupted\": {},",
        report.stats.rules_interrupted
    );
    let _ = writeln!(w, "  \"rule_status\": {{");
    for (i, (name, st)) in report.rule_status.iter().enumerate() {
        let _ = writeln!(
            w,
            "    \"{}\": \"{}\"{}",
            escape_json(name),
            st,
            if i + 1 < report.rule_status.len() {
                ","
            } else {
                ""
            }
        );
    }
    let _ = writeln!(w, "  }},");
    let _ = writeln!(
        w,
        "  \"total_ms\": {:.3},",
        report.profile.total().as_secs_f64() * 1e3
    );
    let _ = writeln!(w, "  \"phases_ms\": {{");
    let phases = report.profile.phases();
    for (i, (name, d)) in phases.iter().enumerate() {
        let _ = writeln!(
            w,
            "    \"{}\": {:.3}{}",
            escape_json(name),
            d.as_secs_f64() * 1e3,
            if i + 1 < phases.len() { "," } else { "" }
        );
    }
    let _ = writeln!(w, "  }}");
    let _ = writeln!(w, "}}");
    odrc_infra::write_atomic(Path::new(path), f.as_bytes())
}

fn escape_json(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

fn load_layout(path: &str) -> Result<Layout, Box<dyn std::error::Error>> {
    let lib = odrc_gdsii::read_file(path)?;
    let layout = Layout::from_library(&lib)?;
    eprintln!("loaded '{}' from {path}:\n{}", lib.name, layout.stats());
    Ok(layout)
}

/// Out-of-core load: index the stream, then parse and convert one
/// structure at a time, so the full GDSII element model is never
/// resident — peak load footprint is one structure plus the growing
/// layout.
fn load_layout_streamed(path: &str) -> Result<Layout, Box<dyn std::error::Error>> {
    let index = odrc_gdsii::stream::index_file(path)?;
    let mut file = std::fs::File::open(path)?;
    let mut builder = odrc_db::LayoutBuilder::new();
    for entry in &index.entries {
        builder.add_structure(&odrc_gdsii::stream::read_structure(&mut file, entry)?)?;
    }
    let layout = builder.finish()?;
    eprintln!(
        "streamed '{}' from {path} ({} structures indexed):\n{}",
        index.name,
        index.entries.len(),
        layout.stats()
    );
    Ok(layout)
}

/// Whether this run takes the out-of-core path (and hence the
/// streaming loader).
fn out_of_core_run(args: &Args) -> bool {
    args.out_of_core
        || args.memory_budget.is_some()
        || args.shard_rows.is_some()
        || args.worker_slice.is_some()
        || args.shard_workers.is_some()
}

fn load_cache(dir: &str) -> ResultCache {
    let cache = ResultCache::load_or_cold(&Path::new(dir).join(CACHE_FILE));
    if !cache.is_empty() {
        eprintln!("loaded {} cached results from {dir}", cache.len());
    }
    cache
}

/// Merge-on-save under the sidecar's file lock: a concurrent run (or
/// a draining `odrc serve` sharing the directory) loses nothing.
fn save_cache(dir: &str, cache: &ResultCache) -> Result<(), Box<dyn std::error::Error>> {
    std::fs::create_dir_all(dir)?;
    cache.save_merged(&Path::new(dir).join(CACHE_FILE))?;
    eprintln!("saved {} cached results to {dir}", cache.len());
    Ok(())
}

fn print_summary(report: &CheckReport, deck: &RuleDeck, max_print: usize) {
    for rule in deck.rules() {
        let n = report.violations_of(&rule.name).count();
        println!("{:<20} {:>8}", rule.name, n);
    }
    println!("{:<20} {:>8}", "total", report.violations.len());
    for v in report.violations.iter().take(max_print) {
        println!("  {v}");
    }
    if report.violations.len() > max_print {
        println!("  ... and {} more", report.violations.len() - max_print);
    }
}

fn print_stats(stats: &odrc::EngineStats) {
    eprintln!(
        "checks computed: {}, reused: {}, candidate pairs: {}, rows: {}",
        stats.checks_computed, stats.checks_reused, stats.candidate_pairs, stats.rows
    );
    eprintln!(
        "scenes built: {}, reused: {}; uploads elided: {}, bytes uploaded: {}",
        stats.scenes_built, stats.scenes_reused, stats.uploads_elided, stats.bytes_uploaded
    );
    if stats.host_tasks > 0 {
        eprintln!(
            "host executor: {} task(s) fanned out, {} steal(s)",
            stats.host_tasks, stats.host_steals
        );
    }
    if stats.launches_fused > 0 || stats.graph_replays > 0 || stats.worker_wakeups > 0 {
        eprintln!(
            "dispatch: {} launch(es) fused, {} graph replay(s), {} worker wakeup(s)",
            stats.launches_fused, stats.graph_replays, stats.worker_wakeups
        );
    }
    if stats.degraded() {
        eprintln!(
            "degraded: device work retried {} time(s), {} unit(s) recomputed on the host \
             (results are complete and exact)",
            stats.device_retries, stats.device_fallbacks
        );
    }
    if stats.shards_checked > 0 || stats.shards_resumed > 0 {
        eprintln!(
            "out-of-core: {} shard(s) checked, {} built, {} evicted, {} resumed, {} degraded",
            stats.shards_checked,
            stats.shards_built,
            stats.shards_evicted,
            stats.shards_resumed,
            stats.shards_degraded
        );
    }
}

/// Opens the checkpoint journal for `--checkpoint-dir`/`--resume`. A
/// plain `--checkpoint-dir` starts fresh (any previous journal in the
/// directory is discarded); `--resume` keeps it so completed rules are
/// restored.
fn open_journal(
    args: &Args,
    layout: &Layout,
    deck: &RuleDeck,
) -> Result<Option<CheckpointJournal>, Box<dyn std::error::Error>> {
    let Some(dir) = &args.checkpoint_dir else {
        return Ok(None);
    };
    let dir = Path::new(dir);
    if !args.resume {
        match std::fs::remove_file(dir.join(odrc::JOURNAL_FILE)) {
            Ok(()) => {}
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => return Err(e.into()),
        }
    }
    let journal = CheckpointJournal::open_dir(dir, RunKey::compute(layout, deck))?;
    if args.resume && !journal.is_empty() {
        eprintln!(
            "resuming: {} rule(s) already journaled in {}",
            journal.len(),
            dir.display()
        );
    }
    Ok(Some(journal))
}

/// The default mode: check one layout.
fn run_check(
    args: &Args,
    engine: &Engine,
    deck: &RuleDeck,
) -> Result<Outcome, Box<dyn std::error::Error>> {
    let layout = if out_of_core_run(args) {
        load_layout_streamed(&args.layout)?
    } else {
        load_layout(&args.layout)?
    };
    if let Some(workers) = args.shard_workers {
        if workers > 1 && args.worker_slice.is_none() {
            return run_shard_workers(args, engine, deck, &layout, workers);
        }
    }
    let mut journal = open_journal(args, &layout, deck)?;
    let report = match &args.cache {
        Some(dir) => {
            let mut cache = load_cache(dir);
            let report = engine.check_resumable(&layout, deck, Some(&mut cache), journal.as_mut());
            save_cache(dir, &cache)?;
            report
        }
        None => engine.check_resumable(&layout, deck, None, journal.as_mut()),
    };
    finish_check(args, deck, &report, journal.as_ref())
}

/// Shared reporting tail of a check run: summary, artifacts, stats,
/// and the outcome for the exit code.
fn finish_check(
    args: &Args,
    deck: &RuleDeck,
    report: &CheckReport,
    journal: Option<&CheckpointJournal>,
) -> Result<Outcome, Box<dyn std::error::Error>> {
    print_summary(report, deck, args.max_print);
    if let Some(path) = &args.report {
        write_report(path, &report.violations)?;
        eprintln!("wrote {} violations to {path}", report.violations.len());
    }
    if let Some(path) = &args.markers {
        // Markers on a layer beyond the BEOL stack, KLayout-style.
        let lib = odrc::markers::marker_library(&report.violations, 10_000);
        odrc_gdsii::write_file(&lib, path)?;
        eprintln!("wrote marker GDSII to {path}");
    }
    if let Some(path) = &args.stats_json {
        write_stats_json(path, report)?;
        eprintln!("wrote stats to {path}");
    }
    eprintln!("\n{}", report.profile);
    print_stats(&report.stats);
    if report.stats.rules_resumed > 0 || report.stats.shards_resumed > 0 {
        eprintln!(
            "resumed {} rule(s) and {} shard(s) from the checkpoint journal",
            report.stats.rules_resumed, report.stats.shards_resumed
        );
    }
    if let Some(reason) = &report.interrupted {
        eprintln!("\nrun interrupted ({reason}); per-rule status:");
        for (name, st) in &report.rule_status {
            eprintln!("  {name:<20} {st}");
        }
        if let Some(j) = journal {
            eprintln!(
                "checkpoint saved: {} completed rule(s) in {}; \
                 rerun with --resume to finish",
                j.len(),
                j.path().display()
            );
        } else {
            eprintln!("no --checkpoint-dir: completed rules were not journaled");
        }
    }
    Ok(Outcome {
        violations: report.violations.len(),
        degraded: report.stats.degraded(),
        interrupted: report.interrupted.is_some(),
    })
}

/// Multi-process out-of-core checking: spawn `workers` shard workers,
/// each checking the slice `shard % workers == w` (and the whole
/// rules with `index % workers == w`), journaling every completed
/// `(rule, shard)` unit into its own journal directory. A crashed
/// worker (SIGKILL, abort) loses only its un-journaled work: it is
/// re-admitted with `--resume` and picks up where its journal ends.
/// The parent then merges the worker journals under its own run key
/// and runs a restore pass — which also re-checks anything still
/// missing — so the final report is byte-identical to a
/// single-process run.
fn run_shard_workers(
    args: &Args,
    engine: &Engine,
    deck: &RuleDeck,
    layout: &Layout,
    workers: usize,
) -> Result<Outcome, Box<dyn std::error::Error>> {
    /// First admission plus up to three crash re-admissions per
    /// worker; a slice that cannot survive four attempts is a bug,
    /// not bad luck.
    const MAX_ADMITS: usize = 4;
    let root = match &args.checkpoint_dir {
        Some(dir) => std::path::PathBuf::from(dir),
        None => std::env::temp_dir().join(format!("odrc-shard-workers-{}", std::process::id())),
    };
    if !args.resume {
        match std::fs::remove_dir_all(&root) {
            Ok(()) => {}
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => return Err(e.into()),
        }
    }
    std::fs::create_dir_all(&root)?;
    let exe = std::env::current_exe()?;

    let spawn = |w: usize, first: bool| -> std::io::Result<std::process::Child> {
        let mut cmd = std::process::Command::new(&exe);
        cmd.arg(&args.layout)
            .arg("--rules")
            .arg(&args.rules)
            .arg("--worker-slice")
            .arg(format!("{w}/{workers}"))
            .arg("--resume")
            .arg(root.join(format!("worker-{w}")))
            .arg("--max-print")
            .arg("0");
        if args.parallel {
            cmd.arg("--parallel");
        }
        if let Some(bytes) = args.memory_budget {
            cmd.arg("--memory-budget").arg(bytes.to_string());
        }
        if let Some(n) = args.shard_rows {
            cmd.arg("--shard-rows").arg(n.to_string());
        }
        if args.out_of_core {
            cmd.arg("--out-of-core");
        }
        if let Some(n) = args.host_threads {
            cmd.arg("--host-threads").arg(n.to_string());
        }
        if let Some(bytes) = args.device_budget {
            cmd.arg("--device-budget").arg(bytes.to_string());
        }
        if let Some(seed) = args.fault_seed {
            cmd.arg("--fault-seed").arg(seed.to_string());
        }
        // The chaos kill fires once, on worker 0's first admission —
        // its re-admission must find a healthy process.
        if first && w == 0 {
            if let Some(nth) = args.chaos_kill_at_shard {
                cmd.arg("--chaos-kill-at-shard").arg(nth.to_string());
            }
        }
        cmd.stdout(std::process::Stdio::null());
        cmd.spawn()
    };

    let mut children: Vec<(usize, std::process::Child, usize)> = Vec::new();
    for w in 0..workers {
        children.push((w, spawn(w, true)?, 1));
    }
    eprintln!(
        "spawned {workers} shard worker(s); journals under {}",
        root.display()
    );
    while let Some((w, mut child, admits)) = children.pop() {
        let status = child.wait()?;
        // A coded exit (0/1/3/4) means the worker's slice is fully
        // journaled; no exit code means a crash (signal) — re-admit.
        match status.code() {
            None => {
                if admits >= MAX_ADMITS {
                    return Err(
                        format!("shard worker {w} crashed {admits} time(s); giving up").into(),
                    );
                }
                eprintln!(
                    "shard worker {w} crashed ({status}); re-admitting (attempt {})",
                    admits + 1
                );
                children.push((w, spawn(w, false)?, admits + 1));
            }
            Some(2) => return Err(format!("shard worker {w} failed hard (exit 2)").into()),
            Some(_) => {}
        }
    }

    // Merge the worker journals under the parent's run key, then run
    // a restore pass for the real report.
    let run_key = RunKey::compute(layout, deck);
    let mut journal = CheckpointJournal::open_dir(&root, run_key)?;
    for w in 0..workers {
        journal.absorb_dir(&root.join(format!("worker-{w}")))?;
    }
    let report = engine.check_resumable(layout, deck, None, Some(&mut journal));
    let outcome = finish_check(args, deck, &report, Some(&journal))?;
    if args.checkpoint_dir.is_none() {
        let _ = std::fs::remove_dir_all(&root);
    }
    Ok(outcome)
}

/// The diff mode: check `old`, delta-check `new` against it, print
/// what the edit changed. Counts *added* violations for the exit code.
fn run_diff(
    args: &Args,
    engine: &Engine,
    deck: &RuleDeck,
) -> Result<Outcome, Box<dyn std::error::Error>> {
    let old_path = args
        .old_layout
        .as_deref()
        .expect("diff mode has two layouts");
    let old = load_layout(old_path)?;
    let new = load_layout(&args.layout)?;

    let mut cache = match &args.cache {
        Some(dir) => load_cache(dir),
        None => ResultCache::new(),
    };
    let base = engine.check_with_cache(&old, deck, &mut cache);
    let report = engine.check_delta_with_cache(&old, &base.violations, &new, deck, &mut cache);
    if let Some(dir) = &args.cache {
        save_cache(dir, &cache)?;
    }

    println!(
        "baseline {}: {} violations",
        old_path,
        base.violations.len()
    );
    println!(
        "delta    {}: +{} -{} ({} unchanged, {} dirty rects)",
        args.layout,
        report.delta.added.len(),
        report.delta.removed.len(),
        report.delta.unchanged_count,
        report.dirty.len()
    );
    for v in report.delta.added.iter().take(args.max_print) {
        println!("  + {v}");
    }
    if report.delta.added.len() > args.max_print {
        println!(
            "  ... and {} more",
            report.delta.added.len() - args.max_print
        );
    }
    for v in report.delta.removed.iter().take(args.max_print) {
        println!("  - {v}");
    }
    if report.delta.removed.len() > args.max_print {
        println!(
            "  ... and {} more",
            report.delta.removed.len() - args.max_print
        );
    }
    eprintln!("\n{}", report.profile);
    print_stats(&report.stats);
    Ok(Outcome {
        violations: report.delta.added.len(),
        degraded: base.stats.degraded() || report.stats.degraded(),
        interrupted: false,
    })
}

fn run(args: &Args) -> Result<Outcome, Box<dyn std::error::Error>> {
    let deck_text = std::fs::read_to_string(&args.rules)?;
    let deck = parse_deck(&deck_text)?;
    eprintln!("loaded {} rules from {}", deck.rules().len(), args.rules);

    let options = odrc::EngineOptions {
        host_threads: args.host_threads,
        fusion: !args.no_fusion,
        launch_graph: !args.no_launch_graph,
        memory_budget: args.memory_budget,
        out_of_core: args.out_of_core,
        shard_rows: args.shard_rows,
        shard_slice: args.worker_slice,
        chaos_kill_at_shard: args.chaos_kill_at_shard,
        ..odrc::EngineOptions::default()
    };
    let mut engine = if args.parallel {
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let device = match args.device_budget {
            Some(bytes) => Device::with_budget(workers, bytes),
            None => Device::new(workers),
        };
        if let Some(seed) = args.fault_seed {
            device.set_fault_plan(Some(FaultPlan::from_seed(seed, FAULTS_PER_SEED)));
            eprintln!("fault injection on: seed {seed}, {FAULTS_PER_SEED} scheduled faults");
        }
        if let Some(ms) = args.watchdog_ms {
            device.set_watchdog(Some(Duration::from_millis(ms)));
            eprintln!("stream watchdog armed: {ms} ms per operation");
        }
        Engine::parallel_on(device).with_options(options)
    } else {
        if args.fault_seed.is_some() || args.device_budget.is_some() || args.watchdog_ms.is_some() {
            eprintln!(
                "note: --fault-seed/--device-budget/--watchdog-ms only apply to --parallel runs"
            );
        }
        Engine::sequential().with_options(options)
    };
    if args.old_layout.is_some() {
        if args.deadline_secs.is_some() || args.checkpoint_dir.is_some() {
            eprintln!("note: --deadline/--checkpoint-dir/--resume only apply to check runs");
        }
        run_diff(args, &engine, &deck)
    } else {
        // Cooperative cancellation: SIGINT/SIGTERM and --deadline all
        // trip one token the engine polls at rule boundaries.
        let token = match args.deadline_secs {
            Some(secs) => CancelToken::with_deadline(Duration::from_secs_f64(secs)),
            None => CancelToken::new(),
        };
        let token = token.linked_to_signals();
        install_signal_handlers();
        engine = engine.with_cancel(token);
        run_check(args, &engine, &deck)
    }
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match argv.first().map(String::as_str) {
        Some("serve") => return run_serve(&argv[1..]),
        Some("client") => return run_client(&argv[1..]),
        _ => {}
    }
    let args = parse_args();
    match run(&args) {
        // Interruption first — a partial result is not a verdict; then
        // violations over degradation; a degraded clean run gets its
        // own code so scripts can react.
        Ok(Outcome {
            interrupted: true, ..
        }) => ExitCode::from(4),
        Ok(Outcome {
            violations: 0,
            degraded: false,
            ..
        }) => ExitCode::SUCCESS,
        Ok(Outcome {
            violations: 0,
            degraded: true,
            ..
        }) => ExitCode::from(3),
        Ok(_) => ExitCode::FAILURE,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(2)
        }
    }
}

// ---------------------------------------------------------------------------
// `odrc serve` — the multi-tenant check daemon.
// ---------------------------------------------------------------------------

fn usage_serve() -> ! {
    eprintln!(
        "usage: odrc serve [--addr HOST:PORT] [--workers N] [--host-threads N] \
         [--max-queue N] [--cache dir] [--device-budget BYTES] [--device-workers N] \
         [--port-file path] [--checkpoint-dir dir] [--io-timeout-ms N] \
         [--ping-max-misses N] [--session-idle-ms N] [--max-sessions N] \
         [--chaos-seed N] [--chaos-faults N] [--chaos-kill-at-rule N]\n\
         binds (port 0 = ephemeral), prints `listening on ADDR`, and serves until \
         SIGINT/SIGTERM or a `shutdown` verb, then drains in-flight jobs and \
         persists the shared cache tier\n\
         --checkpoint-dir makes keyed `check` submissions durable: admissions and \
         results are journaled there, and a restarted server replays the journal, \
         resuming interrupted jobs at the rule boundary\n\
         --chaos-* arm seeded fault injection (testing only)"
    );
    std::process::exit(2);
}

fn run_serve(argv: &[String]) -> ExitCode {
    let mut config = odrc_serve::ServerConfig::default();
    let mut port_file: Option<String> = None;
    let mut chaos_seed: Option<u64> = None;
    let mut chaos_faults: usize = 3;
    let mut chaos_kill_at_rule: Option<u64> = None;
    let mut i = 0;
    let value = |argv: &[String], i: usize| -> String {
        if i + 1 >= argv.len() {
            usage_serve();
        }
        argv[i + 1].clone()
    };
    while i < argv.len() {
        match argv[i].as_str() {
            "--addr" => config.addr = value(argv, i),
            "--workers" => {
                config.workers = value(argv, i).parse().unwrap_or_else(|_| usage_serve());
            }
            "--host-threads" => {
                let n: usize = value(argv, i).parse().unwrap_or_else(|_| usage_serve());
                if n == 0 {
                    usage_serve();
                }
                config.host_threads = n;
            }
            "--max-queue" => {
                config.max_queue = value(argv, i).parse().unwrap_or_else(|_| usage_serve());
            }
            "--cache" => config.cache_dir = Some(value(argv, i).into()),
            "--device-budget" => {
                config.device_budget =
                    Some(value(argv, i).parse().unwrap_or_else(|_| usage_serve()));
            }
            "--device-workers" => {
                config.device_workers = value(argv, i).parse().unwrap_or_else(|_| usage_serve());
            }
            "--port-file" => port_file = Some(value(argv, i)),
            "--checkpoint-dir" => config.checkpoint_dir = Some(value(argv, i).into()),
            "--io-timeout-ms" => {
                config.io_timeout_ms = value(argv, i).parse().unwrap_or_else(|_| usage_serve());
            }
            "--ping-max-misses" => {
                config.ping_max_misses = value(argv, i).parse().unwrap_or_else(|_| usage_serve());
            }
            "--session-idle-ms" => {
                config.session_idle_ms = value(argv, i).parse().unwrap_or_else(|_| usage_serve());
            }
            "--max-sessions" => {
                config.max_sessions = value(argv, i).parse().unwrap_or_else(|_| usage_serve());
            }
            "--chaos-seed" => {
                chaos_seed = Some(value(argv, i).parse().unwrap_or_else(|_| usage_serve()));
            }
            "--chaos-faults" => {
                chaos_faults = value(argv, i).parse().unwrap_or_else(|_| usage_serve());
            }
            "--chaos-kill-at-rule" => {
                chaos_kill_at_rule = Some(value(argv, i).parse().unwrap_or_else(|_| usage_serve()));
            }
            _ => usage_serve(),
        }
        i += 2;
    }
    if chaos_seed.is_some() || chaos_kill_at_rule.is_some() {
        let mut plan = match chaos_seed {
            Some(seed) => odrc_serve::ServerFaultPlan::from_seed(seed, chaos_faults),
            None => odrc_serve::ServerFaultPlan::new(),
        };
        if let Some(nth) = chaos_kill_at_rule {
            plan = plan.with(odrc_serve::ServerFault::KillAtRule { nth });
        }
        eprintln!("chaos armed: {} fault(s) scheduled", plan.len());
        config.chaos = Some(plan);
    }

    let server = match odrc_serve::Server::bind(config) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("error: cannot bind: {e}");
            return ExitCode::from(2);
        }
    };
    // SIGINT/SIGTERM set the signal flag the server's drain token is
    // linked to: the daemon stops accepting, finishes in-flight jobs,
    // and persists the cache tier before exiting.
    install_signal_handlers();
    let addr = server.addr();
    println!("odrc serve listening on {addr}");
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    if let Some(path) = &port_file {
        if let Err(e) = std::fs::write(path, format!("{addr}\n")) {
            eprintln!("error: cannot write --port-file {path}: {e}");
            return ExitCode::from(2);
        }
    }
    match server.run() {
        Ok(summary) => {
            eprintln!(
                "drained: {} job(s) completed over this lifetime; cache tier holds \
                 {} entr(ies), served {} shared hit(s)",
                summary.jobs_completed, summary.cache_entries, summary.cache_hits_shared
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(2)
        }
    }
}

// ---------------------------------------------------------------------------
// `odrc client` — the command-line front end to a running daemon.
// ---------------------------------------------------------------------------

fn usage_client() -> ! {
    eprintln!(
        "usage: odrc client <layout.gds> --rules <deck.rules> --addr HOST:PORT \
         [--parallel] [--priority N] [--deadline-ms N] [--edits ops.jsonl] \
         [--report out.csv] [--stats-json out.json] [--max-print N] [--shutdown] \
         [--key ID] [--retries N] [--backoff-ms N] [--backoff-cap-ms N]\n\
         \u{20}      odrc client --addr HOST:PORT --shutdown\n\
         --key marks the check idempotent: resubmitting the same key (after a \
         dropped connection or a server restart) replays the journaled result or \
         attaches to the running job instead of checking twice; retries reconnect \
         with capped exponential backoff, honouring server retry_after_ms hints\n\
         exit codes match the one-shot checker: 0 clean, 1 violations, 2 hard error, \
         3 degraded but clean, 4 interrupted (cancel, deadline, or server drain)"
    );
    std::process::exit(2);
}

struct ClientArgs {
    addr: Option<String>,
    layout: Option<String>,
    rules: Option<String>,
    parallel: bool,
    priority: i64,
    deadline_ms: Option<u64>,
    edits: Option<String>,
    report: Option<String>,
    stats_json: Option<String>,
    max_print: usize,
    shutdown: bool,
    key: Option<String>,
    retries: u32,
    backoff_ms: u64,
    backoff_cap_ms: u64,
}

fn parse_client_args(argv: &[String]) -> ClientArgs {
    let mut args = ClientArgs {
        addr: None,
        layout: None,
        rules: None,
        parallel: false,
        priority: 0,
        deadline_ms: None,
        edits: None,
        report: None,
        stats_json: None,
        max_print: 20,
        shutdown: false,
        key: None,
        retries: 1,
        backoff_ms: 200,
        backoff_cap_ms: 5000,
    };
    let value = |argv: &[String], i: usize| -> String {
        if i + 1 >= argv.len() {
            usage_client();
        }
        argv[i + 1].clone()
    };
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--addr" => {
                args.addr = Some(value(argv, i));
                i += 2;
            }
            "--rules" => {
                args.rules = Some(value(argv, i));
                i += 2;
            }
            "--parallel" => {
                args.parallel = true;
                i += 1;
            }
            "--priority" => {
                args.priority = value(argv, i).parse().unwrap_or_else(|_| usage_client());
                i += 2;
            }
            "--deadline-ms" => {
                args.deadline_ms = Some(value(argv, i).parse().unwrap_or_else(|_| usage_client()));
                i += 2;
            }
            "--edits" => {
                args.edits = Some(value(argv, i));
                i += 2;
            }
            "--report" => {
                args.report = Some(value(argv, i));
                i += 2;
            }
            "--stats-json" => {
                args.stats_json = Some(value(argv, i));
                i += 2;
            }
            "--max-print" => {
                args.max_print = value(argv, i).parse().unwrap_or_else(|_| usage_client());
                i += 2;
            }
            "--shutdown" => {
                args.shutdown = true;
                i += 1;
            }
            "--key" => {
                args.key = Some(value(argv, i));
                i += 2;
            }
            "--retries" => {
                args.retries = value(argv, i).parse().unwrap_or_else(|_| usage_client());
                i += 2;
            }
            "--backoff-ms" => {
                args.backoff_ms = value(argv, i).parse().unwrap_or_else(|_| usage_client());
                i += 2;
            }
            "--backoff-cap-ms" => {
                args.backoff_cap_ms = value(argv, i).parse().unwrap_or_else(|_| usage_client());
                i += 2;
            }
            "--help" | "-h" => usage_client(),
            other if !other.starts_with('-') && args.layout.is_none() => {
                args.layout = Some(other.to_owned());
                i += 1;
            }
            _ => usage_client(),
        }
    }
    if args.addr.is_none() || (args.layout.is_none() && !args.shutdown) {
        usage_client();
    }
    if args.layout.is_some() && args.rules.is_none() {
        usage_client();
    }
    args
}

fn run_client(argv: &[String]) -> ExitCode {
    let args = parse_client_args(argv);
    match client_main(&args) {
        Ok(exit) => ExitCode::from(u8::try_from(exit).unwrap_or(2)),
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(2)
        }
    }
}

/// Everything one attempt needs, loaded once — a local file error is
/// not worth a reconnect loop.
struct ClientInputs {
    gds: Vec<u8>,
    rules: String,
    edit_ops: Vec<odrc_serve::json::Value>,
}

fn client_main(args: &ClientArgs) -> Result<i64, Box<dyn std::error::Error>> {
    let addr = args.addr.as_deref().expect("checked by parse_client_args");
    let inputs = match &args.layout {
        Some(layout) => {
            let rules_path = args.rules.as_deref().expect("checked by parse_client_args");
            let edit_ops = match &args.edits {
                Some(path) => std::fs::read_to_string(path)?
                    .lines()
                    .filter(|l| !l.trim().is_empty())
                    .map(odrc_serve::json::parse)
                    .collect::<Result<Vec<_>, _>>()?,
                None => Vec::new(),
            };
            Some(ClientInputs {
                gds: std::fs::read(layout)?,
                rules: std::fs::read_to_string(rules_path)?,
                edit_ops,
            })
        }
        None => None,
    };
    // Each attempt redoes the whole unit of work: connect, open,
    // resubmit, wait. With --key the redo is free — the server
    // replays the journaled result or attaches to the running job.
    let policy = odrc_serve::RetryPolicy {
        attempts: args.retries.max(1),
        base_ms: args.backoff_ms,
        cap_ms: args.backoff_cap_ms,
    };
    let exit = policy.run(|attempt| {
        if attempt > 0 {
            eprintln!(
                "reconnecting to {addr} (attempt {}/{})",
                attempt + 1,
                args.retries.max(1)
            );
        }
        client_attempt(args, addr, inputs.as_ref())
    })?;
    Ok(exit)
}

fn client_attempt(
    args: &ClientArgs,
    addr: &str,
    inputs: Option<&ClientInputs>,
) -> Result<i64, odrc_serve::ClientError> {
    use odrc_serve::json::{obj, Value};

    let mut client = odrc_serve::Client::connect(addr)?;

    let mut exit = 0i64;
    if let Some(inputs) = inputs {
        let mode = if args.parallel {
            "parallel"
        } else {
            "sequential"
        };
        let session = client.open_bytes(&inputs.gds, &inputs.rules, mode)?;
        eprintln!("opened session {session} on {addr} ({mode})");

        if let Some(path) = &args.edits {
            let applied = client.edit(session, inputs.edit_ops.clone())?;
            eprintln!("applied {applied} edit op(s) from {path}");
        }

        let job = client.check_with_key(
            session,
            args.priority,
            args.deadline_ms,
            args.key.as_deref(),
        )?;
        // A terminal `error` event (internal failure, shed under
        // overload) becomes a ClientError here so the retry policy
        // sees its code and backoff hint.
        let outcome = client.wait(job)?.into_result()?;
        exit = outcome.exit;

        println!("{:<20} {:>8}", "total", outcome.violations.len());
        for v in outcome.violations.iter().take(args.max_print) {
            println!("  {}", v.to_csv_row());
        }
        if outcome.violations.len() > args.max_print {
            println!(
                "  ... and {} more",
                outcome.violations.len() - args.max_print
            );
        }
        eprintln!(
            "job {}: exit {}, {} rule(s) reported, {} shared cache hit(s), \
             queued {} ms",
            outcome.job,
            outcome.exit,
            outcome.rules.len(),
            outcome.stat("cache_hits_shared"),
            outcome.stat("queue_wait_ms"),
        );
        if let Some(reason) = &outcome.interrupted {
            eprintln!("run interrupted ({reason}); results are partial");
        }

        if let Some(path) = &args.report {
            odrc_infra::write_atomic(Path::new(path), outcome.report_csv().as_bytes())?;
            eprintln!("wrote {} violations to {path}", outcome.violations.len());
        }
        if let Some(path) = &args.stats_json {
            // Per-job engine counters (including cache_hits_shared and
            // queue_wait_ms) plus the server-wide admission counters
            // from the `stats` verb and the liveness snapshot from
            // `health`.
            let strip_ok = |v: Value| match v {
                Value::Object(pairs) => {
                    Value::Object(pairs.into_iter().filter(|(k, _)| k != "ok").collect())
                }
                other => other,
            };
            let server = strip_ok(client.stats()?);
            let health = strip_ok(client.health()?);
            let doc = obj([
                ("job", Value::from(outcome.job)),
                ("exit", Value::Int(outcome.exit)),
                ("violations", Value::from(outcome.violations.len())),
                (
                    "interrupted",
                    match &outcome.interrupted {
                        Some(reason) => Value::from(reason.as_str()),
                        None => Value::Null,
                    },
                ),
                ("full_run", Value::Bool(outcome.full_run)),
                ("stats", outcome.stats.clone()),
                ("server", server),
                ("health", health),
            ]);
            odrc_infra::write_atomic(Path::new(path), doc.to_json().as_bytes())?;
            eprintln!("wrote stats to {path}");
        }
        client.close(session)?;
    }

    if args.shutdown {
        client.shutdown()?;
        eprintln!("asked {addr} to drain and exit");
    }
    Ok(exit)
}
