//! The shared server-side result-cache tier.
//!
//! Each edit session owns a private [`ResultCache`], which is correct
//! but wasteful in a multi-tenant server: two clients checking the
//! same standard-cell library re-verify identical cells. This tier
//! promotes the cache to a server-wide resource keyed — like the
//! per-session cache — by `(rule signature, content hash)`, so
//! verdicts flow between sessions while staying safe against rule or
//! geometry drift.
//!
//! Concurrency model: jobs never share a live `ResultCache` (its
//! `get` counts hits through `&mut self`). Instead a job **checks
//! out** a snapshot (a cheap clone — entries are `Arc`ed), runs with
//! exclusive ownership, and **merges back** what it learned. Merges
//! are first-writer-wins per key, which is sound because both sides
//! computed the same pure function of the key. The tier itself is a
//! `parking_lot`-shim mutex, so a panicking job cannot poison it.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use odrc::{ResultCache, CACHE_FILE};
use parking_lot::Mutex;

/// The server-wide cache tier. See the module docs for the
/// checkout/merge-back protocol.
pub struct SharedCacheTier {
    inner: Mutex<ResultCache>,
    /// Sidecar to persist into at drain time (merge-on-save under the
    /// sidecar's file lock — a one-shot CLI run against the same
    /// directory cannot be clobbered).
    path: Option<PathBuf>,
    /// Total lookups answered for jobs out of checked-out snapshots.
    hits_shared: AtomicU64,
    /// Entries other jobs contributed that a merge-back deduplicated.
    merges: AtomicU64,
}

impl SharedCacheTier {
    /// An empty in-memory tier.
    pub fn new() -> SharedCacheTier {
        SharedCacheTier {
            inner: Mutex::new(ResultCache::new()),
            path: None,
            hits_shared: AtomicU64::new(0),
            merges: AtomicU64::new(0),
        }
    }

    /// A tier backed by `<dir>/odrc-cache.bin`: warm-loaded now
    /// (leniently — a damaged sidecar starts cold), persisted by
    /// [`SharedCacheTier::persist`].
    pub fn with_dir(dir: impl Into<PathBuf>) -> SharedCacheTier {
        let path = dir.into().join(CACHE_FILE);
        SharedCacheTier {
            inner: Mutex::new(ResultCache::load_or_cold(&path)),
            path: Some(path),
            hits_shared: AtomicU64::new(0),
            merges: AtomicU64::new(0),
        }
    }

    /// Checks out a snapshot for one job. The snapshot is independent
    /// — the job mutates it freely while other jobs run against their
    /// own copies.
    pub fn checkout(&self) -> ResultCache {
        self.inner.lock().clone()
    }

    /// Merges a job's enriched snapshot back and accounts its reuse.
    ///
    /// `hits_before` is `snapshot.hits()` at checkout time (the clone
    /// inherits the donor's counter); the difference is the job's own
    /// shared-tier hit count, which this returns.
    pub fn merge_back(&self, enriched: &ResultCache, hits_before: usize) -> u64 {
        let job_hits = (enriched.hits().saturating_sub(hits_before)) as u64;
        self.hits_shared.fetch_add(job_hits, Ordering::Relaxed);
        let added = self.inner.lock().merge_from(enriched);
        self.merges.fetch_add(added as u64, Ordering::Relaxed);
        job_hits
    }

    /// Entries currently in the tier.
    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    /// True when the tier holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total lookups jobs answered from checked-out snapshots.
    pub fn hits_shared(&self) -> u64 {
        self.hits_shared.load(Ordering::Relaxed)
    }

    /// Entries contributed by merge-backs since startup.
    pub fn entries_merged(&self) -> u64 {
        self.merges.load(Ordering::Relaxed)
    }

    /// Persists the tier to its sidecar (no-op for in-memory tiers).
    /// Uses merge-on-save, so concurrent CLI runs sharing the
    /// directory lose nothing.
    pub fn persist(&self) -> std::io::Result<()> {
        if let Some(path) = &self.path {
            if let Some(parent) = path.parent() {
                std::fs::create_dir_all(parent)?;
            }
            self.inner.lock().save_merged(path)?;
        }
        Ok(())
    }
}

impl Default for SharedCacheTier {
    fn default() -> Self {
        SharedCacheTier::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn checkout_merge_back_accumulates() {
        let tier = SharedCacheTier::new();
        // Job A computes two entries and merges them back.
        let mut a = tier.checkout();
        let before_a = a.hits();
        a.insert(1, 10, Arc::new(Vec::new()));
        a.insert(1, 11, Arc::new(Vec::new()));
        tier.merge_back(&a, before_a);
        assert_eq!(tier.len(), 2);

        // Job B's checkout sees them; its own hits are accounted.
        let mut b = tier.checkout();
        let before_b = b.hits();
        assert!(b.get(1, 10).is_some());
        assert!(b.get(1, 11).is_some());
        assert!(b.get(1, 12).is_none());
        b.insert(1, 12, Arc::new(Vec::new()));
        let job_hits = tier.merge_back(&b, before_b);
        assert_eq!(job_hits, 2);
        assert_eq!(tier.hits_shared(), 2);
        assert_eq!(tier.len(), 3);
    }

    #[test]
    fn concurrent_checkouts_lose_nothing() {
        let tier = Arc::new(SharedCacheTier::new());
        let threads: Vec<_> = (0..4u64)
            .map(|t| {
                let tier = Arc::clone(&tier);
                std::thread::spawn(move || {
                    for round in 0..8u64 {
                        let mut snap = tier.checkout();
                        let before = snap.hits();
                        snap.insert(t, round, Arc::new(Vec::new()));
                        tier.merge_back(&snap, before);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(tier.len(), 32, "every thread's entries survive");
    }

    #[test]
    fn persists_and_reloads() {
        let dir = std::env::temp_dir().join(format!("odrc-tier-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let tier = SharedCacheTier::with_dir(&dir);
            let mut snap = tier.checkout();
            let before = snap.hits();
            snap.insert(7, 70, Arc::new(Vec::new()));
            tier.merge_back(&snap, before);
            tier.persist().unwrap();
        }
        let reloaded = SharedCacheTier::with_dir(&dir);
        assert_eq!(reloaded.len(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
