//! Conversions between engine types and wire JSON.
//!
//! The serve protocol never ships Rust types; everything crosses the
//! socket as JSON built and parsed here. Violations serialize with the
//! exact fields of the CLI's CSV report (`rule,kind,x0,y0,x1,y1,
//! measured`) so a client-side report is byte-identical to a one-shot
//! run's; edit ops mirror [`odrc_incremental::EditOp`] field for
//! field.

use odrc::{EngineStats, Violation};
use odrc_db::{CellId, CellRef, LayerPolygon};
use odrc_geometry::{Point, Polygon, Rotation, Transform};
use odrc_incremental::EditOp;

use crate::json::{obj, Value};
use crate::proto::{req_i64, req_str, ServeError};

/// Serializes one violation with the CSV report's fields.
pub fn violation_to_json(v: &Violation) -> Value {
    obj([
        ("rule", Value::from(v.rule.as_str())),
        ("kind", Value::from(v.kind.to_string())),
        ("x0", Value::Int(i64::from(v.location.lo().x))),
        ("y0", Value::Int(i64::from(v.location.lo().y))),
        ("x1", Value::Int(i64::from(v.location.hi().x))),
        ("y1", Value::Int(i64::from(v.location.hi().y))),
        ("measured", Value::Int(v.measured)),
    ])
}

/// Serializes a violation list.
pub fn violations_to_json(violations: &[Violation]) -> Value {
    Value::Array(violations.iter().map(violation_to_json).collect())
}

/// A violation as received by a client: the wire fields, kept as
/// primitives (the client never needs engine types).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireViolation {
    pub rule: String,
    pub kind: String,
    pub x0: i64,
    pub y0: i64,
    pub x1: i64,
    pub y1: i64,
    pub measured: i64,
}

impl WireViolation {
    /// Parses one violation object from a `done` event.
    pub fn from_json(v: &Value) -> Result<WireViolation, ServeError> {
        Ok(WireViolation {
            rule: req_str(v, "rule")?.to_string(),
            kind: req_str(v, "kind")?.to_string(),
            x0: req_i64(v, "x0")?,
            y0: req_i64(v, "y0")?,
            x1: req_i64(v, "x1")?,
            y1: req_i64(v, "y1")?,
            measured: req_i64(v, "measured")?,
        })
    }

    /// The CSV row of the CLI's `--report` format (no trailing
    /// newline).
    pub fn to_csv_row(&self) -> String {
        format!(
            "{},{},{},{},{},{},{}",
            self.rule, self.kind, self.x0, self.y0, self.x1, self.y1, self.measured
        )
    }
}

/// Serializes engine stats. Only the counters the protocol documents;
/// extending is backward-compatible (clients ignore unknown keys).
pub fn stats_to_json(stats: &EngineStats) -> Value {
    obj([
        ("checks_computed", Value::from(stats.checks_computed)),
        ("checks_reused", Value::from(stats.checks_reused)),
        ("candidate_pairs", Value::from(stats.candidate_pairs)),
        ("rows", Value::from(stats.rows)),
        ("device_retries", Value::from(stats.device_retries)),
        ("device_fallbacks", Value::from(stats.device_fallbacks)),
        ("scenes_built", Value::from(stats.scenes_built)),
        ("scenes_reused", Value::from(stats.scenes_reused)),
        ("uploads_elided", Value::from(stats.uploads_elided)),
        ("bytes_uploaded", Value::from(stats.bytes_uploaded)),
        ("host_tasks", Value::from(stats.host_tasks)),
        ("host_steals", Value::from(stats.host_steals)),
        ("launches_fused", Value::from(stats.launches_fused)),
        ("graph_replays", Value::from(stats.graph_replays as u64)),
        ("worker_wakeups", Value::from(stats.worker_wakeups)),
        ("rules_completed", Value::from(stats.rules_completed)),
        ("rules_resumed", Value::from(stats.rules_resumed)),
        ("rules_interrupted", Value::from(stats.rules_interrupted)),
    ])
}

fn coord(v: &Value, key: &str) -> Result<i32, ServeError> {
    let n = req_i64(v, key)?;
    i32::try_from(n)
        .map_err(|_| ServeError::Protocol(format!("field {key:?} out of coordinate range")))
}

fn cell_id(v: &Value, key: &str) -> Result<CellId, ServeError> {
    let n = req_i64(v, key)?;
    u32::try_from(n)
        .map(|n| CellId::from_index(n as usize))
        .map_err(|_| ServeError::Protocol(format!("field {key:?} is not a cell id")))
}

fn index(v: &Value, key: &str) -> Result<usize, ServeError> {
    let n = req_i64(v, key)?;
    usize::try_from(n).map_err(|_| ServeError::Protocol(format!("field {key:?} is not an index")))
}

/// Parses a placement transform:
/// `{"mirror_x":bool,"rot":0..3,"mag":int,"dx":int,"dy":int}`
/// (all fields optional except the translation).
fn transform_from_json(v: &Value) -> Result<Transform, ServeError> {
    let mirror_x = match v.get("mirror_x") {
        None | Some(Value::Null) => false,
        Some(b) => b
            .as_bool()
            .ok_or_else(|| ServeError::Protocol("\"mirror_x\" must be a bool".to_string()))?,
    };
    let rot = match v.get("rot") {
        None | Some(Value::Null) => 0,
        Some(r) => r
            .as_i64()
            .ok_or_else(|| ServeError::Protocol("\"rot\" must be 0..=3".to_string()))?,
    };
    let mag = match v.get("mag") {
        None | Some(Value::Null) => 1,
        Some(m) => m
            .as_i64()
            .and_then(|m| i32::try_from(m).ok())
            .filter(|&m| m >= 1)
            .ok_or_else(|| ServeError::Protocol("\"mag\" must be a positive int".to_string()))?,
    };
    let rot = i32::try_from(rot)
        .ok()
        .filter(|r| (0..4).contains(r))
        .ok_or_else(|| ServeError::Protocol("\"rot\" must be 0..=3".to_string()))?;
    Ok(Transform::new(
        mirror_x,
        Rotation::from_quarter_turns(rot),
        mag,
        Point::new(coord(v, "dx")?, coord(v, "dy")?),
    ))
}

/// Parses a layer polygon:
/// `{"layer":int,"datatype":int?,"points":[[x,y],...],"name":str?}`.
fn polygon_from_json(v: &Value) -> Result<LayerPolygon, ServeError> {
    let layer = req_i64(v, "layer")?;
    let layer = i16::try_from(layer)
        .map_err(|_| ServeError::Protocol("\"layer\" out of range".to_string()))?;
    let datatype = match v.get("datatype") {
        None | Some(Value::Null) => 0,
        Some(d) => d
            .as_i64()
            .and_then(|d| i16::try_from(d).ok())
            .ok_or_else(|| ServeError::Protocol("\"datatype\" out of range".to_string()))?,
    };
    let points = v
        .get("points")
        .and_then(Value::as_array)
        .ok_or_else(|| ServeError::Protocol("missing \"points\" array".to_string()))?;
    let mut parsed = Vec::with_capacity(points.len());
    for p in points {
        let pair = p
            .as_array()
            .filter(|pair| pair.len() == 2)
            .ok_or_else(|| ServeError::Protocol("point must be [x,y]".to_string()))?;
        let x = pair[0]
            .as_i64()
            .and_then(|x| i32::try_from(x).ok())
            .ok_or_else(|| ServeError::Protocol("point coordinate out of range".to_string()))?;
        let y = pair[1]
            .as_i64()
            .and_then(|y| i32::try_from(y).ok())
            .ok_or_else(|| ServeError::Protocol("point coordinate out of range".to_string()))?;
        parsed.push(Point::new(x, y));
    }
    let polygon =
        Polygon::new(parsed).map_err(|e| ServeError::Protocol(format!("bad polygon: {e}")))?;
    let name = match v.get("name") {
        None | Some(Value::Null) => None,
        Some(n) => Some(
            n.as_str()
                .ok_or_else(|| ServeError::Protocol("\"name\" must be a string".to_string()))?
                .to_string(),
        ),
    };
    Ok(LayerPolygon {
        layer,
        datatype,
        polygon,
        name,
    })
}

/// Parses one edit op. The `"op"` tag selects the variant; fields
/// mirror [`EditOp`]'s:
///
/// ```text
/// {"op":"add_ref","parent":C,"child":C,"transform":T}
/// {"op":"remove_ref","parent":C,"index":I}
/// {"op":"move_ref","parent":C,"index":I,"transform":T}
/// {"op":"add_polygon","cell":C,"polygon":P}
/// {"op":"remove_polygon","cell":C,"index":I}
/// {"op":"replace_polygon","cell":C,"index":I,"polygon":P}
/// {"op":"swap_definition","cell":C,"polygons":[P,...],"refs":[{"cell":C,"transform":T},...]}
/// ```
pub fn edit_op_from_json(v: &Value) -> Result<EditOp, ServeError> {
    let op = req_str(v, "op")?;
    let required = |key: &str| {
        v.get(key)
            .ok_or_else(|| ServeError::Protocol(format!("missing field {key:?}")))
    };
    match op {
        "add_ref" => Ok(EditOp::AddRef {
            parent: cell_id(v, "parent")?,
            child: cell_id(v, "child")?,
            transform: transform_from_json(required("transform")?)?,
        }),
        "remove_ref" => Ok(EditOp::RemoveRef {
            parent: cell_id(v, "parent")?,
            index: index(v, "index")?,
        }),
        "move_ref" => Ok(EditOp::MoveRef {
            parent: cell_id(v, "parent")?,
            index: index(v, "index")?,
            transform: transform_from_json(required("transform")?)?,
        }),
        "add_polygon" => Ok(EditOp::AddPolygon {
            cell: cell_id(v, "cell")?,
            polygon: polygon_from_json(required("polygon")?)?,
        }),
        "remove_polygon" => Ok(EditOp::RemovePolygon {
            cell: cell_id(v, "cell")?,
            index: index(v, "index")?,
        }),
        "replace_polygon" => Ok(EditOp::ReplacePolygon {
            cell: cell_id(v, "cell")?,
            index: index(v, "index")?,
            polygon: polygon_from_json(required("polygon")?)?,
        }),
        "swap_definition" => {
            let polygons = required("polygons")?
                .as_array()
                .ok_or_else(|| ServeError::Protocol("\"polygons\" must be an array".to_string()))?
                .iter()
                .map(polygon_from_json)
                .collect::<Result<Vec<_>, _>>()?;
            let refs = required("refs")?
                .as_array()
                .ok_or_else(|| ServeError::Protocol("\"refs\" must be an array".to_string()))?
                .iter()
                .map(|r| {
                    Ok(CellRef {
                        cell: cell_id(r, "cell")?,
                        transform: transform_from_json(r.get("transform").ok_or_else(|| {
                            ServeError::Protocol("missing field \"transform\"".to_string())
                        })?)?,
                    })
                })
                .collect::<Result<Vec<_>, ServeError>>()?;
            Ok(EditOp::SwapDefinition {
                cell: cell_id(v, "cell")?,
                polygons,
                refs,
            })
        }
        other => Err(ServeError::Protocol(format!("unknown edit op {other:?}"))),
    }
}

/// Serializes one edit op (the client-side inverse of
/// [`edit_op_from_json`]).
pub fn edit_op_to_json(op: &EditOp) -> Value {
    fn transform(t: &Transform) -> Value {
        obj([
            ("mirror_x", Value::Bool(t.mirror_x())),
            ("rot", Value::Int(i64::from(t.rotation().quarter_turns()))),
            ("mag", Value::Int(i64::from(t.mag()))),
            ("dx", Value::Int(i64::from(t.translate().x))),
            ("dy", Value::Int(i64::from(t.translate().y))),
        ])
    }
    fn polygon(p: &LayerPolygon) -> Value {
        obj([
            ("layer", Value::Int(i64::from(p.layer))),
            ("datatype", Value::Int(i64::from(p.datatype))),
            (
                "points",
                Value::Array(
                    p.polygon
                        .vertices()
                        .iter()
                        .map(|pt| {
                            Value::Array(vec![
                                Value::Int(i64::from(pt.x)),
                                Value::Int(i64::from(pt.y)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "name",
                match &p.name {
                    Some(n) => Value::from(n.as_str()),
                    None => Value::Null,
                },
            ),
        ])
    }
    match op {
        EditOp::AddRef {
            parent,
            child,
            transform: t,
        } => obj([
            ("op", Value::from("add_ref")),
            ("parent", Value::Int(parent.index() as i64)),
            ("child", Value::Int(child.index() as i64)),
            ("transform", transform(t)),
        ]),
        EditOp::RemoveRef { parent, index } => obj([
            ("op", Value::from("remove_ref")),
            ("parent", Value::Int(parent.index() as i64)),
            ("index", Value::from(*index)),
        ]),
        EditOp::MoveRef {
            parent,
            index,
            transform: t,
        } => obj([
            ("op", Value::from("move_ref")),
            ("parent", Value::Int(parent.index() as i64)),
            ("index", Value::from(*index)),
            ("transform", transform(t)),
        ]),
        EditOp::AddPolygon { cell, polygon: p } => obj([
            ("op", Value::from("add_polygon")),
            ("cell", Value::Int(cell.index() as i64)),
            ("polygon", polygon(p)),
        ]),
        EditOp::RemovePolygon { cell, index } => obj([
            ("op", Value::from("remove_polygon")),
            ("cell", Value::Int(cell.index() as i64)),
            ("index", Value::from(*index)),
        ]),
        EditOp::ReplacePolygon {
            cell,
            index,
            polygon: p,
        } => obj([
            ("op", Value::from("replace_polygon")),
            ("cell", Value::Int(cell.index() as i64)),
            ("index", Value::from(*index)),
            ("polygon", polygon(p)),
        ]),
        EditOp::SwapDefinition {
            cell,
            polygons,
            refs,
        } => obj([
            ("op", Value::from("swap_definition")),
            ("cell", Value::Int(cell.index() as i64)),
            (
                "polygons",
                Value::Array(polygons.iter().map(polygon).collect()),
            ),
            (
                "refs",
                Value::Array(
                    refs.iter()
                        .map(|r| {
                            obj([
                                ("cell", Value::Int(r.cell.index() as i64)),
                                ("transform", transform(&r.transform)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ]),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edit_ops_round_trip() {
        let poly = LayerPolygon {
            layer: 19,
            datatype: 0,
            polygon: Polygon::new(vec![
                Point::new(0, 0),
                Point::new(10, 0),
                Point::new(10, 5),
                Point::new(0, 5),
            ])
            .unwrap(),
            name: Some("net7".to_string()),
        };
        let t = Transform::new(true, Rotation::from_quarter_turns(3), 2, Point::new(-4, 9));
        let ops = vec![
            EditOp::AddRef {
                parent: CellId::from_index(0),
                child: CellId::from_index(3),
                transform: t,
            },
            EditOp::RemoveRef {
                parent: CellId::from_index(1),
                index: 4,
            },
            EditOp::MoveRef {
                parent: CellId::from_index(0),
                index: 2,
                transform: t,
            },
            EditOp::AddPolygon {
                cell: CellId::from_index(2),
                polygon: poly.clone(),
            },
            EditOp::RemovePolygon {
                cell: CellId::from_index(2),
                index: 0,
            },
            EditOp::ReplacePolygon {
                cell: CellId::from_index(2),
                index: 1,
                polygon: poly.clone(),
            },
            EditOp::SwapDefinition {
                cell: CellId::from_index(5),
                polygons: vec![poly],
                refs: vec![CellRef {
                    cell: CellId::from_index(1),
                    transform: t,
                }],
            },
        ];
        for op in ops {
            let json = edit_op_to_json(&op);
            let text = json.to_json();
            let back = edit_op_from_json(&crate::json::parse(&text).unwrap()).unwrap();
            // EditOp has no PartialEq; compare through the serializer.
            assert_eq!(edit_op_to_json(&back).to_json(), text);
        }
    }

    #[test]
    fn malformed_edit_ops_are_typed_errors() {
        for bad in [
            r#"{"parent":0}"#,
            r#"{"op":"explode"}"#,
            r#"{"op":"remove_ref","parent":-1,"index":0}"#,
            r#"{"op":"remove_ref","parent":0,"index":-2}"#,
            r#"{"op":"add_polygon","cell":0,"polygon":{"layer":99999,"points":[[0,0]]}}"#,
            r#"{"op":"add_polygon","cell":0,"polygon":{"layer":1,"points":[[0,0],[1,0]]}}"#,
            r#"{"op":"add_ref","parent":0,"child":1,"transform":{"rot":7,"dx":0,"dy":0}}"#,
        ] {
            let v = crate::json::parse(bad).unwrap();
            assert!(
                matches!(edit_op_from_json(&v), Err(ServeError::Protocol(_))),
                "should reject {bad}"
            );
        }
    }
}
