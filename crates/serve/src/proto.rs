//! Wire protocol: newline-delimited JSON frames, typed errors, and the
//! exit-code mapping shared with the one-shot CLI.
//!
//! # Frame grammar
//!
//! One frame = one JSON object on one line, terminated by `\n`:
//!
//! ```text
//! frame     := object NL
//! request   := { "verb": verb, ...verb fields }
//! response  := { "ok": true, ...result } | { "ok": false, "error": string, "code": int }
//! event     := { "event": "queued"|"running"|"rule"|"done"|"error", "job": int, ... }
//! ```
//!
//! Requests and their fields:
//!
//! | verb       | fields                                                            |
//! |------------|-------------------------------------------------------------------|
//! | `hello`    | —                                                                 |
//! | `open`     | `gds_b64` *or* `path`, `rules` (deck text), `mode`, `cache_dir`?  |
//! | `edit`     | `session`, `ops` (array of edit objects)                          |
//! | `check`    | `session`, `priority`?, `deadline_ms`?, `key`?                    |
//! | `cancel`   | `job`                                                             |
//! | `stats`    | —                                                                 |
//! | `health`   | —                                                                 |
//! | `ping`     | —                                                                 |
//! | `close`    | `session`                                                         |
//! | `shutdown` | —                                                                 |
//!
//! `check` with a `key` (a client-chosen idempotency key) is durable:
//! the server journals the submission before acknowledging it, a
//! resubmit of the same key attaches to the running job or replays the
//! journaled result, and a server restart re-admits the job. The
//! server may also send unsolicited `{"event":"ping"}` frames on an
//! idle connection; a live client answers with a `ping` request
//! (response `{"ok":true,"pong":true}`) — a client that never answers
//! is evicted.
//!
//! Every request gets exactly one response frame. A successful `check`
//! response (`{"ok":true,"job":N}`) is followed by asynchronous event
//! frames for job `N` — `queued`, `running`, zero or more `rule`
//! events, and finally exactly one `done` (carrying the violations,
//! stats, and `exit`) or `error`. Event frames may interleave with
//! responses to later requests on the same connection; clients
//! demultiplex by the presence of the `event` key.
//!
//! Frames are capped at [`MAX_FRAME_BYTES`]; an oversized frame is a
//! protocol error and the server drops the connection after reporting
//! it (the stream can no longer be trusted to be frame-aligned).

use std::io::{BufRead, Write};

use crate::json::{self, obj, Value};

/// Hard cap on one frame's length, newline included. Generous enough
/// for a multi-megabyte base64 GDSII upload, small enough that a
/// stream of garbage cannot balloon server memory.
pub const MAX_FRAME_BYTES: usize = 64 << 20;

/// Typed failure modes of the serve layer. Each maps to a stable wire
/// `code` so clients can branch without string matching.
#[derive(Debug)]
pub enum ServeError {
    /// The frame was not valid JSON / not an object / missing or
    /// ill-typed fields. The connection survives.
    Protocol(String),
    /// The frame exceeded [`MAX_FRAME_BYTES`]. The connection is
    /// dropped after the error response — framing is unrecoverable.
    TooLarge { limit: usize },
    /// The `verb` field named no known request.
    UnknownVerb(String),
    /// A `session` id that was never opened (or already closed).
    UnknownSession(u64),
    /// A `job` id that was never admitted.
    UnknownJob(u64),
    /// The scheduler refused the job (queue full, or draining).
    Rejected(String),
    /// The database layer rejected an edit op.
    Edit(String),
    /// The layout payload failed to parse.
    Layout(String),
    /// The rule deck text failed to parse.
    Rules(String),
    /// An underlying I/O failure (socket or filesystem).
    Io(std::io::Error),
    /// The queue is full of work at least as important as this job.
    /// Carries the server's backoff hint; a well-behaved client waits
    /// `retry_after_ms` and resubmits (idempotency keys make the
    /// retry safe).
    Overloaded { retry_after_ms: i64 },
}

impl ServeError {
    /// The stable wire code for this error.
    pub fn code(&self) -> i64 {
        match self {
            ServeError::Protocol(_) => 100,
            ServeError::TooLarge { .. } => 101,
            ServeError::UnknownVerb(_) => 102,
            ServeError::UnknownSession(_) => 103,
            ServeError::UnknownJob(_) => 104,
            ServeError::Rejected(_) => 105,
            ServeError::Edit(_) => 106,
            ServeError::Layout(_) => 107,
            ServeError::Rules(_) => 108,
            ServeError::Io(_) => 109,
            ServeError::Overloaded { .. } => 111,
        }
    }

    /// True when the connection's framing can no longer be trusted and
    /// the server should drop it after responding.
    pub fn fatal_to_connection(&self) -> bool {
        matches!(self, ServeError::TooLarge { .. } | ServeError::Io(_))
    }

    /// The error response frame for this failure.
    pub fn to_frame(&self) -> Value {
        let mut pairs = vec![
            ("ok", Value::Bool(false)),
            ("error", Value::from(self.to_string())),
            ("code", Value::Int(self.code())),
        ];
        if let ServeError::Overloaded { retry_after_ms } = self {
            pairs.push(("retry_after_ms", Value::Int(*retry_after_ms)));
        }
        obj(pairs)
    }
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Protocol(m) => write!(f, "protocol error: {m}"),
            ServeError::TooLarge { limit } => {
                write!(f, "frame exceeds the {limit}-byte limit")
            }
            ServeError::UnknownVerb(v) => write!(f, "unknown verb {v:?}"),
            ServeError::UnknownSession(id) => write!(f, "unknown session {id}"),
            ServeError::UnknownJob(id) => write!(f, "unknown job {id}"),
            ServeError::Rejected(m) => write!(f, "job rejected: {m}"),
            ServeError::Edit(m) => write!(f, "edit rejected: {m}"),
            ServeError::Layout(m) => write!(f, "layout error: {m}"),
            ServeError::Rules(m) => write!(f, "rule deck error: {m}"),
            ServeError::Io(e) => write!(f, "i/o error: {e}"),
            ServeError::Overloaded { retry_after_ms } => {
                write!(f, "server overloaded; retry after {retry_after_ms} ms")
            }
        }
    }
}

impl std::error::Error for ServeError {}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> ServeError {
        ServeError::Io(e)
    }
}

impl From<json::ParseError> for ServeError {
    fn from(e: json::ParseError) -> ServeError {
        ServeError::Protocol(e.to_string())
    }
}

/// Reads one newline-terminated frame, enforcing the length cap
/// *while* reading (a hostile peer cannot make the server buffer an
/// unbounded line). Returns `Ok(None)` on clean EOF at a frame
/// boundary; EOF mid-frame is a protocol error.
pub fn read_frame(reader: &mut impl BufRead) -> Result<Option<String>, ServeError> {
    let mut line: Vec<u8> = Vec::new();
    loop {
        let buf = reader.fill_buf()?;
        if buf.is_empty() {
            return if line.is_empty() {
                Ok(None)
            } else {
                Err(ServeError::Protocol("eof inside frame".to_string()))
            };
        }
        let (chunk, done) = match buf.iter().position(|&b| b == b'\n') {
            Some(nl) => (&buf[..nl], true),
            None => (buf, false),
        };
        if line.len() + chunk.len() > MAX_FRAME_BYTES {
            // Leave the stream as-is; the caller must drop the
            // connection (fatal_to_connection) — resynchronizing on a
            // 64 MiB garbage line is not worth the memory.
            return Err(ServeError::TooLarge {
                limit: MAX_FRAME_BYTES,
            });
        }
        line.extend_from_slice(chunk);
        let consumed = chunk.len() + usize::from(done);
        reader.consume(consumed);
        if done {
            let text = String::from_utf8(line)
                .map_err(|_| ServeError::Protocol("frame is not utf-8".to_string()))?;
            return Ok(Some(text));
        }
    }
}

/// One step of a timeout-tolerant frame read ([`read_frame_step`]).
#[derive(Debug)]
pub enum FrameStep {
    /// A complete frame arrived.
    Frame(String),
    /// Clean EOF at a frame boundary.
    Eof,
    /// The read timed out with no (or only a partial) frame; the
    /// partial bytes stay in the caller's buffer. The caller may run
    /// liveness bookkeeping (heartbeats, eviction) and call again.
    Idle,
}

/// Like [`read_frame`], but built for sockets with a read timeout: a
/// `WouldBlock`/`TimedOut` read returns [`FrameStep::Idle`] instead of
/// failing, and any bytes of a partially received frame persist in
/// `partial` — the caller owns the buffer precisely so a slow writer
/// whose frame straddles two timeouts loses nothing.
pub fn read_frame_step(
    reader: &mut impl BufRead,
    partial: &mut Vec<u8>,
) -> Result<FrameStep, ServeError> {
    loop {
        let buf = match reader.fill_buf() {
            Ok(buf) => buf,
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                return Ok(FrameStep::Idle);
            }
            Err(e) => return Err(ServeError::Io(e)),
        };
        if buf.is_empty() {
            return if partial.is_empty() {
                Ok(FrameStep::Eof)
            } else {
                // Drop the torn prefix so the caller's next step sees
                // the clean EOF instead of re-reporting this forever.
                partial.clear();
                Err(ServeError::Protocol("eof inside frame".to_string()))
            };
        }
        let (chunk, done) = match buf.iter().position(|&b| b == b'\n') {
            Some(nl) => (&buf[..nl], true),
            None => (buf, false),
        };
        if partial.len() + chunk.len() > MAX_FRAME_BYTES {
            return Err(ServeError::TooLarge {
                limit: MAX_FRAME_BYTES,
            });
        }
        partial.extend_from_slice(chunk);
        let consumed = chunk.len() + usize::from(done);
        reader.consume(consumed);
        if done {
            let text = String::from_utf8(std::mem::take(partial))
                .map_err(|_| ServeError::Protocol("frame is not utf-8".to_string()))?;
            return Ok(FrameStep::Frame(text));
        }
    }
}

/// Parses a frame into its JSON object.
pub fn parse_frame(text: &str) -> Result<Value, ServeError> {
    let value = json::parse(text.trim_end_matches('\r'))?;
    match value {
        Value::Object(_) => Ok(value),
        _ => Err(ServeError::Protocol(
            "frame must be a json object".to_string(),
        )),
    }
}

/// Writes one frame (JSON + newline) and flushes — events must reach
/// the client promptly, not sit in a BufWriter.
pub fn write_frame(writer: &mut impl Write, frame: &Value) -> std::io::Result<()> {
    let mut text = frame.to_json();
    text.push('\n');
    writer.write_all(text.as_bytes())?;
    writer.flush()
}

/// Required string field of a request object.
pub fn req_str<'a>(frame: &'a Value, key: &str) -> Result<&'a str, ServeError> {
    frame
        .get(key)
        .and_then(Value::as_str)
        .ok_or_else(|| ServeError::Protocol(format!("missing string field {key:?}")))
}

/// Required integer field of a request object.
pub fn req_i64(frame: &Value, key: &str) -> Result<i64, ServeError> {
    frame
        .get(key)
        .and_then(Value::as_i64)
        .ok_or_else(|| ServeError::Protocol(format!("missing integer field {key:?}")))
}

/// Optional integer field (absent or `null` → `None`; wrong type is an
/// error, not a silent default).
pub fn opt_i64(frame: &Value, key: &str) -> Result<Option<i64>, ServeError> {
    match frame.get(key) {
        None | Some(Value::Null) => Ok(None),
        Some(v) => v
            .as_i64()
            .map(Some)
            .ok_or_else(|| ServeError::Protocol(format!("field {key:?} must be an integer"))),
    }
}

/// Optional string field.
pub fn opt_str<'a>(frame: &'a Value, key: &str) -> Result<Option<&'a str>, ServeError> {
    match frame.get(key) {
        None | Some(Value::Null) => Ok(None),
        Some(v) => v
            .as_str()
            .map(Some)
            .ok_or_else(|| ServeError::Protocol(format!("field {key:?} must be a string"))),
    }
}

/// How a finished job exits — the same 0–4 semantics as the one-shot
/// CLI, so a client can `exit(frame.exit)` and scripts behave
/// identically against either front end:
///
/// * `0` — clean: the deck ran to completion and found nothing.
/// * `1` — violations: the deck ran to completion and found some.
/// * `2` — hard error: the job never produced a result (bad layout,
///   bad deck, internal failure). Reported via an `error` event, not
///   a `done` frame.
/// * `3` — degraded-clean: no violations, but device work was retried
///   or recomputed on the host, so the fast path was not exercised
///   end to end.
/// * `4` — interrupted: the run was cancelled (client cancel,
///   deadline, or server drain) before every rule finished; results
///   are partial.
///
/// Interruption dominates violations, which dominate degradation —
/// matching the CLI's precedence exactly.
pub fn job_exit_code(interrupted: bool, violations: usize, degraded: bool) -> i64 {
    if interrupted {
        4
    } else if violations > 0 {
        1
    } else if degraded {
        3
    } else {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    #[test]
    fn frames_round_trip() {
        let mut buf = Vec::new();
        let frame = obj([("verb", Value::from("hello")), ("n", Value::Int(3))]);
        write_frame(&mut buf, &frame).unwrap();
        write_frame(&mut buf, &frame).unwrap();
        let mut reader = BufReader::new(&buf[..]);
        for _ in 0..2 {
            let line = read_frame(&mut reader).unwrap().unwrap();
            let parsed = parse_frame(&line).unwrap();
            assert_eq!(parsed, frame);
        }
        assert!(read_frame(&mut reader).unwrap().is_none(), "clean eof");
    }

    #[test]
    fn eof_mid_frame_is_an_error() {
        let mut reader = BufReader::new(&b"{\"verb\":\"hel"[..]);
        let err = read_frame(&mut reader).unwrap_err();
        assert!(matches!(err, ServeError::Protocol(_)), "{err}");
    }

    #[test]
    fn oversized_frame_is_fatal() {
        struct Endless;
        impl std::io::Read for Endless {
            fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
                buf.fill(b'a');
                Ok(buf.len())
            }
        }
        let mut reader = BufReader::new(Endless);
        let err = read_frame(&mut reader).unwrap_err();
        assert!(matches!(err, ServeError::TooLarge { .. }), "{err}");
        assert!(err.fatal_to_connection());
    }

    #[test]
    fn non_object_frames_are_rejected() {
        for bad in ["[1,2]", "\"hi\"", "42", "not json at all"] {
            assert!(parse_frame(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn frame_step_preserves_partial_across_timeouts() {
        /// Yields each step in order; `None` models a read timeout.
        struct TimesOut {
            steps: Vec<Option<Vec<u8>>>,
        }
        impl std::io::Read for TimesOut {
            fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
                match self.steps.pop() {
                    Some(Some(chunk)) => {
                        buf[..chunk.len()].copy_from_slice(&chunk);
                        Ok(chunk.len())
                    }
                    Some(None) | None => Err(std::io::Error::from(std::io::ErrorKind::WouldBlock)),
                }
            }
        }
        // One frame delivered in two reads with a timeout in between
        // (steps pop LIFO, so they are listed in reverse).
        let mut reader = BufReader::new(TimesOut {
            steps: vec![
                Some(b"\"b\"}\n".to_vec()),
                None,
                Some(b"{\"verb\":".to_vec()),
            ],
        });
        let mut partial = Vec::new();
        // First read buffers the prefix, then hits the timeout.
        let step = read_frame_step(&mut reader, &mut partial).unwrap();
        assert!(matches!(step, FrameStep::Idle), "{step:?}");
        assert_eq!(partial, b"{\"verb\":");
        // The second read delivers the rest and completes the frame.
        let step = read_frame_step(&mut reader, &mut partial).unwrap();
        match step {
            FrameStep::Frame(text) => assert_eq!(text, "{\"verb\":\"b\"}"),
            other => panic!("expected frame, got {other:?}"),
        }
        assert!(partial.is_empty(), "buffer drained after a full frame");
    }

    #[test]
    fn frame_step_reports_clean_eof() {
        let mut reader = BufReader::new(&b""[..]);
        let mut partial = Vec::new();
        assert!(matches!(
            read_frame_step(&mut reader, &mut partial).unwrap(),
            FrameStep::Eof
        ));
        let mut reader = BufReader::new(&b"{\"trunc"[..]);
        let err = read_frame_step(&mut reader, &mut partial).unwrap_err();
        assert!(matches!(err, ServeError::Protocol(_)), "{err}");
    }

    #[test]
    fn overloaded_frame_carries_retry_hint() {
        let e = ServeError::Overloaded {
            retry_after_ms: 250,
        };
        assert_eq!(e.code(), 111);
        assert!(!e.fatal_to_connection());
        let frame = e.to_frame();
        assert_eq!(frame.get("code").and_then(Value::as_i64), Some(111));
        assert_eq!(
            frame.get("retry_after_ms").and_then(Value::as_i64),
            Some(250)
        );
    }

    #[test]
    fn exit_code_precedence_matches_cli() {
        assert_eq!(job_exit_code(false, 0, false), 0);
        assert_eq!(job_exit_code(false, 5, false), 1);
        assert_eq!(job_exit_code(false, 0, true), 3);
        assert_eq!(
            job_exit_code(false, 5, true),
            1,
            "violations beat degradation"
        );
        assert_eq!(job_exit_code(true, 5, true), 4, "interruption beats both");
    }

    #[test]
    fn field_accessors_type_check() {
        let frame = parse_frame(r#"{"verb":"check","session":7,"priority":null}"#).unwrap();
        assert_eq!(req_str(&frame, "verb").unwrap(), "check");
        assert_eq!(req_i64(&frame, "session").unwrap(), 7);
        assert_eq!(opt_i64(&frame, "priority").unwrap(), None);
        assert_eq!(opt_i64(&frame, "missing").unwrap(), None);
        assert!(req_str(&frame, "session").is_err(), "int is not a string");
        let bad = parse_frame(r#"{"priority":"high"}"#).unwrap();
        assert!(opt_i64(&bad, "priority").is_err(), "typed optionals reject");
    }
}
